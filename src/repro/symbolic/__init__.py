"""Symbolic analysis: elimination tree, postorder, column counts, L-pattern,
supernodes, and the assembly tree.

The analyze phase runs once per sparsity pattern:

1. apply a fill-reducing permutation (:mod:`repro.ordering`);
2. build the elimination tree (:func:`etree`);
3. postorder it and re-permute, making parents larger than children;
4. compute per-column L patterns (:func:`symbolic_cholesky`);
5. detect fundamental supernodes and amalgamate small ones
   (:mod:`repro.symbolic.supernodes`);
6. assemble everything into a :class:`SymbolicFactor` — the object both the
   sequential multifrontal engine and the parallel mapping consume.
"""

from repro.symbolic.etree import etree, EliminationForest
from repro.symbolic.postorder import postorder, is_postordered, children_lists
from repro.symbolic.colcounts import col_counts_from_patterns
from repro.symbolic.symbolic_chol import column_patterns, symbolic_cholesky
from repro.symbolic.supernodes import (
    fundamental_supernodes,
    amalgamate,
    SupernodePartition,
)
from repro.symbolic.analyze import SymbolicFactor, analyze, AnalyzeOptions

__all__ = [
    "etree",
    "EliminationForest",
    "postorder",
    "is_postordered",
    "children_lists",
    "col_counts_from_patterns",
    "column_patterns",
    "symbolic_cholesky",
    "fundamental_supernodes",
    "amalgamate",
    "SupernodePartition",
    "SymbolicFactor",
    "analyze",
    "AnalyzeOptions",
]
