"""Supernode detection and relaxed amalgamation.

A *fundamental supernode* is a maximal chain of columns j, j+1, … where
each column's pattern is the next column's pattern plus itself
(``parent[j] == j+1`` and ``colcount[j] == colcount[j+1] + 1``). Columns of
a supernode share one dense frontal matrix, which is where all the level-3
arithmetic in the multifrontal method comes from.

*Relaxed amalgamation* merges a small child supernode into its parent even
when that introduces explicit zeros — fewer, larger fronts trade a bounded
amount of extra arithmetic for much better kernel efficiency (the same
trade WSMP/MUMPS make).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ShapeError


@dataclass(frozen=True)
class SupernodePartition:
    """Contiguous column partition into supernodes.

    ``sn_start`` has length ``n_supernodes + 1``; supernode s owns columns
    ``[sn_start[s], sn_start[s+1])``. ``col_to_sn[j]`` maps a column to its
    supernode.
    """

    sn_start: np.ndarray
    col_to_sn: np.ndarray

    @property
    def n_supernodes(self) -> int:
        return self.sn_start.size - 1

    def columns(self, s: int) -> np.ndarray:
        return np.arange(self.sn_start[s], self.sn_start[s + 1], dtype=np.int64)

    def width(self, s: int) -> int:
        return int(self.sn_start[s + 1] - self.sn_start[s])


def partition_from_starts(starts: list[int], n: int) -> SupernodePartition:
    """Build a partition from a sorted list of first columns."""
    if not starts or starts[0] != 0:
        raise ShapeError("supernode starts must begin at column 0")
    sn_start = np.asarray(starts + [n], dtype=np.int64)
    if np.any(np.diff(sn_start) <= 0):
        raise ShapeError("supernode starts must be strictly increasing")
    col_to_sn = np.repeat(
        np.arange(sn_start.size - 1, dtype=np.int64), np.diff(sn_start)
    )
    return SupernodePartition(sn_start, col_to_sn)


def fundamental_supernodes(
    parent: np.ndarray, col_counts: np.ndarray
) -> SupernodePartition:
    """Fundamental supernode partition of a postordered factor.

    Column j+1 joins column j's supernode iff ``parent[j] == j+1``,
    ``colcount[j] == colcount[j+1] + 1``, and j+1 has exactly one child in
    the elimination tree chain sense (guaranteed by the count equality plus
    parent linkage for fundamental supernodes; we additionally require j to
    be the only child of j+1 to keep the assembly tree simple).
    """
    n = parent.size
    if n == 0:
        return partition_from_starts([0], 0) if n else SupernodePartition(
            np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
    n_children = np.zeros(n, dtype=np.int64)
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            n_children[p] += 1
    starts = [0]
    for j in range(1, n):
        chain = (
            int(parent[j - 1]) == j
            and col_counts[j - 1] == col_counts[j] + 1
            and n_children[j] == 1
        )
        if not chain:
            starts.append(j)
    return partition_from_starts(starts, n)


def supernode_parents(
    part: SupernodePartition, parent: np.ndarray
) -> np.ndarray:
    """Assembly-tree parent per supernode: the supernode containing the
    etree parent of the supernode's last column (-1 for roots)."""
    nsn = part.n_supernodes
    sn_parent = np.full(nsn, -1, dtype=np.int64)
    for s in range(nsn):
        last = int(part.sn_start[s + 1]) - 1
        p = int(parent[last])
        if p >= 0:
            sn_parent[s] = part.col_to_sn[p]
    return sn_parent


def trapezoid_entries(n_rows: int, width: int) -> int:
    """Stored entries of a supernodal block: width columns over n_rows rows,
    skipping the strictly-upper part of the pivot block."""
    return width * n_rows - width * (width - 1) // 2


def amalgamate(
    part: SupernodePartition,
    parent: np.ndarray,
    patterns: list[np.ndarray],
    max_extra_fill_ratio: float = 0.25,
    small_width: int = 8,
) -> SupernodePartition:
    """Relaxed amalgamation: merge a supernode into its assembly-tree parent
    when they are column-contiguous and the merge is cheap.

    A merge of child c (columns ending at the parent's first column, with
    the child's first update row inside the parent's pivot block) is
    accepted when the child is narrow (``width <= small_width``) or the
    merge introduces no explicit zeros, AND the merged node's stored
    entries stay within ``(1 + max_extra_fill_ratio)`` of its *structural*
    entries. The structural bound is cumulative, so total factor storage is
    bounded by ``(1 + ratio) * nnz(L)`` regardless of how many merges fire.
    """
    n = parent.size
    if n == 0:
        return part
    # Per-supernode row structure (union of its columns' patterns).
    sn_rows = _supernode_rows(part, patterns)
    starts = list(int(s) for s in part.sn_start[:-1])
    rows_by_start = {s: r for s, r in zip(starts, sn_rows)}
    widths = {int(part.sn_start[i]): part.width(i) for i in range(part.n_supernodes)}
    # Structural (no-amalgamation) entries per supernode: sum of the column
    # counts of its columns.
    col_counts = np.asarray([p.size for p in patterns], dtype=np.int64)
    struct = {
        int(part.sn_start[i]): int(
            col_counts[part.sn_start[i]: part.sn_start[i + 1]].sum()
        )
        for i in range(part.n_supernodes)
    }

    merged = True
    while merged:
        merged = False
        i = 1
        while i < len(starts):
            c_start = starts[i - 1]
            p_start = starts[i]
            c_width = widths[c_start]
            p_width = widths[p_start]
            c_rows = rows_by_start[c_start]
            p_rows = rows_by_start[p_start]
            # Contiguity: child columns end exactly at parent start, and the
            # child's first update row must land inside the parent pivot
            # block (otherwise p is not c's assembly-tree parent).
            c_update = c_rows[c_rows >= p_start]
            if c_update.size == 0 or c_update[0] >= p_start + p_width:
                i += 1
                continue
            new_width = c_width + p_width
            new_rows = np.unique(
                np.concatenate(
                    [np.arange(c_start, p_start, dtype=np.int64), c_rows, p_rows]
                )
            )
            old_entries = trapezoid_entries(c_rows.size, c_width) + trapezoid_entries(
                p_rows.size, p_width
            )
            new_entries = trapezoid_entries(new_rows.size, new_width)
            extra = new_entries - old_entries
            struct_merged = struct[c_start] + struct[p_start]
            candidate = c_width <= small_width or extra == 0
            within_budget = new_entries <= (1.0 + max_extra_fill_ratio) * struct_merged
            if candidate and within_budget:
                # Merge: drop parent start.
                del starts[i]
                widths.pop(p_start)
                widths[c_start] = new_width
                rows_by_start.pop(p_start)
                rows_by_start[c_start] = new_rows
                struct[c_start] = struct_merged
                struct.pop(p_start)
                merged = True
                # Stay at the same position to consider merging further up.
            else:
                i += 1
    return partition_from_starts(starts, n)


def _supernode_rows(
    part: SupernodePartition, patterns: list[np.ndarray]
) -> list[np.ndarray]:
    """Union row structure per supernode (columns themselves included)."""
    out = []
    for s in range(part.n_supernodes):
        c0, c1 = int(part.sn_start[s]), int(part.sn_start[s + 1])
        pieces = [np.arange(c0, c1, dtype=np.int64)]
        pieces.extend(patterns[j] for j in range(c0, c1))
        out.append(np.unique(np.concatenate(pieces)))
    return out


def supernode_rows(
    part: SupernodePartition, patterns: list[np.ndarray]
) -> list[np.ndarray]:
    """Public wrapper for the per-supernode row union (first ``width``
    entries are exactly the supernode's own columns)."""
    return _supernode_rows(part, patterns)
