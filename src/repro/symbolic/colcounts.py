"""Column counts and factor cost metrics.

Counts derive from the symbolic patterns; the flop counter follows the
standard dense-Cholesky convention (n³/3-type counts) applied per column:
eliminating column j with ``c = colcount[j]`` entries (diagonal included)
costs

* 1 square root,
* ``c - 1`` divisions,
* ``(c - 1) * c / 2`` multiply-add pairs for the outer-product update,

counted as ``(c - 1)² + 3(c - 1) + 1 ≈`` 2·madds + divs + sqrt flops. We
report "flops" as ``divisions + 2 * madds`` which matches the common
"factor operations" figure papers in this family quote (≈ n³/3 · 2 for
dense).
"""

from __future__ import annotations

import numpy as np


def col_counts_from_patterns(patterns: list[np.ndarray]) -> np.ndarray:
    """colcount[j] = nnz(L[:, j]) including the diagonal."""
    return np.asarray([p.size for p in patterns], dtype=np.int64)


def factor_flops_from_counts(col_counts: np.ndarray) -> int:
    """Total factorization flops from per-column counts (see module doc)."""
    below = col_counts.astype(np.int64) - 1
    divisions = below
    madds = below * (below + 1) // 2
    return int(np.sum(divisions + 2 * madds))


def factor_nnz_from_counts(col_counts: np.ndarray) -> int:
    """nnz(L) including the diagonal."""
    return int(np.sum(col_counts))


def solve_flops_from_counts(col_counts: np.ndarray) -> int:
    """Flops of one forward+backward substitution pair (2 madd-flops per
    stored off-diagonal entry per sweep, plus a division per column per
    sweep)."""
    below = col_counts.astype(np.int64) - 1
    per_sweep = int(np.sum(2 * below + 1))
    return 2 * per_sweep
