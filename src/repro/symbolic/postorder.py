"""Postordering of the elimination tree.

The numeric phase requires a postordered matrix: every node's children have
smaller indices, subtrees occupy contiguous index ranges, and the update
stack of the multifrontal method becomes a real stack.
"""

from __future__ import annotations

import numpy as np


def children_lists(parent: np.ndarray) -> list[list[int]]:
    """Children adjacency from a parent array (children in increasing
    order)."""
    n = parent.size
    ch: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            ch[p].append(j)
    return ch


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder permutation ``post``: ``post[k]`` = node visited k-th.

    Iterative DFS; children visited in increasing original order, roots in
    increasing original order. For a forest each tree is postordered in
    turn.
    """
    n = parent.size
    ch = children_lists(parent)
    post = np.empty(n, dtype=np.int64)
    k = 0
    roots = [j for j in range(n) if parent[j] < 0]
    for root in roots:
        # Explicit stack of (node, child-cursor).
        stack: list[list[int]] = [[root, 0]]
        while stack:
            node, cursor = stack[-1]
            if cursor < len(ch[node]):
                stack[-1][1] += 1
                stack.append([ch[node][cursor], 0])
            else:
                stack.pop()
                post[k] = node
                k += 1
    assert k == n, "parent array contains a cycle"
    return post


def is_postordered(parent: np.ndarray) -> bool:
    """True when every node's parent has a larger index (the invariant a
    relabeled-by-postorder tree satisfies)."""
    for j in range(parent.size):
        p = int(parent[j])
        if 0 <= p <= j:
            return False
    return True


def relabel_parent(parent: np.ndarray, post: np.ndarray) -> np.ndarray:
    """Parent array of the tree relabeled by *post* (new label k = old node
    ``post[k]``)."""
    n = parent.size
    inv = np.empty(n, dtype=np.int64)
    inv[post] = np.arange(n, dtype=np.int64)
    new_parent = np.full(n, -1, dtype=np.int64)
    for k in range(n):
        p = int(parent[post[k]])
        new_parent[k] = -1 if p < 0 else inv[p]
    return new_parent


def first_descendants(parent: np.ndarray) -> np.ndarray:
    """For a postordered tree: smallest index in each node's subtree.

    Subtree of node j is exactly the contiguous range
    ``[first[j], j]`` — the property the subtree-to-subcube mapping and the
    update stack rely on.
    """
    n = parent.size
    first = np.arange(n, dtype=np.int64)
    for j in range(n):
        p = int(parent[j])
        if p >= 0 and first[j] < first[p]:
            first[p] = first[j]
    return first
