"""Elimination tree of a symmetric sparse matrix (Liu's algorithm).

``parent[j]`` is the smallest row index of an off-diagonal nonzero in
column j of the Cholesky factor L — equivalently the parent of j in the
elimination tree. Roots have parent -1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import csc_to_csr
from repro.util.errors import ShapeError


def etree(lower: CSCMatrix) -> np.ndarray:
    """Elimination tree of a symmetric matrix given by its lower triangle.

    Liu's O(nnz · α(n)) algorithm with path compression. Input pattern only;
    values are ignored.
    """
    n = lower.shape[0]
    if lower.shape[0] != lower.shape[1]:
        raise ShapeError("etree requires a square lower triangle")
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    # Row j of the lower triangle lists the i < j with A[j, i] != 0.
    csr = csc_to_csr(lower)
    for j in range(n):
        s, e = csr.indptr[j], csr.indptr[j + 1]
        for i in csr.indices[s:e]:
            i = int(i)
            if i >= j:
                continue
            # Walk from i to the root of its current subtree, compressing.
            r = i
            while ancestor[r] != -1 and ancestor[r] != j:
                nxt = ancestor[r]
                ancestor[r] = j
                r = nxt
            if ancestor[r] == -1:
                ancestor[r] = j
                parent[r] = j
    return parent


@dataclass
class EliminationForest:
    """Elimination tree/forest with children adjacency and convenience
    queries (used by mapping and reporting code)."""

    parent: np.ndarray
    children: list[list[int]] = field(init=False)
    roots: list[int] = field(init=False)

    def __post_init__(self) -> None:
        n = self.parent.size
        self.children = [[] for _ in range(n)]
        self.roots = []
        for j in range(n):
            p = int(self.parent[j])
            if p < 0:
                self.roots.append(j)
            else:
                self.children[p].append(j)

    @property
    def n(self) -> int:
        return self.parent.size

    def subtree_sizes(self) -> np.ndarray:
        """Number of nodes in the subtree rooted at each node (iterative,
        requires no postorder assumption)."""
        size = np.ones(self.n, dtype=np.int64)
        order = self.topological_order()
        # Reversed preorder visits every child before its parent.
        for j in order[::-1]:
            p = int(self.parent[j])
            if p >= 0:
                size[p] += size[j]
        return size

    def topological_order(self) -> list[int]:
        """Parents-before-children order (preorder DFS from the roots)."""
        out: list[int] = []
        stack = list(reversed(self.roots))
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(reversed(self.children[u]))
        return out

    def depth(self) -> np.ndarray:
        """Distance from the root for every node."""
        d = np.zeros(self.n, dtype=np.int64)
        for u in self.topological_order():
            p = int(self.parent[u])
            d[u] = 0 if p < 0 else d[p] + 1
        return d
