"""Symbolic Cholesky: the nonzero pattern of L.

Uses the multifrontal recurrence on a postordered matrix:

    struct(L[:, j]) = {j} ∪ below-diag(A[:, j]) ∪ (⋃_{c : parent(c)=j} struct(L[:, c]) \\ {c})

which is also exactly the row structure of each frontal matrix — so the
numeric phase reuses these arrays as front indices.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.symbolic.postorder import children_lists, is_postordered
from repro.util.errors import ShapeError


def column_patterns(
    lower: CSCMatrix, parent: np.ndarray
) -> list[np.ndarray]:
    """Per-column row pattern of L (including the diagonal), sorted.

    Requires a postordered input (``parent[j] > j`` for non-roots); raises
    otherwise. Returns ``patterns[j]`` = sorted int64 array starting at j.
    """
    n = lower.shape[0]
    if parent.size != n:
        raise ShapeError("parent array length must equal matrix dimension")
    if not is_postordered(parent):
        raise ShapeError("column_patterns requires a postordered matrix")
    ch = children_lists(parent)
    patterns: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for j in range(n):
        rows_a, _ = lower.col(j)
        pieces = [rows_a[rows_a >= j]]
        if not pieces[0].size or pieces[0][0] != j:
            pieces.insert(0, np.array([j], dtype=np.int64))
        for c in ch[j]:
            pc = patterns[c]
            pieces.append(pc[pc > j])
        merged = np.unique(np.concatenate(pieces))
        patterns[j] = merged
    return patterns


def symbolic_cholesky(
    lower: CSCMatrix, parent: np.ndarray
) -> tuple[list[np.ndarray], np.ndarray, int]:
    """Full symbolic factorization.

    Returns ``(patterns, col_counts, nnz_L)`` where ``col_counts[j]`` =
    ``len(patterns[j])`` (diagonal included) and ``nnz_L`` is their sum.
    """
    patterns = column_patterns(lower, parent)
    col_counts = np.asarray([p.size for p in patterns], dtype=np.int64)
    return patterns, col_counts, int(col_counts.sum())


def pattern_to_csc(patterns: list[np.ndarray], n: int) -> CSCMatrix:
    """Materialize the symbolic pattern as a CSC matrix with unit values
    (testing/diagnostics)."""
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([p.size for p in patterns])
    indices = (
        np.concatenate(patterns) if patterns else np.empty(0, dtype=np.int64)
    )
    return CSCMatrix(
        (n, n), indptr, indices, np.ones(indices.size), _skip_check=True
    )
