"""Assembly-tree parallelism statistics.

Quantifies how much tree-level concurrency an ordering exposes — the
quantity the subtree-to-subcube mapping feeds on:

* **critical path**: flops along the heaviest root-to-leaf chain (a lower
  bound on any tree-parallel schedule);
* **average concurrency**: total work / critical path (how many ranks the
  tree can keep busy, before front-level parallelism);
* per-depth work profile (the "fat top" of ND trees vs the long chains of
  band orderings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.symbolic.analyze import SymbolicFactor


@dataclass(frozen=True)
class TreeStats:
    """Parallelism profile of one analyzed matrix."""

    total_flops: int
    critical_path_flops: int
    #: total / critical path — the tree-level average parallelism
    avg_concurrency: float
    #: number of assembly-tree leaves (independent starting fronts)
    n_leaves: int
    #: tree height in supernodes
    height: int
    #: work per depth level, root = level 0
    work_by_depth: tuple[float, ...]


def tree_stats(sym: SymbolicFactor) -> TreeStats:
    """Compute the parallelism profile of *sym*'s assembly tree."""
    nsn = sym.n_supernodes
    own = np.asarray([sym.supernode_flops(s) for s in range(nsn)], dtype=float)
    parent = sym.sn_parent

    # Critical path: heaviest path from any leaf to its root.
    cp = own.copy()
    for s in range(nsn):  # ascending: children before parents
        best_child = 0.0
        for c in sym.sn_children[s]:
            best_child = max(best_child, cp[c])
        cp[s] = own[s] + best_child
    critical = float(cp[sym.roots()].max(initial=0.0)) if nsn else 0.0

    depth = np.zeros(nsn, dtype=np.int64)
    for s in range(nsn - 1, -1, -1):  # descending: parents before children
        p = int(parent[s])
        depth[s] = 0 if p < 0 else depth[p] + 1
    height = int(depth.max(initial=-1)) + 1
    work_by_depth = np.zeros(height)
    for s in range(nsn):
        work_by_depth[depth[s]] += own[s]

    total = float(own.sum())
    n_leaves = sum(1 for s in range(nsn) if not sym.sn_children[s])
    return TreeStats(
        total_flops=int(total),
        critical_path_flops=int(critical),
        avg_concurrency=total / critical if critical > 0 else 1.0,
        n_leaves=n_leaves,
        height=height,
        work_by_depth=tuple(work_by_depth),
    )


def max_useful_ranks(sym: SymbolicFactor, efficiency_floor: float = 0.5) -> int:
    """Back-of-envelope rank bound: the largest p with
    ``concurrency / p >= efficiency_floor``, ignoring front-level
    parallelism (so a conservative tree-only estimate)."""
    stats = tree_stats(sym)
    return max(int(stats.avg_concurrency / efficiency_floor), 1)
