"""The analyze phase: from (matrix, fill-ordering) to a complete
:class:`SymbolicFactor`.

This is the object every numeric engine in the library consumes — the
sequential multifrontal engine, the simulated-parallel engine, and the
baseline solvers — so they all factor the *same* permuted problem and their
results are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.permute import permute_symmetric_lower
from repro.symbolic.etree import etree
from repro.symbolic.postorder import postorder, relabel_parent, is_postordered
from repro.symbolic.symbolic_chol import symbolic_cholesky
from repro.symbolic.colcounts import (
    factor_flops_from_counts,
    solve_flops_from_counts,
)
from repro.symbolic.supernodes import (
    SupernodePartition,
    fundamental_supernodes,
    amalgamate,
    supernode_parents,
    supernode_rows,
)
from repro.util.errors import ShapeError
from repro.util.validation import check_permutation, runtime_checks_enabled


@dataclass(frozen=True)
class AnalyzeOptions:
    """Knobs of the analyze phase."""

    #: perform relaxed supernode amalgamation
    amalgamate: bool = True
    #: maximum fraction of explicit zeros a merge may introduce
    max_extra_fill_ratio: float = 0.25
    #: a supernode this narrow is always a merge candidate
    small_width: int = 8


@dataclass
class SymbolicFactor:
    """Everything the numeric phases need, computed once per pattern.

    All index arrays live in the *final* permuted space (fill ordering
    composed with postorder). ``perm`` maps back: ``perm[k]`` is the
    original index eliminated at step k.
    """

    n: int
    #: total permutation (fill ordering ∘ postorder), original index per step
    perm: np.ndarray
    #: permuted lower triangle of A (the matrix the numeric phase factors)
    permuted_lower: CSCMatrix
    #: column elimination tree (postordered: parent > child)
    parent: np.ndarray
    #: supernode partition of the columns
    partition: SupernodePartition
    #: per-supernode sorted row structure; first `width` entries = own columns
    sn_rows: list[np.ndarray]
    #: assembly-tree parent per supernode (-1 = root)
    sn_parent: np.ndarray
    #: per-column factor counts (diagonal included)
    col_counts: np.ndarray
    #: structural nnz(L) (no amalgamation zeros)
    nnz_factor: int
    #: stored entries in supernodal blocks (>= nnz_factor after amalgamation)
    nnz_stored: int
    #: factor operation count (see colcounts module for the convention)
    factor_flops: int
    #: one forward+backward solve operation count
    solve_flops: int
    sn_children: list[list[int]] = field(init=False)

    def __post_init__(self) -> None:
        nsn = self.partition.n_supernodes
        self.sn_children = [[] for _ in range(nsn)]
        for s in range(nsn):
            p = int(self.sn_parent[s])
            if p >= 0:
                self.sn_children[p].append(s)

    @property
    def n_supernodes(self) -> int:
        return self.partition.n_supernodes

    def supernode_width(self, s: int) -> int:
        return self.partition.width(s)

    def front_size(self, s: int) -> int:
        """Order of the frontal matrix of supernode s."""
        return int(self.sn_rows[s].size)

    def update_size(self, s: int) -> int:
        """Order of the Schur-complement (update) matrix of supernode s."""
        return self.front_size(s) - self.supernode_width(s)

    def supernode_flops(self, s: int) -> int:
        """Partial-factorization flops of front s (dense convention:
        eliminating k pivots from an m×m symmetric front)."""
        m = self.front_size(s)
        k = self.supernode_width(s)
        return dense_partial_factor_flops(m, k)

    def roots(self) -> list[int]:
        return [s for s in range(self.n_supernodes) if self.sn_parent[s] < 0]


def dense_partial_factor_flops(m: int, k: int) -> int:
    """Flops to eliminate k pivots from a symmetric m×m front:
    Σ_{i=0}^{k-1} [ (m-i-1) divisions + (m-i-1)(m-i) madd-pairs ],
    counting a madd pair as 2 flops."""
    total = 0
    for i in range(k):
        r = m - i - 1
        total += r + r * (r + 1)
    return total


def analyze(
    lower: CSCMatrix,
    perm: np.ndarray,
    options: AnalyzeOptions | None = None,
) -> SymbolicFactor:
    """Run the full analyze phase.

    Parameters
    ----------
    lower
        Lower triangle (diagonal included) of the symmetric matrix.
    perm
        Fill-reducing permutation from :mod:`repro.ordering`
        (``perm[k]`` = original index eliminated k-th).
    """
    opts = options or AnalyzeOptions()
    n = lower.shape[0]
    if lower.shape[0] != lower.shape[1]:
        raise ShapeError("analyze requires a square lower triangle")
    p = check_permutation(perm, n)

    # 1) permute by the fill ordering, 2) postorder the etree, 3) compose.
    a1 = permute_symmetric_lower(lower, p)
    parent1 = etree(a1)
    post = postorder(parent1)
    total_perm = p[post]
    a2 = permute_symmetric_lower(lower, total_perm)
    parent = relabel_parent(parent1, post)
    assert is_postordered(parent)

    patterns, col_counts, nnz_factor = symbolic_cholesky(a2, parent)

    part = fundamental_supernodes(parent, col_counts)
    if opts.amalgamate:
        part = amalgamate(
            part,
            parent,
            patterns,
            max_extra_fill_ratio=opts.max_extra_fill_ratio,
            small_width=opts.small_width,
        )
    sn_rows = supernode_rows(part, patterns)
    sn_parent = supernode_parents(part, parent)

    # Assembly-tree soundness: each child's update rows must be contained in
    # its parent's front rows (the invariant parallel extend-add relies on).
    for s in range(part.n_supernodes):
        pa = int(sn_parent[s])
        if pa < 0:
            continue
        width = part.width(s)
        update = sn_rows[s][width:]
        missing = np.setdiff1d(update, sn_rows[pa], assume_unique=False)
        # Rows may skip a parent and belong to a further ancestor only if
        # they are beyond the parent's columns; those are still in the
        # parent's front rows by the etree containment property, so any
        # miss is a bug.
        if missing.size:
            raise AssertionError(
                f"assembly tree violation: supernode {s} update rows "
                f"{missing[:5]} missing from parent {pa}"
            )

    from repro.symbolic.supernodes import trapezoid_entries

    nnz_stored = sum(
        trapezoid_entries(r.size, part.width(s)) for s, r in enumerate(sn_rows)
    )
    sym = SymbolicFactor(
        n=n,
        perm=total_perm,
        permuted_lower=a2,
        parent=parent,
        partition=part,
        sn_rows=sn_rows,
        sn_parent=sn_parent,
        col_counts=col_counts,
        nnz_factor=nnz_factor,
        nnz_stored=int(nnz_stored),
        factor_flops=factor_flops_from_counts(col_counts),
        solve_flops=solve_flops_from_counts(col_counts),
    )
    if runtime_checks_enabled():
        from repro.check.sanitize import check_symbolic

        check_symbolic(sym)
    return sym
