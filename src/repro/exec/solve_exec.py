"""Level-set-scheduled parallel triangular solves (threads backend).

The forward and backward substitutions run the *same* per-supernode
kernels as the sequential sweeps (:func:`repro.mf.solve_phase.forward_front`
/ :func:`~repro.mf.solve_phase.backward_front`), scheduled over the
elimination-tree task graphs of :mod:`repro.exec.tasks` on a
:class:`~repro.exec.pool.TaskPool`.

Bitwise-oracle contract
-----------------------
``solve_threads`` / ``solve_many_threads`` match
:func:`repro.mf.solve_phase.solve` / ``solve_many`` bit for bit, for any
worker count:

* **forward** — the sequential sweep computes supernode *s*'s update
  panel and subtracts it from ``y`` rows owned by *ancestor* supernodes.
  Here the panel is computed by the identical ``forward_front`` call and
  *published*; each ancestor applies its incoming row-runs at the start
  of its own task, in ascending source order — the exact per-element
  subtraction sequence of the sequential sweep (contributions from
  distinct sources hit disjoint slices of a run owner's rows in source
  order either way). Every ``y`` row is written only by the task of the
  supernode that owns it, so there are no cross-thread write races;
* **backward** — a supernode reads ancestor rows (final once the parent's
  task completed, by induction) and writes only its own pivot rows. No
  synchronization on ``y`` at all, just the parent-before-child graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.exec.pool import TaskPool, default_workers
from repro.exec.tasks import (
    backward_solve_task_graph,
    forward_contributions,
    forward_solve_task_graph,
)
from repro.mf.numeric import NumericFactor
from repro.mf.solve_phase import backward_front, forward_front
from repro.obs.spans import span
from repro.sparse.permute import permute_vector, unpermute_vector
from repro.util.errors import ShapeError
from repro.util.validation import VALUE_DTYPE, as_float_array

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["solve_threads", "solve_many_threads"]


def solve_threads(
    factor: NumericFactor,
    b: np.ndarray,
    workers: int | None = None,
    registry: MetricsRegistry | None = None,
    pool: TaskPool | None = None,
) -> np.ndarray:
    """Solve ``A x = b`` for one right-hand side on worker threads.

    Bitwise identical to :func:`repro.mf.solve_phase.solve`. *pool*
    substitutes a pre-configured :class:`TaskPool` (tracing, schedule
    fuzzing); it overrides *workers*.
    """
    b = as_float_array(b, "b")
    n = factor.n
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},); got {b.shape}")
    return _solve_permuted(factor, b, workers, registry, pool)


def solve_many_threads(
    factor: NumericFactor,
    b: np.ndarray,
    workers: int | None = None,
    registry: MetricsRegistry | None = None,
    pool: TaskPool | None = None,
) -> np.ndarray:
    """Blocked multi-RHS solve on worker threads.

    Mirrors the dispatch of :func:`repro.mf.solve_phase.solve_many`
    exactly (1-D → vector path, one column → single-RHS path, else the
    panel path), so every column's bits match the sequential solve of
    that column.
    """
    b = as_float_array(b, "b")
    if b.ndim == 1:
        return solve_threads(factor, b, workers, registry, pool)
    n = factor.n
    if b.ndim != 2 or b.shape[0] != n:
        raise ShapeError(f"b must have shape ({n},) or ({n}, k); got {b.shape}")
    if b.shape[1] == 1:
        return solve_threads(factor, b[:, 0], workers, registry, pool)[:, None]
    return _solve_permuted(factor, b, workers, registry, pool)


def _solve_permuted(
    factor: NumericFactor,
    b: np.ndarray,
    workers: int | None,
    registry: MetricsRegistry | None,
    pool: TaskPool | None = None,
) -> np.ndarray:
    """Permute → threaded forward → scale → threaded backward → unpermute."""
    if pool is not None:
        workers = pool.workers
    elif workers is None:
        workers = default_workers()
    sym = factor.sym
    rhs = 1 if b.ndim == 1 else int(b.shape[1])
    if pool is None:
        pool = TaskPool(workers, name="solve")
    with span(
        "exec.solve",
        n=factor.n,
        rhs=rhs,
        method=factor.method,
        workers=workers,
        precision=factor.precision,
    ):
        # Same dtype discipline as the sequential solve phase: sweep in
        # the factor's working dtype, widen the result back to fp64.
        y = permute_vector(b, sym.perm).astype(factor.dtype, copy=False)
        _forward_threads(factor, y, pool, registry)
        if factor.method == "ldlt":
            if y.ndim == 1:
                y /= factor.diag
            else:
                y /= factor.diag[:, None]
        _backward_threads(factor, y, pool, registry)
        return unpermute_vector(y.astype(VALUE_DTYPE, copy=False), sym.perm)


def _forward_threads(
    factor: NumericFactor,
    y: np.ndarray,
    pool: TaskPool,
    registry: MetricsRegistry | None,
) -> None:
    """Task-parallel forward substitution ``y <- L^{-1} y`` in place."""
    sym = factor.sym
    plan = forward_contributions(sym)
    tr = pool.trace
    #: published update panels, consumed by ancestor-owner tasks
    upd_store: list[np.ndarray | None] = [None] * sym.n_supernodes

    def run_task(s: int) -> None:
        # Apply incoming descendant contributions to this supernode's own
        # rows first, ascending by source — the sequential subtraction
        # order for these elements.
        for src, lo, hi in plan.incoming[s]:
            if tr is not None:
                tr.add("slot_consume", task=s, slot=f"fwd:{src}", lo=lo, hi=hi)
            u = upd_store[src]
            srows = sym.sn_rows[src]
            wsrc = sym.supernode_width(src)
            y[srows[wsrc + lo: wsrc + hi]] -= u[lo:hi]
        upd_store[s] = forward_front(factor, s, y)
        if plan.outgoing[s] and tr is not None:
            tr.add("slot_write", task=s, slot=f"fwd:{s}")

    pool.run(forward_solve_task_graph(sym), run_task, registry=registry)


def _backward_threads(
    factor: NumericFactor,
    y: np.ndarray,
    pool: TaskPool,
    registry: MetricsRegistry | None,
) -> None:
    """Task-parallel backward substitution ``y <- L^{-T} y`` in place."""

    def run_task(s: int) -> None:
        backward_front(factor, s, y)

    pool.run(backward_solve_task_graph(factor.sym), run_task, registry=registry)
