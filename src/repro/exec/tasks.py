"""Static task graphs over the supernodal elimination tree.

The shared-memory backend executes the *same* task graph the simulated
distributed driver walks: one task per supernode, ordered by the assembly
tree. Three phase-specific graphs share one representation:

* **factor** and **forward solve** — child-before-parent (a supernode's
  front can be assembled, or its pivot rows solved, only once every child
  subtree finished);
* **backward solve** — parent-before-child (a supernode reads its
  ancestors' final solution segments, so the tree is walked root-down).

Dependencies are *tree edges only*. That is sufficient for the forward
solve because a supernode's pivot rows are updated exclusively by its
descendants, and child-before-parent ordering makes "all children done"
imply "all descendants done" by induction.

:func:`forward_contributions` precomputes the deterministic update
routing of the forward solve: each supernode's off-diagonal update panel
is split into row runs by the *owning ancestor supernode*, and each
owner applies its incoming runs in ascending source order — the exact
per-element subtraction sequence of the sequential sweep (see
:mod:`repro.exec.solve_exec`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.symbolic.analyze import SymbolicFactor
from repro.util.errors import ExecBackendError

__all__ = [
    "TaskGraph",
    "factor_task_graph",
    "forward_solve_task_graph",
    "backward_solve_task_graph",
    "forward_contributions",
    "incoming_contributions",
]


@dataclass
class TaskGraph:
    """Dependency DAG of one execution phase (one task per supernode).

    ``n_deps[t]`` prerequisites must complete before task *t* is ready;
    ``dependents[t]`` lists the tasks a completion of *t* may unblock.
    ``priority[t]`` orders the ready queue — higher runs first.
    """

    n_tasks: int
    dependents: list[list[int]]
    n_deps: np.ndarray
    priority: np.ndarray
    #: trace/label prefix, e.g. ``"factor"``
    label: str = "task"

    def __post_init__(self) -> None:
        if len(self.dependents) != self.n_tasks or self.n_deps.size != self.n_tasks:
            raise ExecBackendError(
                f"task graph arrays disagree with n_tasks={self.n_tasks}"
            )

    def roots(self) -> list[int]:
        """Initially ready tasks (no prerequisites)."""
        return [t for t in range(self.n_tasks) if self.n_deps[t] == 0]


def _default_priority(sym: SymbolicFactor) -> np.ndarray:
    """Subtree factorization work: schedule heavy subtrees first so the
    critical path starts draining immediately. Delegates to
    :func:`repro.parallel.plan.exec_priorities` — the same numbers that
    drive the distributed mapping's proportional rank splits (imported
    lazily; the plan layer does not depend on :mod:`repro.exec`)."""
    from repro.parallel.plan import exec_priorities

    return exec_priorities(sym)


def factor_task_graph(
    sym: SymbolicFactor, priority: np.ndarray | None = None
) -> TaskGraph:
    """Child-before-parent graph of the numeric factorization."""
    return _tree_up_graph(sym, priority, label="factor")


def forward_solve_task_graph(
    sym: SymbolicFactor, priority: np.ndarray | None = None
) -> TaskGraph:
    """Child-before-parent graph of the forward substitution."""
    return _tree_up_graph(sym, priority, label="fwd")


def _tree_up_graph(
    sym: SymbolicFactor, priority: np.ndarray | None, label: str
) -> TaskGraph:
    nsn = sym.n_supernodes
    dependents: list[list[int]] = [[] for _ in range(nsn)]
    n_deps = np.zeros(nsn, dtype=np.int64)
    for s in range(nsn):
        p = int(sym.sn_parent[s])
        if p >= 0:
            dependents[s].append(p)
            n_deps[p] += 1
    if priority is None:
        priority = _default_priority(sym)
    return TaskGraph(
        n_tasks=nsn,
        dependents=dependents,
        n_deps=n_deps,
        priority=np.asarray(priority, dtype=float),
        label=label,
    )


def backward_solve_task_graph(
    sym: SymbolicFactor, priority: np.ndarray | None = None
) -> TaskGraph:
    """Parent-before-child graph of the backward substitution.

    Roots become ready immediately; a supernode runs once its parent has
    written final values into the parent's pivot rows — by induction all
    ancestor rows the supernode reads are final.
    """
    nsn = sym.n_supernodes
    dependents: list[list[int]] = [[] for _ in range(nsn)]
    n_deps = np.zeros(nsn, dtype=np.int64)
    for s in range(nsn):
        p = int(sym.sn_parent[s])
        if p >= 0:
            dependents[p].append(s)
            n_deps[s] += 1
    if priority is None:
        # Big subtrees first still: a completed parent with a heavy child
        # subtree unblocks the most downstream work.
        priority = _default_priority(sym)
    return TaskGraph(
        n_tasks=nsn,
        dependents=dependents,
        n_deps=n_deps,
        priority=np.asarray(priority, dtype=float),
        label="bwd",
    )


@dataclass(frozen=True)
class _Run:
    """One contiguous run of a source supernode's update rows owned by a
    single target supernode: update-panel rows ``lo:hi``."""

    target: int
    lo: int
    hi: int


@dataclass
class ContributionPlan:
    """Deterministic routing of forward-solve updates.

    ``outgoing[s]`` — ascending-target runs of supernode *s*'s update
    panel; ``incoming[t]`` — the (source, lo, hi) runs targeting *t*,
    sorted by ascending source so the per-element subtraction order
    matches the sequential sweep exactly.
    """

    outgoing: list[list[_Run]] = field(default_factory=list)
    incoming: list[list[tuple[int, int, int]]] = field(default_factory=list)


def forward_contributions(sym: SymbolicFactor) -> ContributionPlan:
    """Split every supernode's forward-solve update rows by owning
    supernode (rows are ascending, so owners form contiguous runs)."""
    nsn = sym.n_supernodes
    sn_start = sym.partition.sn_start
    plan = ContributionPlan(
        outgoing=[[] for _ in range(nsn)],
        incoming=[[] for _ in range(nsn)],
    )
    for s in range(nsn):
        w = sym.supernode_width(s)
        upd_rows = sym.sn_rows[s][w:]
        if upd_rows.size == 0:
            continue
        owners = np.searchsorted(sn_start, upd_rows, side="right") - 1
        lo = 0
        mu = upd_rows.size
        while lo < mu:
            hi = lo + 1
            while hi < mu and owners[hi] == owners[lo]:
                hi += 1
            plan.outgoing[s].append(_Run(target=int(owners[lo]), lo=lo, hi=hi))
            lo = hi
    # Sources are visited ascending, so each incoming list is already in
    # ascending-source order — the order the sequential sweep applies them.
    for s in range(nsn):
        for run in plan.outgoing[s]:
            plan.incoming[run.target].append((s, run.lo, run.hi))
    return plan


def incoming_contributions(sym: SymbolicFactor) -> list[list[tuple[int, int, int]]]:
    """Just the incoming half of :func:`forward_contributions`."""
    return forward_contributions(sym).incoming
