"""Worker crew for the serving layer's fleet drain.

:class:`FleetCrew` runs N worker threads against a *scheduler callback
protocol* instead of a static task graph (contrast :class:`~repro.exec
.pool.TaskPool`, which executes dependency-counted graphs): the caller
owns the queue, the admission bookkeeping, and the results; the crew owns
the threads and the condition-variable choreography. This split keeps all
shared-memory concurrency inside :mod:`repro.exec` (lint rule RP008)
while the scheduling *policy* — EDF ordering, per-fingerprint in-flight
exclusion, retry parking — stays in :mod:`repro.service`, where it is
plain synchronous code executed under the crew's lock.

Protocol (one drain = one :meth:`FleetCrew.serve` call):

* ``poll(worker_id)`` — called **holding the crew's condition lock**;
  returns a :class:`FleetDirective`: ``RUN`` with a work item, ``WAIT``
  (optionally bounded by ``timeout`` seconds, e.g. until a parked retry
  becomes due), or ``STOP`` when no work remains and none is in flight.
* ``execute(worker_id, item)`` — called **outside the lock**; the
  concurrent part. Its return value is handed to ``complete``.
* ``complete(worker_id, item, outcome)`` — called holding the lock
  again; record results, release in-flight claims, requeue retries. The
  crew notifies all waiters afterwards, so state changes made here wake
  every ``WAIT``-ing worker.

Error propagation matches the task pool: the first exception raised by
``execute`` or ``complete`` stops the crew (workers exit at their next
poll; outcomes landing after the stop are discarded) and is re-raised
verbatim from :meth:`serve` on the calling thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar, cast

from repro.exec.pool import make_condition
from repro.util.errors import ExecBackendError

__all__ = ["RUN", "WAIT", "STOP", "FleetDirective", "FleetCrew"]

T = TypeVar("T")
R = TypeVar("R")

#: directive kinds returned by the scheduler's ``poll`` callback
RUN = "run"
WAIT = "wait"
STOP = "stop"


@dataclass(frozen=True)
class FleetDirective(Generic[T]):
    """One answer from the scheduler's ``poll`` callback."""

    kind: str
    #: the work item (``RUN`` only)
    item: T | None = None
    #: max seconds to wait before re-polling (``WAIT`` only; None = until
    #: another worker's ``complete`` changes the shared state)
    timeout: float | None = None


class _CrewState(Generic[T]):
    """Shared mutable state of one serve() call (guarded by ``cond``)."""

    def __init__(self) -> None:
        self.cond = make_condition()
        self.stop = False
        self.error: BaseException | None = None


class FleetCrew(Generic[T, R]):
    """N serving threads draining a caller-owned scheduler.

    A crew is reusable (one :meth:`serve` after another) but a serve in
    progress cannot overlap another on the same crew.
    """

    def __init__(self, workers: int, name: str = "fleet"):
        if not isinstance(workers, int) or workers < 1:
            raise ExecBackendError(
                f"fleet worker count must be a positive integer; got {workers!r}"
            )
        self.workers = workers
        self.name = name
        self._serving = False

    def serve(
        self,
        poll: Callable[[int], FleetDirective[T]],
        execute: Callable[[int, T], R],
        complete: Callable[[int, T, R], None],
    ) -> None:
        """Run workers against the protocol until every worker STOPs.

        Re-raises the first ``execute``/``complete`` exception verbatim
        after all workers have exited.
        """
        if self._serving:
            raise ExecBackendError(f"{self.name} crew is already serving")
        self._serving = True
        state: _CrewState[T] = _CrewState()
        try:
            threads = [
                threading.Thread(
                    target=self._worker,
                    args=(wid, state, poll, execute, complete),
                    name=f"{self.name}-worker-{wid}",
                    daemon=True,
                )
                for wid in range(self.workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            self._serving = False
        if state.error is not None:
            raise state.error

    def _worker(
        self,
        wid: int,
        state: _CrewState[T],
        poll: Callable[[int], FleetDirective[T]],
        execute: Callable[[int, T], R],
        complete: Callable[[int, T, R], None],
    ) -> None:
        while True:
            with state.cond:
                while True:
                    if state.stop:
                        return
                    d = poll(wid)
                    if d.kind == STOP:
                        return
                    if d.kind == RUN:
                        item = cast("T", d.item)
                        break
                    state.cond.wait(timeout=d.timeout)
            try:
                outcome = execute(wid, item)
            # Capture half of cross-thread propagation: serve() re-raises
            # state.error verbatim on the calling thread.
            except BaseException as exc:  # repro: noqa[RP001]
                with state.cond:
                    if state.error is None:
                        state.error = exc
                    state.stop = True
                    state.cond.notify_all()
                return
            with state.cond:
                if state.stop:
                    # Another worker failed while we executed; the drain
                    # is aborting — discard the outcome.
                    return
                try:
                    complete(wid, item, outcome)
                except BaseException as exc:  # repro: noqa[RP001]
                    if state.error is None:
                        state.error = exc
                    state.stop = True
                state.cond.notify_all()
