"""repro.exec: the real shared-memory execution backend.

Everything else in the library models parallelism (the simulated
distributed engine) or runs sequentially; this package *executes* the
same elimination-tree task graphs on actual worker threads, with the
sequential path as a bitwise oracle: for any worker count, factors and
solutions are bit-identical to the sequential driver.

Layout
------
``tasks``
    Static task graphs (factor / forward / backward) plus the
    deterministic forward-solve contribution routing.
``pool``
    The dependency-counting worker pool — the only module in the library
    allowed to use raw thread primitives (lint rules RP008/RP010); other
    exec modules obtain mutexes through :func:`make_lock`.
``trace``
    The access/event trace (:class:`ExecTrace`) the pool and drivers
    record for :mod:`repro.check.racecheck` when tracing is on
    (``TaskPool(trace=True)`` or ``REPRO_CHECK=1``).
``factor_exec``
    :func:`multifrontal_factor_threads`, the threaded numeric phase.
``solve_exec``
    :func:`solve_threads` / :func:`solve_many_threads`, level-set
    scheduled triangular solves.

Most callers should go through :class:`repro.core.solver.SparseSolver`
with ``backend="threads"`` rather than these functions directly.
"""

from repro.exec.factor_exec import multifrontal_factor_threads
from repro.exec.fleet import FleetCrew, FleetDirective
from repro.exec.pool import (
    MAX_DEFAULT_WORKERS,
    PoolStats,
    ScheduleFuzzer,
    TaskPool,
    default_workers,
    make_condition,
    make_lock,
)
from repro.exec.solve_exec import solve_many_threads, solve_threads
from repro.exec.trace import EXEC_EVENT_KINDS, ExecEvent, ExecTrace
from repro.exec.tasks import (
    ContributionPlan,
    TaskGraph,
    backward_solve_task_graph,
    factor_task_graph,
    forward_contributions,
    forward_solve_task_graph,
)

__all__ = [
    "multifrontal_factor_threads",
    "solve_threads",
    "solve_many_threads",
    "TaskPool",
    "PoolStats",
    "ScheduleFuzzer",
    "default_workers",
    "make_condition",
    "make_lock",
    "MAX_DEFAULT_WORKERS",
    "FleetCrew",
    "FleetDirective",
    "ExecTrace",
    "ExecEvent",
    "EXEC_EVENT_KINDS",
    "TaskGraph",
    "ContributionPlan",
    "factor_task_graph",
    "forward_solve_task_graph",
    "backward_solve_task_graph",
    "forward_contributions",
]
