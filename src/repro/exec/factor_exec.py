"""Multi-threaded multifrontal factorization (the real-hardware backend).

Walks the same supernodal assembly-tree task graph the sequential driver
and the simulated distributed engine use, but executes fronts with a
:class:`~repro.exec.pool.TaskPool` of worker threads. The heavy per-front
work — dense partial Cholesky/LDLᵀ, TRSM panels, SYRK trailing updates —
happens inside numpy kernels that release the GIL, so independent
subtrees factor concurrently on real cores.

Bitwise-oracle contract
-----------------------
The returned :class:`~repro.mf.numeric.NumericFactor` is **bitwise
identical** to :func:`repro.mf.numeric.multifrontal_factor` for any
worker count. Three rules buy this:

* every front is assembled and factored by
  :func:`repro.mf.numeric.factor_front` — the *same* code the sequential
  driver runs, so the per-front floating-point sequence is identical;
* extend-add is **postorder-partitioned**, not locked: a child task
  *publishes* its update matrix into a per-supernode slot, and only the
  parent's task consumes the slots — in ascending child order, the
  sequential order. No front is ever written by two threads;
* per-column LDLᵀ pivot perturbations are collected per supernode and
  merged in ascending supernode order afterwards, reproducing the
  sequential ``perturbed_columns`` tuple.

Schedule-dependent *telemetry* (``peak_stack_entries``, worker
timelines) is exempt from the contract; all numeric outputs (``blocks``,
``diag``, flop/entry counts) are covered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.exec.pool import PoolStats, TaskPool, default_workers, make_lock
from repro.exec.tasks import factor_task_graph
from repro.mf.accounting import FactorStats
from repro.mf.numeric import NumericFactor, factor_front
from repro.obs.profile import active_profile
from repro.obs.spans import span
from repro.util.errors import InvariantError, ShapeError
from repro.util.validation import work_dtype

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.symbolic.analyze import SymbolicFactor

__all__ = ["multifrontal_factor_threads"]


def multifrontal_factor_threads(
    sym: SymbolicFactor,
    method: str = "cholesky",
    pivot_perturbation: float | None = None,
    workers: int | None = None,
    registry: MetricsRegistry | None = None,
    precision: str = "fp64",
    pool: TaskPool | None = None,
) -> NumericFactor:
    """Numeric factorization of *sym* on a pool of worker threads.

    Accepts the same *method* / *pivot_perturbation* / *precision*
    contract as :func:`repro.mf.numeric.multifrontal_factor` and returns
    a bitwise identical factor (see the module docstring). *workers*
    defaults to :func:`repro.exec.pool.default_workers`; *registry*
    receives the pool's queue/latency telemetry when provided. *pool*
    substitutes a pre-configured :class:`TaskPool` (tracing, schedule
    fuzzing) for the default one; it overrides *workers*.
    """
    if method not in ("cholesky", "ldlt"):
        raise ShapeError(f"unknown factorization method {method!r}")
    if pivot_perturbation is not None and method != "ldlt":
        raise ShapeError("pivot_perturbation applies to method='ldlt' only")
    if pool is not None:
        workers = pool.workers
    elif workers is None:
        workers = default_workers()
    a = sym.permuted_lower
    perturb_abs = None
    if pivot_perturbation is not None:
        diag_scale = float(np.max(np.abs(a.diagonal()), initial=0.0))
        perturb_abs = pivot_perturbation * max(diag_scale, 1.0)

    wdtype = work_dtype(precision)
    nsn = sym.n_supernodes
    blocks: list[np.ndarray] = [None] * nsn  # type: ignore[list-item]
    diag = np.empty(sym.n, dtype=wdtype) if method == "ldlt" else None
    #: per-supernode update slots: written once by the owning task,
    #: consumed (and cleared) once by the parent's task
    updates: list[tuple[np.ndarray, np.ndarray] | None] = [None] * nsn
    per_flops = np.zeros(nsn, dtype=np.int64)
    per_perturbed: list[list[int]] = [[] for _ in range(nsn)]
    prof = active_profile()

    # Resident update-entry accounting (telemetry only — the value is
    # schedule-dependent, unlike everything numeric).
    acct_lock = make_lock()
    resident = {"entries": 0, "peak": 0}

    if pool is None:
        pool = TaskPool(workers, name="factor")
    tr = pool.trace

    def run_task(s: int) -> None:
        w = sym.supernode_width(s)
        c0 = int(sym.partition.sn_start[s])
        kids: list[tuple[np.ndarray, np.ndarray]] = []
        freed = 0
        for c in sym.sn_children[s]:
            u = updates[c]
            if u is None:
                raise InvariantError(
                    f"supernode {s}: child {c} finished without publishing "
                    "its update matrix"
                )
            if tr is not None:
                tr.add("slot_consume", task=s, slot=f"upd:{c}")
            updates[c] = None
            freed += u[0].size
            kids.append(u)
        block, d, update, fflops = factor_front(
            sym, s, method, perturb_abs, kids, per_perturbed[s], prof,
            dtype=wdtype,
        )
        blocks[s] = block
        if d is not None:
            diag[c0: c0 + w] = d
        updates[s] = update
        if update is not None and tr is not None:
            tr.add("slot_write", task=s, slot=f"upd:{s}")
        per_flops[s] = fflops
        grown = 0 if update is None else update[0].size
        with acct_lock:
            resident["entries"] += grown - freed
            if resident["entries"] > resident["peak"]:
                resident["peak"] = resident["entries"]

    graph = factor_task_graph(sym)
    with span(
        "exec.factor",
        method=method,
        n=sym.n,
        supernodes=nsn,
        workers=workers,
        precision=precision,
    ) as sp:
        pool_stats: PoolStats = pool.run(graph, run_task, registry=registry)
        sp.set(
            tasks=pool_stats.completed,
            queue_depth_peak=pool_stats.max_queue_depth,
        )

    leftover = [s for s in range(nsn) if updates[s] is not None]
    if leftover:
        raise InvariantError(
            f"unconsumed update matrices for supernodes {leftover[:5]}"
        )

    # Deterministic stats rollup in ascending supernode order — identical
    # flop/entry totals to the sequential driver.
    stats = FactorStats()
    for s in range(nsn):
        m = sym.front_size(s)
        w = sym.supernode_width(s)
        stats.observe_front(m, w, int(per_flops[s]))
        stats.factor_entries += m * w - w * (w - 1) // 2
    stats.peak_stack_entries = resident["peak"]

    perturbed: list[int] = []
    for s in range(nsn):
        perturbed.extend(per_perturbed[s])

    return NumericFactor(
        sym=sym,
        method=method,
        blocks=blocks,
        diag=diag,
        stats=stats,
        perturbed_columns=tuple(perturbed),
        exec_stats=pool_stats,
        precision=precision,
    )
