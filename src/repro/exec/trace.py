"""Access/event trace of the shared-memory execution backend.

When enabled — ``TaskPool(trace=True)``, an :class:`ExecTrace` passed in,
or globally via ``REPRO_CHECK=1`` — the pool and the threaded
factor/solve drivers record every synchronization-relevant event of a
run:

* ``graph_begin`` / ``graph_end`` / ``graph_abort`` — one pool run over
  one task graph (the forward/backward solve level-set boundaries are
  exactly these delimiters);
* ``task_start`` / ``task_end`` / ``task_error`` — task body execution,
  with the worker thread that ran it;
* ``dep_dec`` — one dependency-count decrement: completion of ``task``
  released one prerequisite of ``target``, leaving ``remaining``. These
  are the happens-before edges the schedule actually exercised;
* ``slot_write`` / ``slot_read`` / ``slot_consume`` — accesses to the
  shared contribution slots: a factor task *publishes* its update matrix
  (``slot_write`` on ``upd:s``) and the parent *consumes* it exactly
  once; a forward-solve task publishes its update panel (``fwd:s``) and
  each owning ancestor consumes its ``[lo:hi)`` row run.

:mod:`repro.check.racecheck` replays this log: it derives the partial
order from the ``dep_dec`` edges and flags any two conflicting slot
accesses that order does not separate, plus conservation and determinism
violations.

Thread-safety: events are appended from concurrent workers without a
lock. Under CPython, ``list.append`` and ``next(itertools.count())`` are
atomic with respect to the GIL, so the log is complete and every event
gets a unique ``seq``; the *list order* may differ from ``seq`` order,
which is why consumers sort by ``seq`` (:meth:`ExecTrace.sorted_events`).
The per-thread worker id rides a ``threading.local`` so slot accesses
emitted from inside task bodies land on the right worker lane.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import IO, Callable, Iterator

from repro.obs.profile import FrontProfile

__all__ = ["ExecEvent", "ExecTrace", "EXEC_EVENT_KINDS"]


class _WorkerLocal(threading.local):
    """Per-thread worker-lane binding (``-1`` = not a pool worker)."""

    worker: int = -1

#: every event kind an :class:`ExecTrace` may contain
EXEC_EVENT_KINDS = (
    "graph_begin",
    "graph_end",
    "graph_abort",
    "task_start",
    "task_end",
    "task_error",
    "dep_dec",
    "slot_write",
    "slot_read",
    "slot_consume",
)


@dataclass(frozen=True)
class ExecEvent:
    """One synchronization-relevant event of a pool run.

    Field use by kind:

    * ``graph_begin`` — ``label`` = graph label, ``target`` = task count;
    * ``graph_end`` / ``graph_abort`` — ``target`` = completed tasks;
    * ``task_start`` / ``task_end`` / ``task_error`` — ``task``,
      ``worker``;
    * ``dep_dec`` — ``task`` completed, released ``target``, which has
      ``remaining`` unmet prerequisites left;
    * ``slot_write`` / ``slot_read`` / ``slot_consume`` — ``slot`` names
      the shared location (``"upd:12"``, ``"fwd:3"``); ``lo``/``hi``
      bound the accessed row run (``-1`` = the whole slot).
    """

    seq: int
    kind: str
    #: wall-clock seconds (``FrontProfile.clock``) at record time
    time: float
    task: int = -1
    worker: int = -1
    target: int = -1
    remaining: int = -1
    lo: int = -1
    hi: int = -1
    slot: str = ""
    label: str = ""

    def to_json(self) -> str:
        d: dict[str, object] = {"seq": self.seq, "kind": self.kind, "time": self.time}
        for key in ("task", "worker", "target", "remaining", "lo", "hi"):
            v = getattr(self, key)
            if v != -1:
                d[key] = v
        if self.slot:
            d["slot"] = self.slot
        if self.label:
            d["label"] = self.label
        return json.dumps(d)

    @classmethod
    def from_json(cls, line: str) -> "ExecEvent":
        d = json.loads(line)
        return cls(
            seq=int(d["seq"]),
            kind=str(d["kind"]),
            time=float(d.get("time", 0.0)),
            task=int(d.get("task", -1)),
            worker=int(d.get("worker", -1)),
            target=int(d.get("target", -1)),
            remaining=int(d.get("remaining", -1)),
            lo=int(d.get("lo", -1)),
            hi=int(d.get("hi", -1)),
            slot=str(d.get("slot", "")),
            label=str(d.get("label", "")),
        )


@dataclass
class ExecTrace:
    """Append-only event log of one or more pool runs.

    One trace may span several graph runs (a solve records the forward
    and backward graphs back to back); each run is delimited by
    ``graph_begin`` … ``graph_end``/``graph_abort`` markers.
    """

    events: list[ExecEvent] = field(default_factory=list)
    clock: Callable[[], float] = FrontProfile.clock

    def __post_init__(self) -> None:
        self._seq = itertools.count(len(self.events))
        self._tls = _WorkerLocal()

    # -- recording ----------------------------------------------------------

    def set_worker(self, worker: int) -> None:
        """Bind the calling thread to a worker lane; subsequent events
        recorded from this thread default to it."""
        self._tls.worker = worker

    def add(
        self,
        kind: str,
        task: int = -1,
        worker: int | None = None,
        target: int = -1,
        remaining: int = -1,
        lo: int = -1,
        hi: int = -1,
        slot: str = "",
        label: str = "",
    ) -> None:
        """Record one event, stamping ``seq`` (atomic) and wall time."""
        if worker is None:
            worker = self._tls.worker
        self.events.append(
            ExecEvent(
                seq=next(self._seq),
                kind=kind,
                time=self.clock(),
                task=task,
                worker=worker,
                target=target,
                remaining=remaining,
                lo=lo,
                hi=hi,
                slot=slot,
                label=label,
            )
        )

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ExecEvent]:
        return iter(self.events)

    def sorted_events(self) -> list[ExecEvent]:
        """Events in ``seq`` order (concurrent appends may interleave)."""
        return sorted(self.events, key=lambda e: e.seq)

    # -- JSONL round trip ---------------------------------------------------

    def to_jsonl(self, fp: IO[str]) -> None:
        for e in self.sorted_events():
            fp.write(e.to_json())
            fp.write("\n")

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            self.to_jsonl(fp)

    @classmethod
    def from_events(cls, events: list[ExecEvent]) -> "ExecTrace":
        trace = cls(events=sorted(events, key=lambda e: e.seq))
        trace._seq = itertools.count(
            max((e.seq for e in trace.events), default=-1) + 1
        )
        return trace

    @classmethod
    def from_jsonl(cls, fp: IO[str]) -> "ExecTrace":
        return cls.from_events(
            [ExecEvent.from_json(line) for line in fp if line.strip()]
        )

    @classmethod
    def load(cls, path: str) -> "ExecTrace":
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_jsonl(fp)
