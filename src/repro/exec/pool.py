"""Dependency-counting worker pool: real shared-memory task execution.

This module is the **only** place in the library allowed to touch raw
thread primitives (lint rule RP008): every thread, lock, and condition
variable of the shared-memory backend lives here, so the rest of the
codebase stays single-threaded and bit-deterministic by construction.

Design
------
One :class:`TaskPool` run executes one :class:`~repro.exec.tasks.TaskGraph`:

* a shared **ready heap** ordered by task priority (heavy subtrees first,
  task id as the deterministic tiebreak), guarded by one condition
  variable;
* each worker loops pop → execute → decrement dependents, pushing newly
  ready tasks and waking peers. Task bodies run *outside* the lock —
  numpy releases the GIL inside its BLAS-3-sized kernels, which is where
  the real concurrency comes from;
* a task exception cancels the run: the ready heap is drained, every
  worker exits, and :meth:`TaskPool.run` re-raises the original exception
  (a non-positive pivot surfaces as :class:`NotPositiveDefiniteError`,
  exactly like the sequential path);
* an empty heap with no task in flight and work remaining means the graph
  has a cycle — the pool raises
  :class:`~repro.util.errors.ExecBackendError` instead of deadlocking;
* :meth:`TaskPool.cancel` (from a task or another thread) shuts the pool
  down: the current run drains and raises, later runs refuse to start.

Observability: when a span recorder is installed, every task's
``(worker, start, end)`` lands in ``recorder.exec_events`` (per-worker
rows in the Chrome trace); :meth:`PoolStats.publish` exports the queue
depth high-water mark, task count, and task-latency histogram into a
:class:`~repro.obs.metrics.MetricsRegistry`.

Verification hooks (the racecheck/schedfuzz layer):

* ``TaskPool(trace=True)`` — or any pool when ``REPRO_CHECK=1`` — records
  an :class:`~repro.exec.trace.ExecTrace` of every synchronization event
  (graph boundaries, task start/finish, dependency-count decrements, and
  the slot accesses the factor/solve drivers emit).
  :mod:`repro.check.racecheck` replays it through a happens-before
  engine; when a span recorder is also installed the events are copied
  into ``recorder.exec_trace_events`` for the Chrome timeline.
* ``TaskPool(fuzz=...)`` accepts a :class:`ScheduleFuzzer` (see
  :mod:`repro.check.schedfuzz`) that adversarially permutes the ready
  queue (``ready_key``), forces preemption points (``defer`` re-queues a
  popped task), and injects task delays — all deterministically from a
  seed, so failing schedules replay byte-for-byte.

Lock discipline (lint rule RP010): this module is the only place thread
primitives may be *constructed*; everything else obtains them through
:func:`make_lock`. All acquisition is ``with``-statement scoped — no bare
``acquire``/``release`` anywhere in the library.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from contextlib import AbstractContextManager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.exec.tasks import TaskGraph
from repro.exec.trace import ExecTrace
from repro.obs.profile import FrontProfile
from repro.obs.spans import ExecTaskEvent, current_recorder
from repro.util.errors import ExecBackendError
from repro.util.validation import runtime_checks_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TaskPool",
    "PoolStats",
    "ScheduleFuzzer",
    "default_workers",
    "make_condition",
    "make_lock",
]


def make_lock() -> AbstractContextManager[bool]:
    """The sanctioned mutex constructor for the execution backend.

    Task bodies that need a private mutex (e.g. the factor driver's
    telemetry accounting) obtain it here instead of touching
    ``threading`` directly, keeping every thread primitive construction
    in this one audited module (lint rule RP010). The returned lock is
    used in ``with`` statements only.
    """
    return threading.Lock()


def make_condition() -> threading.Condition:
    """The sanctioned condition-variable constructor (lint rule RP010).

    :class:`repro.exec.fleet.FleetCrew` coordinates its serving workers
    through a condition variable; like every other thread primitive it is
    *constructed* here so provenance stays auditable in one module. Usage
    is ``with``-scoped plus ``wait``/``notify_all`` inside the block.
    """
    return threading.Condition()


class ScheduleFuzzer(Protocol):
    """Adversarial schedule perturbation driven by the pool.

    Implementations must be deterministic functions of (seed, task) — the
    pool may call them from any worker; ``defer`` is always invoked while
    holding the run's condition lock, so bounded internal state is safe
    there. See :class:`repro.check.schedfuzz.FuzzPlan`.
    """

    def ready_key(self, task: int, key: float) -> float:
        """Heap key for a task entering the ready queue (lower pops
        first); *key* is the pool's natural priority key."""
        ...

    def requeue_key(self, task: int) -> float:
        """Heap key for a task re-queued by a forced preemption."""
        ...

    def defer(self, task: int) -> bool:
        """True to push the just-popped *task* back and pick another
        (called only when other ready tasks exist; must eventually
        return False for every task)."""
        ...

    def delay(self, task: int) -> float:
        """Seconds to sleep before running *task*'s body (0 = none)."""
        ...

#: cap on the automatic worker count (diminishing returns past this for
#: GIL-sharing Python task bookkeeping, however many cores the host has)
MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """Worker count used when the caller passes ``workers=None``."""
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


@dataclass
class PoolStats:
    """Outcome of one :meth:`TaskPool.run`."""

    workers: int
    n_tasks: int
    completed: int
    #: ready-heap high-water mark (parallel slack the schedule exposed)
    max_queue_depth: int
    #: wall seconds each worker spent inside task bodies (timed runs only)
    busy_seconds: list[float] = field(default_factory=list)
    #: per-task wall seconds (timed runs only)
    task_seconds: list[float] = field(default_factory=list)

    def publish(self, registry: MetricsRegistry, prefix: str = "exec") -> None:
        """Export pool telemetry into *registry*: worker/queue gauges, a
        task counter, and the task-latency histogram."""
        registry.gauge(f"{prefix}_workers").set(float(self.workers))
        registry.gauge(f"{prefix}_queue_depth_peak").set(float(self.max_queue_depth))
        registry.inc(f"{prefix}_tasks", self.completed)
        for dt in self.task_seconds:
            registry.observe(f"{prefix}_task_seconds", dt)


class _RunState:
    """Shared mutable state of one pool run (guarded by ``cond``)."""

    def __init__(self, graph: TaskGraph, fuzz: ScheduleFuzzer | None) -> None:
        self.graph = graph
        self.fuzz = fuzz
        self.cond = threading.Condition()
        self.n_deps_left = [int(d) for d in graph.n_deps]
        self.ready: list[tuple[float, int]] = [
            (self.heap_key(t), t) for t in graph.roots()
        ]
        heapq.heapify(self.ready)
        self.active = 0
        self.completed = 0
        self.stop = False
        self.cancelled = False
        self.error: BaseException | None = None
        self.max_queue_depth = len(self.ready)

    def heap_key(self, task: int) -> float:
        """Ready-heap key of *task*: the negated priority (heavy subtrees
        pop first), optionally permuted by the schedule fuzzer."""
        key = -float(self.graph.priority[task])
        if self.fuzz is not None:
            key = self.fuzz.ready_key(task, key)
        return key


class TaskPool:
    """A pool of worker threads executing dependency-counted task graphs.

    One pool may run several graphs sequentially (the solve path runs the
    forward and backward graphs back to back); a run in progress cannot
    overlap another. After :meth:`cancel` the pool is shut down for good.

    *trace* controls event recording: ``True`` (or leaving the default
    ``None`` with ``REPRO_CHECK=1``) records into a fresh
    :class:`~repro.exec.trace.ExecTrace` on ``self.trace``; an existing
    :class:`ExecTrace` instance appends to it; ``False`` disables even
    under ``REPRO_CHECK``. *fuzz* installs a :class:`ScheduleFuzzer`.
    """

    def __init__(
        self,
        workers: int,
        name: str = "exec",
        trace: bool | ExecTrace | None = None,
        fuzz: ScheduleFuzzer | None = None,
    ):
        if not isinstance(workers, int) or workers < 1:
            raise ExecBackendError(
                f"worker count must be a positive integer; got {workers!r}"
            )
        self.workers = workers
        self.name = name
        self.trace: ExecTrace | None
        if isinstance(trace, ExecTrace):
            self.trace = trace
        else:
            enabled = runtime_checks_enabled() if trace is None else bool(trace)
            self.trace = ExecTrace() if enabled else None
        self.fuzz = fuzz
        self._lock = threading.Lock()
        self._cancelled = False
        self._state: _RunState | None = None

    # -- control -------------------------------------------------------------

    def cancel(self) -> None:
        """Shut the pool down: drain the current run (its :meth:`run`
        raises :class:`ExecBackendError`) and refuse future runs. Safe to
        call from a task body or from another thread."""
        with self._lock:
            self._cancelled = True
            state = self._state
        if state is not None:
            with state.cond:
                state.stop = True
                state.cancelled = True
                state.ready.clear()
                state.cond.notify_all()

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    # -- execution -----------------------------------------------------------

    def run(
        self,
        graph: TaskGraph,
        run_task: Callable[[int], None],
        registry: MetricsRegistry | None = None,
    ) -> PoolStats:
        """Execute every task of *graph*; returns the run's telemetry.

        Raises the first task exception verbatim after draining, or
        :class:`ExecBackendError` for pool-level failures (cancellation,
        a stalled/cyclic graph, a pool already shut down).
        """
        with self._lock:
            if self._cancelled:
                raise ExecBackendError(f"{self.name} pool is shut down")
            if self._state is not None:
                raise ExecBackendError(f"{self.name} pool is already running")
            state = _RunState(graph, self.fuzz)
            self._state = state

        recorder = current_recorder()
        tr = self.trace
        run_start = len(tr.events) if tr is not None else 0
        if tr is not None:
            tr.add("graph_begin", target=graph.n_tasks, label=graph.label)
        timed = recorder is not None or registry is not None
        clock = FrontProfile.clock
        # Per-worker event/latency lists: written lock-free by exactly one
        # worker each, merged after the join.
        events: list[list[ExecTaskEvent]] = [[] for _ in range(self.workers)]
        try:
            threads = [
                threading.Thread(
                    target=self._worker,
                    args=(wid, state, run_task, timed, clock, events[wid]),
                    name=f"{self.name}-worker-{wid}",
                    daemon=True,
                )
                for wid in range(self.workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            with self._lock:
                self._state = None

        if tr is not None:
            aborted = (
                state.error is not None
                or state.cancelled
                or state.completed != graph.n_tasks
            )
            tr.add(
                "graph_abort" if aborted else "graph_end",
                target=state.completed,
                label=graph.label,
            )
            if recorder is not None:
                recorder.exec_trace_events.extend(tr.events[run_start:])

        if state.error is not None:
            raise state.error
        if state.cancelled:
            raise ExecBackendError(
                f"{self.name} pool cancelled with "
                f"{state.completed}/{graph.n_tasks} tasks completed"
            )
        if state.completed != graph.n_tasks:
            raise ExecBackendError(
                f"{self.name} pool finished {state.completed}/"
                f"{graph.n_tasks} tasks (inconsistent task graph)"
            )

        stats = PoolStats(
            workers=self.workers,
            n_tasks=graph.n_tasks,
            completed=state.completed,
            max_queue_depth=state.max_queue_depth,
        )
        if timed:
            stats.busy_seconds = [
                sum(e.duration for e in lane) for lane in events
            ]
            stats.task_seconds = [e.duration for lane in events for e in lane]
        if recorder is not None:
            for lane in events:
                recorder.exec_events.extend(lane)
        if registry is not None:
            stats.publish(registry)
        return stats

    def _worker(
        self,
        wid: int,
        state: _RunState,
        run_task: Callable[[int], None],
        timed: bool,
        clock: Callable[[], float],
        lane: list[ExecTaskEvent],
    ) -> None:
        graph = state.graph
        trace = self.trace
        fuzz = state.fuzz
        if trace is not None:
            trace.set_worker(wid)
        while True:
            with state.cond:
                while True:
                    if state.stop:
                        return
                    if state.ready:
                        _, tid = heapq.heappop(state.ready)
                        if (
                            fuzz is not None
                            and state.ready
                            and fuzz.defer(tid)
                        ):
                            # Forced preemption point: push the popped task
                            # back (demoted) and pick another.
                            heapq.heappush(
                                state.ready, (fuzz.requeue_key(tid), tid)
                            )
                            continue
                        break
                    if state.active == 0:
                        # Nothing running, nothing ready, work remaining:
                        # the graph has a dependency cycle. Fail loudly
                        # instead of deadlocking every worker.
                        state.error = ExecBackendError(
                            f"{self.name} pool stalled: "
                            f"{graph.n_tasks - state.completed} tasks "
                            "blocked with none in flight (dependency cycle?)"
                        )
                        state.stop = True
                        state.cond.notify_all()
                        return
                    state.cond.wait()
                state.active += 1

            if fuzz is not None:
                pause = fuzz.delay(tid)
                if pause > 0.0:
                    time.sleep(pause)
            if trace is not None:
                trace.add("task_start", task=tid)
            t0 = clock() if timed else 0.0
            try:
                run_task(tid)
            # The catch-all is the capture half of cross-thread propagation:
            # run() re-raises state.error verbatim on the calling thread.
            except BaseException as exc:  # repro: noqa[RP001]
                if trace is not None:
                    trace.add("task_error", task=tid)
                with state.cond:
                    if state.error is None:
                        state.error = exc
                    state.stop = True
                    state.active -= 1
                    state.ready.clear()
                    state.cond.notify_all()
                return
            if trace is not None:
                trace.add("task_end", task=tid)
            if timed:
                lane.append(
                    ExecTaskEvent(
                        name=f"{graph.label}:s{tid}",
                        worker=wid,
                        start=t0,
                        end=clock(),
                    )
                )

            with state.cond:
                state.active -= 1
                state.completed += 1
                for d in graph.dependents[tid]:
                    state.n_deps_left[d] -= 1
                    if trace is not None:
                        trace.add(
                            "dep_dec",
                            task=tid,
                            target=d,
                            remaining=state.n_deps_left[d],
                        )
                    if state.n_deps_left[d] == 0:
                        heapq.heappush(state.ready, (state.heap_key(d), d))
                        state.cond.notify()
                if len(state.ready) > state.max_queue_depth:
                    state.max_queue_depth = len(state.ready)
                if state.completed == graph.n_tasks:
                    state.stop = True
                    state.cond.notify_all()
