"""Exporters: Chrome trace-event JSON, Prometheus text, human report.

The Chrome/Perfetto exporter is the unification point the paper-style
analysis needs: host phase spans (real wall time from
:mod:`repro.obs.spans`) and the *simulated* per-rank timelines
(:class:`repro.simmpi.trace.Trace`) are merged into one trace-event file,
as two processes on a shared timeline origin:

* ``pid 0`` ("host") — one thread of nested phase spans;
* ``pid 1`` ("sim machine") — one thread per simulated rank, compute /
  send / wait intervals, with message-level comm events as instants when
  requested.

Load the file at ``chrome://tracing`` or https://ui.perfetto.dev. Both
clock domains start at ~0 (host spans are re-based on the recorder's
first start), so phases and rank activity line up visually even though
one is wall time and the other simulated time.

The Prometheus exposition covers the metrics registry (counters, gauges,
fixed-bucket histograms) in the standard ``# TYPE`` / ``_bucket{le=...}``
text format; :func:`report` renders the human summary used by
``repro.cli obs``.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any

from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import MachineModel
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanRecorder
    from repro.simmpi.trace import Trace

__all__ = [
    "HOST_PID",
    "SIM_PID",
    "EXEC_PID",
    "chrome_trace_events",
    "chrome_trace",
    "write_chrome_trace",
    "validate_trace_events",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "prometheus_text",
    "write_prometheus",
    "render_phase_table",
    "report",
]

#: trace-event pid of the host span timeline
HOST_PID = 0
#: trace-event pid of the simulated machine (tid = rank)
SIM_PID = 1
#: trace-event pid of the shared-memory execution backend (tid = worker)
EXEC_PID = 2


def _meta(name: str, pid: int, args: dict, tid: int = 0) -> dict:
    return {
        "name": name,
        "ph": "M",
        "ts": 0.0,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def chrome_trace_events(
    recorder: SpanRecorder | None = None,
    sim_trace: Trace | None = None,
    include_comm: bool = False,
) -> list[dict]:
    """Merged trace-event list (host spans + simulated rank timelines).

    Events are sorted by timestamp (metadata first at ts 0), timestamps
    in microseconds as the trace-event format requires.
    """
    events: list[dict] = []
    if recorder is not None and recorder.spans:
        events.append(_meta("process_name", HOST_PID, {"name": "host"}))
        events.append(
            _meta("thread_name", HOST_PID, {"name": "phases"}, tid=0)
        )
        t0 = recorder.t0
        if t0 is None:
            t0 = min(s.start for s in recorder.spans)
        for s in recorder.spans:
            events.append(
                {
                    "name": s.name,
                    "cat": "host",
                    "ph": "X",
                    "ts": (s.start - t0) * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": HOST_PID,
                    "tid": 0,
                    "args": dict(s.attrs),
                }
            )
    if recorder is not None and recorder.exec_events:
        # Real worker-thread concurrency from repro.exec: one row per
        # worker, same wall-clock origin as the host phase spans, so task
        # bars visibly overlap under the enclosing exec.* span.
        events.append(_meta("process_name", EXEC_PID, {"name": "exec workers"}))
        t0 = recorder.t0
        if t0 is None:
            t0 = min(e.start for e in recorder.exec_events)
        workers = sorted({e.worker for e in recorder.exec_events})
        for w in workers:
            events.append(
                _meta("thread_name", EXEC_PID, {"name": f"worker {w}"}, tid=w)
            )
        for e in recorder.exec_events:
            events.append(
                {
                    "name": e.name,
                    "cat": "exec",
                    "ph": "X",
                    "ts": (e.start - t0) * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": EXEC_PID,
                    "tid": e.worker,
                    "args": {},
                }
            )
    if recorder is not None and recorder.exec_trace_events:
        # Racecheck event log from traced pool runs (REPRO_CHECK=1 or
        # TaskPool(trace=True)): dependency decrements and slot
        # publish/consume marks as instants on the worker rows, so a
        # reported race can be eyeballed right on the timeline.
        if not recorder.exec_events:
            events.append(
                _meta("process_name", EXEC_PID, {"name": "exec workers"})
            )
        t0 = recorder.t0
        if t0 is None:
            t0 = min(e.time for e in recorder.exec_trace_events)
        for te in recorder.exec_trace_events:
            if te.kind not in ("dep_dec", "slot_write", "slot_read", "slot_consume"):
                continue
            if te.kind == "dep_dec":
                name = f"dep {te.task}->{te.target}"
                args: dict[str, Any] = {"remaining": te.remaining}
            else:
                name = f"{te.kind.removeprefix('slot_')} {te.slot}"
                args = {"task": te.task}
                if te.lo != -1:
                    args["rows"] = f"[{te.lo}:{te.hi})"
            events.append(
                {
                    "name": name,
                    "cat": "racecheck",
                    "ph": "i",
                    "s": "t",
                    "ts": max(0.0, (te.time - t0) * 1e6),
                    "pid": EXEC_PID,
                    "tid": te.worker if te.worker >= 0 else 0,
                    "args": args,
                }
            )
    if sim_trace is not None and sim_trace.events:
        events.append(_meta("process_name", SIM_PID, {"name": "sim machine"}))
        ranks = sorted({e.rank for e in sim_trace.events})
        for r in ranks:
            events.append(
                _meta("thread_name", SIM_PID, {"name": f"rank {r}"}, tid=r)
            )
        for e in sim_trace.events:
            events.append(
                {
                    "name": e.kind,
                    "cat": "sim",
                    "ph": "X",
                    "ts": e.start * 1e6,
                    "dur": e.duration * 1e6,
                    "pid": SIM_PID,
                    "tid": e.rank,
                    "args": {"detail": e.detail},
                }
            )
        if include_comm:
            for c in sim_trace.comm:
                events.append(
                    {
                        "name": f"{c.kind} {c.tag}",
                        "cat": "comm",
                        "ph": "i",
                        "s": "t",
                        "ts": c.time * 1e6,
                        "pid": SIM_PID,
                        "tid": c.rank,
                        "args": {"peer": c.peer, "nbytes": c.nbytes},
                    }
                )
    events.sort(key=lambda ev: (ev["ts"], ev["pid"], ev["tid"]))
    return events


def chrome_trace(
    recorder: SpanRecorder | None = None,
    sim_trace: Trace | None = None,
    include_comm: bool = False,
) -> dict:
    """The full trace-event JSON object (``traceEvents`` container form)."""
    return {
        "traceEvents": chrome_trace_events(
            recorder, sim_trace, include_comm=include_comm
        ),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    path: str,
    recorder: SpanRecorder | None = None,
    sim_trace: Trace | None = None,
    include_comm: bool = False,
) -> dict:
    """Validate and write the merged trace; returns the written object."""
    obj = chrome_trace(recorder, sim_trace, include_comm=include_comm)
    validate_chrome_trace(obj)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(obj, fp)
    return obj


# -- validation --------------------------------------------------------------

_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_trace_events(events: Any) -> list[str]:
    """Structural problems of a trace-event list (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(events, list):
        return [f"traceEvents must be a list, got {type(events).__name__}"]
    last_ts = float("-inf")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in _REQUIRED_KEYS if k not in ev]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: ts must be a non-negative number, got {ts!r}")
            continue
        if ts < last_ts:
            problems.append(
                f"event {i}: ts {ts} not monotone (previous {last_ts})"
            )
        last_ts = ts
        if ev["ph"] == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i}: complete event needs non-negative dur, got {dur!r}"
                )
        if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
            problems.append(f"event {i}: pid/tid must be integers")
    return problems


def validate_chrome_trace(obj: Any) -> None:
    """Raise :class:`~repro.util.errors.ReproError` on an invalid trace."""
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ReproError("chrome trace must be an object with 'traceEvents'")
    problems = validate_trace_events(obj["traceEvents"])
    if problems:
        head = "; ".join(problems[:5])
        raise ReproError(
            f"invalid trace-event JSON ({len(problems)} problem(s)): {head}"
        )


def validate_chrome_trace_file(path: str) -> dict:
    """Load, validate, and return a trace file (CI gate)."""
    with open(path, "r", encoding="utf-8") as fp:
        try:
            obj = json.load(fp)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}: not valid JSON: {exc}") from exc
    validate_chrome_trace(obj)
    return obj


# -- Prometheus text exposition ----------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(prefix: str, name: str) -> str:
    return _NAME_SANITIZE.sub("_", f"{prefix}_{name}" if prefix else name)


def _prom_num(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Prometheus text exposition of a metrics registry."""
    lines: list[str] = []
    for name, value in registry.counter_values().items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_num(value)}")
    for name, value in registry.gauge_values().items():
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_num(value)}")
    for name, hist in sorted(registry.histograms().items()):
        metric = _prom_name(prefix, name)
        snap = hist.snapshot()
        lines.append(f"# TYPE {metric} histogram")
        cum = snap.cumulative()
        for upper, running in zip(snap.uppers, cum):
            lines.append(
                f'{metric}_bucket{{le="{_prom_num(upper)}"}} {running}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cum[-1]}')
        lines.append(f"{metric}_sum {_prom_num(snap.sum)}")
        lines.append(f"{metric}_count {snap.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: str, registry: MetricsRegistry, prefix: str = "repro"
) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(prometheus_text(registry, prefix=prefix))


# -- human report ------------------------------------------------------------


def render_phase_table(recorder: SpanRecorder, title: str = "host phases") -> str:
    """Per-phase count/total/mean table from recorded spans."""
    from repro.util.tables import format_table

    rows = []
    for name, (count, total) in recorder.phase_totals().items():
        rows.append(
            [
                name,
                count,
                round(total * 1e3, 3),
                round(total / count * 1e3, 3),
            ]
        )
    return format_table(
        ["span", "count", "total ms", "mean ms"], rows, title=title
    )


def report(
    recorder: SpanRecorder | None = None,
    registry: MetricsRegistry | None = None,
    machine: MachineModel | None = None,
    top_fronts: int = 0,
    threads: int = 1,
) -> str:
    """Combined human-readable observability report."""
    from repro.obs.profile import render_gflops_comparison, render_top_fronts

    parts: list[str] = []
    if recorder is not None and recorder.spans:
        parts.append(render_phase_table(recorder))
    if registry is not None:
        parts.append(registry.report())
    if recorder is not None and top_fronts > 0 and recorder.profile.host:
        parts.append(render_top_fronts(recorder.profile, top_fronts))
        if machine is not None:
            parts.append(
                render_gflops_comparison(
                    recorder.profile, machine, threads=threads, k=top_fronts
                )
            )
    return "\n\n".join(parts) if parts else "(nothing recorded)"
