"""Per-supernode flop/byte profiling: where the factorization time goes.

The paper family's central evidence is GFLOPS attribution — which fronts
dominate, and how close the achieved rate is to what the machine model
says the kernel *should* run at. :class:`FrontProfile` collects, per
supernode:

* **host samples** — front order, panel width, flop count, bytes touched,
  and measured wall seconds of the dense partial factorization
  (:mod:`repro.mf.numeric` feeds these when a recorder is installed);
* **simulated flops** — the per-supernode flops charged by the distributed
  rank program (:mod:`repro.parallel.factor_par`), summed over ranks.

From these it derives the top-K "hottest fronts" table and the
measured-vs-modeled GFLOPS comparison against a
:class:`~repro.machine.model.MachineModel` — the instrument behind the
roll-off curves in the paper's figures.

Kernel code must not call ``time.perf_counter`` directly (lint rule
RP007); the profiler exposes :attr:`FrontProfile.clock` so timestamps are
taken through the observability layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.model import MachineModel

__all__ = [
    "FrontRecord",
    "FrontProfile",
    "active_profile",
    "render_top_fronts",
    "gflops_comparison",
    "render_gflops_comparison",
]


@dataclass(frozen=True)
class FrontRecord:
    """One profiled dense partial factorization (host execution)."""

    supernode: int
    #: front order (rows)
    m: int
    #: pivot columns eliminated
    width: int
    flops: int
    #: working-set bytes of the front (8-byte reals)
    nbytes: int
    #: measured host wall time of the partial factorization [s]
    seconds: float

    @property
    def gflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9


class FrontProfile:
    """Accumulates per-supernode host samples and simulated flop charges."""

    #: timestamp source for instrumented kernels (RP007 funnels them here)
    clock = staticmethod(time.perf_counter)

    def __init__(self) -> None:
        self.host: list[FrontRecord] = []
        #: supernode -> flops charged by the simulated rank program
        self.sim_flops: dict[int, float] = {}

    def observe_front(
        self, supernode: int, m: int, width: int, flops: int, seconds: float
    ) -> None:
        self.host.append(
            FrontRecord(
                supernode=supernode,
                m=m,
                width=width,
                flops=flops,
                nbytes=8 * m * m,
                seconds=seconds,
            )
        )

    def add_sim_flops(self, supernode: int, flops: float) -> None:
        self.sim_flops[supernode] = self.sim_flops.get(supernode, 0.0) + flops

    # -- rollups -------------------------------------------------------------

    @property
    def total_flops(self) -> int:
        return sum(r.flops for r in self.host)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.host)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.host)

    def measured_gflops(self) -> float:
        t = self.total_seconds
        return self.total_flops / t / 1e9 if t > 0 else 0.0

    def top_fronts(self, k: int = 10) -> list[FrontRecord]:
        """The k hottest fronts by measured host seconds (flops tiebreak)."""
        return sorted(
            self.host, key=lambda r: (r.seconds, r.flops), reverse=True
        )[: max(k, 0)]


def active_profile() -> FrontProfile | None:
    """The installed recorder's profile, or None when obs is off.

    Kernels guard their accounting with one None check, keeping the
    disabled path free of timing calls.
    """
    from repro.obs.spans import current_recorder

    rec = current_recorder()
    return rec.profile if rec is not None else None


# -- reporting ---------------------------------------------------------------


def render_top_fronts(profile: FrontProfile, k: int = 10) -> str:
    """Top-K hottest fronts as a plain-text table."""
    from repro.util.tables import format_table

    rows = []
    total_s = profile.total_seconds
    for r in profile.top_fronts(k):
        rows.append(
            [
                r.supernode,
                r.m,
                r.width,
                round(r.flops / 1e6, 3),
                round(r.seconds * 1e3, 4),
                round(r.seconds / total_s * 100, 1) if total_s > 0 else 0.0,
                round(r.gflops, 3),
            ]
        )
    return format_table(
        ["supernode", "front", "width", "Mflop", "host ms", "% time", "GF/s"],
        rows,
        title=f"top-{min(k, len(profile.host))} hottest fronts "
        f"({len(profile.host)} profiled)",
    )


def gflops_comparison(
    profile: FrontProfile, machine: MachineModel, threads: int = 1, k: int = 10
) -> list[dict]:
    """Measured vs modeled rate per hot front, plus an ``overall`` row.

    Modeled seconds come from the machine model's efficiency curve at the
    front's order — the same charge the simulator applies — so the ratio
    column reads "how much faster/slower the host kernel ran than the
    simulated machine would have".
    """
    rows: list[dict] = []
    modeled_total = 0.0
    for r in profile.host:
        modeled_total += machine.compute_time(r.flops, r.m, threads=threads)
    for r in profile.top_fronts(k):
        modeled_s = machine.compute_time(r.flops, r.m, threads=threads)
        modeled_gf = r.flops / modeled_s / 1e9 if modeled_s > 0 else 0.0
        rows.append(
            {
                "supernode": r.supernode,
                "front": r.m,
                "measured_gflops": r.gflops,
                "modeled_gflops": modeled_gf,
                "ratio": r.gflops / modeled_gf if modeled_gf > 0 else 0.0,
            }
        )
    total_flops = profile.total_flops
    modeled_overall = (
        total_flops / modeled_total / 1e9 if modeled_total > 0 else 0.0
    )
    measured_overall = profile.measured_gflops()
    rows.append(
        {
            "supernode": -1,
            "front": -1,
            "measured_gflops": measured_overall,
            "modeled_gflops": modeled_overall,
            "ratio": (
                measured_overall / modeled_overall if modeled_overall > 0 else 0.0
            ),
        }
    )
    return rows


def render_gflops_comparison(
    profile: FrontProfile, machine: MachineModel, threads: int = 1, k: int = 10
) -> str:
    from repro.util.tables import format_table

    rows = []
    for row in gflops_comparison(profile, machine, threads=threads, k=k):
        label = "overall" if row["supernode"] < 0 else row["supernode"]
        front = "-" if row["front"] < 0 else row["front"]
        rows.append(
            [
                label,
                front,
                round(row["measured_gflops"], 3),
                round(row["modeled_gflops"], 3),
                round(row["ratio"], 3),
            ]
        )
    return format_table(
        ["supernode", "front", "measured GF/s", "modeled GF/s", "ratio"],
        rows,
        title=f"measured vs modeled GFLOPS ({machine.name}, {threads} thread(s))",
    )
