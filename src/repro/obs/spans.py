"""Structured span tracing: the host-side timeline of the library.

A *span* is one named, nested interval of real wall time with free-form
attributes — "solver.analyze", "mf.factor", "service.batch". Spans are
recorded by a process-wide :class:`SpanRecorder` that is installed either
by the ``REPRO_OBS`` environment variable (read once at import, like
``REPRO_CHECK``) or programmatically with :func:`enable` /
:func:`recording`.

The design constraint is the same as the sanitizer's: **instrumented hot
paths must be ~zero-cost when observability is off**. :func:`span` returns
a shared no-op context manager without allocating anything when no
recorder is installed, so the instrumentation sprinkled through the
solver, the parallel driver, and the serving layer costs one global read
and one function call per phase when disabled — and never changes answer
bits either way.

Exporters live in :mod:`repro.obs.export` (Chrome trace-event JSON,
Prometheus text, human tables); per-supernode profiling in
:mod:`repro.obs.profile` rides on the same recorder.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.profile import FrontProfile

__all__ = [
    "ExecTaskEvent",
    "Span",
    "SpanRecorder",
    "span",
    "enable",
    "disable",
    "recording",
    "obs_enabled",
    "current_recorder",
]

_TRUTHY = frozenset({"1", "true", "on", "yes"})


@dataclass(frozen=True)
class ExecTaskEvent:
    """One task executed by a :mod:`repro.exec` worker thread.

    Unlike :class:`Span`, these are recorded from *concurrent* worker
    threads, so they carry their own worker lane instead of riding the
    recorder's (single-threaded) nesting stack. The Chrome exporter
    renders them as one timeline row per worker — real concurrency next
    to the host phases and the simulated rank timelines.
    """

    #: task label, e.g. ``"factor:s17"``
    name: str
    #: worker thread index within the pool (trace row)
    worker: int
    #: ``time.perf_counter`` seconds at task start / end
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Span:
    """One finished interval on the host timeline."""

    name: str
    #: ``time.perf_counter`` seconds at entry / exit
    start: float
    end: float
    #: nesting depth at entry (0 = top level)
    depth: int
    #: recorder-unique id, assigned in entry order
    span_id: int
    #: ``span_id`` of the enclosing span, -1 at top level
    parent_id: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanRecorder:
    """Collects finished spans (and the front profile) of one recording."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.profile = FrontProfile()
        #: per-worker task events from the shared-memory backend
        #: (:mod:`repro.exec` appends; the Chrome exporter renders them)
        self.exec_events: list[ExecTaskEvent] = []
        #: racecheck event log copied from traced pool runs
        #: (:class:`repro.exec.trace.ExecEvent`; Chrome instant events)
        self.exec_trace_events: list[Any] = []
        #: ``perf_counter`` value of the first span start (export origin)
        self.t0: float | None = None
        self._stack: list[_LiveSpan] = []
        self._next_id = 0

    def clear(self) -> None:
        self.spans.clear()
        self.profile = FrontProfile()
        self.exec_events.clear()
        self.exec_trace_events.clear()
        self.t0 = None
        self._stack.clear()
        self._next_id = 0

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total(self, name: str) -> float:
        """Summed duration of every span with this name [s]."""
        return sum(s.duration for s in self.spans if s.name == name)

    def phase_totals(self) -> dict[str, tuple[int, float]]:
        """name -> (count, total seconds), insertion-ordered by first use."""
        out: dict[str, tuple[int, float]] = {}
        for s in self.spans:
            n, t = out.get(s.name, (0, 0.0))
            out[s.name] = (n + 1, t + s.duration)
        return out


class _NullSpan:
    """Shared no-op span: what :func:`span` hands out when obs is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span bound to a recorder (context manager)."""

    __slots__ = ("_rec", "name", "attrs", "_start", "span_id", "parent_id", "depth")

    def __init__(self, rec: SpanRecorder, name: str, attrs: dict[str, Any]) -> None:
        self._rec = rec
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        rec = self._rec
        self.span_id = rec._next_id
        rec._next_id += 1
        self.parent_id = rec._stack[-1].span_id if rec._stack else -1
        self.depth = len(rec._stack)
        rec._stack.append(self)
        self._start = time.perf_counter()
        if rec.t0 is None:
            rec.t0 = self._start
        return self

    def set(self, **attrs: Any) -> "_LiveSpan":
        """Attach attributes to the open span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter()
        rec = self._rec
        if rec._stack and rec._stack[-1] is self:
            rec._stack.pop()
        rec.spans.append(
            Span(
                name=self.name,
                start=self._start,
                end=end,
                depth=self.depth,
                span_id=self.span_id,
                parent_id=self.parent_id,
                attrs=self.attrs,
            )
        )


# -- process-wide switch -----------------------------------------------------

_recorder: SpanRecorder | None = None


def span(name: str, **attrs: Any):
    """Context manager for one named span.

    When no recorder is installed this returns a shared no-op object —
    the disabled cost of an instrumented phase is one global read.
    """
    rec = _recorder
    if rec is None:
        return NULL_SPAN
    return _LiveSpan(rec, name, attrs)


def obs_enabled() -> bool:
    """True when a span recorder is installed (``REPRO_OBS`` or API)."""
    return _recorder is not None


def current_recorder() -> SpanRecorder | None:
    return _recorder


def enable(recorder: SpanRecorder | None = None) -> SpanRecorder:
    """Install (and return) the process-wide recorder."""
    global _recorder
    _recorder = recorder if recorder is not None else SpanRecorder()
    return _recorder


def disable() -> SpanRecorder | None:
    """Remove the recorder; returns it so callers can still export."""
    global _recorder
    rec = _recorder
    _recorder = None
    return rec


@contextmanager
def recording(recorder: SpanRecorder | None = None) -> Iterator[SpanRecorder]:
    """Scoped recording: install a recorder, restore the previous state.

    >>> from repro.obs import spans
    >>> with spans.recording() as rec:
    ...     with spans.span("example"):
    ...         pass
    >>> [s.name for s in rec.spans]
    ['example']
    """
    global _recorder
    prev = _recorder
    rec = enable(recorder)
    try:
        yield rec
    finally:
        _recorder = prev


if os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY:
    enable()
