"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the numeric side of the observability layer: discrete
events (jobs, cache hits, retries), level readings (queue depth, resident
entries), and distributions (front size, per-supernode flops, queue wait,
phase latency). Two histogram flavors coexist:

* :class:`Histogram` — fixed upper-bound buckets with ``sum``/``count``,
  cheap to record and exportable to the Prometheus text format
  (:func:`repro.obs.export.prometheus_text`);
* :class:`SampleHistogram` — keeps every sample for exact percentile
  summaries (the serving layer's latency reports; simulated traffic
  volumes make that affordable).

Snapshots are immutable copies with *delta* semantics —
``later.delta(earlier)`` is the traffic between two scrapes, which is how
rate dashboards are built from cumulative counters.

:class:`repro.service.metrics.ServiceMetrics` is now a compatibility shim
over one of these registries.

Thread safety: a registry may be written concurrently by the serving
fleet's workers and by the execution backend's pool telemetry. Every
instrument a registry creates shares the registry's mutex (obtained from
:func:`repro.exec.pool.make_lock`, the audited constructor — lint rule
RP010), so ``inc``/``observe``/``set`` are atomic read-modify-write
updates and :meth:`MetricsRegistry.snapshot` is a consistent cut. Two
fast paths avoid contention: ``registry.record = False`` turns the
recording shorthands into no-ops *before* any lock is touched, and a
standalone instrument (constructed directly, not via a registry) carries
no lock at all.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.report import LatencySummary

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "SampleHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
]

#: log-spaced seconds buckets covering 100 µs .. 10 s (plus +Inf)
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class Counter:
    """Monotone event counter.

    *lock* (a registry-shared mutex) makes ``inc`` atomic under
    concurrent writers; ``None`` (the default for standalone use) keeps
    the update lock-free.
    """

    __slots__ = ("name", "value", "lock")

    def __init__(self, name: str, lock=None) -> None:
        self.name = name
        self.value = 0.0
        self.lock = lock

    def inc(self, by: float = 1.0) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        if self.lock is None:
            self.value += by
        else:
            with self.lock:
                self.value += by


class Gauge:
    """Last-written level reading."""

    __slots__ = ("name", "value", "lock")

    def __init__(self, name: str, lock=None) -> None:
        self.name = name
        self.value = 0.0
        self.lock = lock

    def set(self, value: float) -> None:
        # A plain store is atomic; no lock needed for last-writer-wins.
        self.value = float(value)

    def inc(self, by: float = 1.0) -> None:
        if self.lock is None:
            self.value += by
        else:
            with self.lock:
                self.value += by

    def dec(self, by: float = 1.0) -> None:
        self.inc(-by)


class Histogram:
    """Fixed-bucket distribution (cumulative counts, Prometheus-shaped).

    ``buckets`` are ascending upper bounds; an implicit +Inf bucket
    catches the tail. ``counts[i]`` is the number of samples ≤
    ``buckets[i]`` boundaries — stored per-bucket here, cumulated at
    export time.
    """

    __slots__ = ("name", "uppers", "counts", "sum", "count", "lock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        lock=None,
    ) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers or any(
            b >= a for a, b in zip(uppers[1:], uppers[:-1])
        ):
            raise ValueError("histogram buckets must be ascending and non-empty")
        self.name = name
        self.uppers = uppers
        self.counts = [0] * (len(uppers) + 1)  # final slot = +Inf
        self.sum = 0.0
        self.count = 0
        self.lock = lock

    def observe(self, value: float) -> None:
        v = float(value)
        if self.lock is None:
            self._observe(v)
        else:
            with self.lock:
                self._observe(v)

    def _observe(self, v: float) -> None:
        self.counts[bisect_left(self.uppers, v)] += 1
        self.sum += v
        self.count += 1

    def snapshot(self) -> "HistogramSnapshot":
        if self.lock is None:
            return self._snapshot()
        with self.lock:
            return self._snapshot()

    def _snapshot(self) -> "HistogramSnapshot":
        return HistogramSnapshot(
            uppers=self.uppers,
            counts=tuple(self.counts),
            sum=self.sum,
            count=self.count,
        )


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable copy of one histogram's state."""

    uppers: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int

    def cumulative(self) -> tuple[int, ...]:
        """Prometheus-style running totals, one per bucket plus +Inf."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return tuple(out)

    def delta(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        if earlier.uppers != self.uppers:
            raise ValueError("histogram bucket layouts differ")
        return HistogramSnapshot(
            uppers=self.uppers,
            counts=tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            sum=self.sum - earlier.sum,
            count=self.count - earlier.count,
        )


class SampleHistogram:
    """All-sample recorder (seconds) with exact percentile summaries."""

    def __init__(self) -> None:
        self._sorted: list[float] = []
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        insort(self._sorted, float(seconds))
        self.total += float(seconds)

    @property
    def count(self) -> int:
        return len(self._sorted)

    def summary(self) -> "LatencySummary":
        from repro.analysis.report import LatencySummary

        return LatencySummary(
            count=self.count,
            total=self.total,
            min=self._sorted[0] if self._sorted else 0.0,
            max=self._sorted[-1] if self._sorted else 0.0,
            sorted_samples=tuple(self._sorted),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time copy of a registry, with delta semantics."""

    counters: Mapping[str, float]
    gauges: Mapping[str, float]
    histograms: Mapping[str, HistogramSnapshot]

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Traffic between *earlier* and this snapshot.

        Counters and histogram counts subtract (missing earlier entries
        count as zero); gauges keep their later reading — a level has no
        meaningful difference over time.
        """
        counters = {
            name: value - earlier.counters.get(name, 0.0)
            for name, value in self.counters.items()
        }
        hists = {}
        for name, h in self.histograms.items():
            prev = earlier.histograms.get(name)
            hists[name] = h if prev is None else h.delta(prev)
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=hists
        )


class MetricsRegistry:
    """Named counters, gauges, and histograms (get-or-create access).

    Safe for concurrent writers: one registry-wide mutex (constructed via
    the audited :func:`repro.exec.pool.make_lock`) is shared by every
    instrument the registry creates, making updates atomic and snapshots
    consistent. Setting :attr:`record` to ``False`` turns the recording
    shorthands (:meth:`inc` / :meth:`observe`) into no-ops before any
    lock is touched — the contention-free path for latency-critical runs
    that don't want telemetry.
    """

    def __init__(self, record: bool = True) -> None:
        # Lazy import: repro.exec.pool pulls in repro.obs.spans/profile at
        # module import time; binding at first-registry construction keeps
        # the package import graph acyclic.
        from repro.exec.pool import make_lock

        self._lock = make_lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: master recording switch of the shorthand paths
        self.record = record

    # -- get-or-create -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, lock=self._lock)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, lock=self._lock)
            return g

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(
                    name, buckets, lock=self._lock
                )
            return h

    # -- recording shorthands ------------------------------------------------

    def inc(self, name: str, by: float = 1.0) -> None:
        if not self.record:
            return
        self.counter(name).inc(by)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not self.record:
            return
        self.histogram(name, buckets).observe(value)

    # -- introspection -------------------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            c = self._counters.get(name)
            return c.value if c is not None else 0.0

    def counter_values(self) -> dict[str, float]:
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def snapshot(self) -> MetricsSnapshot:
        # Copy the instrument dict under the lock, then let each
        # histogram snapshot itself (it takes the shared lock per call;
        # holding it across the loop would self-deadlock).
        hists = self.histograms()
        return MetricsSnapshot(
            counters=self.counter_values(),
            gauges=self.gauge_values(),
            histograms={
                name: h.snapshot() for name, h in sorted(hists.items())
            },
        )

    def report(self, title: str = "metrics") -> str:
        """Plain-text table report in the repo's format."""
        from repro.util.tables import format_table

        rows: list[list] = []
        for name, value in self.counter_values().items():
            rows.append([name, "counter", round(value, 6), ""])
        for name, value in self.gauge_values().items():
            rows.append([name, "gauge", round(value, 6), ""])
        for name, h in sorted(self.histograms().items()):
            mean = h.sum / h.count if h.count else 0.0
            rows.append([name, "histogram", h.count, f"mean={mean:.6g}"])
        return format_table(["metric", "kind", "value", "detail"], rows, title=title)
