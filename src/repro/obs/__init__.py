"""Unified observability: tracing, metrics, and profiling (`repro.obs`).

One subsystem, four pieces, one switch (``REPRO_OBS=1`` or the
:func:`~repro.obs.spans.recording` context manager):

* :mod:`repro.obs.spans` — nested, attributed **spans** over the real
  phases of the library (analyze / factor / solve, the parallel driver,
  the serving layer) with a process-wide recorder that is ~zero-cost when
  disabled;
* :mod:`repro.obs.metrics` — **counters, gauges, fixed-bucket
  histograms** with snapshot/delta semantics (the serving layer's
  :class:`~repro.service.metrics.ServiceMetrics` is a shim over this);
* :mod:`repro.obs.export` — **exporters**: Chrome trace-event / Perfetto
  JSON merging host spans with simulated per-rank timelines, Prometheus
  text exposition, human tables;
* :mod:`repro.obs.profile` — per-supernode **flop/byte profiling** in the
  numeric kernels, rolled up into hottest-fronts tables and a
  measured-vs-modeled GFLOPS comparison against the machine model.

Driven end-to-end by ``python -m repro.cli obs``.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    prometheus_text,
    render_phase_table,
    report,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_trace_events,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    SampleHistogram,
)
from repro.obs.profile import (
    FrontProfile,
    FrontRecord,
    active_profile,
    gflops_comparison,
    render_gflops_comparison,
    render_top_fronts,
)
from repro.obs.spans import (
    ExecTaskEvent,
    Span,
    SpanRecorder,
    current_recorder,
    disable,
    enable,
    obs_enabled,
    recording,
    span,
)

__all__ = [
    "ExecTaskEvent",
    "Span",
    "SpanRecorder",
    "span",
    "enable",
    "disable",
    "recording",
    "obs_enabled",
    "current_recorder",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "SampleHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_LATENCY_BUCKETS",
    "FrontProfile",
    "FrontRecord",
    "active_profile",
    "render_top_fronts",
    "gflops_comparison",
    "render_gflops_comparison",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_trace_events",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "prometheus_text",
    "write_prometheus",
    "render_phase_table",
    "report",
]
