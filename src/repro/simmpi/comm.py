"""Communicators and collective operations.

A :class:`Comm` is a per-rank handle naming a group of global ranks.
Point-to-point methods build op descriptors to ``yield``; collectives are
generator helpers used with ``yield from`` and are implemented with
binomial trees over the group — so their simulated cost falls out of the
point-to-point model, the same way mpi4py collectives decompose on real
networks.

All members of a group must call collectives in the same order (the usual
MPI contract); tags are drawn from a per-communicator sequence so
concurrent collectives on different communicators never collide.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, Sequence

from repro.simmpi.ops import Recv, Send
from repro.util.errors import SimulationError


class Comm:
    """Communicator handle held by one rank.

    Parameters
    ----------
    world_rank
        This rank's global id.
    group
        Sorted tuple of global ranks in the communicator.
    ctx
        Context id distinguishing this communicator from others (all
        members must use the same value; ``Comm.split`` handles this).
    """

    __slots__ = ("world_rank", "group", "ctx", "_seq")

    def __init__(self, world_rank: int, group: Sequence[int], ctx: Hashable = 0) -> None:
        self.group = tuple(sorted(int(g) for g in group))
        if len(set(self.group)) != len(self.group):
            raise SimulationError(f"duplicate ranks in group {group}")
        if world_rank not in self.group:
            raise SimulationError(f"rank {world_rank} not in group {group}")
        self.world_rank = int(world_rank)
        self.ctx = ctx
        self._seq = 0

    # -- basic properties --------------------------------------------------

    @property
    def rank(self) -> int:
        """Rank within this communicator (0..size-1)."""
        return self.group.index(self.world_rank)

    @property
    def size(self) -> int:
        return len(self.group)

    def global_rank(self, local: int) -> int:
        """Global rank of a communicator-local rank."""
        return self.group[local]

    def sub(self, locals_: Sequence[int], ctx: Hashable) -> "Comm":
        """Communicator over a subset of this group (by local indices).
        Caller guarantees every member constructs the same subgroup/ctx."""
        return Comm(self.world_rank, [self.group[i] for i in locals_], ctx)

    # -- point to point -----------------------------------------------------

    def send(self, payload: Any, dest: int, tag: Hashable, nbytes: int | None = None) -> Send:
        """Op descriptor: send to communicator-local rank *dest*."""
        return Send(self.group[dest], ("p2p", self.ctx, tag), payload, nbytes)

    def recv(self, source: int, tag: Hashable) -> Recv:
        """Op descriptor: receive from communicator-local rank *source*."""
        return Recv(self.group[source], ("p2p", self.ctx, tag))

    # -- collectives ---------------------------------------------------------

    def _tag(self, kind: str) -> Hashable:
        tag = ("coll", self.ctx, self._seq, kind)
        self._seq += 1
        return tag

    def bcast(self, payload: Any, root: int = 0) -> Generator[Send | Recv, Any, Any]:
        """Binomial-tree broadcast; returns the payload on every rank."""
        tag = self._tag("bcast")
        me = (self.rank - root) % self.size
        size = self.size
        # Receive from the parent (the rank with this rank's lowest set bit
        # cleared), unless we are the (virtual) root.
        mask = 1
        while mask < size:
            if me & mask:
                src = me ^ mask
                payload = yield Recv(self.group[(src + root) % size], tag)
                break
            mask <<= 1
        # Forward to children: all ranks me + m for m below our receive bit.
        mask >>= 1
        while mask >= 1:
            dst = me + mask
            if dst < size:
                yield Send(self.group[(dst + root) % size], tag, payload)
            mask >>= 1
        return payload

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] | None = None,
        root: int = 0,
    ) -> Generator[Send | Recv, Any, Any]:
        """Binomial-tree reduction to *root*; returns the reduced value on
        the root, ``None`` elsewhere. *op* defaults to ``+``."""
        if op is None:
            op = _add
        tag = self._tag("reduce")
        me = (self.rank - root) % self.size
        size = self.size
        acc = value
        mask = 1
        while mask < size:
            if me & mask:
                dst = me ^ mask
                yield Send(self.group[(dst + root) % size], tag, acc)
                return None
            partner = me | mask
            if partner < size:
                other = yield Recv(self.group[(partner + root) % size], tag)
                acc = op(acc, other)
            mask <<= 1
        return acc

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] | None = None
    ) -> Generator[Send | Recv, Any, Any]:
        """Reduce-then-broadcast allreduce."""
        acc = yield from self.reduce(value, op=op, root=0)
        acc = yield from self.bcast(acc, root=0)
        return acc

    def gather(self, value: Any, root: int = 0) -> Generator[Send | Recv, Any, Any]:
        """Gather to *root*: returns list indexed by local rank on the
        root, ``None`` elsewhere. Binomial fan-in of partial lists."""
        tag = self._tag("gather")
        me = (self.rank - root) % self.size
        size = self.size
        acc: dict[int, Any] = {self.rank: value}
        mask = 1
        while mask < size:
            if me & mask:
                dst = me ^ mask
                yield Send(self.group[(dst + root) % size], tag, acc)
                return None
            partner = me | mask
            if partner < size:
                other = yield Recv(self.group[(partner + root) % size], tag)
                acc.update(other)
            mask <<= 1
        return [acc[i] for i in range(size)]

    def allgather(self, value: Any) -> Generator[Send | Recv, Any, Any]:
        """Gather-then-broadcast allgather."""
        lst = yield from self.gather(value, root=0)
        lst = yield from self.bcast(lst, root=0)
        return lst

    def barrier(self) -> Generator[Send | Recv, Any, None]:
        """Synchronize the group (allreduce of a token)."""
        yield from self.allreduce(0)

    def sendrecv(
        self, payload: Any, dest: int, source: int, tag: Hashable
    ) -> Generator[Send | Recv, Any, Any]:
        """Simultaneous send to *dest* and receive from *source* (local
        ranks). The eager-send runtime makes the naive send-then-recv order
        deadlock-free."""
        yield Send(self.group[dest], ("p2p", self.ctx, tag), payload)
        got = yield Recv(self.group[source], ("p2p", self.ctx, tag))
        return got

    def alltoall(self, values: Sequence[Any]) -> Generator[Send | Recv, Any, Any]:
        """Personalized all-to-all: ``values[j]`` goes to local rank j;
        returns the list received (indexed by source). Pairwise-exchange
        schedule (p-1 rounds), the standard algorithm for medium messages.
        """
        if len(values) != self.size:
            raise SimulationError("alltoall needs one value per rank")
        tag = self._tag("alltoall")
        me = self.rank
        size = self.size
        out: list[Any] = [None] * size
        out[me] = values[me]
        power_of_two = size & (size - 1) == 0
        for k in range(1, size):
            if power_of_two:
                partner = me ^ k  # symmetric pairwise exchange
                yield Send(self.group[partner], (tag, me), values[partner])
                out[partner] = yield Recv(self.group[partner], (tag, partner))
            else:
                dst = (me + k) % size
                src = (me - k) % size
                yield Send(self.group[dst], (tag, me), values[dst])
                out[src] = yield Recv(self.group[src], (tag, src))
        return out

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Generator[Send | Recv, Any, Any]:
        """Scatter a per-rank list from *root*; returns this rank's item.

        Linear sends from the root (fine at the group sizes collectives
        are used for here; the hot paths use p2p directly).
        """
        tag = self._tag("scatter")
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise SimulationError(
                    "scatter root must supply one value per rank"
                )
            for dst in range(self.size):
                if dst != root:
                    yield Send(self.group[dst], tag, values[dst])
            return values[root]
        item = yield Recv(self.group[root], tag)
        return item


def _add(a: Any, b: Any) -> Any:
    return a + b
