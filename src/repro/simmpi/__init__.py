"""Deterministic simulated message passing.

Rank programs are Python generator functions that ``yield`` communication
and compute operations; the :class:`~repro.simmpi.scheduler.Simulator`
executes all ranks as coroutines under a discrete-event clock, charging
time from a :class:`~repro.machine.MachineModel`.

The same code therefore *actually performs* the distributed algorithm on
real numpy payloads (numerics are testable against the sequential engine),
while the event clock provides per-rank timelines for machines far larger
than the host — the substitution for the paper's Blue Gene/P (DESIGN.md).

API sketch (mirrors mpi4py's lowercase object API, but cooperative)::

    def program(comm):
        if comm.rank == 0:
            yield comm.send(np.arange(4.0), dest=1, tag=7)
        else:
            data = yield comm.recv(source=0, tag=7)
        total = yield from comm.allreduce(comm.rank)
        return total

    result = Simulator(machine, n_ranks=2).run(program)
"""

from repro.simmpi.message import payload_nbytes
from repro.simmpi.ops import Send, Recv, Compute, Local
from repro.simmpi.comm import Comm
from repro.simmpi.scheduler import Simulator, SimResult, RankStats
from repro.simmpi.ledger import MessageLedger
from repro.simmpi.trace import CommEvent, CommTrace, Trace, TraceEvent, tag_key

__all__ = [
    "payload_nbytes",
    "Send",
    "Recv",
    "Compute",
    "Local",
    "Comm",
    "Simulator",
    "SimResult",
    "RankStats",
    "MessageLedger",
    "CommEvent",
    "CommTrace",
    "Trace",
    "TraceEvent",
    "tag_key",
]
