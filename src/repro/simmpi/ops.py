"""Operations a rank program may yield to the simulator.

These are plain descriptors: yielding one suspends the rank; the scheduler
performs the operation, advances the rank's clock, and resumes the
generator (with the received payload, for :class:`Recv`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class Send:
    """Eager (buffered) send: the sender is charged injection time and
    continues; the message arrives at the destination after the wire
    delay."""

    dest: int  # global rank
    tag: Hashable
    payload: Any
    #: explicit wire size override (None = estimate from payload)
    nbytes: int | None = None


@dataclass(frozen=True)
class Recv:
    """Blocking receive of a message matching (source, tag). The resumed
    generator receives the payload as the value of the ``yield``."""

    source: int  # global rank
    tag: Hashable


@dataclass(frozen=True)
class Compute:
    """Charge local work: *flops* at the kernel efficiency implied by
    *front_order*, plus *mem_bytes* of streaming traffic."""

    flops: float = 0.0
    front_order: int = 1_000_000
    mem_bytes: float = 0.0
    threads: int = 1


@dataclass(frozen=True)
class Local:
    """Zero-cost bookkeeping yield (lets the scheduler interleave ranks at
    deterministic points without charging time)."""
