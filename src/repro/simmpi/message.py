"""Message payload size accounting.

The simulator charges bandwidth by payload size; this module estimates the
wire size of the python objects rank programs exchange (numpy arrays
dominate in practice).
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: assumed per-object envelope overhead in bytes (headers, tags)
ENVELOPE_BYTES = 64


def payload_nbytes(payload: Any) -> int:
    """Estimated wire bytes of *payload* (numpy-aware, recursive)."""
    return ENVELOPE_BYTES + _body_nbytes(payload)


def _body_nbytes(obj: Any) -> int:
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(_body_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_body_nbytes(k) + _body_nbytes(v) for k, v in obj.items())
    # Fallback: a conservative flat estimate for unknown objects.
    return 64
