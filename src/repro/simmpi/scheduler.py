"""The discrete-event scheduler.

Runs every rank program as a coroutine, advancing a per-rank clock:

* :class:`~repro.simmpi.ops.Compute` advances the yielding rank only;
* :class:`~repro.simmpi.ops.Send` charges the sender injection time
  (α + bytes·β) and deposits the message with an arrival timestamp
  (sender clock + hop latency) — an eager/buffered send;
* :class:`~repro.simmpi.ops.Recv` blocks until a matching message exists,
  then sets the receiver clock to ``max(receiver clock, arrival)``.

Scheduling is deterministic: among runnable ranks, the one with the
smallest ``(clock, rank)`` runs next, so results (including floating-point
summation order) are reproducible run-to-run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable

from repro.machine.model import MachineModel
from repro.simmpi.comm import Comm
from repro.simmpi.ledger import MessageLedger
from repro.simmpi.message import payload_nbytes
from repro.simmpi.ops import Compute, Local, Recv, Send
from repro.simmpi.trace import Trace
from repro.util.errors import SimulationError
from repro.util.validation import runtime_checks_enabled


@dataclass
class RankStats:
    """Per-rank time breakdown."""

    rank: int
    #: final simulated clock of this rank
    finish_time: float = 0.0
    #: time spent in Compute charges
    compute_time: float = 0.0
    #: time spent injecting sends
    send_time: float = 0.0
    #: time spent blocked in receives (idle + wire wait)
    wait_time: float = 0.0
    n_yields: int = 0


@dataclass
class SimResult:
    """Outcome of one simulation."""

    #: wall-clock of the simulated machine (max over rank finish times)
    makespan: float
    #: per-rank return values of the programs
    returns: list[Any]
    rank_stats: list[RankStats]
    ledger: MessageLedger
    #: event timeline (None unless the simulator was built with trace=True)
    trace: Trace | None = None

    @property
    def total_compute(self) -> float:
        return sum(s.compute_time for s in self.rank_stats)

    @property
    def total_wait(self) -> float:
        return sum(s.wait_time for s in self.rank_stats)

    def parallel_efficiency(self, serial_time: float) -> float:
        """Efficiency vs a given serial execution time."""
        p = len(self.rank_stats)
        if self.makespan <= 0 or p == 0:
            return 1.0
        return serial_time / (p * self.makespan)


class Simulator:
    """Deterministic DES over rank coroutines.

    Parameters
    ----------
    machine
        Cost model for compute and messages.
    n_ranks
        Number of simulated ranks.
    threads_per_rank
        SMP threads per rank (scales compute charges).
    """

    def __init__(
        self,
        machine: MachineModel,
        n_ranks: int,
        threads_per_rank: int = 1,
        trace: bool = False,
    ) -> None:
        if n_ranks < 1:
            raise SimulationError("n_ranks must be >= 1")
        self.machine = machine
        self.n_ranks = int(n_ranks)
        self.threads = int(threads_per_rank)
        self.enable_trace = bool(trace)

    def run(self, program: Callable, *args: Any, **kwargs: Any) -> SimResult:
        """Execute ``program(comm, *args, **kwargs)`` on every rank.

        *program* must be a generator function taking the communicator as
        its first argument. Extra args are passed through; to give ranks
        different inputs, close over a per-rank structure and index it by
        ``comm.rank``.
        """
        machine = self.machine
        p = self.n_ranks
        gens = []
        for r in range(p):
            comm = Comm(r, range(p), ctx=("world",))
            gen = program(comm, *args, **kwargs)
            if not hasattr(gen, "send"):
                raise SimulationError(
                    "program must be a generator function (did it 'yield'?)"
                )
            gens.append(gen)

        clock = [0.0] * p
        stats = [RankStats(r) for r in range(p)]
        ledger = MessageLedger(p)
        returns: list[Any] = [None] * p
        done = [False] * p
        # Mailboxes: (dst, src, tag) -> FIFO of (arrival_time, payload, nbytes)
        mailbox: dict[tuple, list] = {}
        # Blocked ranks: rank -> (src, tag)
        blocked: dict[int, tuple] = {}
        # Ready queue: (clock, rank); lazy entries, validity via `in_queue`.
        ready: list[tuple[float, int]] = [(0.0, r) for r in range(p)]
        heapq.heapify(ready)
        resume_value: list[Any] = [None] * p
        trace = Trace() if self.enable_trace else None

        def deposit(src: int, op: Send) -> None:
            nbytes = op.nbytes if op.nbytes is not None else payload_nbytes(op.payload)
            dst = op.dest
            if not (0 <= dst < p):
                raise SimulationError(f"rank {src} sent to invalid rank {dst}")
            hops = machine.topology.hops(src, dst, p) if src != dst else 0
            inject = machine.alpha + nbytes * machine.beta if src != dst else machine.mem_time(nbytes)
            if trace is not None:
                trace.add(src, "send", clock[src], clock[src] + inject, nbytes)
            clock[src] += inject
            stats[src].send_time += inject
            arrival = clock[src] + (hops * machine.alpha_hop if src != dst else 0.0)
            key = (dst, src, op.tag)
            mailbox.setdefault(key, []).append((arrival, op.payload, nbytes))
            ledger.record_send(src, dst, nbytes, hops)
            if trace is not None:
                trace.comm.add("send", clock[src], src, dst, op.tag, nbytes)
            # Wake the receiver if it is blocked on this message.
            if blocked.get(dst) == (src, op.tag):
                del blocked[dst]
                _complete_recv(dst, key)

        def _complete_recv(r: int, key: tuple) -> None:
            arrival, payload, nbytes = mailbox[key].pop(0)
            if not mailbox[key]:
                del mailbox[key]
            wait = max(arrival - clock[r], 0.0)
            if trace is not None and wait > 0:
                trace.add(r, "wait", clock[r], arrival, nbytes)
            stats[r].wait_time += wait
            clock[r] = max(clock[r], arrival)
            ledger.record_recv(r, nbytes)
            if trace is not None:
                trace.comm.add("recv", clock[r], r, key[1], key[2], nbytes)
            resume_value[r] = payload
            heapq.heappush(ready, (clock[r], r))

        n_done = 0
        while n_done < p:
            if not ready:
                waiting = {
                    r: blocked[r] for r in sorted(blocked)
                }
                err = SimulationError(
                    f"deadlock: {p - n_done} rank(s) blocked, none runnable; "
                    f"blocked on {waiting}"
                )
                # Attach the partial trace so post-mortem tooling
                # (repro.check.commcheck) can reconstruct the wait-for graph.
                err.trace = trace  # type: ignore[attr-defined]
                raise err
            t, r = heapq.heappop(ready)
            if done[r] or r in blocked or t < clock[r] - 1e-30:
                continue  # stale entry
            gen = gens[r]
            value, resume_value[r] = resume_value[r], None
            try:
                op = gen.send(value)
            except StopIteration as stop:
                returns[r] = stop.value
                done[r] = True
                stats[r].finish_time = clock[r]
                n_done += 1
                continue
            except Exception as exc:  # surface rank failures with context
                raise SimulationError(f"rank {r} raised: {exc!r}") from exc
            stats[r].n_yields += 1

            if isinstance(op, Compute):
                dt = 0.0
                if op.flops:
                    dt += machine.compute_time(
                        op.flops, op.front_order, threads=max(op.threads, self.threads)
                    )
                if op.mem_bytes:
                    dt += machine.mem_time(op.mem_bytes)
                if trace is not None:
                    trace.add(r, "compute", clock[r], clock[r] + dt, op.flops)
                clock[r] += dt
                stats[r].compute_time += dt
                heapq.heappush(ready, (clock[r], r))
            elif isinstance(op, Send):
                deposit(r, op)
                heapq.heappush(ready, (clock[r], r))
            elif isinstance(op, Recv):
                key = (r, op.source, op.tag)
                if key in mailbox:
                    _complete_recv(r, key)
                else:
                    blocked[r] = (op.source, op.tag)
                    if trace is not None:
                        trace.comm.add("block", clock[r], r, op.source, op.tag)
            elif isinstance(op, Local):
                heapq.heappush(ready, (clock[r], r))
            else:
                raise SimulationError(
                    f"rank {r} yielded unknown op {op!r}"
                )

        makespan = max(clock) if clock else 0.0
        for s in stats:
            s.finish_time = clock[s.rank]
        if runtime_checks_enabled():
            # Debug-mode teardown invariants (REPRO_CHECK=1): every sent
            # message was consumed, and the ledger conserves counts/bytes.
            if mailbox:
                leftover = sorted(mailbox)[:5]
                raise SimulationError(
                    f"{sum(len(v) for v in mailbox.values())} message(s) "
                    f"sent but never received; first keys (dst, src, tag): "
                    f"{leftover}"
                )
            ledger.verify()
        return SimResult(
            makespan=makespan,
            returns=returns,
            rank_stats=stats,
            ledger=ledger,
            trace=trace,
        )
