"""Message and work ledger: everything the analysis layer reports.

The scheduler records every message (count, bytes, hops) and every compute
charge here; benchmark F2's communication-fraction breakdown and the
conservation checks in the test suite read these totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SimulationError


@dataclass
class MessageLedger:
    """Aggregate communication/computation record of one simulation."""

    n_ranks: int
    #: total point-to-point messages delivered
    n_messages: int = 0
    #: total payload bytes moved
    total_bytes: int = 0
    #: total hop-weighted bytes (network load proxy)
    hop_bytes: int = 0
    #: per-rank sent message counts
    sent_by_rank: list[int] = field(default_factory=list)
    #: per-rank sent bytes
    bytes_sent_by_rank: list[int] = field(default_factory=list)
    #: per-rank received message counts
    recv_by_rank: list[int] = field(default_factory=list)
    #: per-rank received bytes
    bytes_recv_by_rank: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        z = [0] * self.n_ranks
        self.sent_by_rank = list(z)
        self.bytes_sent_by_rank = list(z)
        self.recv_by_rank = list(z)
        self.bytes_recv_by_rank = list(z)

    def record_send(self, src: int, dst: int, nbytes: int, hops: int) -> None:
        self.n_messages += 1
        self.total_bytes += nbytes
        self.hop_bytes += nbytes * max(hops, 0)
        self.sent_by_rank[src] += 1
        self.bytes_sent_by_rank[src] += nbytes

    def record_recv(self, dst: int, nbytes: int) -> None:
        self.recv_by_rank[dst] += 1
        self.bytes_recv_by_rank[dst] += nbytes

    @property
    def mean_message_bytes(self) -> float:
        return self.total_bytes / self.n_messages if self.n_messages else 0.0

    def verify(self) -> None:
        """Conservation assertion over the whole ledger.

        Every delivered message was sent exactly once and received exactly
        once, so at the end of a simulation the per-rank sent totals must
        sum to ``n_messages`` and match the per-rank received totals, in
        both counts and bytes. Called by :mod:`repro.check.commcheck` and
        by the simulator teardown when ``REPRO_CHECK=1``.

        Raises :class:`~repro.util.errors.SimulationError` with per-rank
        evidence on the first violated identity.
        """
        for name, per_rank in (
            ("sent_by_rank", self.sent_by_rank),
            ("bytes_sent_by_rank", self.bytes_sent_by_rank),
            ("recv_by_rank", self.recv_by_rank),
            ("bytes_recv_by_rank", self.bytes_recv_by_rank),
        ):
            if len(per_rank) != self.n_ranks:
                raise SimulationError(
                    f"ledger {name} has {len(per_rank)} entries for "
                    f"{self.n_ranks} ranks"
                )
            bad = [r for r, v in enumerate(per_rank) if v < 0]
            if bad:
                raise SimulationError(f"ledger {name} negative at ranks {bad[:5]}")
        sent = sum(self.sent_by_rank)
        recv = sum(self.recv_by_rank)
        if sent != self.n_messages:
            raise SimulationError(
                f"ledger count conservation violated: per-rank sends sum to "
                f"{sent}, ledger counted {self.n_messages} messages"
            )
        if recv != sent:
            raise SimulationError(
                f"ledger count conservation violated: {sent} messages sent "
                f"but {recv} received ({sent - recv} undelivered)"
            )
        bytes_sent = sum(self.bytes_sent_by_rank)
        bytes_recv = sum(self.bytes_recv_by_rank)
        if bytes_sent != self.total_bytes:
            raise SimulationError(
                f"ledger byte conservation violated: per-rank sends sum to "
                f"{bytes_sent} B, ledger counted {self.total_bytes} B"
            )
        if bytes_recv != bytes_sent:
            raise SimulationError(
                f"ledger byte conservation violated: {bytes_sent} B sent but "
                f"{bytes_recv} B received"
            )
