"""Message and work ledger: everything the analysis layer reports.

The scheduler records every message (count, bytes, hops) and every compute
charge here; benchmark F2's communication-fraction breakdown and the
conservation checks in the test suite read these totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MessageLedger:
    """Aggregate communication/computation record of one simulation."""

    n_ranks: int
    #: total point-to-point messages delivered
    n_messages: int = 0
    #: total payload bytes moved
    total_bytes: int = 0
    #: total hop-weighted bytes (network load proxy)
    hop_bytes: int = 0
    #: per-rank sent message counts
    sent_by_rank: list[int] = field(default_factory=list)
    #: per-rank sent bytes
    bytes_sent_by_rank: list[int] = field(default_factory=list)
    #: per-rank received message counts
    recv_by_rank: list[int] = field(default_factory=list)
    #: per-rank received bytes
    bytes_recv_by_rank: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        z = [0] * self.n_ranks
        self.sent_by_rank = list(z)
        self.bytes_sent_by_rank = list(z)
        self.recv_by_rank = list(z)
        self.bytes_recv_by_rank = list(z)

    def record_send(self, src: int, dst: int, nbytes: int, hops: int) -> None:
        self.n_messages += 1
        self.total_bytes += nbytes
        self.hop_bytes += nbytes * max(hops, 0)
        self.sent_by_rank[src] += 1
        self.bytes_sent_by_rank[src] += nbytes

    def record_recv(self, dst: int, nbytes: int) -> None:
        self.recv_by_rank[dst] += 1
        self.bytes_recv_by_rank[dst] += nbytes

    @property
    def mean_message_bytes(self) -> float:
        return self.total_bytes / self.n_messages if self.n_messages else 0.0
