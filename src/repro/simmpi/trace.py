"""Execution traces of simulated runs.

When enabled on the :class:`~repro.simmpi.scheduler.Simulator`, every
compute region, send injection, and receive wait is recorded as a
``TraceEvent``. :mod:`repro.analysis.tracing` renders these as per-rank
timelines and phase breakdowns (the data behind gantt-style figures in
solver papers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

KINDS = ("compute", "send", "wait")


@dataclass(frozen=True)
class TraceEvent:
    """One interval on one rank's timeline."""

    rank: int
    kind: str  # "compute" | "send" | "wait"
    start: float
    end: float
    #: free-form detail (bytes for sends, flops for computes)
    detail: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Ordered event log of one simulation."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, rank: int, kind: str, start: float, end: float, detail: float = 0.0) -> None:
        if end > start:
            self.events.append(TraceEvent(rank, kind, start, end, detail))

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def total(self, kind: str) -> float:
        return sum(e.duration for e in self.events if e.kind == kind)

    def span(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)
