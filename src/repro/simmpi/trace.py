"""Execution traces of simulated runs.

When enabled on the :class:`~repro.simmpi.scheduler.Simulator`, every
compute region, send injection, and receive wait is recorded as a
``TraceEvent``. :mod:`repro.analysis.tracing` renders these as per-rank
timelines and phase breakdowns (the data behind gantt-style figures in
solver papers).

The same switch also records a :class:`CommTrace` — the message-level
event log (every send, receive completion, and receive block with rank,
peer, tag, bytes, and timestamp). :mod:`repro.check.commcheck` replays
this log to detect unmatched messages, conservation violations, wait-for
cycles, and order-nondeterministic receive pairs. ``CommTrace`` round-trips
through JSON lines so traces can be archived and checked offline
(``python -m repro.cli check --comm trace.jsonl``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Hashable, Iterable, Iterator

KINDS = ("compute", "send", "wait")

#: message-level event kinds recorded in a :class:`CommTrace`
COMM_KINDS = ("send", "recv", "block")


@dataclass(frozen=True)
class TraceEvent:
    """One interval on one rank's timeline."""

    rank: int
    kind: str  # "compute" | "send" | "wait"
    start: float
    end: float
    #: free-form detail (bytes for sends, flops for computes)
    detail: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CommEvent:
    """One message-level event.

    ``rank`` is the acting rank: the sender for ``"send"``, the receiver
    for ``"recv"`` and ``"block"``. ``peer`` is the other side of the
    (intended) message: destination for sends, source for receives and
    blocks. ``tag`` is the canonical string form of the message tag (see
    :func:`tag_key`); a send and the receive that consumed it carry the
    same tag string.
    """

    kind: str  # "send" | "recv" | "block"
    time: float
    rank: int
    peer: int
    tag: str
    nbytes: int = 0
    #: global record order (assigned by :meth:`CommTrace.add`)
    seq: int = -1

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "time": self.time,
                "rank": self.rank,
                "peer": self.peer,
                "tag": self.tag,
                "nbytes": self.nbytes,
                "seq": self.seq,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "CommEvent":
        d = json.loads(line)
        return cls(
            kind=str(d["kind"]),
            time=float(d["time"]),
            rank=int(d["rank"]),
            peer=int(d["peer"]),
            tag=str(d["tag"]),
            nbytes=int(d.get("nbytes", 0)),
            seq=int(d.get("seq", -1)),
        )


def tag_key(tag: Hashable) -> str:
    """Canonical string form of a message tag.

    Tags in the library are hashable trees of tuples/strings/ints; the
    ``repr`` is stable across a run and across the JSONL round trip, which
    is all the matching in commcheck needs.
    """
    return tag if isinstance(tag, str) else repr(tag)


@dataclass
class CommTrace:
    """Append-only message-level event log of one simulation."""

    events: list[CommEvent] = field(default_factory=list)

    def add(
        self,
        kind: str,
        time: float,
        rank: int,
        peer: int,
        tag: Hashable,
        nbytes: int = 0,
    ) -> None:
        if kind not in COMM_KINDS:
            raise ValueError(f"unknown comm event kind {kind!r}")
        self.events.append(
            CommEvent(
                kind=kind,
                time=float(time),
                rank=int(rank),
                peer=int(peer),
                tag=tag_key(tag),
                nbytes=int(nbytes),
                seq=len(self.events),
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[CommEvent]:
        return iter(self.events)

    def for_rank(self, rank: int) -> list[CommEvent]:
        return [e for e in self.events if e.rank == rank]

    # -- JSONL round trip ---------------------------------------------------

    def to_jsonl(self, fp: IO[str]) -> None:
        """Write one JSON object per line to an open text stream."""
        for e in self.events:
            fp.write(e.to_json())
            fp.write("\n")

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            self.to_jsonl(fp)

    @classmethod
    def from_events(cls, events: Iterable[CommEvent]) -> "CommTrace":
        """Build a trace from prebuilt events, renumbering ``seq`` by
        position (hand-built test traces use this)."""
        trace = cls()
        for e in events:
            trace.events.append(
                CommEvent(
                    kind=e.kind,
                    time=e.time,
                    rank=e.rank,
                    peer=e.peer,
                    tag=e.tag,
                    nbytes=e.nbytes,
                    seq=len(trace.events),
                )
            )
        return trace

    @classmethod
    def from_jsonl(cls, fp: IO[str]) -> "CommTrace":
        return cls.from_events(
            CommEvent.from_json(line) for line in fp if line.strip()
        )

    @classmethod
    def load(cls, path: str) -> "CommTrace":
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_jsonl(fp)


@dataclass
class Trace:
    """Ordered event log of one simulation."""

    events: list[TraceEvent] = field(default_factory=list)
    #: message-level log (populated alongside the timeline when tracing)
    comm: CommTrace = field(default_factory=CommTrace)

    def add(self, rank: int, kind: str, start: float, end: float, detail: float = 0.0) -> None:
        if end > start:
            self.events.append(TraceEvent(rank, kind, start, end, detail))

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def total(self, kind: str) -> float:
        return sum(e.duration for e in self.events if e.kind == kind)

    def span(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)
