"""Machine presets.

Order-of-magnitude calibrations of the paper's two platforms (circa 2009)
plus a generic modern-ish cluster. Absolute values matter less than the
*ratios* (flops vs bandwidth vs latency), which set where scaling rolls
off.

Blue Gene/P: 850 MHz PPC450, 4 cores/node, 3.4 Gflop/s peak per core
(2 FPUs × 2 flop), ~13.6 GB/s memory per node, 3D torus with ~0.5 µs
neighbour latency and 425 MB/s per link direction.

POWER5+ cluster: 1.9 GHz POWER5+, ~7.6 Gflop/s per core, 16-way SMP nodes,
HPS interconnect: ~5 µs latency, ~2 GB/s per link, fat-tree.
"""

from __future__ import annotations

from repro.machine.model import MachineModel
from repro.machine.topology import FatTree, FlatTopology, Torus3D
from repro.util.errors import ShapeError

BLUEGENE_P = MachineModel(
    name="bluegene-p",
    flop_rate=3.4e9,
    dense_efficiency=0.75,
    small_kernel_efficiency=0.08,
    kernel_crossover=96,
    mem_bandwidth=3.4e9,  # per core share of node bandwidth
    alpha=3.0e-6,
    alpha_hop=0.1e-6,
    beta=1.0 / 425e6,
    topology=Torus3D(),
    max_threads_per_rank=4,
    smp_efficiency_slope=0.05,
)

POWER5_CLUSTER = MachineModel(
    name="power5-cluster",
    flop_rate=7.6e9,
    dense_efficiency=0.85,
    small_kernel_efficiency=0.10,
    kernel_crossover=128,
    mem_bandwidth=6.0e9,
    alpha=5.0e-6,
    alpha_hop=0.5e-6,
    beta=1.0 / 2.0e9,
    topology=FatTree(radix=16),
    max_threads_per_rank=16,
    smp_efficiency_slope=0.04,
)

GENERIC_CLUSTER = MachineModel(
    name="generic-cluster",
    flop_rate=10.0e9,
    dense_efficiency=0.80,
    small_kernel_efficiency=0.10,
    kernel_crossover=128,
    mem_bandwidth=8.0e9,
    alpha=2.0e-6,
    alpha_hop=0.0,
    beta=1.0 / 5.0e9,
    topology=FlatTopology(),
    max_threads_per_rank=8,
    smp_efficiency_slope=0.03,
)

_MACHINES = {
    m.name: m for m in (BLUEGENE_P, POWER5_CLUSTER, GENERIC_CLUSTER)
}


def get_machine(name: str) -> MachineModel:
    """Look up a machine preset by name."""
    try:
        return _MACHINES[name]
    except KeyError:
        raise ShapeError(
            f"unknown machine {name!r}; known: {sorted(_MACHINES)}"
        ) from None
