"""Machine models for the simulated massively parallel computer.

The SC09 evaluation ran on Blue Gene/P and a POWER5+ cluster. Neither is
available here, so timing comes from parameterized α-β-γ models
(:class:`MachineModel`): per-core flop rate, memory bandwidth, network
latency/bandwidth with a topology hop penalty, and an SMP
threads-per-process efficiency curve. The presets in
:mod:`repro.machine.presets` are order-of-magnitude calibrations of the two
paper machines — strong-scaling *shape* is the reproduction target, not
absolute seconds (see DESIGN.md).
"""

from repro.machine.model import MachineModel
from repro.machine.topology import Topology, FlatTopology, Torus3D, FatTree
from repro.machine.presets import BLUEGENE_P, POWER5_CLUSTER, GENERIC_CLUSTER, get_machine

__all__ = [
    "MachineModel",
    "Topology",
    "FlatTopology",
    "Torus3D",
    "FatTree",
    "BLUEGENE_P",
    "POWER5_CLUSTER",
    "GENERIC_CLUSTER",
    "get_machine",
]
