"""The α-β-γ machine model.

Times charged by the simulated runtime:

* compute: ``flops · γ_eff`` where ``γ_eff`` accounts for the kernel's
  arithmetic intensity (small fronts run at memory-bound rates, large
  fronts approach peak — the roll-off the paper's GFLOPS plots show);
* memory traffic: ``bytes / mem_bandwidth`` (assembly, packing);
* messages: ``α + hops·α_hop + bytes·β``.

An SMP efficiency curve models hybrid MPI+threads ranks: ``t`` threads give
``t · smp_efficiency(t)`` times the single-thread flop rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.topology import Topology, FlatTopology
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class MachineModel:
    """A simulated parallel machine.

    Parameters are per *process* (MPI rank); ``threads_per_rank`` scales
    the effective flop rate through the SMP efficiency curve.
    """

    name: str
    #: peak flop rate of one core [flop/s]
    flop_rate: float
    #: achievable fraction of peak for large dense kernels (0..1]
    dense_efficiency: float
    #: fraction of peak for latency/memory-bound small kernels
    small_kernel_efficiency: float
    #: front order at which efficiency is halfway between the two regimes
    kernel_crossover: int
    #: memory bandwidth per rank [bytes/s]
    mem_bandwidth: float
    #: message startup latency [s]
    alpha: float
    #: extra latency per network hop [s]
    alpha_hop: float
    #: inverse bandwidth [s/byte]
    beta: float
    topology: Topology = field(default_factory=FlatTopology)
    #: hardware threads usable per rank
    max_threads_per_rank: int = 1
    #: parallel efficiency lost per extra thread (linear model)
    smp_efficiency_slope: float = 0.03

    def __post_init__(self) -> None:
        if self.flop_rate <= 0 or self.mem_bandwidth <= 0:
            raise ShapeError("rates must be positive")
        if not (0 < self.dense_efficiency <= 1):
            raise ShapeError("dense_efficiency must be in (0, 1]")
        if not (0 < self.small_kernel_efficiency <= self.dense_efficiency):
            raise ShapeError(
                "small_kernel_efficiency must be in (0, dense_efficiency]"
            )
        if self.alpha < 0 or self.beta < 0 or self.alpha_hop < 0:
            raise ShapeError("latency parameters must be non-negative")

    # -- compute ---------------------------------------------------------

    def kernel_efficiency(self, front_order: int) -> float:
        """Fraction of peak achieved by a dense kernel on a front of the
        given order (smooth interpolation between the two regimes)."""
        lo = self.small_kernel_efficiency
        hi = self.dense_efficiency
        x = front_order / max(self.kernel_crossover, 1)
        blend = x / (1.0 + x)
        return lo + (hi - lo) * blend

    def compute_time(self, flops: float, front_order: int = 1_000_000, threads: int = 1) -> float:
        """Seconds to execute *flops* on a kernel of the given front order
        with *threads* SMP threads."""
        eff = self.kernel_efficiency(front_order)
        rate = self.flop_rate * eff * self.smp_speedup(threads)
        return flops / rate

    def mem_time(self, nbytes: float) -> float:
        """Seconds for *nbytes* of streaming memory traffic."""
        return nbytes / self.mem_bandwidth

    def smp_speedup(self, threads: int) -> float:
        """Effective speedup of *threads* threads within one rank."""
        if threads < 1:
            raise ShapeError("threads must be >= 1")
        t = min(threads, self.max_threads_per_rank)
        eff = max(1.0 - self.smp_efficiency_slope * (t - 1), 0.1)
        return t * eff

    # -- communication ---------------------------------------------------

    def message_time(self, nbytes: float, src: int, dst: int, p: int) -> float:
        """End-to-end time of one point-to-point message."""
        if src == dst:
            # Local "message" = memory copy.
            return self.mem_time(nbytes)
        hops = self.topology.hops(src, dst, p)
        return self.alpha + hops * self.alpha_hop + nbytes * self.beta

    def peak_gflops(self, threads: int = 1) -> float:
        """Peak rate of one rank in Gflop/s (for %-of-peak reporting)."""
        return self.flop_rate * self.smp_speedup(threads) / 1e9
