"""Network topologies: hop counts between ranks.

The message-time model charges a per-hop latency increment on top of the
base latency, so topology only has to answer "how many hops from rank a to
rank b". Ranks map onto the topology in the natural order (which is also
how the subtree-to-subcube mapping hands out contiguous rank ranges — the
same locality argument the paper makes for subcube mappings on torus
networks).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class Topology(ABC):
    """Hop-count oracle for a machine of ``p`` ranks."""

    @abstractmethod
    def hops(self, a: int, b: int, p: int) -> int:
        """Network hops between ranks *a* and *b* on a *p*-rank machine."""


class FlatTopology(Topology):
    """Uniform network: every pair is one hop (crossbar / ideal switch)."""

    def hops(self, a: int, b: int, p: int) -> int:
        return 0 if a == b else 1


class Torus3D(Topology):
    """3D torus (Blue Gene-style): ranks folded into a near-cubic
    ``x × y × z`` box, hop count = wraparound Manhattan distance."""

    @staticmethod
    def _dims(p: int) -> tuple[int, int, int]:
        x = max(1, round(p ** (1.0 / 3.0)))
        while p % x:
            x -= 1
        rest = p // x
        y = max(1, int(math.isqrt(rest)))
        while rest % y:
            y -= 1
        z = rest // y
        return x, y, z

    @staticmethod
    def _coords(r: int, dims: tuple[int, int, int]) -> tuple[int, int, int]:
        x, y, _ = dims
        return r % x, (r // x) % y, r // (x * y)

    def hops(self, a: int, b: int, p: int) -> int:
        if a == b:
            return 0
        dims = self._dims(p)
        ca = self._coords(a, dims)
        cb = self._coords(b, dims)
        total = 0
        for d, (ia, ib) in zip(dims, zip(ca, cb)):
            delta = abs(ia - ib)
            total += min(delta, d - delta)
        return max(total, 1)


class FatTree(Topology):
    """Fat tree (cluster-style): hops = 2 · levels to the common ancestor
    with *radix*-way switches."""

    def __init__(self, radix: int = 16):
        if radix < 2:
            raise ValueError("radix must be >= 2")
        self.radix = radix

    def hops(self, a: int, b: int, p: int) -> int:
        if a == b:
            return 0
        level = 1
        span = self.radix
        while a // span != b // span:
            span *= self.radix
            level += 1
        return 2 * level
