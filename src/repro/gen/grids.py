"""Structured-mesh operators: 2D/3D finite-difference / finite-element
stencil matrices.

All generators return the **lower triangle** (diagonal included) of an SPD
matrix as a :class:`~repro.sparse.csc.CSCMatrix`, which is the input format
of the factorization pipeline. Vertices are numbered lexicographically
(x fastest).

These are the canonical model problems for sparse direct solvers: a 2D
``k × k`` grid has O(k) = O(n^{1/2}) separators, a 3D ``k × k × k`` grid has
O(k^2) = O(n^{2/3}) separators, which is exactly the regime distinction the
paper's scaling discussion rests on.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc
from repro.util.errors import ShapeError


def _lower_from_edges(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    diag: np.ndarray,
) -> CSCMatrix:
    """Assemble lower triangle from symmetric edge list (each edge given
    once, orientation arbitrary) plus explicit diagonal."""
    r = np.maximum(rows, cols)
    c = np.minimum(rows, cols)
    all_r = np.concatenate([np.arange(n, dtype=np.int64), r])
    all_c = np.concatenate([np.arange(n, dtype=np.int64), c])
    all_v = np.concatenate([diag, vals])
    return coo_to_csc(COOMatrix((n, n), all_r, all_c, all_v))


def grid2d_laplacian(nx: int, ny: int | None = None) -> CSCMatrix:
    """5-point Laplacian on an ``nx × ny`` grid (Dirichlet): lower triangle.

    Diagonal 4, off-diagonal -1 for mesh neighbours. SPD.
    """
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ShapeError("grid dimensions must be >= 1")
    n = nx * ny
    idx = np.arange(n, dtype=np.int64).reshape(ny, nx)
    h_edges = (idx[:, :-1].ravel(), idx[:, 1:].ravel())
    v_edges = (idx[:-1, :].ravel(), idx[1:, :].ravel())
    rows = np.concatenate([h_edges[0], v_edges[0]])
    cols = np.concatenate([h_edges[1], v_edges[1]])
    vals = np.full(rows.size, -1.0)
    diag = np.full(n, 4.0)
    return _lower_from_edges(n, rows, cols, vals, diag)


def grid3d_laplacian(nx: int, ny: int | None = None, nz: int | None = None) -> CSCMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid (Dirichlet): lower
    triangle. Diagonal 6, neighbours -1. SPD."""
    if ny is None:
        ny = nx
    if nz is None:
        nz = nx
    if nx < 1 or ny < 1 or nz < 1:
        raise ShapeError("grid dimensions must be >= 1")
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64).reshape(nz, ny, nx)
    ex = (idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel())
    ey = (idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel())
    ez = (idx[:-1, :, :].ravel(), idx[1:, :, :].ravel())
    rows = np.concatenate([ex[0], ey[0], ez[0]])
    cols = np.concatenate([ex[1], ey[1], ez[1]])
    vals = np.full(rows.size, -1.0)
    diag = np.full(n, 6.0)
    return _lower_from_edges(n, rows, cols, vals, diag)


def grid2d_9pt(nx: int, ny: int | None = None) -> CSCMatrix:
    """9-point (bilinear FEM-like) operator on an ``nx × ny`` grid: lower
    triangle. Diagonal 8, edge neighbours -1, diagonal neighbours -1/2,
    plus a Dirichlet shift to keep it SPD."""
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ShapeError("grid dimensions must be >= 1")
    n = nx * ny
    idx = np.arange(n, dtype=np.int64).reshape(ny, nx)
    pairs = []
    weights = []
    for (dy, dx), w in (
        ((0, 1), -1.0),
        ((1, 0), -1.0),
        ((1, 1), -0.5),
        ((1, -1), -0.5),
    ):
        a = idx[max(0, -dy): ny - max(0, dy), max(0, -dx): nx - max(0, dx)]
        b = idx[max(0, dy): ny - max(0, -dy), max(0, dx): nx - max(0, -dx)]
        pairs.append((a.ravel(), b.ravel()))
        weights.append(np.full(a.size, w))
    rows = np.concatenate([p[0] for p in pairs])
    cols = np.concatenate([p[1] for p in pairs])
    vals = np.concatenate(weights)
    # Diagonal strictly dominates the (at most 8) neighbour weights sum 6,
    # so the matrix is SPD even at interior vertices.
    diag = np.full(n, 8.0)
    return _lower_from_edges(n, rows, cols, vals, diag)


def grid3d_27pt(nx: int, ny: int | None = None, nz: int | None = None) -> CSCMatrix:
    """27-point (trilinear FEM-like) operator on a 3D grid: lower triangle.

    Weights: face neighbours -1, edge neighbours -1/2, corner neighbours
    -1/4; diagonal dominates the worst-case neighbour sum (6 + 12/2 + 8/4
    = 14), giving SPD.
    """
    if ny is None:
        ny = nx
    if nz is None:
        nz = nx
    if nx < 1 or ny < 1 or nz < 1:
        raise ShapeError("grid dimensions must be >= 1")
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64).reshape(nz, ny, nx)
    rows_list, cols_list, vals_list = [], [], []
    offsets = []
    for dz in (0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dz == 0 and (dy < 0 or (dy == 0 and dx <= 0)):
                    continue  # each undirected offset once
                offsets.append((dz, dy, dx))
    for dz, dy, dx in offsets:
        order = abs(dz) + abs(dy) + abs(dx)
        w = {1: -1.0, 2: -0.5, 3: -0.25}[order]
        a = idx[
            max(0, -dz): nz - max(0, dz),
            max(0, -dy): ny - max(0, dy),
            max(0, -dx): nx - max(0, dx),
        ]
        b = idx[
            max(0, dz): nz - max(0, -dz),
            max(0, dy): ny - max(0, -dy),
            max(0, dx): nx - max(0, -dx),
        ]
        rows_list.append(a.ravel())
        cols_list.append(b.ravel())
        vals_list.append(np.full(a.size, w))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = np.concatenate(vals_list)
    diag = np.full(n, 15.0)
    return _lower_from_edges(n, rows, cols, vals, diag)


def grid2d_anisotropic(nx: int, ny: int | None = None, epsilon: float = 0.01) -> CSCMatrix:
    """Anisotropic 5-point operator: x-coupling 1, y-coupling *epsilon*.

    Stresses orderings the way thin-shell structural meshes do (strongly
    coupled lines).
    """
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ShapeError("grid dimensions must be >= 1")
    if epsilon <= 0:
        raise ShapeError("epsilon must be positive")
    n = nx * ny
    idx = np.arange(n, dtype=np.int64).reshape(ny, nx)
    hr, hc = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    vr, vc = idx[:-1, :].ravel(), idx[1:, :].ravel()
    rows = np.concatenate([hr, vr])
    cols = np.concatenate([hc, vc])
    vals = np.concatenate([np.full(hr.size, -1.0), np.full(vr.size, -epsilon)])
    diag = np.full(n, 2.0 * (1.0 + epsilon))
    return _lower_from_edges(n, rows, cols, vals, diag)
