"""Problem generators.

The SC09 evaluation uses large industrial finite-element matrices (structural
analysis, sheet-metal forming). Those exact inputs are proprietary/huge, so
this package generates synthetic operators with the same structural character
— bounded-degree SPD matrices from 2D/3D meshes, whose separator structure
(and hence multifrontal scalability behaviour) matches the paper's problem
class at laptop scale.

See DESIGN.md ("Substitutions") for the full argument.
"""

from repro.gen.grids import (
    grid2d_laplacian,
    grid3d_laplacian,
    grid2d_9pt,
    grid3d_27pt,
    grid2d_anisotropic,
)
from repro.gen.elasticity import elasticity3d
from repro.gen.random_spd import random_spd_sparse, random_sym_pattern
from repro.gen.unstructured import unstructured2d
from repro.gen.convection import convection_diffusion2d
from repro.gen.paper_suite import paper_suite, PaperMatrix, get_paper_matrix

__all__ = [
    "grid2d_laplacian",
    "grid3d_laplacian",
    "grid2d_9pt",
    "grid3d_27pt",
    "grid2d_anisotropic",
    "elasticity3d",
    "random_spd_sparse",
    "random_sym_pattern",
    "unstructured2d",
    "convection_diffusion2d",
    "paper_suite",
    "PaperMatrix",
    "get_paper_matrix",
]
