"""Convection–diffusion operator: the canonical *unsymmetric* test problem.

Upwind-discretized convection on top of the 5-point diffusion stencil gives
a structurally symmetric but numerically unsymmetric, diagonally dominant
matrix — the standard workload for sparse LU solvers.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc
from repro.util.errors import ShapeError


def convection_diffusion2d(
    nx: int,
    ny: int | None = None,
    wind: tuple[float, float] = (1.0, 0.5),
    peclet: float = 0.5,
) -> CSCMatrix:
    """Full (general) CSC matrix of an upwind convection–diffusion operator
    on an ``nx × ny`` grid.

    Diffusion contributes the symmetric 5-point stencil; convection with
    velocity *wind* scaled by *peclet* adds first-order upwind differences,
    which skew the off-diagonals. Row-wise diagonal dominance is preserved
    for any wind (upwinding's defining property), so no-pivoting LU is
    stable on this operator.
    """
    if ny is None:
        ny = nx
    if nx < 1 or ny < 1:
        raise ShapeError("grid dimensions must be >= 1")
    if peclet < 0:
        raise ShapeError("peclet must be non-negative")
    wx, wy = float(wind[0]), float(wind[1])
    n = nx * ny
    idx = np.arange(n, dtype=np.int64).reshape(ny, nx)

    rows_l, cols_l, vals_l = [], [], []

    def add(r, c, v):
        rows_l.append(r.ravel())
        cols_l.append(c.ravel())
        vals_l.append(np.full(r.size, v))

    # Upwind convection coefficients: for positive wind the "upstream"
    # neighbour gets -|w|·pe, and the diagonal gains |w|·pe.
    cx = abs(wx) * peclet
    cy = abs(wy) * peclet
    # x-direction neighbours
    west = (idx[:, 1:], idx[:, :-1])   # (row, its west neighbour)
    east = (idx[:, :-1], idx[:, 1:])
    add(west[0], west[1], -1.0 - (cx if wx > 0 else 0.0))
    add(east[0], east[1], -1.0 - (cx if wx < 0 else 0.0))
    # y-direction neighbours
    south = (idx[1:, :], idx[:-1, :])
    north = (idx[:-1, :], idx[1:, :])
    add(south[0], south[1], -1.0 - (cy if wy > 0 else 0.0))
    add(north[0], north[1], -1.0 - (cy if wy < 0 else 0.0))

    diag_val = 4.0 + cx + cy
    add(idx, idx, diag_val)

    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    vals = np.concatenate(vals_l)
    return coo_to_csc(COOMatrix((n, n), rows, cols, vals))
