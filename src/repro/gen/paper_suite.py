"""The scaled "paper suite" — stand-ins for the SC09 test-matrix table.

The paper's evaluation reports a table of industrial test matrices
(structural analysis / sheet-metal-forming FE models in the audikw_1 /
ldoor / nd24k class). Those inputs are proprietary or far beyond pure-Python
scale, so the suite below defines named synthetic instances whose *kind* of
structure matches each archetype:

* ``cube-*``     3D scalar mesh (7-pt), the nd24k/bone010 archetype;
* ``hexmesh-*``  3D 27-pt mesh, denser fronts (audikw_1-like density);
* ``elast-*``    3D 3-dof elasticity blocks (structural mechanics archetype);
* ``shell-*``    thin 3D slab, the sheet-metal-forming archetype (one
  dimension much smaller, quasi-2D separators);
* ``plate-*``    2D 9-pt mesh (ldoor-like shell/plate limit).

Benchmark T1 regenerates the suite table (n, nnz, nnz(L), flops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sparse.csc import CSCMatrix
from repro.gen.grids import grid2d_9pt, grid3d_laplacian, grid3d_27pt
from repro.gen.elasticity import elasticity3d


@dataclass(frozen=True)
class PaperMatrix:
    """One named instance of the reproduction test suite."""

    name: str
    #: archetype the instance stands in for (documentation only)
    archetype: str
    #: generator returning the lower-triangular CSC matrix
    build: Callable[[], CSCMatrix]
    #: mesh descriptor for reporting
    mesh: str


def _suite() -> list[PaperMatrix]:
    return [
        PaperMatrix(
            "cube-s", "3D scalar FE mesh (nd24k-class)",
            lambda: grid3d_laplacian(8), "8x8x8, 7-pt",
        ),
        PaperMatrix(
            "cube-m", "3D scalar FE mesh (nd24k-class)",
            lambda: grid3d_laplacian(12), "12x12x12, 7-pt",
        ),
        PaperMatrix(
            "cube-l", "3D scalar FE mesh (bone010-class)",
            lambda: grid3d_laplacian(16), "16x16x16, 7-pt",
        ),
        PaperMatrix(
            "cube-xl", "3D scalar FE mesh, largest instance (af_shell-class)",
            lambda: grid3d_laplacian(20), "20x20x20, 7-pt",
        ),
        PaperMatrix(
            "hexmesh-m", "3D solid FE mesh, dense fronts (audikw_1-class)",
            lambda: grid3d_27pt(10), "10x10x10, 27-pt",
        ),
        PaperMatrix(
            "elast-s", "3D elasticity, 3 dof/vertex (structural mechanics)",
            lambda: elasticity3d(6), "6x6x6 x 3dof",
        ),
        PaperMatrix(
            "elast-m", "3D elasticity, 3 dof/vertex (structural mechanics)",
            lambda: elasticity3d(8), "8x8x8 x 3dof",
        ),
        PaperMatrix(
            "shell-m", "thin-slab forming mesh (sheet-metal archetype)",
            lambda: grid3d_laplacian(24, 24, 3), "24x24x3, 7-pt",
        ),
        PaperMatrix(
            "plate-m", "2D plate/shell limit (ldoor-class)",
            lambda: grid2d_9pt(32), "32x32, 9-pt",
        ),
        PaperMatrix(
            "plate-l", "2D plate/shell limit (ldoor-class)",
            lambda: grid2d_9pt(48), "48x48, 9-pt",
        ),
    ]


def paper_suite() -> list[PaperMatrix]:
    """The full named suite, smallest-first within each archetype."""
    return _suite()


def get_paper_matrix(name: str) -> PaperMatrix:
    """Look up a suite instance by name."""
    for m in _suite():
        if m.name == name:
            return m
    known = ", ".join(m.name for m in _suite())
    raise KeyError(f"unknown paper matrix {name!r}; known: {known}")
