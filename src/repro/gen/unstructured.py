"""Unstructured 2D mesh operator.

The structured-grid generators have perfectly regular separators; real FE
meshes do not. This generator scatters points in the unit square, connects
each to its spatial neighbours via cell binning (a proximity graph — the
same bounded-degree, planar-ish character as a triangulation), and
assembles a diagonally dominant SPD operator. Exercises orderings and the
mapping away from the structured sweet spot.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc
from repro.util.errors import ShapeError
from repro.util.rng import make_rng


def unstructured2d(
    n_points: int,
    radius_factor: float = 1.5,
    seed=None,
) -> CSCMatrix:
    """Lower triangle of an SPD operator on a random 2D point cloud.

    Points are uniform in the unit square; vertices within
    ``radius_factor / sqrt(n)`` of each other are coupled with weight
    -1/distance (closer = stiffer), and the diagonal dominates.

    The result is connected w.h.p. for ``radius_factor >= 1.5``; isolated
    vertices (possible at small n) keep a pure diagonal entry, which is
    still SPD.
    """
    if n_points < 1:
        raise ShapeError("n_points must be >= 1")
    if radius_factor <= 0:
        raise ShapeError("radius_factor must be positive")
    rng = make_rng(seed)
    pts = rng.random((n_points, 2))
    radius = radius_factor / max(np.sqrt(n_points), 1.0)

    # Cell binning: candidates only in the 3x3 neighbourhood of each cell.
    n_cells = max(int(1.0 / radius), 1)
    cell = np.minimum((pts * n_cells).astype(np.int64), n_cells - 1)
    cell_id = cell[:, 0] * n_cells + cell[:, 1]
    order = np.argsort(cell_id, kind="stable")
    bucket: dict[int, list[int]] = {}
    for idx in order:
        bucket.setdefault(int(cell_id[idx]), []).append(int(idx))

    rows_l: list[int] = []
    cols_l: list[int] = []
    vals_l: list[float] = []
    r2 = radius * radius
    for u in range(n_points):
        cx, cy = int(cell[u, 0]), int(cell[u, 1])
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                nx, ny = cx + dx, cy + dy
                if not (0 <= nx < n_cells and 0 <= ny < n_cells):
                    continue
                for v in bucket.get(nx * n_cells + ny, ()):
                    if v >= u:
                        continue
                    d2 = float(np.sum((pts[u] - pts[v]) ** 2))
                    if d2 <= r2 and d2 > 0:
                        w = -1.0 / np.sqrt(d2)
                        rows_l.append(u)
                        cols_l.append(v)
                        vals_l.append(w)

    rows = np.asarray(rows_l, dtype=np.int64)
    cols = np.asarray(cols_l, dtype=np.int64)
    vals = np.asarray(vals_l)
    absum = np.zeros(n_points)
    if rows.size:
        np.add.at(absum, rows, np.abs(vals))
        np.add.at(absum, cols, np.abs(vals))
    diag = absum + 1.0
    all_r = np.concatenate([np.arange(n_points, dtype=np.int64), rows])
    all_c = np.concatenate([np.arange(n_points, dtype=np.int64), cols])
    all_v = np.concatenate([diag, vals])
    return coo_to_csc(COOMatrix((n_points, n_points), all_r, all_c, all_v))
