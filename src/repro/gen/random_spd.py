"""Random SPD sparse matrices and random symmetric patterns.

Used for fuzzing the factorization pipeline with unstructured sparsity
(no mesh geometry), and as the adversarial counterpoint to the structured
generators in :mod:`repro.gen.grids`.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc
from repro.util.errors import ShapeError
from repro.util.rng import make_rng


def random_sym_pattern(n: int, avg_degree: float, seed=None) -> tuple[np.ndarray, np.ndarray]:
    """Random symmetric edge set (no self loops): returns (rows, cols) with
    rows > cols, expected ``n * avg_degree / 2`` edges."""
    if n < 1:
        raise ShapeError("n must be >= 1")
    if avg_degree < 0:
        raise ShapeError("avg_degree must be non-negative")
    rng = make_rng(seed)
    n_edges = int(round(n * avg_degree / 2))
    if n == 1 or n_edges == 0:
        z = np.empty(0, dtype=np.int64)
        return z, z
    a = rng.integers(0, n, size=2 * n_edges)
    b = rng.integers(0, n, size=2 * n_edges)
    keep = a != b
    a, b = a[keep][:n_edges], b[keep][:n_edges]
    hi = np.maximum(a, b)
    lo = np.minimum(a, b)
    # dedupe
    key = hi * n + lo
    _, first = np.unique(key, return_index=True)
    return hi[first].astype(np.int64), lo[first].astype(np.int64)


def random_spd_sparse(n: int, avg_degree: float = 4.0, seed=None) -> CSCMatrix:
    """Lower triangle of a random diagonally-dominant SPD matrix with
    ~``avg_degree`` off-diagonal entries per row.

    Off-diagonals are uniform in [-1, -0.1] ∪ [0.1, 1]; each diagonal entry
    is set to (row |off-diag| sum) + 1, making the matrix strictly
    diagonally dominant with positive diagonal, hence SPD.
    """
    rng = make_rng(seed)
    hi, lo = random_sym_pattern(n, avg_degree, rng)
    vals = rng.uniform(0.1, 1.0, size=hi.size) * rng.choice([-1.0, 1.0], size=hi.size)
    abssum = np.zeros(n)
    np.add.at(abssum, hi, np.abs(vals))
    np.add.at(abssum, lo, np.abs(vals))
    diag = abssum + 1.0
    rows = np.concatenate([np.arange(n, dtype=np.int64), hi])
    cols = np.concatenate([np.arange(n, dtype=np.int64), lo])
    data = np.concatenate([diag, vals])
    return coo_to_csc(COOMatrix((n, n), rows, cols, data))
