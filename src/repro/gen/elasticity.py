"""3D linear-elasticity-like vector operator.

The paper's headline matrices come from structural mechanics: three
displacement unknowns per mesh vertex, coupled both across mesh edges and
across components at a vertex. This generator reproduces that block
structure on a structured hex mesh — 3×3 SPD blocks on the diagonal, small
random symmetric coupling blocks on mesh edges — which triples n at fixed
mesh size and raises front density the way elasticity problems do relative
to scalar Laplacians.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc
from repro.util.errors import ShapeError
from repro.util.rng import make_rng

NDOF = 3  # displacement components per vertex


def elasticity3d(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    coupling: float = 0.25,
    seed=None,
) -> CSCMatrix:
    """Lower triangle of a 3-dof-per-vertex SPD operator on an
    ``nx × ny × nz`` grid.

    Parameters
    ----------
    coupling
        Magnitude scale of the off-diagonal 3×3 blocks; kept < 1/6 of the
        diagonal weight per neighbour so diagonal dominance guarantees SPD.
    seed
        Seed/Generator for the random coupling blocks (deterministic by
        default).
    """
    if ny is None:
        ny = nx
    if nz is None:
        nz = nx
    if nx < 1 or ny < 1 or nz < 1:
        raise ShapeError("grid dimensions must be >= 1")
    if not (0.0 < coupling):
        raise ShapeError("coupling must be positive")
    rng = make_rng(seed)
    nv = nx * ny * nz
    n = NDOF * nv
    idx = np.arange(nv, dtype=np.int64).reshape(nz, ny, nx)
    ex = (idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel())
    ey = (idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel())
    ez = (idx[:-1, :, :].ravel(), idx[1:, :, :].ravel())
    ea = np.concatenate([ex[0], ey[0], ez[0]])
    eb = np.concatenate([ex[1], ey[1], ez[1]])
    n_edges = ea.size

    # Random symmetric 3x3 coupling block per edge, scaled to row-sum <= coupling.
    blocks = rng.standard_normal((n_edges, NDOF, NDOF))
    blocks = (blocks + blocks.transpose(0, 2, 1)) / 2
    row_sums = np.abs(blocks).sum(axis=2).max(axis=1)  # max abs row sum per block
    blocks *= (coupling / np.maximum(row_sums, 1e-300))[:, None, None]

    # Off-diagonal (vertex-pair) entries: block at (max(a,b), min(a,b)).
    hi = np.maximum(ea, eb)
    lo = np.minimum(ea, eb)
    comp = np.arange(NDOF, dtype=np.int64)
    # rows = 3*hi + i, cols = 3*lo + j for the full 3x3 block.
    block_i = np.repeat(comp, NDOF)  # [0,0,0,1,1,1,2,2,2]
    block_j = np.tile(comp, NDOF)  # [0,1,2,0,1,2,0,1,2]
    rr = (NDOF * hi[:, None] + block_i[None, :]).ravel()
    cc = (NDOF * lo[:, None] + block_j[None, :]).ravel()
    vv = blocks.reshape(n_edges, NDOF * NDOF).ravel()

    # Diagonal blocks: 6*coupling*I + coupling*random SPD-ish symmetric with
    # dominance margin. Each vertex touches at most 6 edges, each of which
    # contributes at most `coupling` to any row sum, so a diagonal of
    # (6*coupling + 1) * I keeps the assembled matrix strictly diagonally
    # dominant. We add small symmetric intra-vertex coupling for realism.
    intra = rng.standard_normal((nv, NDOF, NDOF))
    intra = (intra + intra.transpose(0, 2, 1)) / 2
    intra_rs = np.abs(intra).sum(axis=2).max(axis=1)
    intra *= (0.5 * coupling / np.maximum(intra_rs, 1e-300))[:, None, None]
    dshift = 6.0 * coupling + 0.5 * coupling + 1.0
    for k in range(NDOF):
        intra[:, k, k] += dshift
    vtx = np.arange(nv, dtype=np.int64)
    # Keep lower triangle of each diagonal block.
    di, dj = np.tril_indices(NDOF)
    dr = (NDOF * vtx[:, None] + di[None, :]).ravel()
    dc = (NDOF * vtx[:, None] + dj[None, :]).ravel()
    dv = intra[:, di, dj].ravel()

    rows = np.concatenate([dr, rr])
    cols = np.concatenate([dc, cc])
    vals = np.concatenate([dv, vv])
    return coo_to_csc(COOMatrix((n, n), rows, cols, vals))
