"""Analytic performance model (no simulation).

A closed-form critical-path estimate of the parallel factorization time,
evaluated directly on the :class:`~repro.parallel.plan.FactorPlan`:

* a sequential subtree costs its total front work at the machine's
  small-front rate;
* a distributed front of order m with w pivots on a g-rank (gr × gc) grid
  costs its flops divided by g (at the blocked-kernel rate), plus per
  pivot-block-column the pipelined panel broadcasts
  (log₂-tree messages of nb² entries along grid rows and columns), plus its
  share of the extend-add volume;
* the tree composes as ``T(s) = own(s) + max over child branches`` —
  children of a distributed node run on disjoint rank subsets, so they
  overlap; a rank's own sequential supernodes serialize.

The model deliberately ignores load imbalance and message contention, so it
is a *lower envelope*: the DES should land above it but within a small
factor, and both must bend at the same place. Bench A3 checks exactly
that, and the model extends scaling curves to rank counts far beyond what
the executing simulator can hold.
"""

from __future__ import annotations

import math

import numpy as np

from repro.machine.model import MachineModel
from repro.parallel.plan import FactorPlan, PlanOptions
from repro.symbolic.analyze import SymbolicFactor, dense_partial_factor_flops


def _bcast_time(machine: MachineModel, nbytes: float, group_size: int) -> float:
    """Binomial broadcast estimate: ceil(log2(g)) sequential message hops."""
    if group_size <= 1:
        return 0.0
    hops = math.ceil(math.log2(group_size))
    return hops * (machine.alpha + nbytes * machine.beta)


def _dist_front_time(
    plan: FactorPlan, s: int, machine: MachineModel, threads: int
) -> float:
    """Model of one distributed front's partial factorization."""
    d = plan.dist[s]
    grid = d.grid
    g = grid.size
    nb = plan.opts.nb
    m, w = d.m, d.width
    flops = dense_partial_factor_flops(m, w)
    compute = machine.compute_time(flops / g, front_order=nb, threads=threads)

    # Communication per pivot block column: diagonal bcast down the column
    # (gr ranks), then for each remaining row block one row bcast (gc) and
    # one column bcast (gr) of an nb×nb block; the pipeline overlaps blocks
    # within a column, so charge the per-column critical path: one diag
    # bcast + (row blocks / gr) block broadcasts each way.
    npb = d.npb
    blk_bytes = 8.0 * nb * nb
    comm = 0.0
    for k in range(npb):
        row_blocks_below = max(d.nblocks - (k + 1), 0)
        comm += _bcast_time(machine, blk_bytes, grid.gr)  # diagonal
        per_rank_blocks = math.ceil(row_blocks_below / max(grid.gr, 1))
        comm += per_rank_blocks * (
            _bcast_time(machine, blk_bytes, grid.gc)
            + _bcast_time(machine, blk_bytes, grid.gr)
        )

    # Extend-add: each rank receives ~its share of the children's update
    # entries; charge the per-rank inbound volume as a single α+βn term per
    # child sender group.
    ea = 0.0
    for c in plan.sym.sn_children[s]:
        mu = plan.sym.front_size(c) - plan.sym.supernode_width(c)
        entries = mu * (mu + 1) // 2
        per_rank_bytes = 12.0 * entries / g
        senders = min(len(plan.dist[c].group), g)
        ea += senders * machine.alpha + per_rank_bytes * machine.beta
    return compute + comm + ea


def predict_factor_time(
    sym: SymbolicFactor,
    n_ranks: int,
    machine: MachineModel,
    options: PlanOptions | None = None,
    threads_per_rank: int = 1,
) -> float:
    """Predicted factorization makespan on the simulated machine."""
    plan = FactorPlan(sym, n_ranks, options)
    return predict_factor_time_from_plan(plan, machine, threads_per_rank)


def predict_factor_time_from_plan(
    plan: FactorPlan, machine: MachineModel, threads_per_rank: int = 1
) -> float:
    sym = plan.sym
    nsn = sym.n_supernodes
    t_node = np.zeros(nsn)

    # Sequential-subtree aggregate: per supernode, its own front cost at the
    # front-order-dependent rate.
    for s in range(nsn):
        d = plan.dist[s]
        if d.is_seq:
            flops = sym.supernode_flops(s)
            t_node[s] = machine.compute_time(
                flops, front_order=d.m, threads=threads_per_rank
            )
        else:
            t_node[s] = _dist_front_time(plan, s, machine, threads_per_rank)

    # Compose along the tree: children on disjoint groups overlap (max);
    # children sharing the same single rank serialize (sum).
    finish = np.zeros(nsn)
    for s in range(nsn):  # ascending = children first (postorder)
        ch = sym.sn_children[s]
        if not ch:
            finish[s] = t_node[s]
            continue
        d = plan.dist[s]
        child_fin = [finish[c] for c in ch]
        if d.is_seq:
            # Same rank processes every child subtree that shares its rank;
            # distinct-rank children (static policy) still overlap.
            same = [
                finish[c]
                for c in ch
                if plan.dist[c].is_seq and plan.dist[c].group == d.group
            ]
            other = [
                finish[c]
                for c in ch
                if not (plan.dist[c].is_seq and plan.dist[c].group == d.group)
            ]
            base = sum(same) + (max(other) if other else 0.0)
        else:
            base = max(child_fin)
        finish[s] = base + t_node[s]

    roots = sym.roots()
    if not roots:
        return 0.0
    # Roots owned by disjoint groups overlap; a rank owning several root
    # subtrees serializes them.
    per_rank: dict[tuple, float] = {}
    overall = 0.0
    for r in roots:
        grp = plan.dist[r].group
        if len(grp) == 1:
            per_rank[grp] = per_rank.get(grp, 0.0) + finish[r]
            overall = max(overall, per_rank[grp])
        else:
            overall = max(overall, finish[r])
    return float(overall)


def predict_scaling(
    sym: SymbolicFactor,
    rank_counts: list[int],
    machine: MachineModel,
    options: PlanOptions | None = None,
) -> list[tuple[int, float]]:
    """(p, predicted time) pairs for a strong-scaling sweep."""
    return [
        (p, predict_factor_time(sym, p, machine, options)) for p in rank_counts
    ]
