"""Plain-text rendering of scaling results (the benchmark harness output)."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import ScalingPoint
from repro.util.tables import format_table


def render_scaling_table(
    points: Sequence[ScalingPoint], title: str | None = None
) -> str:
    """The canonical strong-scaling table: one row per rank count."""
    headers = [
        "ranks",
        "threads",
        "time [ms]",
        "speedup",
        "eff",
        "Gflop/s",
        "%peak",
        "comm%",
        "msgs",
        "MB moved",
    ]
    rows = []
    for pt in points:
        rows.append(
            [
                pt.n_ranks,
                pt.threads_per_rank,
                pt.time * 1e3,
                pt.speedup,
                pt.efficiency,
                pt.gflops,
                pt.peak_fraction * 100,
                pt.comm_fraction * 100,
                pt.n_messages,
                pt.total_bytes / 1e6,
            ]
        )
    return format_table(headers, rows, title=title)


def render_series(
    x_label: str,
    xs: Sequence,
    columns: dict[str, Sequence],
    title: str | None = None,
) -> str:
    """Generic x-vs-columns table (figure-as-text output)."""
    headers = [x_label] + list(columns)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [col[i] for col in columns.values()])
    return format_table(headers, rows, title=title)
