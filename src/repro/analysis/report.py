"""Plain-text rendering of scaling results (the benchmark harness output)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.metrics import ScalingPoint
from repro.util.tables import format_table


def render_scaling_table(
    points: Sequence[ScalingPoint], title: str | None = None
) -> str:
    """The canonical strong-scaling table: one row per rank count."""
    headers = [
        "ranks",
        "threads",
        "time [ms]",
        "speedup",
        "eff",
        "Gflop/s",
        "%peak",
        "comm%",
        "msgs",
        "MB moved",
    ]
    rows = []
    for pt in points:
        rows.append(
            [
                pt.n_ranks,
                pt.threads_per_rank,
                pt.time * 1e3,
                pt.speedup,
                pt.efficiency,
                pt.gflops,
                pt.peak_fraction * 100,
                pt.comm_fraction * 100,
                pt.n_messages,
                pt.total_bytes / 1e6,
            ]
        )
    return format_table(headers, rows, title=title)


def render_counter_table(
    counters: dict[str, int], title: str | None = None
) -> str:
    """Name/value table of event counters (stable name order)."""
    rows = [[name, counters[name]] for name in sorted(counters)]
    return format_table(["counter", "value"], rows, title=title)


def render_latency_table(
    latencies: dict[str, "LatencySummary"], title: str | None = None
) -> str:
    """One row per phase: count, total/mean/p50/p95/max in milliseconds."""
    headers = ["phase", "count", "total ms", "mean ms", "p50 ms", "p95 ms", "max ms"]
    rows = []
    for name in sorted(latencies):
        s = latencies[name]
        rows.append(
            [
                name,
                s.count,
                round(s.total * 1e3, 3),
                round(s.mean * 1e3, 3),
                round(s.percentile(50) * 1e3, 3),
                round(s.percentile(95) * 1e3, 3),
                round(s.max * 1e3, 3),
            ]
        )
    return format_table(headers, rows, title=title)


@dataclass(frozen=True)
class LatencySummary:
    """Read-only summary of one latency distribution (seconds)."""

    count: int
    total: float
    min: float
    max: float
    #: ascending samples (the serving layer's histograms keep all of them;
    #: simulated traffic volumes make that affordable)
    sorted_samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.sorted_samples:
            return 0.0
        rank = max(0, int(len(self.sorted_samples) * p / 100.0 + 0.5) - 1)
        return self.sorted_samples[min(rank, len(self.sorted_samples) - 1)]


def render_series(
    x_label: str,
    xs: Sequence,
    columns: dict[str, Sequence],
    title: str | None = None,
) -> str:
    """Generic x-vs-columns table (figure-as-text output)."""
    headers = [x_label] + list(columns)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [col[i] for col in columns.values()])
    return format_table(headers, rows, title=title)
