"""Timeline rendering of simulation traces.

Produces per-rank activity summaries and an ASCII gantt view of what each
rank did when — the qualitative picture behind the paper family's overlap
and load-balance discussions.
"""

from __future__ import annotations

import numpy as np

from repro.simmpi.trace import KINDS, Trace
from repro.util.tables import format_table


def rank_activity_table(trace: Trace, n_ranks: int) -> str:
    """Per-rank seconds spent computing / sending / waiting."""
    rows = []
    for r in range(n_ranks):
        events = trace.for_rank(r)
        sums = {k: 0.0 for k in KINDS}
        for e in events:
            sums[e.kind] += e.duration
        busy = sums["compute"] + sums["send"]
        total = busy + sums["wait"]
        rows.append(
            [
                r,
                sums["compute"] * 1e3,
                sums["send"] * 1e3,
                sums["wait"] * 1e3,
                (busy / total * 100) if total else 100.0,
            ]
        )
    return format_table(
        ["rank", "compute [ms]", "send [ms]", "wait [ms]", "busy %"], rows
    )


def ascii_gantt(trace: Trace, n_ranks: int, width: int = 72) -> str:
    """ASCII timeline: one row per rank; ``#`` compute, ``>`` send,
    ``.`` wait, space idle/done."""
    span = trace.span()
    if span <= 0:
        return "(empty trace)"
    glyph = {"compute": "#", "send": ">", "wait": "."}
    lines = [f"0 {'-' * width} {span * 1e3:.3f} ms"]
    for r in range(n_ranks):
        row = [" "] * width
        for e in trace.for_rank(r):
            # Clamp: a zero-duration event exactly at the trace end would
            # compute a == width and silently fall off the row.
            a = min(int(e.start / span * width), width - 1)
            b = max(int(e.end / span * width), a + 1)
            for i in range(a, min(b, width)):
                # Compute wins over send wins over wait when buckets collide.
                cur = row[i]
                new = glyph[e.kind]
                order = {" ": 0, ".": 1, ">": 2, "#": 3}
                if order[new] > order[cur]:
                    row[i] = new
        lines.append(f"r{r:<3d} {''.join(row)}")
    lines.append("legend: # compute   > send   . wait")
    return "\n".join(lines)


def critical_rank(trace: Trace, n_ranks: int) -> int:
    """The rank with the largest busy time (the load-balance bottleneck)."""
    busy = np.zeros(n_ranks)
    for e in trace.events:
        if e.kind in ("compute", "send"):
            busy[e.rank] += e.duration
    return int(np.argmax(busy))
