"""Performance analysis and reporting.

Turns simulation results into the rows the paper's tables and figures
report: scaling series (time, GFLOPS, efficiency, communication fraction,
memory), load-imbalance statistics, and plain-text tables.
"""

from repro.analysis.metrics import (
    ScalingPoint,
    scaling_point,
    scaling_series,
    load_imbalance,
)
from repro.analysis.report import (
    LatencySummary,
    render_counter_table,
    render_latency_table,
    render_scaling_table,
    render_series,
)
from repro.analysis.model import (
    predict_factor_time,
    predict_factor_time_from_plan,
    predict_scaling,
)
from repro.analysis.tracing import (
    rank_activity_table,
    ascii_gantt,
    critical_rank,
)
from repro.analysis.memory import (
    predict_rank_entries,
    predict_peak_bytes_per_rank,
    min_feasible_ranks,
)

__all__ = [
    "ScalingPoint",
    "scaling_point",
    "scaling_series",
    "load_imbalance",
    "render_scaling_table",
    "render_series",
    "LatencySummary",
    "render_counter_table",
    "render_latency_table",
    "predict_factor_time",
    "predict_factor_time_from_plan",
    "predict_scaling",
    "rank_activity_table",
    "ascii_gantt",
    "critical_rank",
    "predict_rank_entries",
    "predict_peak_bytes_per_rank",
    "min_feasible_ranks",
]
