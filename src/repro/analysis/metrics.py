"""Scaling metrics derived from simulation results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.model import MachineModel
from repro.parallel.driver import ParallelFactorResult, simulate_factorization
from repro.parallel.plan import PlanOptions
from repro.symbolic.analyze import SymbolicFactor


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling curve."""

    n_ranks: int
    threads_per_rank: int
    #: simulated factorization time [s]
    time: float
    #: achieved factorization rate [Gflop/s]
    gflops: float
    #: fraction of the machine's aggregate peak
    peak_fraction: float
    #: T(1) / (p * T(p)) against the 1-rank reference
    efficiency: float
    #: speedup T(1)/T(p)
    speedup: float
    #: fraction of rank-time spent in communication
    comm_fraction: float
    #: total messages / bytes
    n_messages: int
    total_bytes: int
    #: max per-rank stored + transient factor entries
    peak_entries_per_rank: int

    @property
    def cores(self) -> int:
        return self.n_ranks * self.threads_per_rank


def scaling_point(
    res: ParallelFactorResult, t1: float
) -> ScalingPoint:
    """Build a scaling point from a factorization result and the 1-rank
    reference time *t1*."""
    p = res.plan.n_ranks
    t = res.makespan
    eff = t1 / (p * t) if t > 0 else 0.0
    return ScalingPoint(
        n_ranks=p,
        threads_per_rank=res.threads_per_rank,
        time=t,
        gflops=res.gflops,
        peak_fraction=res.peak_fraction,
        efficiency=eff,
        speedup=t1 / t if t > 0 else 0.0,
        comm_fraction=res.comm_fraction(),
        n_messages=res.sim.ledger.n_messages,
        total_bytes=res.sim.ledger.total_bytes,
        peak_entries_per_rank=int(res.peak_entries_by_rank().max()),
    )


def scaling_series(
    sym: SymbolicFactor,
    rank_counts: list[int],
    machine: MachineModel,
    options: PlanOptions | None = None,
    method: str = "cholesky",
    threads_per_rank: int = 1,
) -> list[ScalingPoint]:
    """Strong-scaling sweep over *rank_counts* (1-rank reference included
    in the efficiency computation, simulated once)."""
    opts = options or PlanOptions()
    ref = simulate_factorization(
        sym, 1, machine, opts, method=method, threads_per_rank=threads_per_rank
    )
    t1 = ref.makespan
    out = []
    for p in rank_counts:
        if p == 1:
            res = ref
        else:
            res = simulate_factorization(
                sym, p, machine, opts, method=method, threads_per_rank=threads_per_rank
            )
        out.append(scaling_point(res, t1))
    return out


def load_imbalance(res: ParallelFactorResult) -> float:
    """max/mean of per-rank busy time (1.0 = perfect balance)."""
    busy = np.asarray(
        [s.compute_time + s.send_time for s in res.sim.rank_stats]
    )
    mean = busy.mean()
    return float(busy.max() / mean) if mean > 0 else 1.0
