"""Symbolic per-rank memory prediction.

The memory-scalability argument of the paper family: with the 2D mapping,
per-rank memory shrinks ~1/p, so machines with small per-node memory (Blue
Gene!) can factor matrices no single node could hold. This module predicts
per-rank storage from the plan alone — no numeric execution — and answers
"how many ranks do I need to fit?".
"""

from __future__ import annotations

import numpy as np

from repro.parallel.plan import FactorPlan, PlanOptions
from repro.symbolic.analyze import SymbolicFactor
from repro.symbolic.supernodes import trapezoid_entries
from repro.util.errors import ShapeError

BYTES_PER_ENTRY = 8


def predict_rank_entries(plan: FactorPlan) -> np.ndarray:
    """Predicted peak entries per rank: stored factor share plus the
    largest transient (front + update) allocation the rank ever holds.

    Conservative in the same direction as the executing engine: transients
    of a sequential supernode are its full front plus its update matrix.
    """
    p = plan.n_ranks
    factor = np.zeros(p, dtype=np.int64)
    transient = np.zeros(p, dtype=np.int64)
    sym = plan.sym
    for s in range(sym.n_supernodes):
        d = plan.dist[s]
        m, w = d.m, d.width
        if d.is_seq:
            r = d.group[0]
            factor[r] += trapezoid_entries(m, w)
            t = m * m + (m - w) ** 2
            transient[r] = max(transient[r], t)
        else:
            # Block-cyclic shares: each rank's owned blocks.
            for rank in d.group:
                own = 0
                for bi, bj in d.grid.owned_blocks(rank, d.nblocks):
                    r0, r1 = d.block_range(bi)
                    c0, c1 = d.block_range(bj)
                    own += (r1 - r0) * (c1 - c0)
                transient[rank] = max(transient[rank], own)
            # Solve-ready row panels land on row owners.
            for bi in range(d.nblocks):
                r0, r1 = d.block_range(bi)
                factor[d.row_owner(bi)] += (r1 - r0) * w
    return factor + transient


def predict_peak_bytes_per_rank(plan: FactorPlan) -> int:
    """Max over ranks of the predicted peak, in bytes."""
    return int(predict_rank_entries(plan).max(initial=0)) * BYTES_PER_ENTRY


def min_feasible_ranks(
    sym: SymbolicFactor,
    bytes_per_rank: float,
    options: PlanOptions | None = None,
    max_ranks: int = 4096,
) -> int:
    """Smallest power-of-two rank count whose predicted per-rank peak fits
    in *bytes_per_rank*. Raises when even *max_ranks* does not fit."""
    if bytes_per_rank <= 0:
        raise ShapeError("bytes_per_rank must be positive")
    p = 1
    while p <= max_ranks:
        plan = FactorPlan(sym, p, options)
        if predict_peak_bytes_per_rank(plan) <= bytes_per_rank:
            return p
        p *= 2
    raise ShapeError(
        f"matrix does not fit {bytes_per_rank:.3g} bytes/rank even at "
        f"{max_ranks} ranks"
    )
