"""Undirected graph machinery for fill-reducing orderings.

The adjacency graph of a symmetric sparse matrix drives nested dissection:
traversal (:mod:`repro.graph.traversal`) finds pseudo-peripheral start
vertices and connected components, bisection (:mod:`repro.graph.bisection`)
splits vertex sets with level-set growing plus Fiduccia–Mattheyses-style
refinement, and separators (:mod:`repro.graph.separators`) converts the edge
cut into a small vertex separator.
"""

from repro.graph.structure import AdjacencyGraph
from repro.graph.traversal import (
    bfs_levels,
    connected_components,
    pseudo_peripheral_vertex,
)
from repro.graph.bisection import bisect
from repro.graph.separators import vertex_separator_from_bisection

__all__ = [
    "AdjacencyGraph",
    "bfs_levels",
    "connected_components",
    "pseudo_peripheral_vertex",
    "bisect",
    "vertex_separator_from_bisection",
]
