"""Multilevel graph bisection (METIS-style).

Coarsen by heavy-edge matching until the graph is small, bisect the
coarsest graph, then project back level by level with weighted
Fiduccia–Mattheyses refinement at each step. On mesh graphs this finds
separators close to the geometric optimum at a fraction of the flat-FM
cost, which is exactly why the ND codes this paper family depends on are
multilevel.

Coarse graphs carry vertex weights (contracted cluster sizes) and edge
weights (contracted multiplicities); balance is enforced on vertex weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.graph.traversal import bfs_levels, pseudo_peripheral_vertex
from repro.util.errors import OrderingError
from repro.util.rng import make_rng


@dataclass
class WeightedGraph:
    """CSR graph with vertex and edge weights (multilevel workhorse)."""

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    @property
    def n(self) -> int:
        return self.vwgt.size

    def neighbors(self, u: int) -> np.ndarray:
        return self.adjncy[self.xadj[u]: self.xadj[u + 1]]

    def edge_weights(self, u: int) -> np.ndarray:
        return self.adjwgt[self.xadj[u]: self.xadj[u + 1]]

    @classmethod
    def from_adjacency(cls, g: AdjacencyGraph) -> "WeightedGraph":
        return cls(
            xadj=g.xadj.copy(),
            adjncy=g.adjncy.copy(),
            adjwgt=np.ones(g.adjncy.size, dtype=np.int64),
            vwgt=np.ones(g.n, dtype=np.int64),
        )


def heavy_edge_matching(g: WeightedGraph, rng) -> np.ndarray:
    """Greedy heavy-edge matching: ``match[u]`` = partner (or u itself).

    Visits vertices in random order; each unmatched vertex takes its
    heaviest unmatched neighbour.
    """
    n = g.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for u in order:
        u = int(u)
        if match[u] >= 0:
            continue
        nbrs = g.neighbors(u)
        wgts = g.edge_weights(u)
        best, best_w = u, -1
        for v, w in zip(nbrs, wgts):
            v = int(v)
            if match[v] < 0 and v != u and w > best_w:
                best, best_w = v, int(w)
        match[u] = best
        match[best] = u
    return match


def contract(g: WeightedGraph, match: np.ndarray) -> tuple[WeightedGraph, np.ndarray]:
    """Contract matched pairs; returns (coarse graph, fine→coarse map)."""
    n = g.n
    cmap = np.full(n, -1, dtype=np.int64)
    nc = 0
    for u in range(n):
        if cmap[u] >= 0:
            continue
        v = int(match[u])
        cmap[u] = nc
        if v != u:
            cmap[v] = nc
        nc += 1
    # Aggregate edges into the coarse numbering.
    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    cu = cmap[src]
    cv = cmap[g.adjncy]
    keep = cu != cv  # drop internal (contracted) edges
    cu, cv, cw = cu[keep], cv[keep], g.adjwgt[keep]
    # Sum parallel edges via sorting on (cu, cv).
    key = cu * nc + cv
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    uniq = np.empty(key_s.size, dtype=bool)
    if key_s.size:
        uniq[0] = True
        np.not_equal(key_s[1:], key_s[:-1], out=uniq[1:])
    gid = np.cumsum(uniq) - 1 if key_s.size else np.empty(0, dtype=np.int64)
    n_edges = int(gid[-1]) + 1 if key_s.size else 0
    agg_w = np.zeros(n_edges, dtype=np.int64)
    np.add.at(agg_w, gid, cw[order])
    first = order[uniq] if key_s.size else np.empty(0, dtype=np.int64)
    e_u = cu[first]
    e_v = cv[first]
    counts = np.bincount(e_u, minlength=nc)
    xadj = np.zeros(nc + 1, dtype=np.int64)
    np.cumsum(counts, out=xadj[1:])
    # Entries are already sorted by (e_u, e_v).
    vwgt = np.zeros(nc, dtype=np.int64)
    np.add.at(vwgt, cmap, g.vwgt)
    coarse = WeightedGraph(xadj=xadj, adjncy=e_v, adjwgt=agg_w, vwgt=vwgt)
    return coarse, cmap


def _initial_bisection(g: WeightedGraph, balance: float, rng) -> np.ndarray:
    """BFS-grown weighted bisection of the coarsest graph."""
    n = g.n
    if n == 1:
        return np.zeros(1, dtype=bool)
    plain = AdjacencyGraph(n, g.xadj, g.adjncy, _skip_check=True)
    start = pseudo_peripheral_vertex(plain, int(rng.integers(0, n)))
    levels = bfs_levels(plain, start)
    sort_key = np.where(levels >= 0, levels, np.iinfo(np.int64).max)
    order = np.lexsort((np.arange(n), sort_key))
    total = int(g.vwgt.sum())
    side = np.zeros(n, dtype=bool)
    acc = 0
    for u in order:
        if acc >= total // 2:
            side[u] = True
        else:
            acc += int(g.vwgt[u])
    return side


def _weighted_fm_pass(g: WeightedGraph, side: np.ndarray, max_w: int) -> bool:
    """One weighted FM sweep (edge-weight gains, vertex-weight balance)."""
    n = g.n
    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    cut_edge = side[src] != side[g.adjncy]
    ext = np.zeros(n, dtype=np.int64)
    np.add.at(ext, src, np.where(cut_edge, g.adjwgt, 0))
    tot = np.zeros(n, dtype=np.int64)
    np.add.at(tot, src, g.adjwgt)
    gains = 2 * ext - tot

    locked = np.zeros(n, dtype=bool)
    w1 = int(g.vwgt[side].sum())
    sizes = [int(g.vwgt.sum()) - w1, w1]
    moves: list[int] = []
    cum = best = 0
    best_prefix = 0
    for _ in range(n):
        room1 = sizes[1] < max_w
        room0 = sizes[0] < max_w
        can = ~locked & np.where(side, room0, room1)
        cand = np.flatnonzero(can)
        if cand.size == 0:
            break
        v = int(cand[np.argmax(gains[cand])])
        gv = int(gains[v])
        s = int(side[v])
        wv = int(g.vwgt[v])
        if sizes[1 - s] + wv > max_w:
            locked[v] = True
            continue
        sizes[s] -= wv
        sizes[1 - s] += wv
        side[v] = not side[v]
        locked[v] = True
        moves.append(v)
        cum += gv
        if cum > best:
            best = cum
            best_prefix = len(moves)
        gains[v] = -gv
        for k in range(int(g.xadj[v]), int(g.xadj[v + 1])):
            u = int(g.adjncy[k])
            w = int(g.adjwgt[k])
            if side[u] != side[v]:
                gains[u] += 2 * w
            else:
                gains[u] -= 2 * w
    for v in moves[best_prefix:]:
        side[v] = not side[v]
    return best > 0


def bisect_multilevel(
    g: AdjacencyGraph,
    balance: float = 0.55,
    coarsest: int = 40,
    refine_passes: int = 3,
    seed=0,
) -> np.ndarray:
    """Multilevel bisection of *g*; returns the boolean side array
    (same contract as :func:`repro.graph.bisection.bisect`)."""
    if not (0.5 < balance <= 1.0):
        raise OrderingError(f"balance must be in (0.5, 1]; got {balance}")
    n = g.n
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n == 1:
        return np.zeros(1, dtype=bool)
    rng = make_rng(seed)

    levels: list[tuple[WeightedGraph, np.ndarray]] = []
    wg = WeightedGraph.from_adjacency(g)
    while wg.n > coarsest:
        match = heavy_edge_matching(wg, rng)
        coarse, cmap = contract(wg, match)
        if coarse.n >= wg.n:  # matching stalled (e.g. no edges)
            break
        levels.append((wg, cmap))
        wg = coarse

    total = int(wg.vwgt.sum())
    max_w = max(int(np.floor(balance * total)), total // 2 + total % 2)
    side = _initial_bisection(wg, balance, rng)
    for _ in range(refine_passes):
        if not _weighted_fm_pass(wg, side, max_w):
            break

    # Uncoarsen with refinement at every level.
    for fine, cmap in reversed(levels):
        side = side[cmap]
        ftotal = int(fine.vwgt.sum())
        fmax = max(int(np.floor(balance * ftotal)), ftotal // 2 + ftotal % 2)
        for _ in range(refine_passes):
            if not _weighted_fm_pass(fine, side, fmax):
                break
    return side
