"""Graph bisection: BFS level-set growing plus Fiduccia–Mattheyses-style
edge-cut refinement.

This is the work-horse under nested dissection. It aims for the quality/
simplicity point of early METIS: grow a half from a pseudo-peripheral
vertex, then a few FM passes moving boundary vertices by gain under a
balance constraint.
"""

from __future__ import annotations

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.graph.traversal import bfs_levels, pseudo_peripheral_vertex
from repro.util.errors import OrderingError


def bisect(
    g: AdjacencyGraph,
    balance: float = 0.55,
    refine_passes: int = 4,
    start: int | None = None,
) -> np.ndarray:
    """Split the vertices of *g* into two parts.

    Returns a boolean array ``side`` of length ``g.n``: ``False`` = part 0,
    ``True`` = part 1. Each part holds at most ``balance * n`` vertices
    (for n >= 2). Works per connected component implicitly: unreachable
    vertices are assigned greedily to the smaller part.

    Parameters
    ----------
    balance
        Maximum fraction of vertices either part may hold (0.5 < balance <= 1).
    refine_passes
        Number of FM refinement sweeps over the boundary.
    start
        Optional fixed BFS start vertex (default: pseudo-peripheral pick).
    """
    n = g.n
    if not (0.5 < balance <= 1.0):
        raise OrderingError(f"balance must be in (0.5, 1]; got {balance}")
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n == 1:
        return np.zeros(1, dtype=bool)

    if start is None:
        start = pseudo_peripheral_vertex(g, 0)
    levels = bfs_levels(g, start)

    # Order vertices by (level, index); unreachable (-1) go last.
    sort_key = np.where(levels >= 0, levels, np.iinfo(np.int64).max)
    order = np.lexsort((np.arange(n), sort_key))
    half = n // 2
    side = np.zeros(n, dtype=bool)
    side[order[half:]] = True

    max_part = int(np.floor(balance * n))
    max_part = max(max_part, half + (n % 2))  # always feasible
    for _ in range(refine_passes):
        if not _fm_pass(g, side, max_part):
            break
    return side


def cut_size(g: AdjacencyGraph, side: np.ndarray) -> int:
    """Number of edges crossing the partition."""
    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    return int(np.count_nonzero(side[src] != side[g.adjncy])) // 2


def _gains(g: AdjacencyGraph, side: np.ndarray) -> np.ndarray:
    """FM gain of moving each vertex to the other side:
    (# cut-edges at v) - (# uncut-edges at v)."""
    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    cut_edge = side[src] != side[g.adjncy]
    ext = np.zeros(g.n, dtype=np.int64)
    np.add.at(ext, src, cut_edge.astype(np.int64))
    return 2 * ext - deg


def _fm_pass(g: AdjacencyGraph, side: np.ndarray, max_part: int) -> bool:
    """One FM sweep with vertex locking and rollback to the best prefix.

    Mutates *side* in place; returns True when the pass improved the cut.
    """
    n = g.n
    gains = _gains(g, side)
    locked = np.zeros(n, dtype=bool)
    part1_size = int(side.sum())
    sizes = [n - part1_size, part1_size]

    moves: list[int] = []
    cum_gain = 0
    best_gain = 0
    best_prefix = 0

    for _ in range(n):
        # Candidates: unlocked vertices whose target part won't exceed
        # max_part. The target-part capacity is one scalar per side.
        room_in_1 = sizes[1] < max_part  # vertices on side 0 move to 1
        room_in_0 = sizes[0] < max_part  # vertices on side 1 move to 0
        can_move = ~locked & np.where(side, room_in_0, room_in_1)
        cand = np.flatnonzero(can_move)
        if cand.size == 0:
            break
        v = int(cand[np.argmax(gains[cand])])
        g_v = int(gains[v])
        if g_v < 0 and cum_gain + g_v <= best_gain - n:
            break  # hopeless tail; bail early
        # Apply the move.
        s = int(side[v])
        sizes[s] -= 1
        sizes[1 - s] += 1
        side[v] = not side[v]
        locked[v] = True
        moves.append(v)
        cum_gain += g_v
        if cum_gain > best_gain:
            best_gain = cum_gain
            best_prefix = len(moves)
        # Update neighbour gains incrementally; v's own gain flips sign.
        gains[v] = -g_v
        for u in g.neighbors(v):
            u = int(u)
            # Edge (u, v): if it is now cut it previously was not, and vice
            # versa. Gain delta is +2 when it became cut, -2 otherwise.
            if side[u] != side[v]:
                gains[u] += 2
            else:
                gains[u] -= 2

    # Roll back past the best prefix.
    for v in moves[best_prefix:]:
        side[v] = not side[v]
    return best_gain > 0
