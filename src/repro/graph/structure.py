"""Adjacency-graph representation (CSR-like, symmetric, no self loops)."""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.coo import COOMatrix
from repro.sparse.convert import csc_to_coo, coo_to_csr
from repro.util.errors import ShapeError
from repro.util.validation import as_index_array


class AdjacencyGraph:
    """Undirected graph stored as symmetric CSR adjacency (both directions
    of every edge present, rows sorted, no self loops).

    Attributes
    ----------
    n : int
        Number of vertices.
    xadj, adjncy : ndarray
        CSR-style pointers and neighbour lists (METIS naming).
    """

    __slots__ = ("n", "xadj", "adjncy")

    def __init__(self, n: int, xadj, adjncy, *, _skip_check: bool = False):
        self.n = int(n)
        self.xadj = as_index_array(xadj, "xadj")
        self.adjncy = as_index_array(adjncy, "adjncy")
        if not _skip_check:
            self._validate()

    def _validate(self) -> None:
        if self.xadj.shape != (self.n + 1,) or self.xadj[0] != 0:
            raise ShapeError("xadj must have length n+1 and start at 0")
        if np.any(np.diff(self.xadj) < 0) or self.xadj[-1] != self.adjncy.size:
            raise ShapeError("xadj must be non-decreasing and end at len(adjncy)")
        if self.adjncy.size:
            if self.adjncy.min() < 0 or self.adjncy.max() >= self.n:
                raise ShapeError("adjncy entries out of range")
        for u in range(self.n):
            nbrs = self.neighbors(u)
            if np.any(nbrs == u):
                raise ShapeError(f"self loop at vertex {u}")
            if nbrs.size > 1 and np.any(np.diff(nbrs) <= 0):
                raise ShapeError(f"unsorted/duplicate neighbours at vertex {u}")
        # symmetry: every directed edge has its reverse
        deg = np.diff(self.xadj)
        src = np.repeat(np.arange(self.n, dtype=np.int64), deg)
        fwd = set(zip(src.tolist(), self.adjncy.tolist()))
        for u, v in fwd:
            if (v, u) not in fwd:
                raise ShapeError(f"edge ({u},{v}) has no reverse")

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.adjncy.size) // 2

    def degree(self, u: int) -> int:
        return int(self.xadj[u + 1] - self.xadj[u])

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)

    def neighbors(self, u: int) -> np.ndarray:
        """View of the sorted neighbour list of *u*."""
        return self.adjncy[self.xadj[u]: self.xadj[u + 1]]

    @classmethod
    def from_symmetric_lower(cls, lower: CSCMatrix) -> "AdjacencyGraph":
        """Adjacency graph of a symmetric matrix given as its lower triangle
        (diagonal entries ignored)."""
        if lower.shape[0] != lower.shape[1]:
            raise ShapeError("matrix must be square")
        coo = csc_to_coo(lower)
        off = coo.row != coo.col
        r, c = coo.row[off], coo.col[off]
        return cls.from_edges(lower.shape[0], r, c)

    @classmethod
    def from_edges(cls, n: int, a, b) -> "AdjacencyGraph":
        """Build from an undirected edge list (self loops and duplicates
        removed)."""
        a = as_index_array(a, "a")
        b = as_index_array(b, "b")
        keep = a != b
        a, b = a[keep], b[keep]
        rows = np.concatenate([a, b])
        cols = np.concatenate([b, a])
        ones = np.ones(rows.size)
        csr = coo_to_csr(COOMatrix((n, n), rows, cols, ones))
        return cls(n, csr.indptr, csr.indices, _skip_check=True)

    def subgraph(self, vertices) -> tuple["AdjacencyGraph", np.ndarray]:
        """Induced subgraph on *vertices*.

        Returns ``(sub, vmap)`` where ``vmap[k]`` is the original id of the
        subgraph vertex ``k``.
        """
        vmap = as_index_array(vertices, "vertices")
        inv = np.full(self.n, -1, dtype=np.int64)
        inv[vmap] = np.arange(vmap.size, dtype=np.int64)
        xadj = [0]
        adjncy = []
        for k in range(vmap.size):
            local = inv[self.neighbors(vmap[k])]
            local = local[local >= 0]
            adjncy.append(np.sort(local))
            xadj.append(xadj[-1] + local.size)
        adj = np.concatenate(adjncy) if adjncy else np.empty(0, dtype=np.int64)
        sub = AdjacencyGraph(
            vmap.size, np.asarray(xadj, dtype=np.int64), adj, _skip_check=True
        )
        return sub, vmap

    def __repr__(self) -> str:
        return f"AdjacencyGraph(n={self.n}, edges={self.n_edges})"
