"""Vertex separators from edge bisections.

Nested dissection needs a *vertex* separator S such that removing S
disconnects the remaining vertices into the two halves. We derive S from the
edge cut of :func:`repro.graph.bisection.bisect` with a greedy
minimum-vertex-cover pass over the cut edges (taking the endpoint covering
more uncovered cut edges), which in practice stays close to the smaller
boundary side on mesh graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.structure import AdjacencyGraph


def vertex_separator_from_bisection(
    g: AdjacencyGraph, side: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert an edge bisection into ``(part0, part1, sep)`` index arrays.

    ``sep`` is a vertex cover of the cut edges; ``part0``/``part1`` are the
    remaining vertices of each side. Guarantees: the three sets partition
    ``range(n)``, and no edge joins part0 to part1.
    """
    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    cut_mask = side[src] != side[g.adjncy]
    # Undirected cut edges listed once.
    cu = src[cut_mask]
    cv = g.adjncy[cut_mask]
    once = cu < cv
    cu, cv = cu[once], cv[once]

    in_sep = np.zeros(g.n, dtype=bool)
    if cu.size:
        # Greedy cover: repeatedly take the endpoint with the highest count
        # of uncovered cut edges.
        alive = np.ones(cu.size, dtype=bool)
        counts = np.zeros(g.n, dtype=np.int64)
        np.add.at(counts, cu, 1)
        np.add.at(counts, cv, 1)
        # Process until all cut edges covered.
        while alive.any():
            v = int(np.argmax(counts))
            if counts[v] == 0:
                # Remaining alive edges must already be covered — defensive.
                break
            in_sep[v] = True
            hit = alive & ((cu == v) | (cv == v))
            # Decrement endpoint counts of newly covered edges.
            np.subtract.at(counts, cu[hit], 1)
            np.subtract.at(counts, cv[hit], 1)
            alive &= ~hit
            counts[v] = 0

    verts = np.arange(g.n, dtype=np.int64)
    sep = verts[in_sep]
    part0 = verts[~in_sep & ~side]
    part1 = verts[~in_sep & side]
    return part0, part1, sep


def is_separator(g: AdjacencyGraph, part0: np.ndarray, part1: np.ndarray) -> bool:
    """Check that no edge joins *part0* to *part1* (used by tests and by
    the ordering layer's self-check mode)."""
    mark = np.zeros(g.n, dtype=np.int8)
    mark[part0] = 1
    mark[part1] = 2
    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    a = mark[src]
    b = mark[g.adjncy]
    return not np.any((a == 1) & (b == 2))
