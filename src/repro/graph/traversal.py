"""Graph traversal: BFS level structures, connected components,
pseudo-peripheral vertices.

These feed both RCM ordering (level structures) and nested-dissection
bisection (start-vertex selection, per-component recursion).
"""

from __future__ import annotations

import numpy as np

from repro.graph.structure import AdjacencyGraph


def bfs_levels(g: AdjacencyGraph, start: int) -> np.ndarray:
    """BFS distance of every vertex from *start* (-1 where unreachable)."""
    levels = np.full(g.n, -1, dtype=np.int64)
    levels[start] = 0
    frontier = [start]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for u in frontier:
            for v in g.neighbors(u):
                v = int(v)
                if levels[v] < 0:
                    levels[v] = depth
                    nxt.append(v)
        frontier = nxt
    return levels


def connected_components(g: AdjacencyGraph) -> np.ndarray:
    """Component label per vertex (labels are 0..k-1, in discovery order)."""
    comp = np.full(g.n, -1, dtype=np.int64)
    label = 0
    for s in range(g.n):
        if comp[s] >= 0:
            continue
        comp[s] = label
        stack = [s]
        while stack:
            u = stack.pop()
            for v in g.neighbors(u):
                v = int(v)
                if comp[v] < 0:
                    comp[v] = label
                    stack.append(v)
        label += 1
    return comp


def pseudo_peripheral_vertex(g: AdjacencyGraph, start: int = 0, max_iter: int = 10) -> int:
    """George–Liu pseudo-peripheral vertex heuristic.

    Repeatedly BFS from the current candidate and jump to a minimum-degree
    vertex in the deepest level until the eccentricity stops growing.
    Operates within the component of *start*.
    """
    u = start
    levels = bfs_levels(g, u)
    ecc = int(levels.max(initial=0))
    for _ in range(max_iter):
        reachable = levels >= 0
        deepest = np.flatnonzero((levels == levels[reachable].max()) & reachable)
        degs = g.degrees()[deepest]
        cand = int(deepest[np.argmin(degs)])
        cand_levels = bfs_levels(g, cand)
        cand_ecc = int(cand_levels[cand_levels >= 0].max(initial=0))
        if cand_ecc <= ecc:
            break
        u, levels, ecc = cand, cand_levels, cand_ecc
    return u
