"""Command-line interface.

Subcommands mirror the workflow of the library:

* ``info``     — analyze a problem and print the symbolic statistics;
* ``solve``    — factor and solve, print accuracy diagnostics;
* ``scale``    — simulated strong-scaling sweep on a machine model;
* ``compare``  — baseline solver comparison at given rank counts;
* ``suite``    — print the paper-suite inventory table (T1);
* ``serve-sim``— replay a synthetic transient-FE request trace through the
  serving layer (``repro.service``) and print its metrics report;
* ``check``    — correctness tooling (``repro.check``): project lint,
  comm-trace race/deadlock analysis, happens-before race checking and
  seeded schedule fuzzing of the threaded backend, and the checker
  self-test;
* ``obs``      — observability run (``repro.obs``): solve + simulate one
  problem under span recording, print phase/metrics/hot-front reports,
  and export a merged Chrome trace (``--trace-out``).

Problems come from ``--mesh KIND:SIZE`` (generators) or ``--matrix FILE``
(Matrix Market). Run ``python -m repro.cli <cmd> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.solver import SparseSolver
from repro.gen import (
    convection_diffusion2d,
    elasticity3d,
    grid2d_9pt,
    grid2d_anisotropic,
    grid2d_laplacian,
    grid3d_27pt,
    grid3d_laplacian,
    paper_suite,
    random_spd_sparse,
    unstructured2d,
)
from repro.machine import get_machine
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc
from repro.sparse.io_mm import read_matrix_market
from repro.sparse.ops import tril
from repro.util.errors import RaceError, ReproError, ShapeError
from repro.util.rng import make_rng
from repro.util.tables import format_table

MESH_KINDS = {
    "cube": grid3d_laplacian,
    "cube27": grid3d_27pt,
    "plate": grid2d_laplacian,
    "plate9": grid2d_9pt,
    "aniso": grid2d_anisotropic,
    "elast": elasticity3d,
    "random": lambda n: random_spd_sparse(n, avg_degree=5, seed=0),
    "unstructured": lambda n: unstructured2d(n, seed=0),
    "convdiff": lambda n: convection_diffusion2d(n, peclet=1.0),
}

#: mesh kinds producing unsymmetric matrices (handled by the LU solver)
UNSYM_KINDS = {"convdiff"}


def build_matrix(args) -> CSCMatrix:
    """Resolve --mesh / --matrix into the lower-triangular CSC input."""
    if args.matrix:
        coo, info = read_matrix_market(args.matrix)
        full = coo_to_csc(coo)
        return tril(full)
    if not args.mesh:
        raise ShapeError("provide --mesh KIND:SIZE or --matrix FILE")
    try:
        kind, size_s = args.mesh.split(":", 1)
        size = int(size_s)
    except ValueError:
        raise ShapeError(
            f"--mesh must look like cube:12; got {args.mesh!r}"
        ) from None
    try:
        builder = MESH_KINDS[kind]
    except KeyError:
        raise ShapeError(
            f"unknown mesh kind {kind!r}; known: {sorted(MESH_KINDS)}"
        ) from None
    return builder(size)


def cmd_info(args) -> int:
    a = build_matrix(args)
    solver = SparseSolver(a, method=args.method, ordering=args.ordering)
    info = solver.analyze()
    print(
        format_table(
            ["field", "value"],
            [
                ["n", info.n],
                ["nnz(tril A)", info.nnz_a],
                ["nnz(L)", info.nnz_factor],
                ["stored entries", info.nnz_stored],
                ["fill ratio", round(info.fill_ratio, 3)],
                ["factor Mflop", round(info.factor_flops / 1e6, 3)],
                ["solve Mflop", round(info.solve_flops / 1e6, 3)],
                ["supernodes", info.n_supernodes],
                ["analyze wall [s]", round(info.wall_time, 3)],
            ],
            title=f"analysis ({args.ordering} ordering)",
        )
    )
    return 0


def cmd_solve(args) -> int:
    a = build_matrix(args)
    n = a.shape[0]
    unsym = args.lu or (
        args.mesh and args.mesh.split(":", 1)[0] in UNSYM_KINDS
    )
    if args.rhs == "ones":
        b = np.ones(n)
    else:
        b = make_rng(args.seed).standard_normal(n)
    if unsym:
        from repro.core.lu_solver import UnsymmetricSolver

        if args.backend != "seq":
            print(
                "note: --backend applies to the symmetric solver only; "
                "the LU path runs sequentially",
                file=sys.stderr,
            )
        lu = UnsymmetricSolver(a, ordering=args.ordering)
        res = lu.solve(b, refine=not args.no_refine)
        print(
            f"n={n}  solver=lu  residual={res.residual:.3e}  "
            f"refine_iters={res.refinement_iterations}"
        )
        return 0 if res.residual < 1e-8 else 1
    solver = SparseSolver(a, method=args.method, ordering=args.ordering)
    solver.factor(
        backend=args.backend, workers=args.workers, precision=args.precision
    )
    res = solver.solve(
        b,
        refine=not args.no_refine,
        backend=args.backend,
        workers=args.workers,
    )
    print(
        f"n={n}  residual={res.residual:.3e}  "
        f"refine_iters={res.refinement_iterations}  precision={res.precision}"
    )
    if args.condest:
        print(f"condition estimate (1-norm): {solver.condition_estimate():.3e}")
    return 0 if res.residual < 1e-8 else 1


def _parse_ranks(spec: str) -> list[int]:
    try:
        ranks = [int(tok) for tok in spec.split(",") if tok]
    except ValueError:
        raise ShapeError(f"--ranks must be comma-separated ints; got {spec!r}")
    if not ranks or any(r < 1 for r in ranks):
        raise ShapeError("--ranks must contain positive integers")
    return ranks


def cmd_scale(args) -> int:
    from repro.analysis import render_scaling_table, scaling_series
    from repro.parallel import PlanOptions

    a = build_matrix(args)
    solver = SparseSolver(a, method=args.method, ordering=args.ordering)
    solver.analyze()
    machine = get_machine(args.machine)
    pts = scaling_series(
        solver.sym,
        _parse_ranks(args.ranks),
        machine,
        PlanOptions(nb=args.nb, policy=args.policy),
        method=args.method,
        threads_per_rank=args.threads,
    )
    print(
        render_scaling_table(
            pts,
            title=(
                f"strong scaling on {machine.name} "
                f"(policy={args.policy}, nb={args.nb}, threads={args.threads})"
            ),
        )
    )
    return 0


def cmd_compare(args) -> int:
    from repro.baselines import BASELINES, simulate_baseline

    a = build_matrix(args)
    solver = SparseSolver(a, method=args.method, ordering=args.ordering)
    solver.analyze()
    machine = get_machine(args.machine)
    names = list(BASELINES)
    rows = []
    for p in _parse_ranks(args.ranks):
        row = [p]
        for name in names:
            res = simulate_baseline(
                name, solver.sym, p, machine, nb=args.nb, method=args.method
            )
            row.append(round(res.makespan * 1e3, 4))
        rows.append(row)
    print(
        format_table(
            ["ranks"] + names,
            rows,
            title=f"factor time [ms] by solver on {machine.name}",
        )
    )
    return 0


def cmd_suite(args) -> int:
    rows = []
    for m in paper_suite():
        lower = m.build()
        rows.append([m.name, m.mesh, lower.shape[0], lower.nnz, m.archetype])
    print(
        format_table(
            ["name", "mesh", "n", "nnz(tril)", "archetype"],
            rows,
            title="paper suite",
        )
    )
    return 0


def cmd_serve_sim(args) -> int:
    """Drive the serving layer with a synthetic transient-analysis trace:
    repeated numeric refactorizations on one base pattern (values drift per
    step, the nonlinear/transient workflow), interleaved with a handful of
    fresh patterns that must miss the analysis cache."""
    from repro.core import ParallelConfig
    from repro.service import AdmissionError, COMPLETED, ServiceConfig, SolverService
    from repro.util.timing import WallTimer

    parallel = None
    if args.ranks_served > 0:
        parallel = ParallelConfig(
            n_ranks=args.ranks_served,
            machine=get_machine(args.machine),
            nb=args.nb,
        )
    service = SolverService(
        ServiceConfig(
            cache_enabled=not args.no_cache,
            coalesce=not args.no_coalesce,
            ordering=args.ordering,
            parallel=parallel,
            backend=args.backend,
            workers=args.workers,
            precision=args.precision,
            queue_policy=args.queue_policy,
            fleet_workers=args.fleet_workers,
            shards=args.shards,
            max_pending=args.max_pending,
            tenant_quota=args.tenant_quota,
        )
    )
    if not args.mesh and not args.matrix:
        args.mesh = "plate:8"
    base = build_matrix(args)
    n = base.shape[0]
    rng = make_rng(args.seed)
    fresh = [
        random_spd_sparse(24 + 8 * i, avg_degree=5, seed=args.seed + i)
        for i in range(args.new_patterns)
    ]
    results = {}
    rejected = 0

    def submit(matrix, rhs, priority, tenant):
        nonlocal rejected
        try:
            service.submit(matrix, rhs, method=args.method, priority=priority,
                           tenant=tenant)
        except AdmissionError:
            # Trace driver's backpressure response: drain the queue to make
            # room, then resubmit once (the request is not dropped).
            rejected += 1
            results.update(service.drain())
            service.submit(matrix, rhs, method=args.method, priority=priority,
                           tenant=tenant)

    with WallTimer() as t:
        for step in range(args.steps):
            scaled = CSCMatrix(
                base.shape,
                base.indptr,
                base.indices,
                base.data * (1.0 + 0.5 * step / max(args.steps, 1)),
                _skip_check=True,
            )
            submit(
                scaled,
                rng.standard_normal(n),
                priority=0,
                tenant=f"tenant{step % max(args.tenants, 1)}",
            )
            if args.new_patterns and step % max(args.steps // args.new_patterns, 1) == 1:
                i = min(step * args.new_patterns // args.steps, args.new_patterns - 1)
                submit(
                    fresh[i],
                    rng.standard_normal(fresh[i].shape[0]),
                    priority=1,
                    tenant=f"tenant{(step + 1) % max(args.tenants, 1)}",
                )
            results.update(service.drain())
    completed = sum(1 for r in results.values() if r.status == COMPLETED)
    print(service.metrics_report())
    print()
    served = service.metrics.counter("jobs_completed")
    print(
        f"served {served} jobs in {t.elapsed:.3f} s "
        f"({served / max(t.elapsed, 1e-9):.1f} jobs/s, "
        f"cache {'on' if not args.no_cache else 'off'}, "
        f"{args.fleet_workers} fleet worker(s), {args.shards} shard(s), "
        f"{rejected} admission retries)"
    )
    if args.shards > 1:
        print(f"cache shard sizes: {service.cache.shard_sizes()}")
    return 0 if completed else 1


def cmd_check(args) -> int:
    """Run the requested check passes; exit 0 only if every pass is clean.

    Without mode flags, ``--lint`` is implied. ``--comm`` replays a JSONL
    comm trace; ``--comm-sim MESH:SIZE:RANKS`` records a fresh strong-
    scaling factorization trace and checks it end to end; ``--race
    MESH:SIZE:WORKERS`` runs a traced threaded factor+solve through the
    happens-before checker plus a determinism audit against a one-worker
    run; ``--sched-fuzz N`` adds N seeded adversarial schedules.
    """
    from repro.check import commcheck, lint, selftest
    from repro.simmpi.trace import CommTrace

    do_lint = args.lint or not (
        args.comm or args.comm_sim or args.self_test or args.race
        or args.sched_fuzz
    )
    failed = False

    if do_lint:
        paths = args.paths or ["src/repro"]
        findings = lint.lint_paths(paths)
        for f in findings:
            print(f.format())
        print(
            f"lint: {len(findings)} finding(s) in {', '.join(paths)}"
        )
        failed |= bool(findings)

    if args.comm:
        with open(args.comm, "r", encoding="utf-8") as fp:
            trace = CommTrace.from_jsonl(fp)
        report = commcheck.check_trace(trace)
        print(report.summary())
        failed |= not report.ok

    if args.comm_sim:
        try:
            kind, size_s, ranks_s = args.comm_sim.split(":")
            size, ranks = int(size_s), int(ranks_s)
        except ValueError:
            raise ShapeError(
                f"--comm-sim must look like plate:8:4; got {args.comm_sim!r}"
            ) from None
        args.mesh = f"{kind}:{size}"
        a = build_matrix(args)
        solver = SparseSolver(a, method=args.method, ordering=args.ordering)
        solver.analyze()
        from repro.parallel import simulate_factorization

        fres = simulate_factorization(
            solver.sym, ranks, get_machine(args.machine), trace=True
        )
        report = commcheck.check_sim_result(fres.sim)
        print(
            f"comm-sim {kind}:{size} on {ranks} ranks "
            f"({fres.sim.ledger.n_messages} messages):"
        )
        print(report.summary())
        if args.dump_trace:
            fres.sim.trace.comm.dump(args.dump_trace)
            print(f"trace written to {args.dump_trace}")
        failed |= not report.ok

    if args.race or args.sched_fuzz:
        from repro.check import racecheck, schedfuzz
        from repro.exec import TaskPool
        from repro.exec.factor_exec import multifrontal_factor_threads
        from repro.exec.solve_exec import solve_threads

        spec = args.race or "cube:8:4"
        try:
            kind, size_s, workers_s = spec.split(":")
            size, workers = int(size_s), int(workers_s)
        except ValueError:
            raise ShapeError(
                f"--race must look like cube:8:4; got {spec!r}"
            ) from None
        args.mesh = f"{kind}:{size}"
        a = build_matrix(args)
        solver = SparseSolver(a, method=args.method, ordering=args.ordering)
        solver.analyze()
        sym = solver.sym
        b = np.arange(1.0, sym.n + 1.0)

        if args.race:
            traces = []
            for w in (workers, 1):
                pool = TaskPool(w, name="factor", trace=True)
                factor = multifrontal_factor_threads(
                    sym, method=args.method, pool=pool
                )
                spool = TaskPool(w, name="solve", trace=pool.trace)
                solve_threads(factor, b, pool=spool)
                traces.append(pool.trace)
            report = racecheck.check_exec_trace(traces[0])
            print(f"race {kind}:{size} on {workers} worker(s):")
            print(report.summary())
            det = racecheck.check_determinism(
                traces, labels=[f"workers={workers}", "workers=1"]
            )
            if det.findings:
                print(det.summary())
            else:
                print(
                    f"determinism: workers={workers} and workers=1 traces "
                    "normalize identically"
                )
            if args.dump_trace:
                traces[0].dump(args.dump_trace)
                print(f"exec trace written to {args.dump_trace}")
            failed |= not report.ok or not det.ok

        if args.sched_fuzz:
            fuzz_workers = tuple(
                int(w) for w in args.fuzz_workers.split(",") if w
            )
            try:
                results = schedfuzz.fuzz_smoke(
                    sym,
                    n_seeds=args.sched_fuzz,
                    workers=fuzz_workers,
                    method=args.method,
                )
            except RaceError as exc:
                print(f"sched-fuzz: FAIL\n{exc}")
                failed = True
            else:
                print(
                    f"sched-fuzz {kind}:{size}: {len(results)} fuzzed "
                    f"schedule(s) over {args.sched_fuzz} seed(s) x workers "
                    f"{list(fuzz_workers)}: all bitwise-identical, zero "
                    "races"
                )

    if args.self_test:
        results = selftest.run_self_test()
        n_bad = sum(1 for r in results if not r.passed)
        print(f"self-test: {len(results)} case(s), {n_bad} failure(s)")
        for r in results:
            if not r.passed or args.verbose:
                print(r.format())
        failed |= bool(n_bad)

    return 1 if failed else 0


def cmd_obs(args) -> int:
    """One observed end-to-end run: analyze/factor/solve on the host plus a
    traced parallel simulation, all under span recording; then report and
    export."""
    from repro.obs import export as obs_export
    from repro.obs import spans as obs_spans
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel import PlanOptions, simulate_factorization, simulate_solve

    if not args.mesh and not args.matrix:
        args.mesh = "plate:8"
    a = build_matrix(args)
    n = a.shape[0]
    machine = get_machine(args.machine)
    b = np.ones(n)
    with obs_spans.recording() as rec:
        solver = SparseSolver(a, method=args.method, ordering=args.ordering)
        solver.analyze()
        solver.factor(backend=args.backend, workers=args.workers)
        res = solver.solve(b, backend=args.backend, workers=args.workers)
        fres = simulate_factorization(
            solver.sym,
            args.ranks,
            machine,
            PlanOptions(nb=args.nb),
            method=args.method,
            threads_per_rank=args.threads,
            trace=True,
        )
        sres = simulate_solve(fres, b)

    registry = MetricsRegistry()
    registry.gauge("problem_n").set(n)
    registry.gauge("problem_nnz").set(a.nnz)
    registry.gauge("sim_ranks").set(args.ranks)
    registry.inc("sim_messages", fres.sim.ledger.n_messages)
    registry.inc("factor_flops", fres.total_flops)
    for name, (_count, total) in rec.phase_totals().items():
        registry.observe(name, total)
    front_buckets = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)
    for fr in rec.profile.host:
        registry.observe("front_order", float(fr.m), buckets=front_buckets)

    print(
        obs_export.report(
            rec,
            registry if args.metrics else None,
            machine,
            top_fronts=args.top_fronts,
            threads=args.threads,
        )
    )
    print()
    print(
        f"host residual {res.residual:.3e}; simulated factor "
        f"{fres.makespan * 1e3:.3f} ms on {args.ranks} ranks of "
        f"{machine.name} ({fres.gflops:.2f} GF/s, "
        f"{fres.peak_fraction * 100:.1f}% of peak), solve "
        f"{sres.makespan * 1e3:.3f} ms"
    )
    if args.trace_out:
        obs_export.write_chrome_trace(
            args.trace_out,
            recorder=rec,
            sim_trace=fres.sim.trace,
            include_comm=args.comm_events,
        )
        print(f"chrome trace written to {args.trace_out}")
    if args.prom_out:
        obs_export.write_prometheus(args.prom_out, registry)
        print(f"prometheus metrics written to {args.prom_out}")
    return 0 if res.residual < 1e-8 else 1


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh", help="generator problem, e.g. cube:12")
    p.add_argument("--matrix", help="Matrix Market file")
    p.add_argument("--method", default="cholesky", choices=["cholesky", "ldlt"])
    p.add_argument("--ordering", default="nd")


def _add_backend(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend",
        default="seq",
        choices=["seq", "threads"],
        help="numeric execution backend: sequential host, or the "
        "shared-memory worker pool (bitwise identical results)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for --backend threads (default: auto)",
    )
    p.add_argument(
        "--precision",
        default="fp64",
        choices=["fp64", "fp32"],
        help="working precision of the numeric factor; fp32 halves factor "
        "memory and recovers fp64 accuracy via iterative refinement "
        "(automatic fp64 re-factor when refinement stalls)",
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="analyze and print symbolic statistics")
    _add_common(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("solve", help="factor + solve, print diagnostics")
    _add_common(p)
    _add_backend(p)
    p.add_argument("--rhs", default="ones", choices=["ones", "random"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-refine", action="store_true")
    p.add_argument("--condest", action="store_true")
    p.add_argument(
        "--lu",
        action="store_true",
        help="use the unsymmetric LU solver (implied by convdiff meshes)",
    )
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("scale", help="simulated strong-scaling sweep")
    _add_common(p)
    p.add_argument("--ranks", default="1,2,4,8,16")
    p.add_argument("--machine", default="generic-cluster")
    p.add_argument("--policy", default="2d", choices=["2d", "1d", "static"])
    p.add_argument("--nb", type=int, default=32)
    p.add_argument("--threads", type=int, default=1)
    p.set_defaults(func=cmd_scale)

    p = sub.add_parser("compare", help="baseline solver comparison")
    _add_common(p)
    p.add_argument("--ranks", default="4,16")
    p.add_argument("--machine", default="bluegene-p")
    p.add_argument("--nb", type=int, default=32)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("suite", help="print the paper-suite inventory")
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "serve-sim",
        help="replay a synthetic transient-FE trace through repro.service",
    )
    _add_common(p)
    _add_backend(p)
    p.add_argument(
        "--steps",
        type=int,
        default=20,
        help="refactor requests on the base pattern (values drift per step)",
    )
    p.add_argument(
        "--new-patterns",
        type=int,
        default=3,
        help="interleaved fresh-pattern requests (analysis-cache misses)",
    )
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--no-coalesce", action="store_true")
    p.add_argument(
        "--ranks-served",
        type=int,
        default=0,
        metavar="P",
        help="execute on the simulated parallel machine with P ranks "
        "(0 = sequential host engine)",
    )
    p.add_argument("--machine", default="generic-cluster")
    p.add_argument("--nb", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--fleet-workers",
        type=int,
        default=1,
        metavar="N",
        help="serving worker slots draining the queue concurrently "
        "(1 = classic single-executor loop; results are bitwise "
        "identical at any worker count)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="analysis-cache shards (pattern-fingerprint hash)",
    )
    p.add_argument(
        "--tenants",
        type=int,
        default=1,
        help="synthetic tenants the trace round-robins submissions over",
    )
    p.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        help="max pending jobs per tenant (admission control; default: none)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="max pending jobs queue-wide (backpressure; default: unbounded)",
    )
    p.add_argument(
        "--queue-policy",
        choices=("edf", "priority"),
        default="edf",
        help="queue ordering: earliest-deadline-first (priority on ties) "
        "or pure priority",
    )
    p.set_defaults(func=cmd_serve_sim)

    p = sub.add_parser(
        "check",
        help="static analysis, comm/exec race checking, schedule fuzzing, "
        "and checker self-test",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro)",
    )
    p.add_argument("--lint", action="store_true", help="run the AST lint rules")
    p.add_argument(
        "--comm",
        metavar="TRACE.jsonl",
        help="replay a recorded comm trace through the race/deadlock detector",
    )
    p.add_argument(
        "--comm-sim",
        metavar="MESH:SIZE:RANKS",
        help="simulate a traced factorization (e.g. plate:8:4) and check it",
    )
    p.add_argument(
        "--dump-trace",
        metavar="FILE",
        help="with --comm-sim/--race: also write the recorded trace as JSONL",
    )
    p.add_argument(
        "--race",
        metavar="MESH:SIZE:WORKERS",
        help="traced threaded factor+solve (e.g. cube:8:4) through the "
        "happens-before race checker + determinism audit vs workers=1",
    )
    p.add_argument(
        "--sched-fuzz",
        type=int,
        metavar="N",
        help="run N seeded adversarial schedules (with --race's mesh, or "
        "cube:8 by default) asserting bitwise identity and zero races",
    )
    p.add_argument(
        "--fuzz-workers",
        default="2,4",
        metavar="W1,W2,...",
        help="worker counts the schedule fuzzer cycles through (default 2,4)",
    )
    p.add_argument(
        "--self-test",
        action="store_true",
        help="verify every checker fires on embedded known-bad fixtures",
    )
    p.add_argument("--verbose", action="store_true")
    p.add_argument("--method", default="cholesky", choices=["cholesky", "ldlt"])
    p.add_argument("--ordering", default="nd")
    p.add_argument("--machine", default="generic-cluster")
    p.add_argument("--matrix", help=argparse.SUPPRESS)
    p.add_argument("--mesh", help=argparse.SUPPRESS)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "obs",
        help="observed end-to-end run: span report, metrics, Chrome trace",
    )
    _add_common(p)
    _add_backend(p)
    p.add_argument("--ranks", type=int, default=4, help="simulated rank count")
    p.add_argument("--machine", default="generic-cluster")
    p.add_argument("--nb", type=int, default=32)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the merged Chrome trace-event JSON (host + sim ranks)",
    )
    p.add_argument(
        "--comm-events",
        action="store_true",
        help="include per-message instant events in the trace",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry report",
    )
    p.add_argument(
        "--top-fronts",
        type=int,
        default=0,
        metavar="K",
        help="print the K hottest fronts and measured-vs-modeled GFLOPS",
    )
    p.add_argument(
        "--prom-out",
        metavar="FILE",
        help="write Prometheus text exposition of the metrics",
    )
    p.set_defaults(func=cmd_obs)
    return parser


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
