"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or matrix had an incompatible shape."""


class NotSymmetricError(ReproError, ValueError):
    """A matrix required to be structurally/numerically symmetric is not."""


class NotPositiveDefiniteError(ReproError, ArithmeticError):
    """Cholesky factorization encountered a non-positive pivot."""

    def __init__(self, message: str, column: int | None = None):
        super().__init__(message)
        #: Global column index of the failing pivot, when known.
        self.column = column


class SingularMatrixError(ReproError, ArithmeticError):
    """LDL^T factorization encountered an (effectively) zero pivot."""

    def __init__(self, message: str, column: int | None = None):
        super().__init__(message)
        self.column = column


class OrderingError(ReproError, ValueError):
    """A fill-reducing ordering could not be computed or is invalid."""


class PatternMismatchError(ShapeError):
    """New numeric values were supplied for a *different* sparsity pattern
    than the one an analysis was computed for.

    Raised by :meth:`repro.core.SparseSolver.refactor` (and
    ``update_values``). Derives from :class:`ShapeError` for backward
    compatibility; the serving layer catches this type specifically to
    distinguish "re-analyze under a new pattern" from a hard failure.
    """


class AdmissionError(ReproError, RuntimeError):
    """The serving layer refused to enqueue a request at submit time.

    Raised by :meth:`repro.service.SolverService.submit` when admission
    control rejects the job — the bounded queue is full (backpressure) or
    the submitting tenant is at its pending-job quota. The request was
    *not* enqueued; the caller should back off and resubmit. ``reason``
    is ``"backpressure"`` or ``"quota"`` so clients and load generators
    can react differently to the two conditions.
    """

    def __init__(self, message: str, reason: str = "backpressure"):
        super().__init__(message)
        self.reason = reason


class SimulationError(ReproError, RuntimeError):
    """The simulated message-passing machine reached an invalid state
    (deadlock, mismatched message, rank failure)."""


class InvariantError(ReproError, RuntimeError):
    """A debug-mode invariant check failed (``repro.check.sanitize``).

    Raised by the sanitizer hooks that run inside hot paths when
    ``REPRO_CHECK=1`` — a corrupted CSR/CSC index structure, an invalid
    permutation, an elimination-tree cycle, an uncovered supernode
    partition, or an unbalanced frontal update stack."""


class ExecBackendError(ReproError, RuntimeError):
    """The shared-memory execution backend (``repro.exec``) failed as
    *infrastructure*: an invalid worker configuration, a cancelled run, or
    a stalled task graph (dependency cycle).

    Numeric failures inside tasks — a non-positive pivot, a shape error —
    propagate as their own types, exactly like the sequential path. The
    serving layer catches this (and any other :class:`ReproError` from the
    threads engine) to degrade ``threads`` → ``sequential`` instead of
    failing the job.
    """


class LintError(ReproError, ValueError):
    """Static analysis (``repro.check.lint``) could not process an input
    (unreadable file, syntax error in a linted source)."""


class RaceError(ReproError, RuntimeError):
    """The happens-before checker (``repro.check.racecheck``) found a
    synchronization defect in an execution trace: two conflicting shared
    slot accesses not ordered by the exercised dependency edges, a
    contribution produced or consumed other than exactly once, or a
    determinism violation between runs."""
