"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows the paper's tables report; this
module renders them in aligned monospace without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        a = abs(value)
        if a >= 1e5 or a < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table string."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    ncol = len(headers)
    for r in str_rows:
        if len(r) != ncol:
            raise ValueError(f"row has {len(r)} cells, expected {ncol}")
    widths = [len(h) for h in headers]
    for r in str_rows:
        for j, c in enumerate(r):
            widths[j] = max(widths[j], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_si(value: float, unit: str = "") -> str:
    """Human-readable engineering notation, e.g. ``1.23 G`` for 1.23e9."""
    for factor, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= factor:
            return f"{value / factor:.2f} {prefix}{unit}"
    return f"{value:.2f} {unit}"
