"""Deterministic random-number handling.

All randomized code paths in the library accept either a seed or a
``numpy.random.Generator`` and normalize through :func:`make_rng`, so every
experiment is reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20090101  # SC'09 vintage


def make_rng(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (library default seed, for reproducible experiments),
    an integer seed, or an existing Generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a given stream index.

    Used by the simulated machine to give each rank its own stream without
    the streams depending on scheduling order.
    """
    seed_seq = np.random.SeedSequence(entropy=int(rng.integers(0, 2**63)), spawn_key=(stream,))
    return np.random.default_rng(seed_seq)
