"""Input-validation helpers used at public API boundaries.

Internal hot paths skip these checks; constructors and public entry points
call them so user mistakes fail fast with a clear message instead of
corrupting a factorization halfway through.
"""

from __future__ import annotations

import os

import numpy as np

from repro.util.errors import ShapeError

#: Canonical integer dtype for index arrays throughout the library.
INDEX_DTYPE = np.int64
#: Canonical floating dtype for values throughout the library.
VALUE_DTYPE = np.float64

# -- working precision of the numeric pipeline -------------------------------
#
# The numeric phases (frontal factorization, triangular solves) may run in a
# reduced *working* precision: fp32 halves the bytes moved and roughly
# doubles dense-kernel rates, and fp64 accuracy is recovered by iterative
# refinement against the always-fp64 input matrix. Everything structural
# (indices, the sparse input, residuals, refined solutions) stays at the
# canonical dtypes above; only frontal storage and sweep arithmetic follow
# the working dtype.

#: precision names accepted by ``factor(precision=)`` and the service knob,
#: mapped to the numpy working dtype of the frontal kernels
WORK_DTYPES: dict[str, np.dtype] = {
    "fp64": np.dtype(np.float64),
    "fp32": np.dtype(np.float32),
}


def work_dtype(precision: str) -> np.dtype:
    """The numpy working dtype for a *precision* name (``"fp64"``/``"fp32"``).

    Raises :class:`ShapeError` on anything else so a typo fails at the API
    boundary, not deep inside a frontal kernel.
    """
    try:
        return WORK_DTYPES[precision]
    except KeyError:
        raise ShapeError(
            f"unknown precision {precision!r}; expected one of "
            f"{tuple(WORK_DTYPES)}"
        ) from None

# -- debug-mode runtime checks (the REPRO_CHECK switch) ----------------------
#
# Hot paths that normally skip validation (``_skip_check=True`` matrix
# constructors, the analyze pipeline, the frontal stack, the simulator
# teardown) consult this switch and run the ``repro.check.sanitize``
# invariant checks when it is on. The switch lives here — at the bottom of
# the dependency graph — so every layer can read it without import cycles.

_TRUTHY = frozenset({"1", "true", "on", "yes"})
_runtime_checks: bool = os.environ.get("REPRO_CHECK", "").strip().lower() in _TRUTHY


def runtime_checks_enabled() -> bool:
    """True when debug-mode invariant checks are active (``REPRO_CHECK=1``)."""
    return _runtime_checks


def set_runtime_checks(enabled: bool) -> bool:
    """Force the runtime-check switch; returns the previous value.

    Tests and the self-test harness use this to exercise sanitizer hooks
    without re-importing under a different environment.
    """
    global _runtime_checks
    previous = _runtime_checks
    _runtime_checks = bool(enabled)
    return previous


def as_index_array(a, name: str = "array") -> np.ndarray:
    """Convert *a* to a contiguous int64 ndarray, validating integrality."""
    arr = np.asarray(a)
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise ShapeError(f"{name} contains non-integer values")
    return np.ascontiguousarray(arr, dtype=INDEX_DTYPE)


def as_float_array(a, name: str = "array") -> np.ndarray:
    """Convert *a* to a contiguous float64 ndarray, rejecting non-finite input."""
    arr = np.ascontiguousarray(a, dtype=VALUE_DTYPE)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name} contains non-finite values")
    return arr


def check_index_array(idx: np.ndarray, upper: int, name: str = "index") -> None:
    """Validate that every entry of *idx* lies in ``[0, upper)``."""
    if idx.size == 0:
        return
    lo = int(idx.min())
    hi = int(idx.max())
    if lo < 0 or hi >= upper:
        raise ShapeError(
            f"{name} entries must lie in [0, {upper}); got range [{lo}, {hi}]"
        )


def check_permutation(perm: np.ndarray, n: int, name: str = "perm") -> np.ndarray:
    """Validate that *perm* is a permutation of ``range(n)`` and return it
    as an int64 array."""
    p = as_index_array(perm, name)
    if p.shape != (n,):
        raise ShapeError(f"{name} must have shape ({n},); got {p.shape}")
    seen = np.zeros(n, dtype=bool)
    if n:
        if p.min() < 0 or p.max() >= n:
            raise ShapeError(f"{name} entries out of range [0, {n})")
        seen[p] = True
        if not seen.all():
            raise ShapeError(f"{name} is not a permutation (duplicate entries)")
    return p


def check_square(shape: tuple[int, int], name: str = "matrix") -> int:
    """Validate that *shape* is square and return its dimension."""
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ShapeError(f"{name} must be square; got shape {shape}")
    return shape[0]


def check_same_shape(a_shape, b_shape, name: str = "operands") -> None:
    """Validate two shapes match exactly."""
    if tuple(a_shape) != tuple(b_shape):
        raise ShapeError(f"{name} shapes differ: {tuple(a_shape)} vs {tuple(b_shape)}")
