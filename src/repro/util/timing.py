"""Small wall-clock timing helper for benches and examples.

Simulated-machine time lives in :mod:`repro.simmpi`; this module is only for
measuring real elapsed host time (e.g. how long the analysis phase of the
actual Python code took).
"""

from __future__ import annotations

import time


class WallTimer:
    """Context-manager stopwatch.

    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was not started")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed
