"""Small wall-clock timing helper for benches and examples.

Simulated-machine time lives in :mod:`repro.simmpi`; this module is only for
measuring real elapsed host time (e.g. how long the analysis phase of the
actual Python code took).

.. deprecated::
    For instrumenting library phases, prefer :func:`repro.obs.spans.span` —
    spans nest, carry attributes, and feed the trace/metrics exporters.
    ``WallTimer`` remains for plain "how long did this block take" needs
    where a recorded value must exist even with observability disabled.
"""

from __future__ import annotations

import time


class WallTimer:
    """Context-manager stopwatch.

    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        # A real error, not an assert: asserts vanish under ``python -O``
        # and this state is reachable (stop() inside the with-block).
        if self._start is None:
            raise RuntimeError(
                "timer is not running on __exit__ (stopped inside the block?)"
            )
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("timer is already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was not started")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed
