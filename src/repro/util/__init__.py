"""Shared utilities: error types, validation helpers, RNG, timing, tables."""

from repro.util.errors import (
    ReproError,
    ShapeError,
    NotSymmetricError,
    NotPositiveDefiniteError,
    SingularMatrixError,
    OrderingError,
    PatternMismatchError,
    SimulationError,
)
from repro.util.validation import (
    check_index_array,
    check_permutation,
    check_square,
    check_same_shape,
    as_float_array,
    as_index_array,
    work_dtype,
    WORK_DTYPES,
)
from repro.util.rng import make_rng
from repro.util.timing import WallTimer
from repro.util.tables import format_table

__all__ = [
    "ReproError",
    "ShapeError",
    "NotSymmetricError",
    "NotPositiveDefiniteError",
    "SingularMatrixError",
    "OrderingError",
    "PatternMismatchError",
    "SimulationError",
    "check_index_array",
    "check_permutation",
    "check_square",
    "check_same_shape",
    "as_float_array",
    "as_index_array",
    "work_dtype",
    "WORK_DTYPES",
    "make_rng",
    "WallTimer",
    "format_table",
]
