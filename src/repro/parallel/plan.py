"""The static factorization plan.

Everything about *who does what* is a pure function of the symbolic
factorization, the rank count, and the distribution policy — no numeric
values involved. Real distributed solvers replicate exactly this data on
every rank after the analysis phase; here the plan object is shared by all
simulated ranks (read-only).

Policies:

* ``"2d"``     — subtree-to-subcube mapping with near-square 2D grids per
  distributed front (the paper's formulation);
* ``"1d"``     — same mapping, but fronts distributed 1D row-cyclic
  (the MUMPS-like baseline: ablation F3 isolates exactly this switch);
* ``"static"`` — no tree-aware mapping: every large front uses all ranks on
  one static grid, small fronts are dealt round-robin to single ranks
  (the SuperLU_DIST-like baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.grid2d import ProcessGrid, block_starts
from repro.parallel.mapping import TreeMapping, map_supernodes_to_ranks, subtree_flops
from repro.symbolic.analyze import SymbolicFactor
from repro.util.errors import ShapeError

POLICIES = ("2d", "1d", "static")


@dataclass(frozen=True)
class PlanOptions:
    """Distribution knobs."""

    #: dense block size of the block-cyclic layout
    nb: int = 48
    #: distribution policy (see module docstring)
    policy: str = "2d"
    #: supernodes narrower than this never get distributed
    min_dist_width: int = 2
    #: "static" policy: fronts smaller than this stay on a single rank
    static_small_front: int = 96

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ShapeError(f"unknown policy {self.policy!r}; known: {POLICIES}")
        if self.nb < 1:
            raise ShapeError("nb must be >= 1")


@dataclass
class SupernodeDist:
    """Distribution of one supernode."""

    s: int
    #: sorted global rank group
    group: tuple[int, ...]
    #: front order and pivot width
    m: int
    width: int
    #: first global column
    c0: int
    #: None for sequential supernodes
    grid: ProcessGrid | None = None
    #: block boundaries (length nblocks+1); None for sequential
    starts: np.ndarray | None = None
    #: number of pivot block-columns
    npb: int = 0

    @property
    def is_seq(self) -> bool:
        return self.grid is None

    @property
    def nblocks(self) -> int:
        return 0 if self.starts is None else self.starts.size - 1

    def block_of(self, local_idx) -> np.ndarray:
        """Block id(s) containing front-local row index/indices."""
        return np.searchsorted(self.starts, local_idx, side="right") - 1

    def block_range(self, b: int) -> tuple[int, int]:
        return int(self.starts[b]), int(self.starts[b + 1])

    def row_owner(self, bi: int) -> int:
        """Rank owning row-block *bi* in the solve-ready layout."""
        return self.group[bi % len(self.group)]


class FactorPlan:
    """Static plan consumed by the factor/solve rank programs."""

    def __init__(
        self,
        sym: SymbolicFactor,
        n_ranks: int,
        options: PlanOptions | None = None,
    ):
        self.sym = sym
        self.n_ranks = int(n_ranks)
        self.opts = options or PlanOptions()
        self.mapping = self._build_mapping()
        self.dist: list[SupernodeDist] = [
            self._build_dist(s) for s in range(sym.n_supernodes)
        ]
        self._parent_pos_cache: dict[int, np.ndarray] = {}
        self._ea_runs_cache: dict[int, list[tuple[int, int, int, int]]] = {}

    # -- construction ------------------------------------------------------

    def _build_mapping(self) -> TreeMapping:
        sym, p, opts = self.sym, self.n_ranks, self.opts
        if opts.policy in ("2d", "1d"):
            return map_supernodes_to_ranks(
                sym, p, min_distributed_width=opts.min_dist_width
            )
        # static: large fronts on everyone, small fronts dealt round-robin.
        all_ranks = tuple(range(p))
        sn_ranks: list[tuple[int, ...]] = []
        for s in range(sym.n_supernodes):
            m = sym.front_size(s)
            w = sym.supernode_width(s)
            if p > 1 and m >= opts.static_small_front and w >= opts.min_dist_width:
                sn_ranks.append(all_ranks)
            else:
                sn_ranks.append((s % p,))
        work = subtree_flops(sym)
        own = np.asarray(
            [sym.supernode_flops(s) for s in range(sym.n_supernodes)], dtype=float
        )
        return TreeMapping(
            n_ranks=p, sn_ranks=sn_ranks, subtree_work=work, own_work=own
        )

    def _build_dist(self, s: int) -> SupernodeDist:
        sym, opts = self.sym, self.opts
        group = self.mapping.sn_ranks[s]
        m = sym.front_size(s)
        w = sym.supernode_width(s)
        c0 = int(sym.partition.sn_start[s])
        if len(group) == 1:
            return SupernodeDist(s=s, group=group, m=m, width=w, c0=c0)
        if opts.policy == "1d":
            grid = ProcessGrid.one_d(group)
        else:
            grid = ProcessGrid.for_group(group)
        starts = block_starts(m, w, opts.nb)
        npb = int(np.searchsorted(starts, w, side="left"))
        # `starts` aligns the pivot boundary, so starts[npb] == w.
        assert starts[npb] == w
        return SupernodeDist(
            s=s, group=group, m=m, width=w, c0=c0, grid=grid, starts=starts, npb=npb
        )

    # -- queries -----------------------------------------------------------

    def is_seq(self, s: int) -> bool:
        return self.dist[s].is_seq

    def supernodes_for_rank(self, rank: int) -> list[int]:
        return self.mapping.supernodes_for_rank(rank)

    def update_holders(self, s: int) -> tuple[int, ...]:
        """Ranks that hold pieces of supernode *s*'s update matrix after it
        is factored (senders of the extend-add into the parent)."""
        d = self.dist[s]
        if d.is_seq:
            return d.group
        # Owners of update-region blocks (bi, bj >= npb, bi >= bj).
        owners = set()
        for bi in range(d.npb, d.nblocks):
            for bj in range(d.npb, bi + 1):
                owners.add(d.grid.owner(bi, bj))
        return tuple(sorted(owners))

    def parent_positions(self, c: int) -> np.ndarray:
        """Front-local positions in the parent of child *c*'s update rows."""
        if c not in self._parent_pos_cache:
            sym = self.sym
            p = int(sym.sn_parent[c])
            if p < 0:
                raise ShapeError(f"supernode {c} has no parent")
            wc = sym.supernode_width(c)
            upd_rows = sym.sn_rows[c][wc:]
            pos = np.searchsorted(sym.sn_rows[p], upd_rows)
            self._parent_pos_cache[c] = pos
        return self._parent_pos_cache[c]

    def ea_runs(self, c: int) -> list[tuple[int, int, int, int]]:
        """Runs of constant (child block, parent block) over child *c*'s
        update indices: list of (i_start, i_end, child_block, parent_block).

        child_block is -1 for a sequential child (single holder).
        """
        if c not in self._ea_runs_cache:
            sym = self.sym
            parent = int(sym.sn_parent[c])
            wc = sym.supernode_width(c)
            mu = sym.front_size(c) - wc
            dc = self.dist[c]
            dp = self.dist[parent]
            pa = self.parent_positions(c)
            if dc.is_seq:
                cb = np.full(mu, -1, dtype=np.int64)
            else:
                cb = dc.block_of(np.arange(wc, wc + mu))
            pb = dp.block_of(pa) if not dp.is_seq else np.full(mu, -1, dtype=np.int64)
            runs: list[tuple[int, int, int, int]] = []
            i = 0
            while i < mu:
                j = i + 1
                while j < mu and cb[j] == cb[i] and pb[j] == pb[i]:
                    j += 1
                runs.append((i, j, int(cb[i]), int(pb[i])))
                i = j
            self._ea_runs_cache[c] = runs
        return self._ea_runs_cache[c]

    def ea_pairs(self, c: int) -> set[tuple[int, int]]:
        """Exact nonempty (sender, dest) global-rank pairs of the
        extend-add of child *c* into its parent."""
        sym = self.sym
        parent = int(sym.sn_parent[c])
        dc = self.dist[c]
        dp = self.dist[parent]
        runs = self.ea_runs(c)
        pairs: set[tuple[int, int]] = set()
        for a in range(len(runs)):
            _, _, cba, pba = runs[a]
            for b in range(a + 1):
                _, _, cbb, pbb = runs[b]
                sender = dc.group[0] if dc.is_seq else dc.grid.owner(cba, cbb)
                dest = dp.group[0] if dp.is_seq else dp.grid.owner(pba, pbb)
                pairs.add((sender, dest))
        return pairs

    def ea_senders_to(self, c: int, dest: int) -> list[int]:
        """Sorted senders with a nonempty transfer of child *c* to *dest*."""
        return sorted({s for s, d in self.ea_pairs(c) if d == dest})

    def ea_dests_from(self, c: int, sender: int) -> list[int]:
        """Sorted destinations of child *c*'s data held by *sender*."""
        return sorted({d for s, d in self.ea_pairs(c) if s == sender})

    # -- reporting ---------------------------------------------------------

    def describe(self) -> dict:
        """Summary numbers for reports and tests."""
        n_dist = len(self.mapping.dist_supernodes)
        return {
            "n_ranks": self.n_ranks,
            "policy": self.opts.policy,
            "nb": self.opts.nb,
            "n_supernodes": self.sym.n_supernodes,
            "n_distributed": n_dist,
            "n_sequential": self.sym.n_supernodes - n_dist,
            "max_group": max((len(g) for g in self.mapping.sn_ranks), default=0),
        }


def exec_priorities(sym: SymbolicFactor) -> np.ndarray:
    """Ready-queue priorities for the shared-memory backend (:mod:`repro.exec`).

    The same subtree-work numbers that drive the distributed mapping's
    proportional rank splits order the thread pool's ready heap: a task
    whose subtree carries more factorization flops runs first, so the
    critical path of the elimination tree starts draining immediately and
    small independent subtrees fill the remaining worker slots.
    """
    return subtree_flops(sym)
