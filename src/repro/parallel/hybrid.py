"""Hybrid MPI × SMP execution model.

WSMP's distinguishing deployment mode on SMP-node machines: fewer MPI ranks,
each multithreaded. In the simulation a hybrid configuration is simply
(n_ranks = cores / threads, threads_per_rank = threads): compute charges
scale by the machine's SMP-efficiency curve while the message economy
improves because fewer ranks exchange fewer, larger messages. Bench F4
sweeps these configurations at fixed core count.
"""

from __future__ import annotations

from repro.machine.model import MachineModel
from repro.util.errors import ShapeError


def hybrid_configurations(
    total_cores: int, machine: MachineModel
) -> list[tuple[int, int]]:
    """All (n_ranks, threads_per_rank) splits of *total_cores* supported by
    the machine (threads limited by ``max_threads_per_rank``), largest
    rank-count first."""
    if total_cores < 1:
        raise ShapeError("total_cores must be >= 1")
    out = []
    t = 1
    while t <= min(total_cores, machine.max_threads_per_rank):
        if total_cores % t == 0:
            out.append((total_cores // t, t))
        t *= 2
    return out
