"""Distributed multifrontal LU (static pivoting) on the simulated machine.

The unsymmetric sibling of :mod:`repro.parallel.factor_par`. Fronts are
*full* matrices distributed 2D block-cyclic over the same
subtree-to-subcube plan (built on the symmetrized pattern, so the symmetric
plan machinery — groups, grids, extend-add runs — carries over directly;
only the lower-triangle restrictions drop away).

Per pivot block column k the communication is actually *simpler* than the
symmetric case: the diagonal LU block broadcasts along both its grid row
and column; L panels (below) broadcast along their grid rows, U panels
(right) along their grid columns; every trailing block (a, b) then updates
locally with ``A_ab -= L_ak U_kb``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dense.trsm import solve_unit_lower_inplace
from repro.mf.lu import _assemble_lu_front, _partial_lu
from repro.parallel.factor_par import ea_message_nbytes, gemm_flops, trsm_flops
from repro.parallel.plan import FactorPlan, PlanOptions, SupernodeDist
from repro.simmpi.comm import Comm
from repro.simmpi.ops import Compute, Recv, Send
from repro.sparse.convert import csc_to_csr
from repro.symbolic.analyze import SymbolicFactor, dense_partial_factor_flops


class LocalFrontLU:
    """One rank's full-block share of a distributed unsymmetric front."""

    __slots__ = ("d", "me", "blocks")

    def __init__(self, d: SupernodeDist, me: int):
        self.d = d
        self.me = me
        self.blocks: dict[tuple[int, int], np.ndarray] = {}
        for bi, bj in d.grid.owned_blocks(me, d.nblocks, lower_only=False):
            r0, r1 = d.block_range(bi)
            c0, c1 = d.block_range(bj)
            self.blocks[(bi, bj)] = np.zeros((r1 - r0, c1 - c0))

    def block(self, bi: int, bj: int) -> np.ndarray:
        return self.blocks[(bi, bj)]

    def owns(self, bi: int, bj: int) -> bool:
        return (bi, bj) in self.blocks

    def add_entries(self, pa: np.ndarray, pb: np.ndarray, vals: np.ndarray) -> None:
        if pa.size == 0:
            return
        d = self.d
        bi = d.block_of(pa)
        bj = d.block_of(pb)
        key = bi * d.nblocks + bj
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        boundaries = np.flatnonzero(np.diff(key_s)) + 1
        starts = np.concatenate([[0], boundaries, [key_s.size]])
        for a, b in zip(starts[:-1], starts[1:]):
            idx = order[a:b]
            tbi = int(bi[idx[0]])
            tbj = int(bj[idx[0]])
            blk = self.blocks[(tbi, tbj)]
            r0 = int(d.starts[tbi])
            c0 = int(d.starts[tbj])
            np.add.at(blk, (pa[idx] - r0, pb[idx] - c0), vals[idx])


@dataclass
class RankLUData:
    """One rank's LU factor pieces after the distributed factorization."""

    rank: int
    #: seq supernode -> (lu11, l21, u12)
    seq_panels: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    #: dist supernode -> {row_block: full-width row array}
    #: pivot row blocks carry all m columns; update row blocks carry the
    #: leading w (L) columns only.
    dist_rows: dict[int, dict[int, np.ndarray]] = field(default_factory=dict)
    factor_entries: int = 0
    flops: float = 0.0
    perturbed: list[int] = field(default_factory=list)


# ---------------------------------------------------------------------------
# extend-add over full updates
# ---------------------------------------------------------------------------


def ea_pairs_full(plan: FactorPlan, c: int) -> set[tuple[int, int]]:
    """(sender, dest) pairs of the *full* (both-triangle) extend-add."""
    sym = plan.sym
    parent = int(sym.sn_parent[c])
    dc = plan.dist[c]
    dp = plan.dist[parent]
    runs = plan.ea_runs(c)
    pairs: set[tuple[int, int]] = set()
    for a in range(len(runs)):
        _, _, cba, pba = runs[a]
        for b in range(len(runs)):
            _, _, cbb, pbb = runs[b]
            sender = dc.group[0] if dc.is_seq else dc.grid.owner(cba, cbb)
            dest = dp.group[0] if dp.is_seq else dp.grid.owner(pba, pbb)
            pairs.add((sender, dest))
    return pairs


def _pack_full(plan: FactorPlan, c: int, me: int, value_getter):
    """Pack this rank's share of child *c*'s full update for its parent."""
    sym = plan.sym
    parent = int(sym.sn_parent[c])
    dc = plan.dist[c]
    dp = plan.dist[parent]
    pa = plan.parent_positions(c)
    runs = plan.ea_runs(c)
    out: dict[int, list] = {}
    for a in range(len(runs)):
        ia0, ia1, cba, pba = runs[a]
        for b in range(len(runs)):
            ib0, ib1, cbb, pbb = runs[b]
            sender = dc.group[0] if dc.is_seq else dc.grid.owner(cba, cbb)
            if sender != me:
                continue
            dest = dp.group[0] if dp.is_seq else dp.grid.owner(pba, pbb)
            ia = np.arange(ia0, ia1, dtype=np.int64)
            ib = np.arange(ib0, ib1, dtype=np.int64)
            ga, gb = np.meshgrid(ia, ib, indexing="ij")
            vals = value_getter(ga, gb)
            out.setdefault(dest, []).append(
                (pa[ga.ravel()], pa[gb.ravel()], vals.ravel())
            )
    return {
        dest: (
            np.concatenate([p[0] for p in pieces]),
            np.concatenate([p[1] for p in pieces]),
            np.concatenate([p[2] for p in pieces]),
        )
        for dest, pieces in out.items()
    }


def _seq_getter(update: np.ndarray):
    def get(ga, gb):
        return update[ga, gb]

    return get


def _dist_getter(lf: LocalFrontLU, width: int):
    d = lf.d

    def get(ga, gb):
        fa = ga + width
        fb = gb + width
        bi = int(d.block_of(np.asarray([fa.flat[0]]))[0])
        bj = int(d.block_of(np.asarray([fb.flat[0]]))[0])
        blk = lf.block(bi, bj)
        return blk[fa - int(d.starts[bi]), fb - int(d.starts[bj])]

    return get


# ---------------------------------------------------------------------------
# the LU factor program
# ---------------------------------------------------------------------------


def make_lu_factor_program(
    plan: FactorPlan,
    permuted_full,
    pivot_perturbation: float | None = None,
):
    """Rank program for the distributed LU factorization."""
    a_rows = csc_to_csr(permuted_full)
    perturb_abs = None
    if pivot_perturbation is not None:
        scale = float(np.max(np.abs(permuted_full.data), initial=0.0))
        perturb_abs = pivot_perturbation * max(scale, 1.0)

    def program(comm: Comm):
        me = comm.world_rank
        sym = plan.sym
        data = RankLUData(rank=me)
        seq_updates: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        dist_updates: dict[int, LocalFrontLU] = {}

        for s in plan.supernodes_for_rank(me):
            d = plan.dist[s]
            if d.is_seq:
                yield from _seq_lu_step(
                    comm, plan, s, me, data, seq_updates, dist_updates,
                    permuted_full, a_rows, perturb_abs,
                )
            else:
                yield from _dist_lu_step(
                    comm, plan, s, me, data, seq_updates, dist_updates,
                    permuted_full, a_rows, perturb_abs,
                )
        return data

    return program


def _send_full_update(plan, s, me, seq_updates, dist_updates):
    parent = int(plan.sym.sn_parent[s])
    if parent < 0:
        return
    d = plan.dist[s]
    if d.is_seq:
        getter = _seq_getter(seq_updates[s][0])
    else:
        getter = _dist_getter(dist_updates[s], d.width)
    packed = _pack_full(plan, s, me, getter)
    for dest in sorted(packed):
        if dest == me:
            continue
        pa, pb, vals = packed[dest]
        yield Send(
            dest,
            ("lea", parent, s),
            (s, pa, pb, vals),
            nbytes=ea_message_nbytes(vals.size),
        )


def _recv_full_contributions(plan, s, me, apply_fn, seq_updates, dist_updates):
    sym = plan.sym
    for c in sym.sn_children[s]:
        pairs = ea_pairs_full(plan, c)
        senders = sorted({src for src, dst in pairs if dst == me})
        if me in senders:
            dc = plan.dist[c]
            if dc.is_seq:
                getter = _seq_getter(seq_updates[c][0])
            else:
                getter = _dist_getter(dist_updates[c], dc.width)
            packed = _pack_full(plan, c, me, getter)
            if me in packed:
                apply_fn(*packed[me])
        for sender in senders:
            if sender == me:
                continue
            c_got, pa, pb, vals = yield Recv(sender, ("lea", s, c))
            assert c_got == c
            apply_fn(pa, pb, vals)
        if plan.dist[c].is_seq:
            seq_updates.pop(c, None)
        else:
            dist_updates.pop(c, None)


def _seq_lu_step(
    comm, plan, s, me, data, seq_updates, dist_updates, a_cols, a_rows, perturb_abs
):
    sym = plan.sym
    d = plan.dist[s]
    rows = sym.sn_rows[s]
    m, w = rows.size, d.width
    front = _assemble_lu_front(a_cols, a_rows, rows, d.c0, w)

    def apply_fn(pa, pb, vals):
        np.add.at(front, (pa, pb), vals)

    yield from _recv_full_contributions(
        plan, s, me, apply_fn, seq_updates, dist_updates
    )
    _partial_lu(front, w, perturb_abs, d.c0, data.perturbed)
    flops = 2 * dense_partial_factor_flops(m, w)
    yield Compute(flops=flops, front_order=m, mem_bytes=8.0 * m * m)
    data.flops += flops
    data.seq_panels[s] = (
        front[:w, :w].copy(),
        front[w:, :w].copy(),
        front[:w, w:].copy(),
    )
    data.factor_entries += w * w + 2 * (m - w) * w
    if m > w:
        seq_updates[s] = (front[w:, w:].copy(), rows[w:])
        yield from _send_full_update(plan, s, me, seq_updates, dist_updates)


def _dist_lu_step(
    comm, plan, s, me, data, seq_updates, dist_updates, a_cols, a_rows, perturb_abs
):
    sym = plan.sym
    d = plan.dist[s]
    grid = d.grid
    nb = plan.opts.nb
    myr, myc = grid.coords(me)
    row_comm = Comm(me, grid.row_members(myr), ctx=("lsn", s, "row", myr))
    col_comm = Comm(me, grid.col_members(myc), ctx=("lsn", s, "col", myc))

    lf = LocalFrontLU(d, me)
    n_assembled = _assemble_dist_lu(plan, s, me, lf, a_cols, a_rows)
    yield Compute(mem_bytes=16.0 * n_assembled)

    yield from _recv_full_contributions(
        plan, s, me, lf.add_entries, seq_updates, dist_updates
    )

    nblocks = d.nblocks
    for k in range(d.npb):
        kb = int(d.starts[k + 1] - d.starts[k])
        diag_owner = grid.owner(k, k)
        payload = None
        if me == diag_owner:
            blk = lf.block(k, k)
            _partial_lu(blk, kb, perturb_abs, d.c0 + int(d.starts[k]), data.perturbed)
            f = 2 * dense_partial_factor_flops(kb, kb)
            yield Compute(flops=f, front_order=kb)
            data.flops += f
            payload = blk
        # Diagonal LU block to its column (for L panels) and row (for U).
        lukk = None
        if myc == k % grid.gc:
            lukk = yield from col_comm.bcast(payload, root=k % grid.gr)
        if myr == k % grid.gr:
            lukk = yield from row_comm.bcast(
                payload if me == diag_owner else (lukk if myc == k % grid.gc else None),
                root=k % grid.gc,
            )

        # L panels: blocks (i, k), i > k — right-solve with U_kk.
        pf = 0
        if myc == k % grid.gc:
            for bi in range(k + 1, nblocks):
                if lf.owns(bi, k):
                    _trsm_right_upper(lukk, lf.block(bi, k))
                    pf += trsm_flops(lf.block(bi, k).shape[0], kb)
        # U panels: blocks (k, j), j > k — left-solve with unit L_kk.
        if myr == k % grid.gr:
            for bj in range(k + 1, nblocks):
                if lf.owns(k, bj):
                    solve_unit_lower_inplace(lukk, lf.block(k, bj))
                    pf += trsm_flops(lf.block(k, bj).shape[1], kb)
        if pf:
            yield Compute(flops=pf, front_order=nb)
            data.flops += pf

        # Panel broadcasts: L_ik along grid row i, U_kj along grid col j.
        row_l: dict[int, np.ndarray] = {}
        col_u: dict[int, np.ndarray] = {}
        for bi in range(k + 1, nblocks):
            if myr == bi % grid.gr:
                pay = lf.block(bi, k) if myc == k % grid.gc else None
                row_l[bi] = yield from row_comm.bcast(pay, root=k % grid.gc)
        for bj in range(k + 1, nblocks):
            if myc == bj % grid.gc:
                pay = lf.block(k, bj) if myr == k % grid.gr else None
                col_u[bj] = yield from col_comm.bcast(pay, root=k % grid.gr)

        # Trailing update on all owned blocks (a, b), a > k, b > k.
        uf = 0
        for (a, b), blk in lf.blocks.items():
            if a <= k or b <= k:
                continue
            blk -= row_l[a] @ col_u[b]
            uf += gemm_flops(blk.shape[0], blk.shape[1], kb)
        if uf:
            yield Compute(flops=uf, front_order=nb)
            data.flops += uf

    yield from _lu_solve_redistribution(plan, s, me, lf, data)
    if d.m > d.width:
        dist_updates[s] = lf
        yield from _send_full_update(plan, s, me, seq_updates, dist_updates)


def _assemble_dist_lu(plan, s, me, lf: LocalFrontLU, a_cols, a_rows) -> int:
    sym = plan.sym
    d = plan.dist[s]
    rows = sym.sn_rows[s]
    n_scattered = 0
    for k in range(d.width):
        j = d.c0 + k
        bj = int(d.block_of(np.asarray([k]))[0])
        # Column part (L side, rows >= j).
        r_idx, r_vals = a_cols.col(j)
        keep = r_idx >= j
        r_idx, r_vals = r_idx[keep], r_vals[keep]
        if r_idx.size:
            pa = np.searchsorted(rows, r_idx)
            bi = d.block_of(pa)
            mine = np.asarray(
                [d.grid.owner(int(i), bj) == me for i in bi], dtype=bool
            )
            if mine.any():
                lf.add_entries(
                    pa[mine],
                    np.full(int(mine.sum()), k, dtype=np.int64),
                    r_vals[mine],
                )
                n_scattered += int(mine.sum())
        # Row part (U side, cols > j).
        c_idx, c_vals = a_rows.row(j)
        keep = c_idx > j
        c_idx, c_vals = c_idx[keep], c_vals[keep]
        if c_idx.size:
            pb = np.searchsorted(rows, c_idx)
            bjs = d.block_of(pb)
            mine = np.asarray(
                [d.grid.owner(bj, int(jb)) == me for jb in bjs], dtype=bool
            )
            if mine.any():
                lf.add_entries(
                    np.full(int(mine.sum()), k, dtype=np.int64),
                    pb[mine],
                    c_vals[mine],
                )
                n_scattered += int(mine.sum())
    return n_scattered


def _lu_solve_redistribution(plan, s, me, lf: LocalFrontLU, data):
    """Gather per-row data onto row owners: pivot rows full-width, update
    rows L-width."""
    d = plan.dist[s]
    grid = d.grid
    outgoing: dict[int, dict[int, list]] = {}
    for (bi, bj), blk in lf.blocks.items():
        keep = bj < d.npb or bi < d.npb
        if not keep:
            continue
        if bi >= d.npb and bj >= d.npb:
            continue
        dest = d.row_owner(bi)
        outgoing.setdefault(dest, {}).setdefault(bi, []).append((bj, blk))
    for dest in sorted(outgoing):
        if dest == me:
            continue
        payload = outgoing[dest]
        nbytes = sum(b.nbytes for pieces in payload.values() for _, b in pieces)
        yield Send(dest, ("lredist", s), payload, nbytes=nbytes + 64)

    my_rows = [bi for bi in range(d.nblocks) if d.row_owner(bi) == me]
    assembled: dict[int, np.ndarray] = {}
    expected: set[int] = set()
    for bi in my_rows:
        r0, r1 = d.block_range(bi)
        width = d.m if bi < d.npb else d.width
        assembled[bi] = np.zeros((r1 - r0, width))
        bj_range = range(d.nblocks) if bi < d.npb else range(d.npb)
        for bj in bj_range:
            owner = grid.owner(bi, bj)
            if owner != me:
                expected.add(owner)
    local = outgoing.get(me, {})

    def place(bi, bj, blk):
        if bi >= d.npb and bj >= d.npb:
            return
        c0, c1 = d.block_range(bj)
        assembled[bi][:, c0:c1] = blk

    for bi, pieces in local.items():
        for bj, blk in pieces:
            place(bi, bj, blk)
    for sender in sorted(expected):
        payload = yield Recv(sender, ("lredist", s))
        for bi, pieces in payload.items():
            for bj, blk in pieces:
                place(bi, bj, blk)
    if assembled:
        data.dist_rows[s] = assembled
        data.factor_entries += sum(a.size for a in assembled.values())


def _trsm_right_upper(lu: np.ndarray, b: np.ndarray) -> None:
    """``B <- B U^{-1}`` with U = upper triangle (incl. diagonal) of the
    packed LU block."""
    k = lu.shape[0]
    for j in range(k):
        b[:, j] /= lu[j, j]
        if j + 1 < k:
            b[:, j + 1:] -= np.outer(b[:, j], lu[j, j + 1:])


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


@dataclass
class ParallelLUResult:
    """Outcome of one simulated distributed LU factorization."""

    plan: FactorPlan
    sim: object
    datas: list[RankLUData]
    machine: object
    permuted_full: object

    @property
    def makespan(self) -> float:
        return self.sim.makespan

    @property
    def total_flops(self) -> float:
        return sum(d.flops for d in self.datas)

    def to_dense_lu(self) -> tuple[np.ndarray, np.ndarray]:
        """Reassemble dense (L, U) from the rank pieces (tests)."""
        sym = self.plan.sym
        n = sym.n
        l = np.eye(n)
        u = np.zeros((n, n))
        for data in self.datas:
            for s, (lu11, l21, u12) in data.seq_panels.items():
                rows = sym.sn_rows[s]
                w = sym.supernode_width(s)
                c0 = int(sym.partition.sn_start[s])
                cols = np.arange(c0, c0 + w)
                l[np.ix_(cols, cols)] = np.tril(lu11, -1) + np.eye(w)
                u[np.ix_(cols, cols)] = np.triu(lu11)
                if rows.size > w:
                    l[np.ix_(rows[w:], cols)] = l21
                    u[np.ix_(cols, rows[w:])] = u12
            for s, segs in data.dist_rows.items():
                d = self.plan.dist[s]
                rows = sym.sn_rows[s]
                c0 = int(sym.partition.sn_start[s])
                w = d.width
                for bi, arr in segs.items():
                    r0, r1 = d.block_range(bi)
                    for li, r in enumerate(range(r0, r1)):
                        gr_ = rows[r]
                        if bi < d.npb:
                            # full factor row: L strictly left, U from diag.
                            l[gr_, c0: c0 + r] = arr[li, :r]
                            u[gr_, rows] = 0.0
                            u[gr_, rows[r:]] = arr[li, r:]
                        else:
                            l[gr_, c0: c0 + w] = arr[li, :w]
        return l, u


def simulate_lu_factorization(
    sym: SymbolicFactor,
    permuted_full,
    n_ranks: int,
    machine,
    options: PlanOptions | None = None,
    pivot_perturbation: float | None = None,
) -> ParallelLUResult:
    """Run the distributed LU factorization on the simulated machine."""
    from repro.simmpi.scheduler import Simulator

    plan = FactorPlan(sym, n_ranks, options)
    program = make_lu_factor_program(
        plan, permuted_full, pivot_perturbation=pivot_perturbation
    )
    sim = Simulator(machine, n_ranks).run(program)
    return ParallelLUResult(
        plan=plan,
        sim=sim,
        datas=list(sim.returns),
        machine=machine,
        permuted_full=permuted_full,
    )


def simulate_lu_solve(result: ParallelLUResult, b: np.ndarray):
    """Distributed LU solve for one RHS (original ordering)."""
    from repro.parallel.lu_solve_par import make_lu_solve_program
    from repro.simmpi.scheduler import Simulator
    from repro.sparse.permute import permute_vector, unpermute_vector
    from repro.util.errors import ShapeError
    from repro.util.validation import as_float_array

    b = as_float_array(b, "b")
    sym = result.plan.sym
    if b.shape[0] != sym.n or b.ndim > 2:
        raise ShapeError(
            f"b must have shape ({sym.n},) or ({sym.n}, k); got {b.shape}"
        )
    bp = permute_vector(b, sym.perm)
    program = make_lu_solve_program(result.plan, result.datas, bp)
    sim = Simulator(result.machine, result.plan.n_ranks).run(program)
    xp = np.zeros(b.shape)
    seen = np.zeros(sym.n, dtype=bool)
    for pieces, _ in sim.returns:
        for rows, vals in pieces:
            xp[rows] = vals
            seen[rows] = True
    if not seen.all():
        raise ShapeError(
            f"LU solve left {int((~seen).sum())} rows unsolved"
        )
    return sim, unpermute_vector(xp, sym.perm)
