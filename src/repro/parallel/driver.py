"""Host-side drivers for the simulated parallel factorization and solve.

These run the rank programs under the discrete-event simulator, collect the
per-rank factor pieces, and reassemble/verify results against the
sequential engine. Factor and solve are timed as separate simulations, the
way the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.model import MachineModel
from repro.obs.spans import span
from repro.parallel.factor_par import RankFactorData, make_factor_program
from repro.parallel.plan import FactorPlan, PlanOptions
from repro.parallel.solve_par import make_solve_program
from repro.simmpi.scheduler import Simulator, SimResult
from repro.sparse.permute import permute_vector, unpermute_vector
from repro.symbolic.analyze import SymbolicFactor
from repro.util.errors import ShapeError
from repro.util.validation import as_float_array


@dataclass
class ParallelFactorResult:
    """Outcome of one simulated parallel factorization."""

    plan: FactorPlan
    method: str
    sim: SimResult
    datas: list[RankFactorData]
    machine: MachineModel
    threads_per_rank: int

    @property
    def makespan(self) -> float:
        return self.sim.makespan

    @property
    def total_flops(self) -> float:
        return sum(d.flops for d in self.datas)

    @property
    def gflops(self) -> float:
        """Achieved factorization rate on the simulated machine."""
        if self.makespan <= 0:
            return 0.0
        return self.total_flops / self.makespan / 1e9

    @property
    def peak_fraction(self) -> float:
        """Achieved rate as a fraction of the machine's aggregate peak."""
        peak = (
            self.plan.n_ranks
            * self.machine.peak_gflops(self.threads_per_rank)
        )
        return self.gflops / peak if peak else 0.0

    def factor_entries_by_rank(self) -> np.ndarray:
        return np.asarray([d.factor_entries for d in self.datas], dtype=np.int64)

    def peak_entries_by_rank(self) -> np.ndarray:
        return np.asarray(
            [d.peak_entries + d.factor_entries for d in self.datas],
            dtype=np.int64,
        )

    def comm_fraction(self) -> float:
        """Fraction of total rank-time spent sending or waiting."""
        total = sum(s.finish_time for s in self.sim.rank_stats)
        if total <= 0:
            return 0.0
        comm = sum(s.send_time + s.wait_time for s in self.sim.rank_stats)
        return comm / total

    def to_dense_l(self) -> np.ndarray:
        """Reassemble the global factor L (dense; tests/diagnostics)."""
        sym = self.plan.sym
        n = sym.n
        l = np.zeros((n, n))
        for data in self.datas:
            for s, panel in data.seq_panels.items():
                _fill_panel(l, sym, s, panel, self.method)
            for s, segs in data.dist_row_panels.items():
                d = self.plan.dist[s]
                rows = sym.sn_rows[s]
                for bi, arr in segs.items():
                    r0, r1 = d.block_range(bi)
                    for li, r in enumerate(range(r0, r1)):
                        gr_ = rows[r]
                        upto = min(r + 1, d.width)
                        l[gr_, sym.partition.sn_start[s]: sym.partition.sn_start[s] + upto] = arr[li, :upto]
        if self.method == "ldlt":
            # Stored diagonals hold D; the LDLᵀ L is unit-lower.
            np.fill_diagonal(l, 1.0)
        return l

    def assemble_diag(self) -> np.ndarray | None:
        """Global LDLᵀ pivot vector (None for Cholesky)."""
        if self.method != "ldlt":
            return None
        sym = self.plan.sym
        d_out = np.zeros(sym.n)
        for data in self.datas:
            for s, dv in data.seq_diag.items():
                c0 = int(sym.partition.sn_start[s])
                d_out[c0: c0 + dv.size] = dv
            for s, dmap in data.dist_diag.items():
                dst = self.plan.dist[s]
                for bi, dv in dmap.items():
                    r0, _ = dst.block_range(bi)
                    c0 = int(sym.partition.sn_start[s])
                    d_out[c0 + r0: c0 + r0 + dv.size] = dv
        return d_out


def _fill_panel(l, sym, s, panel, method) -> None:
    rows = sym.sn_rows[s]
    w = sym.supernode_width(s)
    c0 = int(sym.partition.sn_start[s])
    for k in range(w):
        l[rows[k:], c0 + k] = panel[k:, k]
        if method == "ldlt":
            l[rows[k], c0 + k] = 1.0


@dataclass
class ParallelSolveResult:
    """Outcome of one simulated distributed solve."""

    sim: SimResult
    x: np.ndarray

    @property
    def makespan(self) -> float:
        return self.sim.makespan

    @property
    def total_flops(self) -> float:
        return sum(r[1] for r in self.sim.returns)


def simulate_factorization(
    sym: SymbolicFactor,
    n_ranks: int,
    machine: MachineModel,
    options: PlanOptions | None = None,
    method: str = "cholesky",
    threads_per_rank: int = 1,
    trace: bool = False,
    plan: FactorPlan | None = None,
) -> ParallelFactorResult:
    """Run the distributed factorization on the simulated machine.

    With ``trace=True`` the result's ``sim.trace`` carries the per-rank
    event timeline (see :mod:`repro.analysis.tracing`).

    A prebuilt *plan* (for this *sym* and *n_ranks*) skips plan
    construction — the plan is purely structural, so serving layers reuse
    it across numeric re-factorizations of the same pattern.
    """
    if plan is None:
        with span("parallel.plan", ranks=n_ranks):
            plan = FactorPlan(sym, n_ranks, options)
    elif plan.sym is not sym or plan.n_ranks != n_ranks:
        raise ShapeError(
            "prebuilt plan does not match this symbolic factor / rank count"
        )
    program = make_factor_program(plan, method=method)
    with span("parallel.factor_sim", ranks=n_ranks, machine=machine.name):
        sim = Simulator(
            machine, n_ranks, threads_per_rank=threads_per_rank, trace=trace
        ).run(program)
    datas = list(sim.returns)
    return ParallelFactorResult(
        plan=plan,
        method=method,
        sim=sim,
        datas=datas,
        machine=machine,
        threads_per_rank=threads_per_rank,
    )


def simulate_solve(
    factor: ParallelFactorResult, b: np.ndarray
) -> ParallelSolveResult:
    """Run the distributed forward+backward solve.

    *b* may be a single right-hand side of shape ``(n,)`` or a block of
    right-hand sides of shape ``(n, k)`` — the distributed sweeps then run
    blocked (dgemm instead of dgemv panels), amortizing the latency-bound
    message pattern over k vectors the way production solvers do.
    """
    b = as_float_array(b, "b")
    sym = factor.plan.sym
    if b.shape[0] != sym.n or b.ndim > 2:
        raise ShapeError(f"b must have shape ({sym.n},) or ({sym.n}, k); got {b.shape}")
    bp = permute_vector(b, sym.perm)
    program = make_solve_program(factor.plan, factor.datas, bp, factor.method)
    with span("parallel.solve_sim", ranks=factor.plan.n_ranks):
        sim = Simulator(
            factor.machine, factor.plan.n_ranks, threads_per_rank=factor.threads_per_rank
        ).run(program)
    xp = np.zeros(b.shape)
    seen = np.zeros(sym.n, dtype=bool)
    for pieces, _fl in sim.returns:
        for rows, vals in pieces:
            xp[rows] = vals
            seen[rows] = True
    if not seen.all():
        missing = np.flatnonzero(~seen)
        raise ShapeError(
            f"solve returned no value for {missing.size} rows (first {missing[:5]})"
        )
    x = unpermute_vector(xp, sym.perm)
    return ParallelSolveResult(sim=sim, x=x)
