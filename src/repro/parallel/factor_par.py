"""The distributed numeric factorization rank program.

Each rank walks the supernodes it participates in, in ascending (postorder)
order:

* **sequential supernodes** (group of one): assemble, extend-add local and
  remote child contributions, dense partial factorization — charged as one
  compute region;
* **distributed supernodes**: 2D block-cyclic blocked right-looking partial
  factorization with pipelined panel broadcasts along grid rows/columns
  (ScaLAPACK-style; 1D degenerates to the MUMPS-like fan-out), then the
  solve-ready redistribution of the panel to row owners.

After a supernode is factored, the ranks holding pieces of its update
matrix immediately pack and send them toward the owners of the parent's
blocks (parallel extend-add); local shares short-circuit the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dense.chol import cholesky_in_place, _trsm_right_lower_transpose
from repro.dense.ldlt import ldlt_in_place
from repro.dense.partial_factor import partial_cholesky, partial_ldlt, _trsm_right_unit_lower_transpose
from repro.mf.frontal import assemble_front
from repro.obs.profile import active_profile
from repro.parallel.dist_front import (
    LocalFront,
    assemble_dist_entries,
    dist_update_getter,
    pack_update_messages,
    seq_update_getter,
)
from repro.parallel.plan import FactorPlan
from repro.simmpi.comm import Comm
from repro.simmpi.ops import Compute, Recv, Send
from repro.symbolic.analyze import dense_partial_factor_flops


def trsm_flops(rows: int, k: int) -> int:
    """Triangular panel solve flop count (consistent with the dense
    convention: k divisions + 2 madds per remaining element per row)."""
    return rows * k * (k + 1)


def gemm_flops(m: int, n: int, k: int) -> int:
    return 2 * m * n * k


def ea_message_nbytes(n_vals: int) -> int:
    """Wire size of an extend-add fragment: 8B values + compressed local
    indices (real codes ship block-relative 16-bit offsets)."""
    return 8 * n_vals + 4 * n_vals + 64


@dataclass
class RankFactorData:
    """Everything one rank keeps after the factorization (its slice of the
    factor plus bookkeeping the driver aggregates)."""

    rank: int
    #: seq supernode -> m×w panel
    seq_panels: dict[int, np.ndarray] = field(default_factory=dict)
    #: seq supernode -> LDLᵀ pivots
    seq_diag: dict[int, np.ndarray] = field(default_factory=dict)
    #: dist supernode -> {row_block: (w-wide rows array)}
    dist_row_panels: dict[int, dict[int, np.ndarray]] = field(default_factory=dict)
    #: dist supernode -> LDLᵀ pivots of the pivot rows this rank owns
    dist_diag: dict[int, dict[int, np.ndarray]] = field(default_factory=dict)
    #: stored factor entries on this rank
    factor_entries: int = 0
    #: peak transient entries (front blocks + pending updates)
    peak_entries: int = 0
    #: flops charged
    flops: float = 0.0


def make_factor_program(plan: FactorPlan, method: str = "cholesky"):
    """Build the rank program (a generator function for the simulator)."""

    def program(comm: Comm):
        me = comm.world_rank
        sym = plan.sym
        data = RankFactorData(rank=me)
        # Child update holdings of this rank, consumed by parents:
        seq_updates: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        dist_updates: dict[int, LocalFront] = {}
        live_entries = 0

        def bump_peak() -> None:
            data.peak_entries = max(data.peak_entries, live_entries)

        for s in plan.supernodes_for_rank(me):
            d = plan.dist[s]
            if d.is_seq:
                live_delta = yield from _seq_step(
                    comm, plan, s, me, method, data, seq_updates, dist_updates
                )
            else:
                live_delta = yield from _dist_step(
                    comm, plan, s, me, method, data, seq_updates, dist_updates
                )
            live_entries += live_delta
            bump_peak()
        return data

    return program


# ---------------------------------------------------------------------------
# shared extend-add machinery
# ---------------------------------------------------------------------------


def _send_update_to_parent(plan, s, me, seq_updates, dist_updates):
    """Yield Sends of this rank's share of s's update toward the parent's
    owners; local shares stay in the holdings dicts for the parent step.

    Returns the number of entries freed (sent away) so the caller can track
    live memory.
    """
    sym = plan.sym
    parent = int(sym.sn_parent[s])
    if parent < 0:
        return
    d = plan.dist[s]
    if d.is_seq:
        update, _rows = seq_updates[s]
        getter = seq_update_getter(update)
    else:
        getter = dist_update_getter(dist_updates[s], d.width)
    packed = pack_update_messages(plan, s, me, getter)
    for dest in sorted(packed):
        if dest == me:
            continue  # applied locally during the parent's step
        pa, pb, vals = packed[dest]
        yield Send(
            dest,
            ("ea", parent, s),
            (s, pa, pb, vals),
            nbytes=ea_message_nbytes(vals.size),
        )


def _receive_contributions(plan, s, me, apply_fn, seq_updates, dist_updates):
    """Apply local child shares and receive remote ones for supernode s.

    *apply_fn(pa, pb, vals)* scatters into this rank's piece of the front.
    Returns entries freed from local holdings.
    """
    sym = plan.sym
    freed = 0
    for c in sym.sn_children[s]:
        dc = plan.dist[c]
        # Local share first (deterministic order: local, then ranks asc).
        senders = plan.ea_senders_to(c, me)
        if me in senders:
            if dc.is_seq:
                update, _rows = seq_updates[c]
                getter = seq_update_getter(update)
            else:
                getter = dist_update_getter(dist_updates[c], dc.width)
            packed = pack_update_messages(plan, c, me, getter)
            if me in packed:
                pa, pb, vals = packed[me]
                apply_fn(pa, pb, vals)
        for sender in senders:
            if sender == me:
                continue
            payload = yield Recv(sender, ("ea", s, c))
            c_got, pa, pb, vals = payload
            assert c_got == c
            apply_fn(pa, pb, vals)
        # Free the child holding once its parent consumed it.
        if dc.is_seq and c in seq_updates:
            update, _ = seq_updates.pop(c)
            freed += update.size
        elif not dc.is_seq and c in dist_updates:
            lf = dist_updates.pop(c)
            freed += sum(
                b.size
                for (bi, bj), b in lf.blocks.items()
                if bi >= lf.d.npb and bj >= lf.d.npb
            )
    return freed


# ---------------------------------------------------------------------------
# sequential supernode step
# ---------------------------------------------------------------------------


def _seq_step(comm, plan, s, me, method, data, seq_updates, dist_updates):
    sym = plan.sym
    d = plan.dist[s]
    rows = sym.sn_rows[s]
    m = rows.size
    w = d.width
    front = assemble_front(sym.permuted_lower, rows, d.c0, w)
    live_delta = m * m

    def apply_fn(pa, pb, vals):
        np.add.at(front, (pa, pb), vals)

    freed = yield from _receive_contributions(
        plan, s, me, apply_fn, seq_updates, dist_updates
    )
    live_delta -= freed

    flops = dense_partial_factor_flops(m, w)
    if method == "cholesky":
        partial_cholesky(front, w)
    else:
        dvals = partial_ldlt(front, w)
        data.seq_diag[s] = dvals
    yield Compute(
        flops=flops, front_order=m, mem_bytes=8.0 * (m * w + m * m - (m - w) ** 2)
    )
    data.flops += flops
    prof = active_profile()
    if prof is not None:
        prof.add_sim_flops(s, flops)

    panel = front[:, :w].copy()
    data.seq_panels[s] = panel
    data.factor_entries += panel.size
    if m > w:
        seq_updates[s] = (front[w:, w:].copy(), rows[w:])
        live_delta += (m - w) ** 2
        yield from _send_update_to_parent(plan, s, me, seq_updates, dist_updates)
    live_delta -= m * m  # front released (panel accounted in factor entries)
    return live_delta


# ---------------------------------------------------------------------------
# distributed supernode step
# ---------------------------------------------------------------------------


def _dist_step(comm, plan, s, me, method, data, seq_updates, dist_updates):
    sym = plan.sym
    d = plan.dist[s]
    grid = d.grid
    nb = plan.opts.nb
    myr, myc = grid.coords(me)
    sub = Comm(me, d.group, ctx=("sn", s))
    row_comm = Comm(me, grid.row_members(myr), ctx=("sn", s, "row", myr))
    col_comm = Comm(me, grid.col_members(myc), ctx=("sn", s, "col", myc))

    lf = LocalFront(d, me)
    live_delta = lf.entries
    step_flops = 0.0
    n_assembled = assemble_dist_entries(plan, s, me, lf)
    yield Compute(mem_bytes=16.0 * n_assembled)

    freed = yield from _receive_contributions(
        plan, s, me, lf.add_entries, seq_updates, dist_updates
    )
    live_delta -= freed

    # Blocked right-looking partial factorization over pivot block-columns.
    nblocks = d.nblocks
    for k in range(d.npb):
        kb = int(d.starts[k + 1] - d.starts[k])
        diag_owner = grid.owner(k, k)
        diag_payload = None
        diag_d = None
        if me == diag_owner:
            blk = lf.block(k, k)
            if method == "cholesky":
                cholesky_in_place(blk, block=nb)
            else:
                diag_d = ldlt_in_place(blk)
            f = dense_partial_factor_flops(kb, kb)
            yield Compute(flops=f, front_order=kb)
            data.flops += f
            step_flops += f
            diag_payload = (blk, diag_d)
        # Diagonal factor broadcast down its grid column (panel owners).
        if myc == k % grid.gc:
            got = yield from col_comm.bcast(diag_payload, root=k % grid.gr)
            lkk, diag_d = got
        else:
            lkk = None
        # LDLᵀ pivots reach everyone (needed in the trailing update).
        if method == "ldlt":
            diag_d = yield from sub.bcast(
                diag_d, root=d.group.index(diag_owner)
            )
            if me == diag_owner:
                data.dist_diag.setdefault(s, {})

        # Panel solves on my blocks (i, k), i > k.
        panel_flops = 0
        if myc == k % grid.gc:
            for bi in range(k + 1, nblocks):
                if not lf.owns(bi, k):
                    continue
                pblk = lf.block(bi, k)
                if method == "cholesky":
                    _trsm_right_lower_transpose(lkk, pblk)
                else:
                    _trsm_right_unit_lower_transpose(lkk, pblk)
                    pblk /= diag_d[None, :]
                panel_flops += trsm_flops(pblk.shape[0], kb)
        if panel_flops:
            yield Compute(flops=panel_flops, front_order=nb)
            data.flops += panel_flops
            step_flops += panel_flops

        # Panel broadcasts: row-wise (left operand), then column-wise
        # (transposed right operand) from the freshly informed diagonal-row
        # rank — the ScaLAPACK pipeline.
        row_l: dict[int, np.ndarray] = {}
        col_l: dict[int, np.ndarray] = {}
        for bi in range(k + 1, nblocks):
            if myr == bi % grid.gr:
                payload = lf.block(bi, k) if myc == k % grid.gc else None
                row_l[bi] = yield from row_comm.bcast(payload, root=k % grid.gc)
            if myc == bi % grid.gc:
                payload = row_l.get(bi) if myr == bi % grid.gr else None
                col_l[bi] = yield from col_comm.bcast(payload, root=bi % grid.gr)

        # Trailing update on my blocks (a, b) with b > k.
        upd_flops = 0
        for (a, b), blk in lf.blocks.items():
            if b <= k:
                continue
            la = row_l.get(a)
            lb = col_l.get(b)
            if la is None or lb is None:
                # Defensive: ownership implies membership in both bcasts.
                raise AssertionError(
                    f"rank {me} missing panel blocks for update ({a},{b})"
                )
            if method == "cholesky":
                blk -= la @ lb.T
            else:
                blk -= (la * diag_d[None, :]) @ lb.T
            upd_flops += gemm_flops(blk.shape[0], blk.shape[1], kb)
        if upd_flops:
            yield Compute(flops=upd_flops, front_order=nb)
            data.flops += upd_flops
            step_flops += upd_flops

    # Solve-ready redistribution: gather panel row-blocks to row owners.
    yield from _solve_redistribution(plan, s, me, lf, data, method)

    # Keep the trailing blocks as this rank's share of s's update, send
    # remote shares toward the parent.
    has_update = d.m > d.width
    if has_update:
        dist_updates[s] = lf
        yield from _send_update_to_parent(plan, s, me, seq_updates, dist_updates)
        # Pivot-panel blocks were copied out by the redistribution; drop
        # them from the live count.
        live_delta -= sum(
            b.size for (bi, bj), b in lf.blocks.items() if bj < d.npb
        )
    else:
        live_delta -= lf.entries
    prof = active_profile()
    if prof is not None:
        prof.add_sim_flops(s, step_flops)
    return live_delta


def _solve_redistribution(plan, s, me, lf: LocalFront, data, method):
    """Gather the factored panel's row-blocks onto their solve owners."""
    d = plan.dist[s]
    grid = d.grid
    # Outgoing: my panel blocks grouped by destination row owner.
    outgoing: dict[int, dict[int, list]] = {}
    for (bi, bj), blk in lf.blocks.items():
        if bj >= d.npb:
            continue
        dest = d.row_owner(bi)
        outgoing.setdefault(dest, {}).setdefault(bi, []).append((bj, blk))
    for dest in sorted(outgoing):
        if dest == me:
            continue
        payload = outgoing[dest]
        nbytes = sum(
            blk.nbytes for blocks in payload.values() for _, blk in blocks
        )
        yield Send(dest, ("sredist", s), payload, nbytes=nbytes + 64)

    # Incoming: assemble full rows for the row blocks I own.
    my_rows = [bi for bi in range(d.nblocks) if d.row_owner(bi) == me]
    assembled: dict[int, np.ndarray] = {}
    expected: dict[int, set] = {}
    for bi in my_rows:
        r0, r1 = d.block_range(bi)
        assembled[bi] = np.zeros((r1 - r0, d.width))
        for bj in range(min(bi + 1, d.npb)):
            owner = grid.owner(bi, bj)
            if owner != me:
                expected.setdefault(owner, set()).add(bi)
    # Fill from local blocks.
    local = outgoing.get(me, {})
    for bi, pieces in local.items():
        for bj, blk in pieces:
            c0, c1 = d.block_range(bj)
            assembled[bi][:, c0:c1] = blk
    # Receive the rest (one message per sender).
    for sender in sorted(expected):
        payload = yield Recv(sender, ("sredist", s))
        for bi, pieces in payload.items():
            for bj, blk in pieces:
                c0, c1 = d.block_range(bj)
                assembled[bi][:, c0:c1] = blk

    if assembled:
        data.dist_row_panels[s] = assembled
        data.factor_entries += sum(a.size for a in assembled.values())
        if method == "ldlt":
            diag_map = data.dist_diag.setdefault(s, {})
            for bi in my_rows:
                if bi < d.npb:
                    r0, _ = d.block_range(bi)
                    rows_arr = assembled[bi]
                    # Diagonal entries of the pivot block hold D.
                    local_idx = np.arange(rows_arr.shape[0])
                    diag_map[bi] = rows_arr[local_idx, r0 + local_idx]
