"""Distributed supernodal triangular solves.

The solve mirrors the multifrontal structure: right-hand-side "update
vectors" flow up the assembly tree during the forward sweep (fan-in) and
solution values flow back down during the backward sweep (fan-out).

Distributed supernodes operate on the solve-ready row-block layout produced
at factorization time: row block ``bi`` of a front lives on
``group[bi % g]``. Pivot solves proceed block-by-block with the computed
segment broadcast to the group; update rows are then purely local dgemvs.

The solve performs ~2 flops per factor entry — far lower arithmetic
intensity than factorization — so its simulated scaling rolls off earlier,
which is exactly the behaviour the paper family reports (bench T5).
"""

from __future__ import annotations

import numpy as np

from repro.dense.trsm import (
    solve_lower_inplace,
    solve_lower_transpose_inplace,
    solve_unit_lower_inplace,
    solve_unit_lower_transpose_inplace,
)
from repro.parallel.factor_par import RankFactorData
from repro.parallel.plan import FactorPlan
from repro.simmpi.comm import Comm
from repro.simmpi.ops import Compute, Recv, Send


# ---------------------------------------------------------------------------
# routing helpers (pure functions of the plan)
# ---------------------------------------------------------------------------


def _solve_sender(plan: FactorPlan, c: int, cb: int) -> int:
    dc = plan.dist[c]
    if dc.is_seq:
        return dc.group[0]
    return dc.row_owner(cb)


def _solve_dest(plan: FactorPlan, parent: int, pb: int) -> int:
    dp = plan.dist[parent]
    if dp.is_seq:
        return dp.group[0]
    return dp.row_owner(pb)


def solve_pairs(plan: FactorPlan, c: int) -> set[tuple[int, int]]:
    """Nonempty (sender, dest) pairs for the rhs fan-in of child *c* into
    its parent (reversed for the backward fan-out)."""
    parent = int(plan.sym.sn_parent[c])
    pairs = set()
    for _i0, _i1, cb, pb in plan.ea_runs(c):
        pairs.add((_solve_sender(plan, c, cb), _solve_dest(plan, parent, pb)))
    return pairs


def _pack_up(plan, c, me, u_getter):
    """Pack this rank's rhs contributions of child *c* for the parent.

    *u_getter(i0, i1)* returns the child-update-local segment of u.
    Returns dest -> (parent_positions, values).
    """
    parent = int(plan.sym.sn_parent[c])
    pa = plan.parent_positions(c)
    out: dict[int, list] = {}
    for i0, i1, cb, pb in plan.ea_runs(c):
        if _solve_sender(plan, c, cb) != me:
            continue
        dest = _solve_dest(plan, parent, pb)
        out.setdefault(dest, []).append((pa[i0:i1], u_getter(i0, i1)))
    return {
        dest: (
            np.concatenate([p[0] for p in pieces]),
            np.concatenate([p[1] for p in pieces]),
        )
        for dest, pieces in out.items()
    }


def _pack_down(plan, c, me, x_getter):
    """Pack parent-side x values needed by child *c*'s solve owners.

    *x_getter(parent_positions)* returns x at those parent-local positions.
    Returns dest -> (child_update_positions, values).
    """
    pa = plan.parent_positions(c)
    parent = int(plan.sym.sn_parent[c])
    out: dict[int, list] = {}
    for i0, i1, cb, pb in plan.ea_runs(c):
        if _solve_dest(plan, parent, pb) != me:
            continue  # in backward the parent-side owner is the sender
        dest = _solve_sender(plan, c, cb)
        out.setdefault(dest, []).append(
            (np.arange(i0, i1, dtype=np.int64), x_getter(pa[i0:i1]))
        )
    return {
        dest: (
            np.concatenate([p[0] for p in pieces]),
            np.concatenate([p[1] for p in pieces]),
        )
        for dest, pieces in out.items()
    }


# ---------------------------------------------------------------------------
# the solve rank program
# ---------------------------------------------------------------------------


def make_solve_program(plan: FactorPlan, datas: list[RankFactorData], bp: np.ndarray, method: str):
    """Build the solve rank program.

    Parameters
    ----------
    datas
        Per-rank factor data from the factorization simulation (each rank
        reads only its own entry).
    bp
        Right-hand side in *permuted* order; assumed pre-distributed (each
        rank reads only the entries of rows it owns).
    """

    tail = bp.shape[1:]  # () for one RHS, (k,) for k right-hand sides

    def program(comm: Comm):
        me = comm.world_rank
        data = datas[me]
        sym = plan.sym
        my_sns = plan.supernodes_for_rank(me)

        # ------------------------------------------------------ forward --
        # Per-supernode rhs state this rank holds:
        #   seq: y_piv (after L11 solve), u vector
        #   dist: y segments per owned row block
        fwd_piv: dict[int, np.ndarray] = {}
        fwd_useg: dict[int, dict[int, np.ndarray]] = {}
        seq_u: dict[int, np.ndarray] = {}
        flops = 0.0

        for s in my_sns:
            d = plan.dist[s]
            if d.is_seq:
                flops += yield from _fwd_seq(
                    plan, s, me, data, bp, method, fwd_piv, seq_u, fwd_useg, comm
                )
            else:
                flops += yield from _fwd_dist(
                    plan, s, me, data, bp, method, fwd_piv, seq_u, fwd_useg, comm
                )

        # ----------------------------------------------------- backward --
        x_piv: dict[int, np.ndarray] = {}
        x_useg: dict[int, dict[int, np.ndarray]] = {}
        seq_xupd: dict[int, np.ndarray] = {}

        for s in reversed(my_sns):
            d = plan.dist[s]
            if d.is_seq:
                flops += yield from _bwd_seq(
                    plan, s, me, data, method, fwd_piv, x_piv, seq_xupd, x_useg, comm
                )
            else:
                flops += yield from _bwd_dist(
                    plan, s, me, data, method, fwd_piv, x_piv, seq_xupd, x_useg, comm
                )

        # Return owned solution segments: (global rows, values) pieces.
        pieces: list[tuple[np.ndarray, np.ndarray]] = []
        for s, xp in x_piv.items():
            d = plan.dist[s]
            rows = sym.sn_rows[s]
            if d.is_seq:
                pieces.append((rows[: d.width], xp))
        for s in my_sns:
            d = plan.dist[s]
            if d.is_seq:
                continue
            rows = sym.sn_rows[s]
            for bi in range(d.npb):
                if d.row_owner(bi) == me and (s, bi) in _dist_xpiv:
                    r0, r1 = d.block_range(bi)
                    pieces.append((rows[r0:r1], _dist_xpiv[(s, bi)]))
        return pieces, flops

    # Stash for distributed pivot segments (keyed (s, block)); lives in the
    # closure so the helpers below can fill it.
    _dist_xpiv: dict[tuple[int, int], np.ndarray] = {}

    # -- forward helpers ---------------------------------------------------

    def _fwd_seq(plan, s, me, data, bp, method, fwd_piv, seq_u, fwd_useg, comm):
        sym = plan.sym
        d = plan.dist[s]
        rows = sym.sn_rows[s]
        m, w = rows.size, d.width
        f = np.zeros((m,) + tail)
        f[:w] = bp[rows[:w]]
        yield from _recv_up(plan, s, me, f, seq_u, fwd_useg)
        panel = data.seq_panels[s]
        piv = f[:w]
        if method == "ldlt":
            solve_unit_lower_inplace(panel[:w, :], piv)
        else:
            solve_lower_inplace(panel[:w, :], piv)
        fwd_piv[s] = piv
        fl = float(w * w + 2 * (m - w) * w)
        yield Compute(flops=fl, front_order=max(w, 8))
        if m > w:
            u = f[w:] - panel[w:, :] @ piv
            seq_u[s] = u
            yield from _send_up(plan, s, me, seq_u, fwd_useg)
        return fl

    def _fwd_dist(plan, s, me, data, bp, method, fwd_piv, seq_u, fwd_useg, comm):
        sym = plan.sym
        d = plan.dist[s]
        rows = sym.sn_rows[s]
        g = len(d.group)
        sub = Comm(me, d.group, ctx=("slv", s))
        panels = data.dist_row_panels.get(s, {})
        my_blocks = [bi for bi in range(d.nblocks) if d.row_owner(bi) == me]
        f: dict[int, np.ndarray] = {}
        for bi in my_blocks:
            r0, r1 = d.block_range(bi)
            seg = np.zeros((r1 - r0,) + tail)
            if bi < d.npb:
                seg += bp[rows[r0:r1]]
            f[bi] = seg

        def apply(pa_idx, vals):
            bis = d.block_of(pa_idx)
            for bi in np.unique(bis):
                sel = bis == bi
                r0 = int(d.starts[bi])
                np.add.at(f[int(bi)], pa_idx[sel] - r0, vals[sel])

        yield from _recv_up_dist(plan, s, me, apply, seq_u, fwd_useg)

        # Pivot block substitution with segment broadcasts.
        x_piv_full = np.zeros((d.width,) + tail)
        fl = 0.0
        for k in range(d.npb):
            r0, r1 = d.block_range(k)
            owner = d.row_owner(k)
            if owner == me:
                rowsk = panels[k]  # (r1-r0, w)
                seg = f[k]
                if k > 0:
                    seg = seg - rowsk[:, :r0] @ x_piv_full[:r0]
                diag = rowsk[:, r0:r1]
                if method == "ldlt":
                    solve_unit_lower_inplace(diag, seg)
                else:
                    solve_lower_inplace(diag, seg)
                fl += (r1 - r0) * (r0 + (r1 - r0))
                payload = seg
            else:
                payload = None
            seg = yield from sub.bcast(payload, root=k % g)
            x_piv_full[r0:r1] = seg
            if owner == me:
                fwd_piv.setdefault(s, np.zeros((d.width,) + tail))
                f[k] = seg  # store forward-solved pivot segment
        if d.npb:
            yield Compute(flops=fl, front_order=plan.opts.nb)
        fwd_piv[s] = x_piv_full  # full forward-solved pivot vector
        # Update rows: local dgemv per owned block.
        ufl = 0.0
        for bi in my_blocks:
            if bi < d.npb:
                continue
            f[bi] = f[bi] - panels[bi] @ x_piv_full
            ufl += 2.0 * panels[bi].shape[0] * d.width
        if ufl:
            yield Compute(flops=ufl, front_order=plan.opts.nb)
        fwd_useg[s] = {bi: f[bi] for bi in my_blocks}
        if d.m > d.width:
            yield from _send_up(plan, s, me, seq_u, fwd_useg)
        return fl + ufl

    def _send_up(plan, s, me, seq_u, fwd_useg):
        parent = int(plan.sym.sn_parent[s])
        if parent < 0:
            return
        d = plan.dist[s]
        if d.is_seq:
            u = seq_u[s]

            def getter(i0, i1):
                return u[i0:i1]

        else:
            segs = fwd_useg[s]

            def getter(i0, i1):
                fa0 = i0 + d.width
                bi = int(d.block_of(np.asarray([fa0]))[0])
                r0 = int(d.starts[bi])
                return segs[bi][fa0 - r0: fa0 - r0 + (i1 - i0)]

        packed = _pack_up(plan, s, me, getter)
        for dest in sorted(packed):
            if dest == me:
                continue
            pa_idx, vals = packed[dest]
            yield Send(
                dest,
                ("su", parent, s),
                (pa_idx, vals),
                nbytes=12 * vals.size + 64,
            )

    def _recv_up(plan, s, me, f, seq_u, fwd_useg):
        """Sequential-front version: scatter into the dense f vector."""

        def apply(pa_idx, vals):
            np.add.at(f, pa_idx, vals)

        yield from _recv_up_dist(plan, s, me, apply, seq_u, fwd_useg)

    def _recv_up_dist(plan, s, me, apply, seq_u, fwd_useg):
        for c in plan.sym.sn_children[s]:
            pairs = solve_pairs(plan, c)
            senders = sorted({src for src, dst in pairs if dst == me})
            if me in senders:
                d_c = plan.dist[c]
                if d_c.is_seq:
                    u = seq_u[c]

                    def getter(i0, i1, u=u):
                        return u[i0:i1]

                else:
                    segs = fwd_useg[c]

                    def getter(i0, i1, segs=segs, d_c=d_c):
                        fa0 = i0 + d_c.width
                        bi = int(d_c.block_of(np.asarray([fa0]))[0])
                        r0 = int(d_c.starts[bi])
                        return segs[bi][fa0 - r0: fa0 - r0 + (i1 - i0)]

                packed = _pack_up(plan, c, me, getter)
                if me in packed:
                    apply(*packed[me])
            for sender in senders:
                if sender == me:
                    continue
                pa_idx, vals = yield Recv(sender, ("su", s, c))
                apply(pa_idx, vals)

    # -- backward helpers ----------------------------------------------------

    def _bwd_seq(plan, s, me, data, method, fwd_piv, x_piv, seq_xupd, x_useg, comm):
        sym = plan.sym
        d = plan.dist[s]
        rows = sym.sn_rows[s]
        m, w = rows.size, d.width
        panel = data.seq_panels[s]
        rhs = fwd_piv[s].copy()
        if method == "ldlt":
            rhs /= data.seq_diag[s].reshape((-1,) + (1,) * len(tail))
        xu = np.zeros((m - w,) + tail)
        yield from _recv_down(plan, s, me, xu, x_piv, seq_xupd, x_useg)
        fl = float(w * w + 2 * (m - w) * w)
        if m > w:
            rhs -= panel[w:, :].T @ xu
        if method == "ldlt":
            solve_unit_lower_transpose_inplace(panel[:w, :], rhs)
        else:
            solve_lower_transpose_inplace(panel[:w, :], rhs)
        x_piv[s] = rhs
        seq_xupd[s] = xu
        yield Compute(flops=fl, front_order=max(w, 8))
        # Fan x values out to the children.
        yield from _send_down(plan, s, me, x_piv, seq_xupd, x_useg)
        return fl

    def _bwd_dist(plan, s, me, data, method, fwd_piv, x_piv, seq_xupd, x_useg, comm):
        sym = plan.sym
        d = plan.dist[s]
        g = len(d.group)
        sub = Comm(me, d.group, ctx=("slvb", s))
        panels = data.dist_row_panels.get(s, {})
        my_blocks = [bi for bi in range(d.nblocks) if d.row_owner(bi) == me]

        # 1. Receive x for my update row blocks from the parent.
        xseg: dict[int, np.ndarray] = {}
        for bi in my_blocks:
            if bi >= d.npb:
                r0, r1 = d.block_range(bi)
                xseg[bi] = np.zeros((r1 - r0,) + tail)

        def apply(upd_idx, vals):
            fa = upd_idx + d.width
            bis = d.block_of(fa)
            for bi in np.unique(bis):
                sel = bis == bi
                r0 = int(d.starts[bi])
                xseg[int(bi)][fa[sel] - r0] = vals[sel]

        yield from _recv_down_dist(plan, s, me, apply, x_piv, seq_xupd, x_useg)

        # 2. Update-row corrections z = L21ᵀ x_update, group-summed.
        z = np.zeros((d.width,) + tail)
        fl = 0.0
        for bi in my_blocks:
            if bi >= d.npb:
                z += panels[bi].T @ xseg[bi]
                fl += 2.0 * panels[bi].shape[0] * d.width
        if g > 1:
            z = yield from sub.allreduce(z)
        if fl:
            yield Compute(flops=fl, front_order=plan.opts.nb)

        # 3. Pivot backward substitution, descending blocks, with direct
        # correction sends o_j -> o_k (k < j).
        x_piv_full = np.zeros((d.width,) + tail)
        corrections: dict[int, np.ndarray] = {}
        yvec = fwd_piv[s]
        diag_map = data.dist_diag.get(s, {})
        for k in range(d.npb - 1, -1, -1):
            owner = d.row_owner(k)
            # Receive corrections from later pivot-block owners.
            if owner == me:
                r0, r1 = d.block_range(k)
                rhs = yvec[r0:r1].copy()
                if method == "ldlt":
                    rhs /= diag_map[k].reshape((-1,) + (1,) * len(tail))
                rhs -= z[r0:r1]
                if k in corrections:
                    rhs -= corrections.pop(k)
                for j in range(d.npb - 1, k, -1):
                    if d.row_owner(j) != me:
                        vals = yield Recv(d.row_owner(j), ("bcorr", s, j, k))
                        rhs -= vals
                rowsk = panels[k]
                diag = rowsk[:, r0:r1]
                if method == "ldlt":
                    solve_unit_lower_transpose_inplace(diag, rhs)
                else:
                    solve_lower_transpose_inplace(diag, rhs)
                x_piv_full[r0:r1] = rhs
                _dist_xpiv[(s, k)] = rhs
                # Send corrections to earlier pivot owners.
                pend: dict[int, np.ndarray] = {}
                for kk in range(k):
                    rr0, rr1 = d.block_range(kk)
                    contrib = rowsk[:, rr0:rr1].T @ rhs
                    tgt = d.row_owner(kk)
                    if tgt == me:
                        if kk in corrections:
                            corrections[kk] += contrib
                        else:
                            corrections[kk] = contrib
                    else:
                        yield Send(tgt, ("bcorr", s, k, kk), contrib)
                if k:
                    yield Compute(
                        flops=2.0 * (r1 - r0) * r0, front_order=plan.opts.nb
                    )
            else:
                # Non-owners only relay nothing; corrections they owe were
                # produced when they owned a later block (handled above).
                pass
        # Broadcast assembled x_piv so every member can serve children.
        if g > 1:
            # Gather piecewise: owners hold their segments; share via
            # allreduce of the (sparse) full vector — w is small.
            x_piv_full = yield from sub.allreduce(x_piv_full)
        x_piv[s] = x_piv_full
        x_useg[s] = xseg
        yield from _send_down(plan, s, me, x_piv, seq_xupd, x_useg)
        return fl

    def _send_down(plan, s, me, x_piv, seq_xupd, x_useg):
        d = plan.dist[s]
        for c in plan.sym.sn_children[s]:
            pairs = solve_pairs(plan, c)
            # Backward: parent-side owner sends, child-side owner receives.
            if d.is_seq:
                xp = x_piv[s]
                xu = seq_xupd[s]

                def x_getter(pa_idx, xp=xp, xu=xu, w=d.width):
                    out = np.empty((pa_idx.size,) + tail)
                    piv = pa_idx < w
                    out[piv] = xp[pa_idx[piv]]
                    out[~piv] = xu[pa_idx[~piv] - w]
                    return out

            else:
                xp = x_piv[s]
                xsegs = x_useg[s]

                def x_getter(pa_idx, xp=xp, xsegs=xsegs, d=d):
                    out = np.empty((pa_idx.size,) + tail)
                    piv = pa_idx < d.width
                    out[piv] = xp[pa_idx[piv]]
                    rest = pa_idx[~piv]
                    if rest.size:
                        bis = d.block_of(rest)
                        vals = np.empty((rest.size,) + tail)
                        for bi in np.unique(bis):
                            sel = bis == bi
                            r0 = int(d.starts[bi])
                            vals[sel] = xsegs[int(bi)][rest[sel] - r0]
                        out[~piv] = vals
                    return out

            packed = _pack_down(plan, c, me, x_getter)
            for dest in sorted(packed):
                if dest == me:
                    continue
                idx, vals = packed[dest]
                yield Send(
                    dest, ("sd", s, c), (idx, vals), nbytes=12 * vals.size + 64
                )

    def _recv_down(plan, s, me, xu, x_piv, seq_xupd, x_useg):
        """Sequential child: fill the dense x_update vector."""

        def apply(upd_idx, vals):
            xu[upd_idx] = vals

        yield from _recv_down_dist(plan, s, me, apply, x_piv, seq_xupd, x_useg)

    def _recv_down_dist(plan, s, me, apply, x_piv, seq_xupd, x_useg):
        parent = int(plan.sym.sn_parent[s])
        if parent < 0:
            return
        pairs = solve_pairs(plan, s)
        # Pairs are (child_side, parent_side); backward messages flow
        # parent_side -> child_side.
        dp = plan.dist[parent]
        senders_to_me = sorted({dst for src, dst in pairs if src == me})
        # Parent-side local values:
        if (me, me) in pairs:
            if dp.is_seq:
                xp = x_piv[parent]
                xu_p = seq_xupd[parent]

                def x_getter(pa_idx, xp=xp, xu_p=xu_p, w=dp.width):
                    out = np.empty((pa_idx.size,) + tail)
                    piv = pa_idx < w
                    out[piv] = xp[pa_idx[piv]]
                    out[~piv] = xu_p[pa_idx[~piv] - w]
                    return out

            else:
                xp = x_piv[parent]
                xsegs = x_useg[parent]

                def x_getter(pa_idx, xp=xp, xsegs=xsegs, dp=dp):
                    out = np.empty((pa_idx.size,) + tail)
                    piv = pa_idx < dp.width
                    out[piv] = xp[pa_idx[piv]]
                    rest = pa_idx[~piv]
                    if rest.size:
                        bis = dp.block_of(rest)
                        vals = np.empty((rest.size,) + tail)
                        for bi in np.unique(bis):
                            sel = bis == bi
                            r0 = int(dp.starts[bi])
                            vals[sel] = xsegs[int(bi)][rest[sel] - r0]
                        out[~piv] = vals
                    return out

            packed = _pack_down(plan, s, me, x_getter)
            if me in packed:
                apply(*packed[me])
        for sender in senders_to_me:
            if sender == me:
                continue
            idx, vals = yield Recv(sender, ("sd", parent, s))
            apply(idx, vals)

    return program
