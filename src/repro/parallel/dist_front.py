"""One rank's share of a distributed frontal matrix.

Blocks are stored in a dict keyed by block coordinates; only lower-triangle
blocks (bi >= bj) exist. Assembly, scatter-add of extend-add contributions,
and packing of outgoing extend-add messages live here.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.plan import FactorPlan, SupernodeDist
from repro.sparse.csc import CSCMatrix


class LocalFront:
    """The blocks of a distributed front owned by one rank."""

    __slots__ = ("d", "me", "blocks")

    def __init__(self, d: SupernodeDist, me: int):
        self.d = d
        self.me = me
        self.blocks: dict[tuple[int, int], np.ndarray] = {}
        for bi, bj in d.grid.owned_blocks(me, d.nblocks):
            r0, r1 = d.block_range(bi)
            c0, c1 = d.block_range(bj)
            self.blocks[(bi, bj)] = np.zeros((r1 - r0, c1 - c0))

    def block(self, bi: int, bj: int) -> np.ndarray:
        return self.blocks[(bi, bj)]

    def owns(self, bi: int, bj: int) -> bool:
        return (bi, bj) in self.blocks

    @property
    def entries(self) -> int:
        return sum(b.size for b in self.blocks.values())

    def add_entries(self, pa: np.ndarray, pb: np.ndarray, vals: np.ndarray) -> None:
        """Scatter-add entries at front-local (row, col) positions into the
        owned blocks (all positions must belong to owned blocks)."""
        if pa.size == 0:
            return
        d = self.d
        bi = d.block_of(pa)
        bj = d.block_of(pb)
        # Group by destination block: sort by (bi, bj).
        key = bi * d.nblocks + bj
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        boundaries = np.flatnonzero(np.diff(key_s)) + 1
        starts = np.concatenate([[0], boundaries, [key_s.size]])
        for a, b in zip(starts[:-1], starts[1:]):
            idx = order[a:b]
            tbi = int(bi[idx[0]])
            tbj = int(bj[idx[0]])
            blk = self.blocks[(tbi, tbj)]
            r0 = int(d.starts[tbi])
            c0 = int(d.starts[tbj])
            np.add.at(blk, (pa[idx] - r0, pb[idx] - c0), vals[idx])


def assemble_dist_entries(
    plan: FactorPlan, s: int, me: int, lf: LocalFront
) -> int:
    """Scatter this rank's share of A's entries into its front blocks.

    Returns the number of entries scattered (for memory-traffic charging).
    The input matrix is assumed pre-distributed so that each rank holds the
    entries of the blocks it owns (the standard assumption for distributed
    solvers; re-distribution of A is not part of the timed factorization).
    """
    sym = plan.sym
    a: CSCMatrix = sym.permuted_lower
    d = plan.dist[s]
    rows = sym.sn_rows[s]
    n_scattered = 0
    for k in range(d.width):
        j = d.c0 + k
        bj = int(d.block_of(np.asarray([k]))[0])
        a_rows, a_vals = a.col(j)
        keep = a_rows >= j
        a_rows, a_vals = a_rows[keep], a_vals[keep]
        if a_rows.size == 0:
            continue
        pa = np.searchsorted(rows, a_rows)
        bi = d.block_of(pa)
        mine = np.asarray(
            [d.grid.owner(int(i), bj) == me for i in bi], dtype=bool
        )
        if not mine.any():
            continue
        lf.add_entries(pa[mine], np.full(int(mine.sum()), k, dtype=np.int64), a_vals[mine])
        n_scattered += int(mine.sum())
    return n_scattered


def pack_update_messages(
    plan: FactorPlan,
    c: int,
    me: int,
    value_getter,
) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Pack this rank's share of child *c*'s update matrix for its parent.

    *value_getter(ia, ib)* returns the update values at child-update-local
    index grids (2-D arrays) — the indirection lets sequential children read
    from a dense update matrix and distributed children read from their
    blocks.

    Returns ``dest_rank -> (parent_rows, parent_cols, values)`` with only
    nonempty destinations present.
    """
    sym = plan.sym
    parent = int(sym.sn_parent[c])
    dc = plan.dist[c]
    dp = plan.dist[parent]
    pa = plan.parent_positions(c)
    runs = plan.ea_runs(c)
    out: dict[int, list] = {}
    for a in range(len(runs)):
        ia0, ia1, cba, pba = runs[a]
        for b in range(a + 1):
            ib0, ib1, cbb, pbb = runs[b]
            sender = dc.group[0] if dc.is_seq else dc.grid.owner(cba, cbb)
            if sender != me:
                continue
            dest = dp.group[0] if dp.is_seq else dp.grid.owner(pba, pbb)
            ia = np.arange(ia0, ia1, dtype=np.int64)
            ib = np.arange(ib0, ib1, dtype=np.int64)
            ga, gb = np.meshgrid(ia, ib, indexing="ij")
            mask = ga >= gb  # lower triangle of the update
            if not mask.any():
                continue
            vals_blk = value_getter(ga, gb)
            out.setdefault(dest, []).append(
                (pa[ga[mask]], pa[gb[mask]], vals_blk[mask])
            )
    packed = {}
    for dest, pieces in out.items():
        pas = np.concatenate([p[0] for p in pieces])
        pbs = np.concatenate([p[1] for p in pieces])
        vs = np.concatenate([p[2] for p in pieces])
        packed[dest] = (pas, pbs, vs)
    return packed


def seq_update_getter(update: np.ndarray):
    """value_getter over a dense (sequential) update matrix."""

    def get(ia: np.ndarray, ib: np.ndarray) -> np.ndarray:
        return update[ia, ib]

    return get


def dist_update_getter(lf: LocalFront, width: int):
    """value_getter over a distributed child's owned blocks.

    Child-update-local indices are offset by the pivot width to become
    front-local, then resolved into blocks.
    """
    d = lf.d

    def get(ia: np.ndarray, ib: np.ndarray) -> np.ndarray:
        fa = ia + width
        fb = ib + width
        # Runs guarantee each (run a, run b) pair lies in a single block.
        bi = int(d.block_of(np.asarray([fa.flat[0]]))[0])
        bj = int(d.block_of(np.asarray([fb.flat[0]]))[0])
        blk = lf.block(bi, bj)
        r0 = int(d.starts[bi])
        c0 = int(d.starts[bj])
        return blk[fa - r0, fb - c0]

    return get
