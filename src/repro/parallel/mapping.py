"""Subtree-to-subcube / subforest-to-subcluster mapping.

Assigns every supernode of the assembly tree a group of ranks:

* top supernodes are processed by large groups (distributed fronts);
* going down the tree, groups split between child subforests in proportion
  to subtree work;
* once a group reaches a single rank, the entire remaining subtree is local
  to that rank (zero communication — the property that makes the scheme
  scalable: the vast majority of fronts are processed with no messages at
  all, while the few large separator fronts get all the ranks).

This is the mapping of Gupta–Karypis–Kumar (and WSMP); the paper's headline
scalability rests on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.symbolic.analyze import SymbolicFactor
from repro.util.errors import ShapeError


@dataclass
class TreeMapping:
    """Result of the mapping: per-supernode rank groups.

    ``sn_ranks[s]`` is the sorted tuple of global ranks processing
    supernode s. ``len(sn_ranks[s]) == 1`` means s is sequential on that
    rank.
    """

    n_ranks: int
    sn_ranks: list[tuple[int, ...]]
    #: per-supernode subtree work (flops) used for the split decisions
    subtree_work: np.ndarray
    #: per-supernode own (front) work
    own_work: np.ndarray
    seq_supernodes_by_rank: list[list[int]] = field(init=False)
    dist_supernodes: list[int] = field(init=False)

    def __post_init__(self) -> None:
        self.seq_supernodes_by_rank = [[] for _ in range(self.n_ranks)]
        self.dist_supernodes = []
        for s, group in enumerate(self.sn_ranks):
            if len(group) == 1:
                self.seq_supernodes_by_rank[group[0]].append(s)
            else:
                self.dist_supernodes.append(s)

    def is_seq(self, s: int) -> bool:
        return len(self.sn_ranks[s]) == 1

    def participates(self, rank: int, s: int) -> bool:
        return rank in self.sn_ranks[s]

    def supernodes_for_rank(self, rank: int) -> list[int]:
        """All supernodes this rank participates in, ascending (the order
        the rank program processes them)."""
        out = [s for s in self.seq_supernodes_by_rank[rank]]
        out.extend(s for s in self.dist_supernodes if rank in self.sn_ranks[s])
        out.sort()
        return out

    def rank_seq_work(self) -> np.ndarray:
        """Total sequential-supernode work per rank (load-balance metric)."""
        work = np.zeros(self.n_ranks)
        for s, group in enumerate(self.sn_ranks):
            if len(group) == 1:
                work[group[0]] += self.own_work[s]
        return work


def subtree_flops(sym: SymbolicFactor) -> np.ndarray:
    """Total factorization flops in the subtree rooted at each supernode."""
    nsn = sym.n_supernodes
    work = np.zeros(nsn)
    for s in range(nsn):
        work[s] = sym.supernode_flops(s)
        for c in sym.sn_children[s]:
            work[s] += work[c]
    return work


def map_supernodes_to_ranks(
    sym: SymbolicFactor,
    n_ranks: int,
    min_distributed_width: int = 2,
) -> TreeMapping:
    """Compute the subtree-to-subcube mapping.

    Parameters
    ----------
    n_ranks
        Number of ranks (any positive integer; powers of two give the
        cleanest subcube splits, matching the paper's machine sizes).
    min_distributed_width
        A supernode narrower than this is never distributed even when its
        group has several ranks (tiny chain nodes stay on the group leader;
        distributing a 1-column front is pure overhead).
    """
    if n_ranks < 1:
        raise ShapeError("n_ranks must be >= 1")
    nsn = sym.n_supernodes
    work = subtree_flops(sym)
    sn_ranks: list[tuple[int, ...]] = [()] * nsn

    def assign_subtree_to_rank(s: int, rank: int) -> None:
        stack = [s]
        while stack:
            u = stack.pop()
            sn_ranks[u] = (rank,)
            stack.extend(sym.sn_children[u])

    def assign_forest(nodes: list[int], ranks: tuple[int, ...]) -> None:
        if not nodes:
            return
        if len(ranks) == 1:
            for u in nodes:
                assign_subtree_to_rank(u, ranks[0])
            return
        if len(nodes) == 1:
            s = nodes[0]
            if sym.supernode_width(s) < min_distributed_width:
                # Too narrow to distribute: leader processes it; the group
                # still splits across the children.
                sn_ranks[s] = (ranks[0],)
            else:
                sn_ranks[s] = ranks
            children = list(sym.sn_children[s])
            if not children:
                return
            if len(children) == 1:
                assign_forest(children, ranks)
                return
            group_a, group_b = _split_nodes(children, work)
            ranks_a, ranks_b = _split_ranks(
                ranks, float(work[group_a].sum()), float(work[group_b].sum())
            )
            assign_forest(list(group_a), ranks_a)
            assign_forest(list(group_b), ranks_b)
            return
        # A forest with several roots: split roots into two balanced
        # subforests and divide the ranks proportionally.
        group_a, group_b = _split_nodes(nodes, work)
        ranks_a, ranks_b = _split_ranks(
            ranks, float(work[group_a].sum()), float(work[group_b].sum())
        )
        assign_forest(list(group_a), ranks_a)
        assign_forest(list(group_b), ranks_b)

    roots = sym.roots()
    assign_forest(roots, tuple(range(n_ranks)))
    assert all(len(g) >= 1 for g in sn_ranks), "unassigned supernodes"
    own = np.asarray(
        [sym.supernode_flops(s) for s in range(nsn)], dtype=float
    )
    return TreeMapping(
        n_ranks=n_ranks, sn_ranks=sn_ranks, subtree_work=work, own_work=own
    )


def _split_nodes(
    nodes: list[int], work: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy two-way balanced partition of *nodes* by subtree work."""
    order = sorted(nodes, key=lambda u: -work[u])
    wa = wb = 0.0
    a: list[int] = []
    b: list[int] = []
    for u in order:
        if wa <= wb:
            a.append(u)
            wa += float(work[u])
        else:
            b.append(u)
            wb += float(work[u])
    if not b:  # single node ended up alone; force non-empty halves upstream
        b = [a.pop()] if len(a) > 1 else b
    return np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)


def _split_ranks(
    ranks: tuple[int, ...], work_a: float, work_b: float
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Split a rank group proportionally to the two work shares (each side
    gets at least one rank)."""
    g = len(ranks)
    total = work_a + work_b
    if total <= 0:
        h = g // 2
    else:
        h = int(round(g * work_a / total))
    h = min(max(h, 1), g - 1)
    return ranks[:h], ranks[h:]
