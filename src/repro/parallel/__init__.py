"""The paper's contribution: scalable parallel multifrontal factorization.

Pieces:

* :mod:`repro.parallel.mapping` — subtree-to-subcube (subforest-to-
  subcluster) mapping of the assembly tree onto rank groups;
* :mod:`repro.parallel.grid2d` — 2D process grids and block-cyclic front
  distribution;
* :mod:`repro.parallel.plan` — the static factorization plan every rank
  derives from the (replicated) symbolic data: who owns which block, which
  extend-add transfers exist, block partitions;
* :mod:`repro.parallel.factor_par` — the rank program performing the
  distributed numeric factorization under :mod:`repro.simmpi`;
* :mod:`repro.parallel.solve_par` — distributed triangular solves;
* :mod:`repro.parallel.driver` — host-side helpers that run the simulated
  factorization/solve and reassemble/verify the results;
* :mod:`repro.parallel.hybrid` — MPI×SMP hybrid execution model.
"""

from repro.parallel.mapping import map_supernodes_to_ranks, TreeMapping
from repro.parallel.grid2d import ProcessGrid, grid_dims, block_starts
from repro.parallel.plan import FactorPlan, PlanOptions
from repro.parallel.driver import (
    simulate_factorization,
    simulate_solve,
    ParallelFactorResult,
    ParallelSolveResult,
)
from repro.parallel.hybrid import hybrid_configurations

__all__ = [
    "map_supernodes_to_ranks",
    "TreeMapping",
    "ProcessGrid",
    "grid_dims",
    "block_starts",
    "FactorPlan",
    "PlanOptions",
    "simulate_factorization",
    "simulate_solve",
    "ParallelFactorResult",
    "ParallelSolveResult",
    "hybrid_configurations",
]
