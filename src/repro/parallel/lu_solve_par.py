"""Distributed triangular solves for the LU factor (blocked multi-RHS).

Forward sweep with unit-lower L (fan-in of rhs update vectors up the
assembly tree), backward sweep with upper U (fan-out of solution values).
Row ownership follows the solve-ready layout of
:mod:`repro.parallel.lu_par`: pivot row blocks hold their full factor row
(L left of the diagonal block, packed LU on it, U right of it), update row
blocks hold their L panel rows.
"""

from __future__ import annotations

import numpy as np

from repro.dense.trsm import solve_unit_lower_inplace
from repro.parallel.lu_par import RankLUData
from repro.parallel.plan import FactorPlan
from repro.parallel.solve_par import _pack_down, _pack_up, solve_pairs
from repro.simmpi.comm import Comm
from repro.simmpi.ops import Compute, Recv, Send


def _solve_upper_inplace(u: np.ndarray, b: np.ndarray) -> None:
    """``b <- U^{-1} b`` with U the upper triangle (incl. diagonal)."""
    n = u.shape[0]
    for j in range(n - 1, -1, -1):
        if j + 1 < n:
            b[j] -= u[j, j + 1:] @ b[j + 1:]
        b[j] /= u[j, j]


def make_lu_solve_program(
    plan: FactorPlan, datas: list[RankLUData], bp: np.ndarray
):
    """Rank program solving ``A x = b`` with the distributed LU factor.

    *bp* may be ``(n,)`` or ``(n, k)`` — the sweeps run blocked over k
    right-hand sides.
    """

    tail = bp.shape[1:]

    def program(comm: Comm):
        me = comm.world_rank
        data = datas[me]
        sym = plan.sym
        my_sns = plan.supernodes_for_rank(me)

        fwd_piv: dict[int, np.ndarray] = {}
        fwd_useg: dict[int, dict[int, np.ndarray]] = {}
        seq_u: dict[int, np.ndarray] = {}
        dist_xpiv: dict[tuple[int, int], np.ndarray] = {}
        x_piv: dict[int, np.ndarray] = {}
        x_useg: dict[int, dict[int, np.ndarray]] = {}
        seq_xupd: dict[int, np.ndarray] = {}

        # ------------------------------------------------------- helpers --

        def u_getter_for(s):
            d = plan.dist[s]
            if d.is_seq:
                u = seq_u[s]

                def g(i0, i1):
                    return u[i0:i1]

            else:
                segs = fwd_useg[s]

                def g(i0, i1, segs=segs, d=d):
                    fa0 = i0 + d.width
                    bi = int(d.block_of(np.asarray([fa0]))[0])
                    r0 = int(d.starts[bi])
                    return segs[bi][fa0 - r0: fa0 - r0 + (i1 - i0)]

            return g

        def x_getter_for(s):
            d = plan.dist[s]
            if d.is_seq:
                xp = x_piv[s]
                xu = seq_xupd[s]

                def g(pa_idx, xp=xp, xu=xu, w=d.width):
                    out = np.empty((pa_idx.size,) + tail)
                    piv = pa_idx < w
                    out[piv] = xp[pa_idx[piv]]
                    out[~piv] = xu[pa_idx[~piv] - w]
                    return out

            else:
                xp = x_piv[s]
                xsegs = x_useg[s]

                def g(pa_idx, xp=xp, xsegs=xsegs, d=d):
                    out = np.empty((pa_idx.size,) + tail)
                    piv = pa_idx < d.width
                    out[piv] = xp[pa_idx[piv]]
                    rest = pa_idx[~piv]
                    if rest.size:
                        bis = d.block_of(rest)
                        vals = np.empty((rest.size,) + tail)
                        for bi in np.unique(bis):
                            sel = bis == bi
                            r0 = int(d.starts[bi])
                            vals[sel] = xsegs[int(bi)][rest[sel] - r0]
                        out[~piv] = vals
                    return out

            return g

        def recv_up(s, apply):
            for c in sym.sn_children[s]:
                pairs = solve_pairs(plan, c)
                senders = sorted({src for src, dst in pairs if dst == me})
                if me in senders:
                    packed = _pack_up(plan, c, me, u_getter_for(c))
                    if me in packed:
                        apply(*packed[me])
                for sender in senders:
                    if sender == me:
                        continue
                    pa_idx, vals = yield Recv(sender, ("lsu", s, c))
                    apply(pa_idx, vals)

        def send_up(s):
            parent = int(sym.sn_parent[s])
            if parent < 0:
                return
            packed = _pack_up(plan, s, me, u_getter_for(s))
            for dest in sorted(packed):
                if dest == me:
                    continue
                pa_idx, vals = packed[dest]
                yield Send(dest, ("lsu", parent, s), (pa_idx, vals),
                           nbytes=12 * vals.size + 64)

        def send_down(s):
            for c in sym.sn_children[s]:
                packed = _pack_down(plan, c, me, x_getter_for(s))
                for dest in sorted(packed):
                    if dest == me:
                        continue
                    idx, vals = packed[dest]
                    yield Send(dest, ("lsd", s, c), (idx, vals),
                               nbytes=12 * vals.size + 64)

        def recv_down(s, apply):
            parent = int(sym.sn_parent[s])
            if parent < 0:
                return
            pairs = solve_pairs(plan, s)
            senders = sorted({dst for src, dst in pairs if src == me})
            if (me, me) in pairs:
                packed = _pack_down(plan, s, me, x_getter_for(parent))
                if me in packed:
                    apply(*packed[me])
            for sender in senders:
                if sender == me:
                    continue
                idx, vals = yield Recv(sender, ("lsd", parent, s))
                apply(idx, vals)

        # ------------------------------------------------------- forward --

        for s in my_sns:
            d = plan.dist[s]
            rows = sym.sn_rows[s]
            if d.is_seq:
                m, w = rows.size, d.width
                f = np.zeros((m,) + tail)
                f[:w] = bp[rows[:w]]

                def apply(pa_idx, vals, f=f):
                    np.add.at(f, pa_idx, vals)

                yield from recv_up(s, apply)
                lu11, l21, _u12 = data.seq_panels[s]
                piv = f[:w]
                solve_unit_lower_inplace(lu11, piv)
                fwd_piv[s] = piv
                yield Compute(flops=float(w * w + 2 * (m - w) * w), front_order=max(w, 8))
                if m > w:
                    seq_u[s] = f[w:] - l21 @ piv
                    yield from send_up(s)
            else:
                g = len(d.group)
                sub = Comm(me, d.group, ctx=("lslv", s))
                rows_data = data.dist_rows.get(s, {})
                my_blocks = [bi for bi in range(d.nblocks) if d.row_owner(bi) == me]
                f: dict[int, np.ndarray] = {}
                for bi in my_blocks:
                    r0, r1 = d.block_range(bi)
                    seg = np.zeros((r1 - r0,) + tail)
                    if bi < d.npb:
                        seg += bp[rows[r0:r1]]
                    f[bi] = seg

                def apply(pa_idx, vals, f=f, d=d):
                    bis = d.block_of(pa_idx)
                    for bi in np.unique(bis):
                        sel = bis == bi
                        r0 = int(d.starts[bi])
                        np.add.at(f[int(bi)], pa_idx[sel] - r0, vals[sel])

                yield from recv_up(s, apply)
                x_full = np.zeros((d.width,) + tail)
                fl = 0.0
                for k in range(d.npb):
                    r0, r1 = d.block_range(k)
                    owner = d.row_owner(k)
                    if owner == me:
                        arr = rows_data[k]
                        seg = f[k]
                        if r0:
                            seg = seg - arr[:, :r0] @ x_full[:r0]
                        diag = arr[:, r0:r1]
                        solve_unit_lower_inplace(diag, seg)
                        fl += (r1 - r0) * (r0 + r1)
                        payload = seg
                    else:
                        payload = None
                    seg = yield from sub.bcast(payload, root=k % g)
                    x_full[r0:r1] = seg
                    if owner == me:
                        f[k] = seg
                if d.npb:
                    yield Compute(flops=fl, front_order=plan.opts.nb)
                fwd_piv[s] = x_full
                for bi in my_blocks:
                    if bi >= d.npb:
                        f[bi] = f[bi] - rows_data[bi] @ x_full
                fwd_useg[s] = {bi: f[bi] for bi in my_blocks}
                if d.m > d.width:
                    yield from send_up(s)

        # ------------------------------------------------------ backward --

        for s in reversed(my_sns):
            d = plan.dist[s]
            rows = sym.sn_rows[s]
            if d.is_seq:
                m, w = rows.size, d.width
                lu11, _l21, u12 = data.seq_panels[s]
                xu = np.zeros((m - w,) + tail)

                def apply(upd_idx, vals, xu=xu):
                    xu[upd_idx] = vals

                yield from recv_down(s, apply)
                rhs = fwd_piv[s].copy()
                if m > w:
                    rhs -= u12 @ xu
                _solve_upper_inplace(lu11, rhs)
                x_piv[s] = rhs
                seq_xupd[s] = xu
                yield Compute(flops=float(w * w + 2 * (m - w) * w), front_order=max(w, 8))
                yield from send_down(s)
            else:
                g = len(d.group)
                sub = Comm(me, d.group, ctx=("lslvb", s))
                rows_data = data.dist_rows.get(s, {})
                my_blocks = [bi for bi in range(d.nblocks) if d.row_owner(bi) == me]
                mu = d.m - d.width
                xseg: dict[int, np.ndarray] = {}
                for bi in my_blocks:
                    if bi >= d.npb:
                        r0, r1 = d.block_range(bi)
                        xseg[bi] = np.zeros((r1 - r0,) + tail)

                def apply(upd_idx, vals, xseg=xseg, d=d):
                    fa = upd_idx + d.width
                    bis = d.block_of(fa)
                    for bi in np.unique(bis):
                        sel = bis == bi
                        r0 = int(d.starts[bi])
                        xseg[int(bi)][fa[sel] - r0] = vals[sel]

                yield from recv_down(s, apply)
                # Assemble the full update-row solution for the U12 products.
                xu_full = np.zeros((mu,) + tail)
                for bi, seg in xseg.items():
                    r0, _ = d.block_range(bi)
                    xu_full[r0 - d.width: r0 - d.width + seg.shape[0]] = seg
                if g > 1 and mu:
                    xu_full = yield from sub.allreduce(xu_full)
                yvec = fwd_piv[s]
                x_full = np.zeros((d.width,) + tail)
                fl = 0.0
                for k in range(d.npb - 1, -1, -1):
                    r0, r1 = d.block_range(k)
                    owner = d.row_owner(k)
                    if owner == me:
                        arr = rows_data[k]
                        rhs = yvec[r0:r1].copy()
                        if r1 < d.width:
                            rhs -= arr[:, r1: d.width] @ x_full[r1:]
                        if mu:
                            rhs -= arr[:, d.width:] @ xu_full
                        _solve_upper_inplace(arr[:, r0:r1], rhs)
                        fl += (r1 - r0) * (d.m - r0)
                        payload = rhs
                    else:
                        payload = None
                    seg = yield from sub.bcast(payload, root=k % g)
                    x_full[r0:r1] = seg
                    if owner == me:
                        dist_xpiv[(s, k)] = seg
                if d.npb:
                    yield Compute(flops=fl, front_order=plan.opts.nb)
                x_piv[s] = x_full
                x_useg[s] = xseg
                yield from send_down(s)

        # Owned solution pieces.
        pieces: list[tuple[np.ndarray, np.ndarray]] = []
        for s, xp in x_piv.items():
            d = plan.dist[s]
            rows = sym.sn_rows[s]
            if d.is_seq:
                pieces.append((rows[: d.width], xp))
            else:
                for bi in range(d.npb):
                    if d.row_owner(bi) == me and (s, bi) in dist_xpiv:
                        r0, r1 = d.block_range(bi)
                        pieces.append((rows[r0:r1], dist_xpiv[(s, bi)]))
        return pieces, 0.0

    return program
