"""2D process grids and block-cyclic front partitions.

A distributed front of order m is cut into row/column blocks (the block
boundaries are aligned so the pivot region [0, w) ends exactly on a block
boundary) and block (i, j) of the lower triangle lives on grid position
``(i mod gr, j mod gc)`` — the classic 2D block-cyclic layout whose
per-rank communication volume scales as O(m²/√g), versus O(m²) for 1D
layouts. That √g is the paper's scalability argument in one line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ShapeError


def grid_dims(g: int) -> tuple[int, int]:
    """Near-square factorization ``(gr, gc)`` of g with ``gr <= gc``."""
    if g < 1:
        raise ShapeError("group size must be >= 1")
    gr = int(np.sqrt(g))
    while g % gr:
        gr -= 1
    return gr, g // gr


def block_starts(m: int, w: int, nb: int) -> np.ndarray:
    """Block-row boundaries of a front of order *m* with *w* pivots.

    Returns the start offsets (length ``nblocks + 1``, last entry m). The
    pivot region [0, w) and the update region [w, m) are chunked
    independently so the pivot/update split is block-aligned.
    """
    if not (0 <= w <= m):
        raise ShapeError(f"invalid pivot width {w} for front of order {m}")
    if nb < 1:
        raise ShapeError("block size must be >= 1")
    starts = list(range(0, w, nb))
    starts.extend(range(w, m, nb))
    starts.append(m)
    return np.asarray(starts, dtype=np.int64)


@dataclass(frozen=True)
class ProcessGrid:
    """A group of ranks arranged as a ``gr × gc`` grid.

    ``ranks`` is the sorted global-rank tuple; grid position (r, c) is
    ``ranks[r * gc + c]``.
    """

    ranks: tuple[int, ...]
    gr: int
    gc: int

    def __post_init__(self) -> None:
        if self.gr * self.gc != len(self.ranks):
            raise ShapeError(
                f"grid {self.gr}x{self.gc} does not match group of {len(self.ranks)}"
            )

    @classmethod
    def for_group(cls, group: tuple[int, ...]) -> "ProcessGrid":
        gr, gc = grid_dims(len(group))
        return cls(tuple(group), gr, gc)

    @classmethod
    def one_d(cls, group: tuple[int, ...]) -> "ProcessGrid":
        """1D (row-cyclic) grid — the MUMPS-like baseline layout."""
        return cls(tuple(group), len(group), 1)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates of a global rank."""
        idx = self.ranks.index(rank)
        return idx // self.gc, idx % self.gc

    def at(self, r: int, c: int) -> int:
        """Global rank at grid position (r, c)."""
        return self.ranks[r * self.gc + c]

    def owner(self, bi: int, bj: int) -> int:
        """Global rank owning block (bi, bj)."""
        return self.at(bi % self.gr, bj % self.gc)

    def row_members(self, r: int) -> tuple[int, ...]:
        """Global ranks of grid row r (left to right)."""
        return tuple(self.at(r, c) for c in range(self.gc))

    def col_members(self, c: int) -> tuple[int, ...]:
        """Global ranks of grid column c (top to bottom)."""
        return tuple(self.at(r, c) for r in range(self.gr))

    def owned_blocks(self, rank: int, nblocks: int, lower_only: bool = True):
        """Iterate the (bi, bj) block coordinates owned by *rank* within an
        ``nblocks × nblocks`` block grid (lower triangle by default)."""
        r, c = self.coords(rank)
        for bi in range(r, nblocks, self.gr):
            hi = (bi + 1) if lower_only else nblocks
            for bj in range(c, min(hi, nblocks), self.gc):
                yield bi, bj
