"""1-norm condition estimation (Hager–Higham).

``condest(A) ≈ ‖A‖₁ · ‖A⁻¹‖₁`` with ‖A⁻¹‖₁ estimated from a handful of
solves — the standard cheap conditioning diagnostic direct solvers expose
next to the factorization.
"""

from __future__ import annotations

import numpy as np

from repro.mf.numeric import NumericFactor
from repro.mf.solve_phase import solve
from repro.sparse.csc import CSCMatrix


def onenorm_symmetric_lower(lower: CSCMatrix) -> float:
    """Exact 1-norm of a symmetric matrix stored as its lower triangle
    (max column absolute sum; by symmetry = max row sum)."""
    n = lower.shape[0]
    sums = np.zeros(n)
    col_of = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(lower.indptr)
    )
    rows = lower.indices
    vals = np.abs(lower.data)
    np.add.at(sums, col_of, vals)
    off = rows != col_of
    np.add.at(sums, rows[off], vals[off])
    return float(sums.max(initial=0.0))


def inverse_onenorm_estimate(
    factor: NumericFactor, max_iter: int = 5
) -> float:
    """Hager's estimator for ‖A⁻¹‖₁ using solves with the computed factor.

    For symmetric A the transpose solve equals the plain solve, which
    simplifies the classic algorithm.
    """
    n = factor.n
    if n == 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    est = 0.0
    last_sign = np.zeros(n)
    for _ in range(max_iter):
        y = solve(factor, x)  # y = A^{-1} x
        est_new = float(np.abs(y).sum())
        sign = np.sign(y)
        sign[sign == 0] = 1.0
        if est_new <= est or np.array_equal(sign, last_sign):
            est = max(est, est_new)
            break
        est = est_new
        last_sign = sign
        z = solve(factor, sign)  # z = A^{-1} sign (A symmetric)
        j = int(np.argmax(np.abs(z)))
        if np.abs(z[j]) <= z @ x:
            break
        x = np.zeros(n)
        x[j] = 1.0
    # The alternating-vector refinement guards against the worst cases.
    v = np.ones(n)
    v[1::2] = -1.0
    v *= 1.0 + np.arange(n) / max(n - 1, 1)
    y = solve(factor, v)
    alt = 2.0 * float(np.abs(y).sum()) / (3.0 * n)
    return max(est, alt)


def condest(lower: CSCMatrix, factor: NumericFactor, max_iter: int = 5) -> float:
    """Estimated 1-norm condition number of the symmetric matrix whose
    lower triangle is *lower*, using its computed *factor*."""
    return onenorm_symmetric_lower(lower) * inverse_onenorm_estimate(
        factor, max_iter=max_iter
    )
