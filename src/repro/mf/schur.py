"""Explicit Schur complements.

A staple feature of the WSMP API: partition the unknowns into interior
variables I and interface variables B, and return

    S = A_BB - A_BI · A_II⁻¹ · A_IB

(dense, symmetric). Used by domain-decomposition and coupled-solver
workflows — and the natural consumer of a sparse direct solver as a
building block, so it exercises analyze/factor/solve on a submatrix.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc, csc_to_coo
from repro.util.errors import ShapeError
from repro.util.validation import as_index_array


def split_symmetric_lower(
    lower: CSCMatrix, schur_set: np.ndarray
) -> tuple[CSCMatrix, np.ndarray, np.ndarray]:
    """Split a symmetric matrix (lower storage) into the interior block
    A_II (lower CSC) and the coupling A_BI (dense, |B| × |I|), plus the
    dense A_BB (lower included).

    Returns ``(a_ii_lower, a_bi_dense, a_bb_dense)``.
    """
    n = lower.shape[0]
    b_idx = as_index_array(schur_set, "schur_set")
    if b_idx.size == 0:
        raise ShapeError("schur_set must be non-empty")
    if b_idx.size >= n:
        raise ShapeError("schur_set must leave at least one interior variable")
    if np.unique(b_idx).size != b_idx.size:
        raise ShapeError("schur_set contains duplicates")
    if b_idx.min() < 0 or b_idx.max() >= n:
        raise ShapeError("schur_set indices out of range")
    in_b = np.zeros(n, dtype=bool)
    in_b[b_idx] = True
    i_idx = np.flatnonzero(~in_b)
    # Position maps.
    pos_i = np.full(n, -1, dtype=np.int64)
    pos_i[i_idx] = np.arange(i_idx.size)
    pos_b = np.full(n, -1, dtype=np.int64)
    pos_b[b_idx] = np.arange(b_idx.size)

    coo = csc_to_coo(lower)
    r, c, v = coo.row, coo.col, coo.data
    both_i = ~in_b[r] & ~in_b[c]
    both_b = in_b[r] & in_b[c]
    cross = ~(both_i | both_b)

    a_ii = coo_to_csc(
        COOMatrix(
            (i_idx.size, i_idx.size), pos_i[r[both_i]], pos_i[c[both_i]], v[both_i]
        )
    )
    a_bb = np.zeros((b_idx.size, b_idx.size))
    rb, cb = pos_b[r[both_b]], pos_b[c[both_b]]
    a_bb[rb, cb] += v[both_b]
    off = rb != cb
    a_bb[cb[off], rb[off]] += v[both_b][off]

    a_bi = np.zeros((b_idx.size, i_idx.size))
    rc, cc, vc = r[cross], c[cross], v[cross]
    # Lower storage: the cross entry has exactly one endpoint in B.
    r_in_b = in_b[rc]
    a_bi[pos_b[rc[r_in_b]], pos_i[cc[r_in_b]]] += vc[r_in_b]
    a_bi[pos_b[cc[~r_in_b]], pos_i[rc[~r_in_b]]] += vc[~r_in_b]
    return a_ii, a_bi, a_bb


def schur_complement(
    lower: CSCMatrix,
    schur_set,
    method: str = "cholesky",
    ordering: str = "nd",
) -> np.ndarray:
    """Dense Schur complement of the symmetric matrix onto *schur_set*.

    Factors the interior block with the library's own solver and applies
    one multi-RHS solve against the coupling block.
    """
    from repro.core.solver import SparseSolver
    from repro.mf.solve_phase import solve_many
    from repro.obs.spans import span

    a_ii, a_bi, a_bb = split_symmetric_lower(lower, np.asarray(schur_set))
    solver = SparseSolver(a_ii, method=method, ordering=ordering)
    solver.factor()
    # X = A_II^{-1} A_IB: one blocked solve over all interface couplings.
    with span("mf.schur", n=a_ii.shape[0], rhs=int(a_bi.shape[0])):
        x = solve_many(solver.numeric, a_bi.T.copy())
    s = a_bb - a_bi @ x
    # Enforce exact symmetry lost to rounding.
    return (s + s.T) / 2
