"""Unsymmetric multifrontal LU factorization (static pivoting).

The solver family this paper belongs to also ships an LU path. This module
implements the *static-pivoting* multifrontal variant (the approach
distributed LU solvers use to avoid the communication of dynamic row
pivoting): the matrix is ordered and analyzed on the symmetrized pattern
``A + Aᵀ``, fronts carry both an L panel (below the diagonal) and a U panel
(right of the diagonal), diagonal pivots are taken in order — optionally
perturbed when tiny — and iterative refinement recovers accuracy.

Stable as-is for (row) diagonally dominant matrices (e.g. upwind
convection–diffusion); for general matrices, enable ``pivot_perturbation``
and refinement, the same contract SuperLU_DIST documents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.dense.trsm import solve_unit_lower_inplace
from repro.mf.accounting import FactorStats
from repro.mf.frontal import front_local_indices
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc, csc_to_coo, csc_to_csr
from repro.sparse.permute import permute_vector, unpermute_vector
from repro.symbolic.analyze import (
    AnalyzeOptions,
    SymbolicFactor,
    analyze,
    dense_partial_factor_flops,
)
from repro.util.errors import ShapeError, SingularMatrixError
from repro.util.validation import as_float_array, check_permutation


@dataclass
class LUFactor:
    """Supernodal LU factor.

    Per supernode s (front order m, width w):

    * ``lu11[s]`` — w×w packed LU of the pivot block (unit-lower L,
      U on and above the diagonal);
    * ``l21[s]``  — (m-w)×w panel of L;
    * ``u12[s]``  — w×(m-w) panel of U.
    """

    sym: SymbolicFactor
    #: permuted full matrix in CSC (columns) — kept for refinement matvec
    permuted_full: CSCMatrix
    lu11: list[np.ndarray]
    l21: list[np.ndarray]
    u12: list[np.ndarray]
    stats: FactorStats = field(default_factory=FactorStats)
    perturbed_columns: tuple[int, ...] = ()

    @property
    def n(self) -> int:
        return self.sym.n

    def to_dense_lu(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize (L, U) dense (tests/diagnostics)."""
        n = self.n
        l = np.eye(n)
        u = np.zeros((n, n))
        for s in range(self.sym.n_supernodes):
            rows = self.sym.sn_rows[s]
            w = self.sym.supernode_width(s)
            c0 = int(self.sym.partition.sn_start[s])
            cols = np.arange(c0, c0 + w)
            blk = self.lu11[s]
            l[np.ix_(cols, cols)] = np.tril(blk, -1) + np.eye(w)
            u[np.ix_(cols, cols)] = np.triu(blk)
            if rows.size > w:
                l[np.ix_(rows[w:], cols)] = self.l21[s]
                u[np.ix_(cols, rows[w:])] = self.u12[s]
        return l, u


def lu_analyze(
    a_full: CSCMatrix, perm: np.ndarray, options: AnalyzeOptions | None = None
) -> tuple[SymbolicFactor, CSCMatrix]:
    """Symbolic analysis for LU: run the symmetric analysis on the pattern
    of ``A + Aᵀ`` and carry the permuted full matrix alongside.

    Returns ``(sym, permuted_full)``; ``sym.permuted_lower`` holds the
    symmetrized pattern's lower triangle (structure only — numeric values
    in it are not used by the LU engine).
    """
    n = a_full.shape[0]
    if a_full.shape[0] != a_full.shape[1]:
        raise ShapeError("LU requires a square matrix")
    p = check_permutation(perm, n)
    # Symmetrized pattern with structural (absolute) values, so that no
    # numeric cancellation can drop pattern entries.
    coo = csc_to_coo(a_full)
    pattern = coo_to_csc(
        COOMatrix(
            a_full.shape,
            np.concatenate([coo.row, coo.col]),
            np.concatenate([coo.col, coo.row]),
            np.concatenate([np.abs(coo.data) + 1.0, np.abs(coo.data) + 1.0]),
        )
    )
    from repro.sparse.ops import tril

    sym = analyze(tril(pattern), p, options)
    # Permute the actual matrix by the final ordering: B[i,j] = A[perm[i], perm[j]].
    inv = np.empty(n, dtype=np.int64)
    inv[sym.perm] = np.arange(n, dtype=np.int64)
    coo = csc_to_coo(a_full)
    permuted_full = coo_to_csc(
        COOMatrix(a_full.shape, inv[coo.row], inv[coo.col], coo.data)
    )
    return sym, permuted_full


def _assemble_lu_front(
    a_cols: CSCMatrix,
    a_rows,  # CSR of the permuted matrix
    rows: np.ndarray,
    c0: int,
    w: int,
) -> np.ndarray:
    """Full m×m front with A's pivot columns and pivot rows scattered in."""
    m = rows.size
    front = np.zeros((m, m))
    for k in range(w):
        j = c0 + k
        r_idx, r_vals = a_cols.col(j)
        keep = r_idx >= j
        local = front_local_indices(rows, r_idx[keep])
        front[local, k] = r_vals[keep]
        cols_idx, c_vals = a_rows.row(j)
        keep = cols_idx > j
        local = front_local_indices(rows, cols_idx[keep])
        front[k, local] = c_vals[keep]
    return front


def _partial_lu(
    front: np.ndarray,
    w: int,
    perturb_abs: float | None,
    col_offset: int,
    perturbed: list[int],
) -> None:
    """Eliminate the first w pivots of the full front in place (no row
    exchanges; optional static perturbation)."""
    m = front.shape[0]
    for j in range(w):
        piv = front[j, j]
        if not math.isfinite(piv):
            raise SingularMatrixError(
                f"non-finite pivot at column {col_offset + j}", column=col_offset + j
            )
        tol = perturb_abs if perturb_abs is not None else 0.0
        if abs(piv) <= max(tol, 1e-300):
            if perturb_abs is None:
                raise SingularMatrixError(
                    f"zero pivot {piv:.6g} at column {col_offset + j}",
                    column=col_offset + j,
                )
            piv = (1.0 if piv >= 0 else -1.0) * perturb_abs
            front[j, j] = piv
            perturbed.append(col_offset + j)
        if j + 1 < m:
            front[j + 1:, j] /= piv
            front[j + 1:, j + 1:] -= np.outer(front[j + 1:, j], front[j, j + 1:])


def multifrontal_lu(
    sym: SymbolicFactor,
    permuted_full: CSCMatrix,
    pivot_perturbation: float | None = None,
) -> LUFactor:
    """Numeric LU factorization over the symmetric analysis *sym*."""
    a_rows = csc_to_csr(permuted_full)
    nsn = sym.n_supernodes
    lu11: list[np.ndarray] = [None] * nsn  # type: ignore[list-item]
    l21: list[np.ndarray] = [None] * nsn  # type: ignore[list-item]
    u12: list[np.ndarray] = [None] * nsn  # type: ignore[list-item]
    stats = FactorStats()
    perturbed: list[int] = []
    perturb_abs = None
    if pivot_perturbation is not None:
        scale = float(np.max(np.abs(permuted_full.data), initial=0.0))
        perturb_abs = pivot_perturbation * max(scale, 1.0)

    updates: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for s in range(nsn):
        rows = sym.sn_rows[s]
        w = sym.supernode_width(s)
        c0 = int(sym.partition.sn_start[s])
        front = _assemble_lu_front(permuted_full, a_rows, rows, c0, w)
        for c in sym.sn_children[s]:
            upd, upd_rows = updates.pop(c)
            ix = front_local_indices(rows, upd_rows)
            front[np.ix_(ix, ix)] += upd
        m = rows.size
        _partial_lu(front, w, perturb_abs, c0, perturbed)
        lu11[s] = front[:w, :w].copy()
        l21[s] = front[w:, :w].copy()
        u12[s] = front[:w, w:].copy()
        # LU does twice the work of Cholesky on the same structure.
        stats.observe_front(m, w, 2 * dense_partial_factor_flops(m, w))
        stats.factor_entries += w * w + 2 * (m - w) * w
        if m > w:
            updates[s] = (front[w:, w:].copy(), rows[w:])
    if updates:
        raise AssertionError(f"unconsumed LU updates: {sorted(updates)}")
    return LUFactor(
        sym=sym,
        permuted_full=permuted_full,
        lu11=lu11,
        l21=l21,
        u12=u12,
        stats=stats,
        perturbed_columns=tuple(perturbed),
    )


def lu_solve(factor: LUFactor, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` with the computed LU factor (original ordering)."""
    b = as_float_array(b, "b")
    n = factor.n
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},); got {b.shape}")
    sym = factor.sym
    y = permute_vector(b, sym.perm)
    # Forward: L y = b (unit lower), supernodes ascending.
    for s in range(sym.n_supernodes):
        rows = sym.sn_rows[s]
        w = sym.supernode_width(s)
        blk = factor.lu11[s]
        piv = y[rows[:w]].copy()
        solve_unit_lower_inplace(blk, piv)
        y[rows[:w]] = piv
        if rows.size > w:
            y[rows[w:]] -= factor.l21[s] @ piv
    # Backward: U x = y, supernodes descending.
    for s in range(sym.n_supernodes - 1, -1, -1):
        rows = sym.sn_rows[s]
        w = sym.supernode_width(s)
        blk = factor.lu11[s]
        piv = y[rows[:w]].copy()
        if rows.size > w:
            piv -= factor.u12[s] @ y[rows[w:]]
        for j in range(w - 1, -1, -1):
            if j + 1 < w:
                piv[j] -= blk[j, j + 1:] @ piv[j + 1:]
            piv[j] /= blk[j, j]
        y[rows[:w]] = piv
    return unpermute_vector(y, sym.perm)
