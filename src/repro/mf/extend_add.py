"""The extend-add operation.

Adds a child's update (Schur complement) matrix into its parent's front,
matching child update rows to their positions in the parent's row
structure. Both matrices follow the lower-triangle-meaningful convention;
because both index lists are sorted, lower-triangle entries map to
lower-triangle entries.
"""

from __future__ import annotations

import numpy as np

from repro.mf.frontal import front_local_indices


def extend_add(
    parent_front: np.ndarray,
    parent_rows: np.ndarray,
    update: np.ndarray,
    update_rows: np.ndarray,
) -> None:
    """``parent_front[ix, ix] += tril(update)`` where ``ix`` locates
    *update_rows* within *parent_rows*. In place."""
    if update.shape[0] != update_rows.size:
        raise ValueError(
            f"update order {update.shape[0]} != len(update_rows) {update_rows.size}"
        )
    if update_rows.size == 0:
        return
    ix = front_local_indices(parent_rows, update_rows)
    # Only the lower triangle of the update is meaningful; adding tril keeps
    # the parent's (meaningless) upper triangle clean of NaN-like garbage.
    parent_front[np.ix_(ix, ix)] += np.tril(update)
