"""Factorization statistics: flops, memory high-water marks, front shapes.

The sequential engine fills one of these per factorization; benchmarks F6
(memory scaling) and F2 (efficiency breakdown) consume the same fields from
the parallel engine's per-rank accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FactorStats:
    """Aggregate statistics of one numeric factorization."""

    #: flops actually performed (dense convention of repro.symbolic)
    flops: int = 0
    #: entries stored in factor blocks
    factor_entries: int = 0
    #: peak simultaneous update-stack entries
    peak_stack_entries: int = 0
    #: peak front order seen
    max_front_order: int = 0
    #: number of fronts processed
    n_fronts: int = 0
    #: per-front orders (for histograms)
    front_orders: list[int] = field(default_factory=list)
    #: out-of-core mode: update-matrix entries spilled / reloaded
    spill_entries_written: int = 0
    spill_entries_read: int = 0

    def observe_front(self, order: int, width: int, flops: int) -> None:
        self.n_fronts += 1
        self.front_orders.append(order)
        self.max_front_order = max(self.max_front_order, order)
        self.flops += flops

    @property
    def mean_front_order(self) -> float:
        if not self.front_orders:
            return 0.0
        return float(np.mean(self.front_orders))
