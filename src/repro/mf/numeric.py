"""Sequential multifrontal numeric factorization.

Walks the assembly tree in postorder (supernodes are numbered postorder by
construction), maintaining an update stack keyed by child supernode. For
each supernode: assemble the front from A, extend-add the children's
updates, partially factor, store the factor panel, push the Schur
complement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dense.partial_factor import partial_cholesky, partial_ldlt
from repro.mf.accounting import FactorStats
from repro.mf.extend_add import extend_add
from repro.mf.frontal import assemble_front
from repro.obs.profile import active_profile
from repro.obs.spans import span
from repro.symbolic.analyze import SymbolicFactor, dense_partial_factor_flops
from repro.util.errors import InvariantError, ShapeError
from repro.util.validation import (
    VALUE_DTYPE,
    runtime_checks_enabled,
    work_dtype,
)


@dataclass
class NumericFactor:
    """The computed factor.

    ``blocks[s]`` is the m×w panel [L11; L21] of supernode s (for LDLᵀ,
    unit-lower L11 with D on its diagonal and L21 already D-scaled).
    ``diag`` holds the LDLᵀ pivots (None for Cholesky).
    """

    sym: SymbolicFactor
    method: str
    blocks: list[np.ndarray]
    diag: np.ndarray | None
    stats: FactorStats = field(default_factory=FactorStats)
    #: permuted-order columns whose LDLᵀ pivots were statically perturbed
    perturbed_columns: tuple[int, ...] = ()
    #: pool telemetry (:class:`repro.exec.pool.PoolStats`) when this factor
    #: was produced by the threads backend; None for the sequential driver
    exec_stats: object | None = None
    #: working precision the fronts were factored in (``"fp64"``/``"fp32"``);
    #: fp32 factors need iterative refinement to deliver fp64 solutions
    precision: str = "fp64"

    @property
    def n(self) -> int:
        return self.sym.n

    @property
    def dtype(self) -> np.dtype:
        """Working dtype of the stored factor panels."""
        return work_dtype(self.precision)

    def to_dense_l(self) -> np.ndarray:
        """Materialize L as a dense lower-triangular matrix (tests and
        diagnostics only). For LDLᵀ this is the unit-lower L."""
        n = self.sym.n
        l = np.zeros((n, n))
        for s in range(self.sym.n_supernodes):
            rows = self.sym.sn_rows[s]
            w = self.sym.supernode_width(s)
            c0 = int(self.sym.partition.sn_start[s])
            block = self.blocks[s]
            for k in range(w):
                col = c0 + k
                vals = block[k:, k].copy()
                l[rows[k:], col] = vals
            if self.method == "ldlt":
                l[np.arange(c0, c0 + w), np.arange(c0, c0 + w)] = 1.0
        return l


def factor_front(
    sym: SymbolicFactor,
    s: int,
    method: str,
    perturb_abs: float | None,
    child_updates,
    perturbed: list[int],
    prof,
    dtype: np.dtype = VALUE_DTYPE,
) -> tuple[np.ndarray, np.ndarray | None, tuple[np.ndarray, np.ndarray] | None, int]:
    """Assemble, extend-add, and partially factor the front of supernode *s*.

    Shared by the sequential driver below and the threads backend
    (:mod:`repro.exec.factor_exec`), so both execute the *identical*
    floating-point operation sequence per front — the foundation of the
    bitwise-oracle contract between the two backends.

    Parameters
    ----------
    child_updates
        Iterable of ``(update, update_rows)`` pairs in ascending child
        order. May be a generator: the sequential driver pops (and
        spill-accounts) each child's update lazily at exactly the point
        the pre-refactor loop did.
    perturbed
        Sink list for statically perturbed LDLᵀ pivot columns.
    prof
        The active :class:`~repro.obs.profile.FrontProfile` or None.
    dtype
        Working dtype of the front (fp32 for mixed-precision fronts).
        Input entries are rounded once at assembly; every subsequent
        operation — extend-add, factorization, Schur update — runs in
        this dtype.

    Returns ``(block, d, update, front_flops)``: the m×w factor panel
    copy, the LDLᵀ pivots (None for Cholesky), the Schur update as
    ``(matrix, rows)`` (None when the front has no update rows), and the
    dense partial-factorization flop count.
    """
    a = sym.permuted_lower
    rows = sym.sn_rows[s]
    w = sym.supernode_width(s)
    c0 = int(sym.partition.sn_start[s])
    front = assemble_front(a, rows, c0, w, dtype=dtype)
    for upd, upd_rows in child_updates:
        extend_add(front, rows, upd, upd_rows)
    m = rows.size
    t_front = prof.clock() if prof is not None else 0.0
    d: np.ndarray | None = None
    if method == "cholesky":
        partial_cholesky(front, w)
    else:
        d = partial_ldlt(
            front, w, perturb=perturb_abs, col_offset=c0, perturbed=perturbed
        )
    front_flops = dense_partial_factor_flops(m, w)
    if prof is not None:
        prof.observe_front(s, m, w, front_flops, prof.clock() - t_front)
    block = front[:, :w].copy()
    update = (front[w:, w:].copy(), rows[w:]) if m > w else None
    return block, d, update, front_flops


def multifrontal_factor(
    sym: SymbolicFactor,
    method: str = "cholesky",
    pivot_perturbation: float | None = None,
    memory_limit_entries: int | None = None,
    precision: str = "fp64",
) -> NumericFactor:
    """Numeric factorization of the matrix held in *sym*.

    Parameters
    ----------
    method
        ``"cholesky"`` (SPD) or ``"ldlt"`` (symmetric strongly regular).
    pivot_perturbation
        LDLᵀ only: static-pivoting threshold relative to the matrix
        diagonal scale (``max |A_ii|``). ``None`` = raise on zero pivots; a
        positive value replaces tiny pivots and records their columns for
        the caller to trigger iterative refinement.
    memory_limit_entries
        Out-of-core mode: cap the *in-core* transient storage (current
        front plus resident update stack) at this many entries. Update
        matrices beyond the cap are "spilled" — the I/O volume is recorded
        in ``stats.spill_entries_written/read``, the classic out-of-core
        multifrontal accounting. Raises :class:`ShapeError` when a single
        front alone exceeds the cap (no schedule can fit).
    precision
        ``"fp64"`` (default) or ``"fp32"``. fp32 halves factor storage and
        bandwidth; pair it with fp64 iterative refinement
        (:func:`repro.mf.refine.iterative_refinement`) to recover
        fp64-level accuracy on well-conditioned systems.
    """
    if method not in ("cholesky", "ldlt"):
        raise ShapeError(f"unknown factorization method {method!r}")
    if pivot_perturbation is not None and method != "ldlt":
        raise ShapeError("pivot_perturbation applies to method='ldlt' only")
    a = sym.permuted_lower
    perturb_abs = None
    if pivot_perturbation is not None:
        diag_scale = float(np.max(np.abs(a.diagonal()), initial=0.0))
        perturb_abs = pivot_perturbation * max(diag_scale, 1.0)
    wdtype = work_dtype(precision)
    nsn = sym.n_supernodes
    blocks: list[np.ndarray] = [None] * nsn  # type: ignore[list-item]
    diag = np.empty(sym.n, dtype=wdtype) if method == "ldlt" else None
    stats = FactorStats()
    perturbed: list[int] = []

    updates: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    #: supernodes whose updates are currently "on disk" (out-of-core mode)
    spilled: set[int] = set()
    stack_entries = 0

    def enforce_memory_cap(front_entries: int) -> None:
        """Spill resident updates (oldest first) until front + stack fit."""
        nonlocal stack_entries
        if memory_limit_entries is None:
            return
        if front_entries > memory_limit_entries:
            raise ShapeError(
                f"front of {front_entries} entries exceeds the "
                f"{memory_limit_entries}-entry in-core limit"
            )
        for c in sorted(updates):
            if front_entries + stack_entries <= memory_limit_entries:
                break
            if c in spilled:
                continue
            upd, _ = updates[c]
            spilled.add(c)
            stats.spill_entries_written += upd.size
            stack_entries -= upd.size

    def pop_child_updates(s: int):
        """Yield child updates in ascending child order, with the pop and
        spill accounting happening lazily inside the extend-add loop of
        :func:`factor_front` — the exact point the pre-refactor loop did
        them, keeping out-of-core accounting unchanged."""
        nonlocal stack_entries
        for c in sym.sn_children[s]:
            upd, upd_rows = updates.pop(c)
            if c in spilled:
                spilled.discard(c)
                stats.spill_entries_read += upd.size
            else:
                stack_entries -= upd.size
            yield upd, upd_rows

    # Observability: one span over the numeric phase; per-front timing is
    # recorded only when a recorder is installed (prof None check keeps the
    # disabled path free of timing calls — see lint rule RP007).
    prof = active_profile()

    with span(
        "mf.factor", method=method, n=sym.n, supernodes=nsn, precision=precision
    ):
        for s in range(nsn):
            rows = sym.sn_rows[s]
            w = sym.supernode_width(s)
            c0 = int(sym.partition.sn_start[s])
            m = rows.size
            enforce_memory_cap(m * m)
            block, d, update, front_flops = factor_front(
                sym, s, method, perturb_abs, pop_child_updates(s), perturbed, prof,
                dtype=wdtype,
            )
            if d is not None:
                diag[c0: c0 + w] = d
            blocks[s] = block
            stats.observe_front(m, w, front_flops)
            stats.factor_entries += m * w - w * (w - 1) // 2
            if update is not None:
                updates[s] = update
                stack_entries += update[0].size
                stats.peak_stack_entries = max(stats.peak_stack_entries, stack_entries)
                enforce_memory_cap(0)

    if updates:
        raise InvariantError(
            f"unconsumed update matrices for supernodes {sorted(updates)}"
        )
    if runtime_checks_enabled():
        # Frontal-stack balance: every push was matched by a pop and the
        # transient entry counter returned to zero (spills included).
        from repro.check.sanitize import check_frontal_balance

        check_frontal_balance(stack_entries, updates)
        if spilled:
            raise InvariantError(
                f"sanitizer: {len(spilled)} spilled update(s) never read "
                f"back: supernodes {sorted(spilled)[:5]}"
            )
    return NumericFactor(
        sym=sym,
        method=method,
        blocks=blocks,
        diag=diag,
        stats=stats,
        perturbed_columns=tuple(perturbed),
        precision=precision,
    )
