"""Iterative refinement, blocked over multiple right-hand sides.

One step of refinement after a direct solve recovers the digits lost to
rounding in the factorization — the standard accuracy safeguard sparse
direct solvers ship (WSMP enables it by default for its iterative-refinement
solve mode). With fp32 factors the roles sharpen: the cheap correction
solves run in the factor's working precision while residuals accumulate in
fp64, so a well-conditioned system recovers full fp64 accuracy from a
half-storage factorization.

Stopping test: the **normwise backward error**

    berr = ‖b − A x‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)

(Oettli–Prager style), not the bare ‖r‖∞/‖b‖∞ ratio — the denominator
keeps the test meaningful when ‖x‖ dwarfs ‖b‖ and makes it scale-invariant
per column.

Divergence is detected, not looped through: a column whose backward error
goes non-finite or grows past twice its best-so-far value is stopped
immediately, flagged ``diverged``, and handed back its best-so-far iterate
(never a NaN-poisoned one). Columns that merely exhaust ``max_iter`` are
reported as non-converged with ``diverged`` False — the two outcomes ask
for different remedies (re-factor in fp64 vs. raise the budget).

The blocked path (:func:`iterative_refinement_many`) refines a whole
``(n, k)`` panel with **one sweep pair per iteration**: a single blocked
residual matvec and a single blocked correction solve cover every
still-active column. Convergence is tracked per column — a column that
reaches the tolerance (or diverges) is frozen, so each column follows
exactly the iteration trajectory it would follow refined alone, and the
result is bitwise identical per column to the scalar
:func:`iterative_refinement` (which delegates to the same core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mf.numeric import NumericFactor
from repro.mf.solve_phase import solve_many
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import sym_matvec_lower_many, sym_norm_inf_lower
from repro.util.errors import ShapeError
from repro.util.validation import as_float_array

#: a column whose backward error exceeds this multiple of its best-so-far
#: value is declared diverged (LAPACK's mixed-precision drivers use the
#: same no-longer-halving idea to trigger their fp64 fallback)
DIVERGENCE_GROWTH = 2.0


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of iterative refinement for one right-hand side."""

    x: np.ndarray
    #: normwise backward-error history, one entry per iteration (incl.
    #: the initial direct solve)
    residual_history: tuple[float, ...]
    iterations: int
    converged: bool
    #: True when refinement was stopped early because the backward error
    #: went non-finite or grew; ``x`` is then the best-so-far iterate
    diverged: bool = False
    #: normwise backward error of the *returned* ``x``
    backward_error: float = 0.0


@dataclass(frozen=True)
class PanelRefinementResult:
    """Outcome of blocked iterative refinement for an ``(n, k)`` panel."""

    x: np.ndarray
    #: per-column backward-error history (tuple of tuples, column-major)
    residual_history: tuple[tuple[float, ...], ...]
    #: refinement iterations performed per column
    iterations: np.ndarray
    converged: np.ndarray
    #: per-column early-stop flag (see :class:`RefinementResult.diverged`)
    diverged: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    #: normwise backward error of the returned iterate, per column
    backward_error: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def residuals(self) -> np.ndarray:
        """Normwise backward error of the returned solution, per column."""
        return self.backward_error

    def column(self, j: int) -> RefinementResult:
        """The scalar-result view of column *j*."""
        return RefinementResult(
            x=self.x[:, j],
            residual_history=self.residual_history[j],
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
            diverged=bool(self.diverged[j]),
            backward_error=float(self.backward_error[j]),
        )


def _refine_panel(
    factor: NumericFactor,
    original_lower: CSCMatrix,
    b: np.ndarray,
    max_iter: int,
    tol: float,
    solve_fn=solve_many,
) -> PanelRefinementResult:
    """Refine all columns of *b* (shape ``(n, k)``) with per-column
    convergence tracking and one blocked sweep pair per iteration.

    *solve_fn* is the blocked direct-solve kernel (default the sequential
    :func:`~repro.mf.solve_phase.solve_many`; the threads backend passes
    :func:`repro.exec.solve_exec.solve_many_threads`, which is bitwise
    identical, so the refinement trajectory is too)."""
    n, k = b.shape
    x = np.zeros((n, k))
    bnorms = np.max(np.abs(b), axis=0) if n else np.zeros(k)
    anorm = sym_norm_inf_lower(original_lower)
    histories: list[list[float]] = [[] for _ in range(k)]
    iterations = np.zeros(k, dtype=np.int64)
    converged = np.zeros(k, dtype=bool)
    diverged = np.zeros(k, dtype=bool)
    backward_error = np.zeros(k)
    # Best-so-far iterate per column. The zero vector's backward error is
    # exactly 1.0 (r = b), so it is a finite universal fallback even when
    # the very first direct solve produces garbage.
    best_x = np.zeros((n, k))
    best_berr = np.ones(k)

    # Zero right-hand sides converge immediately with a zero solution,
    # matching the scalar fast path.
    active = np.flatnonzero(bnorms > 0.0)
    for j in np.flatnonzero(bnorms == 0.0):
        histories[j].append(0.0)
        converged[j] = True

    if active.size:
        x[:, active] = solve_fn(factor, b[:, active])
    for it in range(max_iter + 1):
        if not active.size:
            break
        # A non-finite iterate (a column overflowing the factor's working
        # precision, or a broken solve) must be frozen *here*: the residual
        # matvec validates its input and would reject the whole panel.
        finite_x = np.all(np.isfinite(x[:, active]), axis=0)
        for pos in np.flatnonzero(~finite_x):
            j = active[pos]
            histories[j].append(float("inf"))
            iterations[j] = it
            diverged[j] = True
            x[:, j] = best_x[:, j]
            backward_error[j] = best_berr[j]
        active = active[finite_x]
        if not active.size:
            break
        r = b[:, active] - sym_matvec_lower_many(original_lower, x[:, active])
        with np.errstate(invalid="ignore", over="ignore"):
            xnorms = np.max(np.abs(x[:, active]), axis=0)
            berr = np.max(np.abs(r), axis=0) / (anorm * xnorms + bnorms[active])
        for pos, j in enumerate(active):
            histories[j].append(float(berr[pos]))
        finite = np.isfinite(berr)
        done = finite & (berr <= tol)
        for pos in np.flatnonzero(done):
            j = active[pos]
            iterations[j] = it
            converged[j] = True
            backward_error[j] = float(berr[pos])
        # Divergence guard: check *before* the correction solve so a
        # NaN/Inf iterate is frozen here instead of crashing (or further
        # poisoning) the blocked solve below.
        bad = ~done & (~finite | (berr > DIVERGENCE_GROWTH * best_berr[active]))
        for pos in np.flatnonzero(bad):
            j = active[pos]
            iterations[j] = it
            diverged[j] = True
            x[:, j] = best_x[:, j]
            backward_error[j] = best_berr[j]
        keep = ~done & ~bad
        for pos in np.flatnonzero(keep & (berr < best_berr[active])):
            j = active[pos]
            best_berr[j] = float(berr[pos])
            best_x[:, j] = x[:, j]
        active = active[keep]
        r = r[:, keep]
        if not active.size:
            break
        if it == max_iter:
            # Budget exhausted without meeting tol: return the best iterate
            # seen, not whatever the last correction happened to produce.
            for j in active:
                iterations[j] = max_iter
                x[:, j] = best_x[:, j]
                backward_error[j] = best_berr[j]
            break
        # One blocked correction solve for every still-active column.
        x[:, active] += solve_fn(factor, r)
    return PanelRefinementResult(
        x=x,
        residual_history=tuple(tuple(h) for h in histories),
        iterations=iterations,
        converged=converged,
        diverged=diverged,
        backward_error=backward_error,
    )


def iterative_refinement(
    factor: NumericFactor,
    original_lower: CSCMatrix,
    b: np.ndarray,
    max_iter: int = 5,
    tol: float = 1e-14,
) -> RefinementResult:
    """Refine the direct solution of ``A x = b`` (one right-hand side).

    Parameters
    ----------
    original_lower
        Lower triangle of A in the *original* ordering (the matrix handed
        to the analyze phase).
    tol
        Stop when the normwise backward error
        ``‖b − Ax‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)`` drops below this.
    """
    b = as_float_array(b, "b")
    if b.ndim != 1:
        raise ShapeError(f"b must be one-dimensional; got {b.shape}")
    res = _refine_panel(factor, original_lower, b[:, None], max_iter, tol)
    return res.column(0)


def iterative_refinement_many(
    factor: NumericFactor,
    original_lower: CSCMatrix,
    b: np.ndarray,
    max_iter: int = 5,
    tol: float = 1e-14,
    solve_fn=solve_many,
) -> PanelRefinementResult:
    """Blocked iterative refinement of ``A X = B`` for a panel *b*.

    Accepts ``(n,)`` (treated as one column) or ``(n, k)``. Column *j* of
    the result is bitwise identical to refining ``b[:, j]`` alone with
    :func:`iterative_refinement`.
    """
    b = as_float_array(b, "b")
    if b.ndim == 1:
        b = b[:, None]
    if b.ndim != 2:
        raise ShapeError(f"b must have shape (n,) or (n, k); got {b.shape}")
    n = factor.n
    if b.shape[0] != n:
        raise ShapeError(f"b must have {n} rows; got {b.shape}")
    return _refine_panel(factor, original_lower, b, max_iter, tol, solve_fn=solve_fn)
