"""Iterative refinement, blocked over multiple right-hand sides.

One step of refinement after a direct solve recovers the digits lost to
rounding in the factorization — the standard accuracy safeguard sparse
direct solvers ship (WSMP enables it by default for its iterative-refinement
solve mode).

The blocked path (:func:`iterative_refinement_many`) refines a whole
``(n, k)`` panel with **one sweep pair per iteration**: a single blocked
residual matvec and a single blocked correction solve cover every
still-active column. Convergence is tracked per column — a column that
reaches the tolerance is frozen (its solution never touched again), so
each column follows exactly the iteration trajectory it would follow
refined alone, and the result is bitwise identical per column to the
scalar :func:`iterative_refinement` (which delegates to the same core).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mf.numeric import NumericFactor
from repro.mf.solve_phase import solve_many
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import sym_matvec_lower_many
from repro.util.errors import ShapeError
from repro.util.validation import as_float_array


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of iterative refinement for one right-hand side."""

    x: np.ndarray
    #: relative residual history, one entry per iteration (incl. initial)
    residual_history: tuple[float, ...]
    iterations: int
    converged: bool


@dataclass(frozen=True)
class PanelRefinementResult:
    """Outcome of blocked iterative refinement for an ``(n, k)`` panel."""

    x: np.ndarray
    #: per-column relative residual history (tuple of tuples, column-major)
    residual_history: tuple[tuple[float, ...], ...]
    #: refinement iterations performed per column
    iterations: np.ndarray
    converged: np.ndarray

    @property
    def residuals(self) -> np.ndarray:
        """Final relative residual per column."""
        return np.asarray([h[-1] for h in self.residual_history])

    def column(self, j: int) -> RefinementResult:
        """The scalar-result view of column *j*."""
        return RefinementResult(
            x=self.x[:, j],
            residual_history=self.residual_history[j],
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
        )


def _refine_panel(
    factor: NumericFactor,
    original_lower: CSCMatrix,
    b: np.ndarray,
    max_iter: int,
    tol: float,
    solve_fn=solve_many,
) -> PanelRefinementResult:
    """Refine all columns of *b* (shape ``(n, k)``) with per-column
    convergence tracking and one blocked sweep pair per iteration.

    *solve_fn* is the blocked direct-solve kernel (default the sequential
    :func:`~repro.mf.solve_phase.solve_many`; the threads backend passes
    :func:`repro.exec.solve_exec.solve_many_threads`, which is bitwise
    identical, so the refinement trajectory is too)."""
    n, k = b.shape
    x = np.zeros((n, k))
    norms = (
        np.max(np.abs(b), axis=0) if n else np.zeros(k)
    )
    histories: list[list[float]] = [[] for _ in range(k)]
    iterations = np.zeros(k, dtype=np.int64)
    converged = np.zeros(k, dtype=bool)

    # Zero right-hand sides converge immediately with a zero solution,
    # matching the scalar fast path.
    active = np.flatnonzero(norms > 0.0)
    for j in np.flatnonzero(norms == 0.0):
        histories[j].append(0.0)
        converged[j] = True

    if active.size:
        x[:, active] = solve_fn(factor, b[:, active])
    for it in range(max_iter + 1):
        if not active.size:
            break
        r = b[:, active] - sym_matvec_lower_many(
            original_lower, x[:, active]
        )
        rel = np.max(np.abs(r), axis=0) / norms[active]
        for pos, j in enumerate(active):
            histories[j].append(float(rel[pos]))
        done = rel <= tol
        for j in active[done]:
            iterations[j] = it
            converged[j] = True
        active = active[~done]
        r = r[:, ~done]
        if not active.size:
            break
        if it == max_iter:
            iterations[active] = max_iter
            break
        # One blocked correction solve for every still-active column.
        x[:, active] += solve_fn(factor, r)
    return PanelRefinementResult(
        x=x,
        residual_history=tuple(tuple(h) for h in histories),
        iterations=iterations,
        converged=converged,
    )


def iterative_refinement(
    factor: NumericFactor,
    original_lower: CSCMatrix,
    b: np.ndarray,
    max_iter: int = 5,
    tol: float = 1e-14,
) -> RefinementResult:
    """Refine the direct solution of ``A x = b`` (one right-hand side).

    Parameters
    ----------
    original_lower
        Lower triangle of A in the *original* ordering (the matrix handed
        to the analyze phase).
    tol
        Stop when the relative residual ‖b − Ax‖∞ / ‖b‖∞ drops below this.
    """
    b = as_float_array(b, "b")
    if b.ndim != 1:
        raise ShapeError(f"b must be one-dimensional; got {b.shape}")
    res = _refine_panel(factor, original_lower, b[:, None], max_iter, tol)
    return res.column(0)


def iterative_refinement_many(
    factor: NumericFactor,
    original_lower: CSCMatrix,
    b: np.ndarray,
    max_iter: int = 5,
    tol: float = 1e-14,
    solve_fn=solve_many,
) -> PanelRefinementResult:
    """Blocked iterative refinement of ``A X = B`` for a panel *b*.

    Accepts ``(n,)`` (treated as one column) or ``(n, k)``. Column *j* of
    the result is bitwise identical to refining ``b[:, j]`` alone with
    :func:`iterative_refinement`.
    """
    b = as_float_array(b, "b")
    if b.ndim == 1:
        b = b[:, None]
    if b.ndim != 2:
        raise ShapeError(f"b must have shape (n,) or (n, k); got {b.shape}")
    n = factor.n
    if b.shape[0] != n:
        raise ShapeError(f"b must have {n} rows; got {b.shape}")
    return _refine_panel(factor, original_lower, b, max_iter, tol, solve_fn=solve_fn)
