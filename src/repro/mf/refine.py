"""Iterative refinement.

One step of refinement after a direct solve recovers the digits lost to
rounding in the factorization — the standard accuracy safeguard sparse
direct solvers ship (WSMP enables it by default for its iterative-refinement
solve mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mf.numeric import NumericFactor
from repro.mf.solve_phase import solve
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import sym_matvec_lower
from repro.util.validation import as_float_array


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of iterative refinement."""

    x: np.ndarray
    #: relative residual history, one entry per iteration (incl. initial)
    residual_history: tuple[float, ...]
    iterations: int
    converged: bool


def iterative_refinement(
    factor: NumericFactor,
    original_lower: CSCMatrix,
    b: np.ndarray,
    max_iter: int = 5,
    tol: float = 1e-14,
) -> RefinementResult:
    """Refine the direct solution of ``A x = b``.

    Parameters
    ----------
    original_lower
        Lower triangle of A in the *original* ordering (the matrix handed
        to the analyze phase).
    tol
        Stop when the relative residual ‖b − Ax‖∞ / ‖b‖∞ drops below this.
    """
    b = as_float_array(b, "b")
    norm_b = float(np.max(np.abs(b))) if b.size else 0.0
    if norm_b == 0.0:
        return RefinementResult(np.zeros_like(b), (0.0,), 0, True)

    x = solve(factor, b)
    history = []
    for it in range(max_iter + 1):
        r = b - sym_matvec_lower(original_lower, x)
        rel = float(np.max(np.abs(r))) / norm_b
        history.append(rel)
        if rel <= tol:
            return RefinementResult(x, tuple(history), it, True)
        if it == max_iter:
            break
        x = x + solve(factor, r)
    return RefinementResult(x, tuple(history), max_iter, False)
