"""Supernodal triangular solves.

Given a :class:`~repro.mf.numeric.NumericFactor`, solve ``A x = b`` in the
*original* ordering: permute the RHS, run the forward sweep over supernodes
in ascending order, the diagonal scaling (LDLᵀ), the backward sweep in
descending order, and un-permute.
"""

from __future__ import annotations

import numpy as np

from repro.dense.trsm import (
    solve_lower_inplace,
    solve_lower_transpose_inplace,
    solve_unit_lower_inplace,
    solve_unit_lower_transpose_inplace,
)
from repro.mf.numeric import NumericFactor
from repro.sparse.permute import permute_vector, unpermute_vector
from repro.util.errors import ShapeError
from repro.util.validation import as_float_array


def solve(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` for one right-hand side (original ordering)."""
    b = as_float_array(b, "b")
    n = factor.n
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},); got {b.shape}")
    sym = factor.sym
    y = permute_vector(b, sym.perm)

    forward_sweep(factor, y)
    if factor.method == "ldlt":
        y /= factor.diag
    backward_sweep(factor, y)
    return unpermute_vector(y, sym.perm)


def forward_sweep(factor: NumericFactor, y: np.ndarray) -> None:
    """In-place forward substitution ``y <- L^{-1} y`` in permuted order."""
    sym = factor.sym
    unit = factor.method == "ldlt"
    for s in range(sym.n_supernodes):
        rows = sym.sn_rows[s]
        w = sym.supernode_width(s)
        block = factor.blocks[s]
        piv = y[rows[:w]]
        if unit:
            solve_unit_lower_inplace(block[:w, :], piv)
        else:
            solve_lower_inplace(block[:w, :], piv)
        y[rows[:w]] = piv
        if rows.size > w:
            y[rows[w:]] -= block[w:, :] @ piv


def backward_sweep(factor: NumericFactor, y: np.ndarray) -> None:
    """In-place backward substitution ``y <- L^{-T} y`` in permuted order."""
    sym = factor.sym
    unit = factor.method == "ldlt"
    for s in range(sym.n_supernodes - 1, -1, -1):
        rows = sym.sn_rows[s]
        w = sym.supernode_width(s)
        block = factor.blocks[s]
        piv = y[rows[:w]].copy()
        if rows.size > w:
            piv -= block[w:, :].T @ y[rows[w:]]
        if unit:
            solve_unit_lower_transpose_inplace(block[:w, :], piv)
        else:
            solve_lower_transpose_inplace(block[:w, :], piv)
        y[rows[:w]] = piv


def solve_many(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
    """Solve for multiple right-hand sides (columns of *b*)."""
    b = as_float_array(b, "b")
    if b.ndim == 1:
        return solve(factor, b)
    out = np.empty_like(b)
    for k in range(b.shape[1]):
        out[:, k] = solve(factor, b[:, k])
    return out
