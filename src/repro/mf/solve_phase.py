"""Supernodal triangular solves, blocked over multiple right-hand sides.

Given a :class:`~repro.mf.numeric.NumericFactor`, solve ``A X = B`` in the
*original* ordering: permute the RHS panel, run the forward sweep over
supernodes in ascending order, the diagonal scaling (LDLᵀ), the backward
sweep in descending order, and un-permute. One permute → sweep → unpermute
pass serves any number of right-hand sides: the supernode traversal, the
per-front Python overhead, and the triangular-substitution inner loops are
paid once per *panel*, not once per column.

Bitwise reproducibility contract
--------------------------------
``solve_many(factor, B)[:, j]`` is **bitwise identical** to
``solve(factor, B[:, j])`` for every column, no matter how many columns
share the panel. Two implementation rules buy this:

* triangular substitution uses only elementwise/outer-product updates
  (:mod:`repro.dense.trsm`'s forward kernels and the ``*_outer`` transpose
  kernels), whose per-column operation sequence does not depend on the
  panel width — unlike BLAS dot/gemv/gemm reductions, which reorder sums
  with the operand shape;
* the off-diagonal panel updates run one BLAS ``dgemv`` per column on a
  contiguous (Fortran-ordered) column buffer, so each column issues the
  exact call the single-RHS path issues.

The serving layer's coalesced batches and the blocked iterative refinement
in :mod:`repro.mf.refine` both lean on this guarantee to stay bit-checkable
against the per-column path.
"""

from __future__ import annotations

import numpy as np

from repro.dense.trsm import (
    solve_lower_inplace,
    solve_lower_transpose_outer_inplace,
    solve_unit_lower_inplace,
    solve_unit_lower_transpose_outer_inplace,
)
from repro.mf.numeric import NumericFactor
from repro.obs.spans import span
from repro.sparse.permute import permute_vector, unpermute_vector
from repro.util.errors import ShapeError
from repro.util.validation import VALUE_DTYPE, as_float_array


def solve(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` for one right-hand side (original ordering)."""
    b = as_float_array(b, "b")
    n = factor.n
    if b.shape != (n,):
        raise ShapeError(f"b must have shape ({n},); got {b.shape}")
    sym = factor.sym
    with span(
        "mf.solve", n=n, rhs=1, method=factor.method, precision=factor.precision
    ):
        # The sweeps run in the factor's working dtype (one rounding of the
        # fp64 RHS on the way in); the result is widened back to fp64 so
        # callers — iterative refinement above all — accumulate in fp64.
        y = permute_vector(b, sym.perm).astype(factor.dtype, copy=False)
        forward_sweep(factor, y)
        if factor.method == "ldlt":
            y /= factor.diag
        backward_sweep(factor, y)
        return unpermute_vector(y.astype(VALUE_DTYPE, copy=False), sym.perm)


def solve_many(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
    """Blocked solve for multiple right-hand sides (columns of *b*).

    Runs **one** permute → forward → scale → backward → unpermute pass over
    the whole ``(n, k)`` panel; each column's bits match a stand-alone
    :func:`solve` of that column (see the module docstring).
    """
    b = as_float_array(b, "b")
    if b.ndim == 1:
        return solve(factor, b)
    n = factor.n
    if b.ndim != 2 or b.shape[0] != n:
        raise ShapeError(f"b must have shape ({n},) or ({n}, k); got {b.shape}")
    if b.shape[1] == 1:
        # The single-vector path skips the panel bookkeeping; the bitwise
        # contract makes the dispatch invisible to callers.
        return solve(factor, b[:, 0])[:, None]
    sym = factor.sym
    with span(
        "mf.solve",
        n=n,
        rhs=int(b.shape[1]),
        method=factor.method,
        precision=factor.precision,
    ):
        y = permute_vector(b, sym.perm).astype(factor.dtype, copy=False)
        forward_sweep(factor, y)
        if factor.method == "ldlt":
            y /= factor.diag[:, None]
        backward_sweep(factor, y)
        return unpermute_vector(y.astype(VALUE_DTYPE, copy=False), sym.perm)


def forward_front(factor: NumericFactor, s: int, y: np.ndarray) -> np.ndarray | None:
    """One supernode's forward-substitution step on the permuted RHS *y*.

    Solves the diagonal block against y's pivot rows in place and returns
    the off-diagonal update panel (None when the supernode has no update
    rows). The *caller* subtracts the update from y — directly below
    (sequential sweep) or split per owning ancestor supernode
    (:mod:`repro.exec.solve_exec`). Shared by both so the per-supernode
    operation sequence is identical — the bitwise-oracle contract.
    """
    sym = factor.sym
    rows = sym.sn_rows[s]
    w = sym.supernode_width(s)
    block = factor.blocks[s]
    panel = y.ndim == 2
    piv = y[rows[:w]]
    if factor.method == "ldlt":
        solve_unit_lower_inplace(block[:w, :], piv)
    else:
        solve_lower_inplace(block[:w, :], piv)
    y[rows[:w]] = piv
    if rows.size > w:
        l21 = block[w:, :]
        if panel:
            # One dgemv per column on a contiguous buffer: identical
            # bits to the single-RHS call, k columns per traversal.
            pivf = np.asfortranarray(piv)
            upd = np.empty((rows.size - w, piv.shape[1]), dtype=y.dtype, order="F")
            for c in range(piv.shape[1]):
                np.dot(l21, pivf[:, c], out=upd[:, c])
            return upd
        return l21 @ piv
    return None


def backward_front(factor: NumericFactor, s: int, y: np.ndarray) -> None:
    """One supernode's backward-substitution step on the permuted RHS *y*.

    Reads y at the supernode's own and ancestor rows (ancestor rows must
    already hold final values) and writes only its own pivot rows — which
    is why the threads backend can run independent subtrees concurrently
    with no synchronization on *y* at all.
    """
    sym = factor.sym
    rows = sym.sn_rows[s]
    w = sym.supernode_width(s)
    block = factor.blocks[s]
    panel = y.ndim == 2
    piv = y[rows[:w]].copy() if not panel else y[rows[:w]]
    if rows.size > w:
        l21t = block[w:, :].T
        if panel:
            xb = np.asfortranarray(y[rows[w:]])
            upd = np.empty((w, piv.shape[1]), dtype=y.dtype, order="F")
            for c in range(piv.shape[1]):
                np.dot(l21t, xb[:, c], out=upd[:, c])
            piv -= upd
        else:
            piv -= l21t @ y[rows[w:]]
    if factor.method == "ldlt":
        solve_unit_lower_transpose_outer_inplace(block[:w, :], piv)
    else:
        solve_lower_transpose_outer_inplace(block[:w, :], piv)
    y[rows[:w]] = piv


def forward_sweep(factor: NumericFactor, y: np.ndarray) -> None:
    """In-place forward substitution ``y <- L^{-1} y`` in permuted order.

    *y* is a single vector ``(n,)`` or a panel ``(n, k)``.
    """
    sym = factor.sym
    for s in range(sym.n_supernodes):
        upd = forward_front(factor, s, y)
        if upd is not None:
            rows = sym.sn_rows[s]
            w = sym.supernode_width(s)
            y[rows[w:]] -= upd


def backward_sweep(factor: NumericFactor, y: np.ndarray) -> None:
    """In-place backward substitution ``y <- L^{-T} y`` in permuted order.

    *y* is a single vector ``(n,)`` or a panel ``(n, k)``.
    """
    for s in range(factor.sym.n_supernodes - 1, -1, -1):
        backward_front(factor, s, y)
