"""Sequential multifrontal numeric factorization and solve.

The reference engine: factors the permuted matrix described by a
:class:`repro.symbolic.SymbolicFactor` by walking the assembly tree in
postorder, assembling each supernode's frontal matrix, adding the children's
update matrices (extend-add), partially factoring the front, and pushing the
Schur complement onto the update stack.

The simulated-parallel engine (:mod:`repro.parallel`) performs the same
arithmetic distributed over ranks; its results are tested bit-comparable
against this one.
"""

from repro.mf.frontal import assemble_front, front_local_indices
from repro.mf.extend_add import extend_add
from repro.mf.numeric import NumericFactor, multifrontal_factor
from repro.mf.solve_phase import solve as factor_solve
from repro.mf.solve_phase import solve_many as factor_solve_many
from repro.mf.refine import (
    iterative_refinement,
    iterative_refinement_many,
    PanelRefinementResult,
    RefinementResult,
)
from repro.mf.accounting import FactorStats
from repro.mf.schur import schur_complement
from repro.mf.condest import condest

__all__ = [
    "assemble_front",
    "front_local_indices",
    "extend_add",
    "NumericFactor",
    "multifrontal_factor",
    "factor_solve",
    "factor_solve_many",
    "iterative_refinement",
    "iterative_refinement_many",
    "PanelRefinementResult",
    "RefinementResult",
    "FactorStats",
    "schur_complement",
    "condest",
]
