"""Frontal-matrix assembly.

A supernode's front is a dense symmetric matrix of order
``len(sn_rows[s])`` whose leading ``width`` columns correspond to the
supernode's own columns; only the lower triangle is meaningful. Assembly
scatters the supernode's columns of the permuted input matrix into the
front; children's update matrices are added by
:func:`repro.mf.extend_add.extend_add`.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.util.errors import ShapeError
from repro.util.validation import VALUE_DTYPE


def front_local_indices(front_rows: np.ndarray, global_rows: np.ndarray) -> np.ndarray:
    """Positions of *global_rows* inside the sorted *front_rows*.

    Every global row must be present; raises otherwise (that would be a
    symbolic-analysis bug, not a user error — but fail loudly either way).
    """
    pos = np.searchsorted(front_rows, global_rows)
    if np.any(pos >= front_rows.size) or np.any(
        front_rows[np.minimum(pos, front_rows.size - 1)] != global_rows
    ):
        missing = global_rows[
            (pos >= front_rows.size)
            | (front_rows[np.minimum(pos, front_rows.size - 1)] != global_rows)
        ]
        raise ShapeError(f"rows {missing[:5]} not present in front structure")
    return pos


def assemble_front(
    permuted_lower: CSCMatrix,
    rows: np.ndarray,
    first_col: int,
    width: int,
    dtype: np.dtype = VALUE_DTYPE,
) -> np.ndarray:
    """Allocate and fill the front of a supernode from the input matrix.

    Parameters
    ----------
    permuted_lower
        Lower triangle of the permuted matrix (the ``permuted_lower`` of a
        SymbolicFactor).
    rows
        The supernode's sorted global row structure (``sn_rows[s]``);
        its first *width* entries are the supernode's own columns.
    first_col
        Global index of the supernode's first column.
    width
        Number of pivot columns.
    dtype
        Working dtype of the front (fp32 for mixed-precision fronts; the
        always-fp64 input entries are rounded once, here, at assembly).

    Returns the m×m front with A's entries scattered into the leading
    *width* columns of its lower triangle and zeros elsewhere.
    """
    m = rows.size
    front = np.zeros((m, m), dtype=dtype)
    for k in range(width):
        j = first_col + k
        a_rows, a_vals = permuted_lower.col(j)
        keep = a_rows >= j
        a_rows, a_vals = a_rows[keep], a_vals[keep]
        local = front_local_indices(rows, a_rows)
        front[local, k] = a_vals
    return front
