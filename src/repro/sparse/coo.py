"""Coordinate (triplet) sparse format.

COO is the assembly format: generators and file readers emit (row, col, val)
triplets, possibly with duplicates, which :meth:`COOMatrix.sum_duplicates`
folds together before conversion to CSR/CSC.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.util.validation import (
    as_float_array,
    as_index_array,
    check_index_array,
)
from repro.util.errors import ShapeError


class COOMatrix:
    """Sparse matrix in coordinate format.

    Parameters
    ----------
    shape
        ``(nrows, ncols)``.
    row, col
        Integer arrays of equal length with the coordinates of each entry.
    data
        Float array of values, same length as ``row``.

    Duplicate coordinates are allowed and represent summed contributions
    (finite-element assembly semantics).
    """

    __slots__ = ("shape", "row", "col", "data")

    def __init__(
        self,
        shape: Sequence[int],
        row: ArrayLike,
        col: ArrayLike,
        data: ArrayLike,
    ) -> None:
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ShapeError(f"invalid shape {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.row = as_index_array(row, "row")
        self.col = as_index_array(col, "col")
        self.data = as_float_array(data, "data")
        if not (self.row.shape == self.col.shape == self.data.shape):
            raise ShapeError(
                "row, col, data must have identical 1-D shapes; got "
                f"{self.row.shape}, {self.col.shape}, {self.data.shape}"
            )
        if self.row.ndim != 1:
            raise ShapeError("row, col, data must be 1-D")
        check_index_array(self.row, self.shape[0], "row")
        check_index_array(self.col, self.shape[1], "col")

    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return int(self.data.size)

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.empty(0, dtype=np.int64)
        return cls(shape, z, z, np.empty(0))

    @classmethod
    def from_dense(cls, dense: ArrayLike) -> "COOMatrix":
        """Build from a dense array, keeping exact nonzeros."""
        d = np.asarray(dense, dtype=np.float64)
        if d.ndim != 2:
            raise ShapeError("dense input must be 2-D")
        r, c = np.nonzero(d)
        return cls(d.shape, r, c, d[r, c])

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (duplicates summed)."""
        out = np.zeros(self.shape)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def sum_duplicates(self) -> "COOMatrix":
        """Return a new COOMatrix with duplicate coordinates summed and
        entries sorted by (row, col)."""
        if self.nnz == 0:
            return COOMatrix.empty(self.shape)
        key = self.row * self.shape[1] + self.col
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        uniq_mask = np.empty(key_sorted.size, dtype=bool)
        uniq_mask[0] = True
        np.not_equal(key_sorted[1:], key_sorted[:-1], out=uniq_mask[1:])
        group_ids = np.cumsum(uniq_mask) - 1
        data = np.zeros(int(group_ids[-1]) + 1)
        np.add.at(data, group_ids, self.data[order])
        first = order[uniq_mask]
        return COOMatrix(self.shape, self.row[first], self.col[first], data)

    def prune(self, tol: float = 0.0) -> "COOMatrix":
        """Drop entries with ``abs(value) <= tol`` (after duplicate summing)."""
        m = self.sum_duplicates()
        keep = np.abs(m.data) > tol
        return COOMatrix(m.shape, m.row[keep], m.col[keep], m.data[keep])

    def transpose(self) -> "COOMatrix":
        """Structural transpose (no copy of value array contents is avoided)."""
        return COOMatrix((self.shape[1], self.shape[0]), self.col, self.row, self.data)

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
