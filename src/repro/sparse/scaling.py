"""Symmetric equilibration (diagonal scaling).

Pre-scaling ``A → D^{-1/2} A D^{-1/2}`` with ``D = diag(A)`` maps every
diagonal entry to 1 and typically shrinks the condition number of badly
scaled SPD systems by orders of magnitude — the standard cheap
preprocessing direct solvers apply before factorization.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.util.errors import ShapeError


def symmetric_equilibrate(lower: CSCMatrix) -> tuple[CSCMatrix, np.ndarray]:
    """Scale a symmetric matrix (lower storage) to unit diagonal.

    Returns ``(scaled_lower, d)`` with ``scaled = D^{-1/2} A D^{-1/2}``,
    ``d = diag(A)``. Solve the original system via
    :func:`unscale_solution`. Requires a strictly positive diagonal.
    """
    n = lower.shape[0]
    if lower.shape[0] != lower.shape[1]:
        raise ShapeError("equilibration requires a square lower triangle")
    d = lower.diagonal()
    if np.any(d <= 0):
        bad = int(np.argmin(d))
        raise ShapeError(
            f"non-positive diagonal entry {d[bad]:.3g} at index {bad}; "
            "symmetric equilibration requires a positive diagonal"
        )
    s = 1.0 / np.sqrt(d)
    col_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(lower.indptr))
    new_data = lower.data * s[lower.indices] * s[col_of]
    return (
        CSCMatrix(lower.shape, lower.indptr, lower.indices, new_data, _skip_check=True),
        d,
    )


def scale_rhs(b: np.ndarray, d: np.ndarray) -> np.ndarray:
    """RHS of the scaled system: ``b̂ = D^{-1/2} b``."""
    return np.asarray(b) / np.sqrt(d)


def unscale_solution(x_scaled: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Recover x of the original system: ``x = D^{-1/2} x̂``."""
    return np.asarray(x_scaled) / np.sqrt(d)
