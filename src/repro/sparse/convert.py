"""Conversions between sparse formats.

All conversions are stable counting-sort passes (no comparison sorts on the
hot path) and produce canonical output: sorted indices, duplicates summed.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Convert COO to canonical CSR (duplicates summed, sorted columns)."""
    m = coo.sum_duplicates()  # sorted by (row, col) with unique coordinates
    n_rows = m.shape[0]
    counts = np.bincount(m.row, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(m.shape, indptr, m.col, m.data, _skip_check=True)


def coo_to_csc(coo: COOMatrix) -> CSCMatrix:
    """Convert COO to canonical CSC (duplicates summed, sorted rows)."""
    return csr_to_csc(coo_to_csr(coo))


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    rows = np.repeat(
        np.arange(csr.shape[0], dtype=np.int64), np.diff(csr.indptr)
    )
    return COOMatrix(csr.shape, rows, csr.indices, csr.data)


def csc_to_coo(csc: CSCMatrix) -> COOMatrix:
    cols = np.repeat(
        np.arange(csc.shape[1], dtype=np.int64), np.diff(csc.indptr)
    )
    return COOMatrix(csc.shape, csc.indices, cols, csc.data)


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """Transpose-copy CSR into CSC of the *same* matrix (counting sort)."""
    n_rows, n_cols = csr.shape
    nnz = csr.nnz
    col_counts = np.bincount(csr.indices, minlength=n_cols)
    indptr = np.zeros(n_cols + 1, dtype=np.int64)
    np.cumsum(col_counts, out=indptr[1:])
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz)
    next_slot = indptr[:-1].copy()
    row_of = np.repeat(np.arange(n_rows, dtype=np.int64), np.diff(csr.indptr))
    # Stable scatter: iterate entries in CSR order, which is sorted by
    # (row, col); within each destination column the rows therefore land in
    # increasing order.
    order = np.argsort(csr.indices, kind="stable")
    pos = indptr[:-1][csr.indices[order]] + _rank_within_group(csr.indices[order])
    indices[pos] = row_of[order]
    data[pos] = csr.data[order]
    del next_slot
    return CSCMatrix(csr.shape, indptr, indices, data, _skip_check=True)


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """Transpose-copy CSC into CSR of the *same* matrix."""
    n_rows, n_cols = csc.shape
    nnz = csc.nnz
    row_counts = np.bincount(csc.indices, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(row_counts, out=indptr[1:])
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz)
    col_of = np.repeat(np.arange(n_cols, dtype=np.int64), np.diff(csc.indptr))
    order = np.argsort(csc.indices, kind="stable")
    pos = indptr[:-1][csc.indices[order]] + _rank_within_group(csc.indices[order])
    indices[pos] = col_of[order]
    data[pos] = csc.data[order]
    return CSRMatrix(csc.shape, indptr, indices, data, _skip_check=True)


def _rank_within_group(sorted_keys: np.ndarray) -> np.ndarray:
    """For a sorted key array, the 0-based rank of each element within its
    run of equal keys. Vectorized: rank[i] = i - first_index_of_run(i)."""
    n = sorted_keys.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)
    run_start = np.empty(n, dtype=np.int64)
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_run[1:])
    run_start[new_run] = idx[new_run]
    # forward-fill run starts
    np.maximum.accumulate(np.where(new_run, idx, 0), out=run_start)
    return idx - run_start
