"""Symmetric permutation of sparse matrices.

The ordering phase produces a permutation ``perm`` (``perm[k]`` = original
index eliminated at step k); the factorization operates on ``P A P^T`` where
``P`` maps original index ``perm[k]`` to new index ``k``.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import coo_to_csc, csc_to_coo
from repro.util.validation import check_permutation


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[perm[k]] = k``."""
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=perm.dtype)
    return inv


def apply_permutation_csc(
    a: CSCMatrix, row_perm: ArrayLike, col_perm: ArrayLike
) -> CSCMatrix:
    """General permuted copy ``B = A[row_perm_inv_map, col_perm_inv_map]``
    such that ``B[i, j] = A[row_perm[i], col_perm[j]]``."""
    n_rows, n_cols = a.shape
    rp = check_permutation(row_perm, n_rows, "row_perm")
    cp = check_permutation(col_perm, n_cols, "col_perm")
    rinv = invert_permutation(rp)
    cinv = invert_permutation(cp)
    coo = csc_to_coo(a)
    return coo_to_csc(
        COOMatrix(a.shape, rinv[coo.row], cinv[coo.col], coo.data)
    )


def permute_symmetric_lower(lower: CSCMatrix, perm: ArrayLike) -> CSCMatrix:
    """Symmetric permutation of a symmetric matrix stored as its lower
    triangle.

    Given the lower triangle of A and an elimination order ``perm``, return
    the lower triangle of ``P A P^T`` (entry (i, j) of the result is
    ``A[perm[i], perm[j]]``), with entries flipped back below the diagonal
    wherever the permutation moved them above it.
    """
    n = lower.shape[0]
    p = check_permutation(perm, n, "perm")
    inv = invert_permutation(p)
    coo = csc_to_coo(lower)
    new_r = inv[coo.row]
    new_c = inv[coo.col]
    flip = new_r < new_c
    r = np.where(flip, new_c, new_r)
    c = np.where(flip, new_r, new_c)
    return coo_to_csc(COOMatrix((n, n), r, c, coo.data))


def permute_vector(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """``y[k] = x[perm[k]]`` — carry a right-hand side into permuted order."""
    return np.asarray(x)[perm]


def unpermute_vector(y: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Inverse of :func:`permute_vector`: ``x[perm[k]] = y[k]``."""
    x = np.empty_like(np.asarray(y))
    x[perm] = y
    return x
