"""Compressed sparse row format.

CSR is the traversal format: the adjacency-graph machinery in
:mod:`repro.graph` walks row slices, and matrix–vector products for the
iterative-refinement path use it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.util.errors import ShapeError
from repro.util.validation import (
    as_float_array,
    as_index_array,
    check_index_array,
    runtime_checks_enabled,
)


class CSRMatrix:
    """Sparse matrix in compressed sparse row format.

    Invariants (validated at construction):

    * ``indptr`` has length ``nrows + 1``, starts at 0, is non-decreasing;
    * ``indices[indptr[i]:indptr[i+1]]`` are the column indices of row ``i``,
      strictly increasing within each row;
    * ``data`` parallels ``indices``.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Sequence[int],
        indptr: ArrayLike,
        indices: ArrayLike,
        data: ArrayLike,
        *,
        _skip_check: bool = False,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = as_index_array(indptr, "indptr")
        self.indices = as_index_array(indices, "indices")
        self.data = as_float_array(data, "data")
        # _skip_check is for trusted internal constructions; under
        # REPRO_CHECK=1 the debug sanitizer re-validates those too.
        if not _skip_check or runtime_checks_enabled():
            self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.shape != (n_rows + 1,):
            raise ShapeError(
                f"indptr must have shape ({n_rows + 1},); got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise ShapeError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise ShapeError("indptr[-1] must equal len(indices)")
        if self.indices.size != self.data.size:
            raise ShapeError("indices and data must have equal length")
        check_index_array(self.indices, n_cols, "indices")
        # strictly increasing columns within each row
        for i in range(n_rows):
            s, e = self.indptr[i], self.indptr[i + 1]
            if e - s > 1 and np.any(np.diff(self.indices[s:e]) <= 0):
                raise ShapeError(f"row {i} has unsorted or duplicate column indices")

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (column indices, values) of row *i*."""
        s, e = self.indptr[i], self.indptr[i + 1]
        return self.indices[s:e], self.data[s:e]

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for i in range(self.shape[0]):
            cols, vals = self.row(i)
            out[i, cols] = vals
        return out

    @classmethod
    def from_dense(cls, dense: ArrayLike) -> "CSRMatrix":
        from repro.sparse.coo import COOMatrix
        from repro.sparse.convert import coo_to_csr

        return coo_to_csr(COOMatrix.from_dense(dense))

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            _skip_check=True,
        )

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
