"""Sparse matrix operations: matvec, transpose, triangle extraction,
symmetrization.

These feed three consumers: the graph layer (structural symmetrization),
the factorization layer (lower-triangle extraction), and the verification /
iterative-refinement path (symmetric matvec from the lower triangle only).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import csc_to_csr, csc_to_coo, coo_to_csc
from repro.util.errors import ShapeError
from repro.util.validation import as_float_array


def matvec_csr(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for CSR *a*."""
    x = as_float_array(x, "x")
    if x.shape != (a.shape[1],):
        raise ShapeError(f"x must have shape ({a.shape[1]},); got {x.shape}")
    # Gather-multiply then segment-sum via reduceat; empty rows handled by
    # masking (reduceat misbehaves on empty segments).
    if a.nnz == 0:
        return np.zeros(a.shape[0])
    prods = a.data * x[a.indices]
    y = np.zeros(a.shape[0])
    row_nnz = np.diff(a.indptr)
    nonempty = row_nnz > 0
    starts = a.indptr[:-1][nonempty]
    y[nonempty] = np.add.reduceat(prods, starts)
    return y


def matvec_csc(a: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for CSC *a* (scatter formulation)."""
    x = as_float_array(x, "x")
    if x.shape != (a.shape[1],):
        raise ShapeError(f"x must have shape ({a.shape[1]},); got {x.shape}")
    y = np.zeros(a.shape[0])
    if a.nnz == 0:
        return y
    col_of = np.repeat(np.arange(a.shape[1], dtype=np.int64), np.diff(a.indptr))
    np.add.at(y, a.indices, a.data * x[col_of])
    return y


def transpose_csr(a: CSRMatrix) -> CSRMatrix:
    """Transpose of a CSR matrix, returned in CSR."""
    as_csc = CSCMatrix(
        (a.shape[1], a.shape[0]), a.indptr, a.indices, a.data, _skip_check=True
    )
    return csc_to_csr(as_csc)


def tril(a: CSCMatrix, k: int = 0) -> CSCMatrix:
    """Lower triangle of *a*: entries with ``row >= col - k``."""
    return _triangle(a, lower=True, k=k)


def triu(a: CSCMatrix, k: int = 0) -> CSCMatrix:
    """Upper triangle of *a*: entries with ``col - row >= k`` (numpy
    ``triu`` convention)."""
    return _triangle(a, lower=False, k=k)


def _triangle(a: CSCMatrix, lower: bool, k: int) -> CSCMatrix:
    coo = csc_to_coo(a)
    if lower:
        keep = coo.col - coo.row <= k
    else:
        keep = coo.col - coo.row >= k
    pruned = COOMatrix(a.shape, coo.row[keep], coo.col[keep], coo.data[keep])
    return coo_to_csc(pruned)


def is_structurally_symmetric(a: CSCMatrix) -> bool:
    """True when the sparsity pattern of *a* equals that of its transpose."""
    if a.shape[0] != a.shape[1]:
        return False
    t = csc_to_csr(a)  # CSR of A; reinterpret as CSC of A^T
    at = CSCMatrix(a.shape, t.indptr, t.indices, t.data, _skip_check=True)
    return (
        np.array_equal(a.indptr, at.indptr)
        and np.array_equal(a.indices, at.indices)
    )


def symmetrize(a: CSCMatrix, mode: str = "average") -> CSCMatrix:
    """Return a numerically symmetric matrix built from *a*.

    ``mode="average"`` gives ``(A + A^T) / 2``; ``mode="pattern"`` gives the
    union pattern with values from A where present, mirrored otherwise.
    """
    if a.shape[0] != a.shape[1]:
        raise ShapeError("symmetrize requires a square matrix")
    coo = csc_to_coo(a)
    if mode == "average":
        row = np.concatenate([coo.row, coo.col])
        col = np.concatenate([coo.col, coo.row])
        dat = np.concatenate([coo.data, coo.data]) * 0.5
        return coo_to_csc(COOMatrix(a.shape, row, col, dat))
    if mode == "pattern":
        # Keep A's values; add transposed entries only where A has none.
        dense_keys = set(zip(coo.row.tolist(), coo.col.tolist()))
        extra_r, extra_c, extra_v = [], [], []
        for r, c, v in zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist()):
            if (c, r) not in dense_keys:
                extra_r.append(c)
                extra_c.append(r)
                extra_v.append(v)
        row = np.concatenate([coo.row, np.asarray(extra_r, dtype=np.int64)])
        col = np.concatenate([coo.col, np.asarray(extra_c, dtype=np.int64)])
        dat = np.concatenate([coo.data, np.asarray(extra_v)])
        return coo_to_csc(COOMatrix(a.shape, row, col, dat))
    raise ValueError(f"unknown symmetrize mode {mode!r}")


def full_symmetric_from_lower(lower: CSCMatrix) -> CSCMatrix:
    """Expand a lower-triangular CSC (diagonal included) to the full
    symmetric matrix ``L + L^T - diag(L)``."""
    coo = csc_to_coo(lower)
    off = coo.row != coo.col
    row = np.concatenate([coo.row, coo.col[off]])
    col = np.concatenate([coo.col, coo.row[off]])
    dat = np.concatenate([coo.data, coo.data[off]])
    return coo_to_csc(COOMatrix(lower.shape, row, col, dat))


def sym_matvec_lower(lower: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` where A is symmetric and only its lower triangle
    (diagonal included) is stored.

    Used by iterative refinement and by residual checks without ever
    materializing the full matrix.
    """
    x = as_float_array(x, "x")
    n = lower.shape[0]
    if lower.shape[0] != lower.shape[1]:
        raise ShapeError("sym_matvec_lower requires a square lower triangle")
    if x.shape != (n,):
        raise ShapeError(f"x must have shape ({n},); got {x.shape}")
    y = np.zeros(n)
    if lower.nnz == 0:
        return y
    col_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(lower.indptr))
    rows = lower.indices
    vals = lower.data
    # Lower-triangle contribution: y[r] += A[r,c] * x[c]
    np.add.at(y, rows, vals * x[col_of])
    # Mirrored strict upper part: y[c] += A[r,c] * x[r] for r != c
    off = rows != col_of
    np.add.at(y, col_of[off], vals[off] * x[rows[off]])
    return y


def sym_norm_inf_lower(lower: CSCMatrix) -> float:
    """``‖A‖∞`` (max absolute row sum) of a symmetric matrix given only its
    lower triangle (diagonal included).

    Feeds the normwise backward-error denominator
    ``‖A‖∞·‖x‖∞ + ‖b‖∞`` used by iterative refinement's stopping test.
    """
    n = lower.shape[0]
    if lower.shape[0] != lower.shape[1]:
        raise ShapeError("sym_norm_inf_lower requires a square lower triangle")
    if lower.nnz == 0:
        return 0.0
    row_sums = np.zeros(n)
    col_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(lower.indptr))
    rows = lower.indices
    absv = np.abs(lower.data)
    np.add.at(row_sums, rows, absv)
    off = rows != col_of
    np.add.at(row_sums, col_of[off], absv[off])
    return float(row_sums.max())


def sym_matvec_lower_many(lower: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """``Y = A @ X`` for a panel ``X`` of shape ``(n, k)``, where A is
    symmetric with only its lower triangle stored.

    The blocked counterpart of :func:`sym_matvec_lower`: one scatter pass
    covers every column. The accumulation order per column equals the
    single-vector version's (``np.add.at`` walks the same entry order and
    each add is elementwise), so column *j* of the result is bitwise
    identical to ``sym_matvec_lower(lower, x[:, j])`` — the guarantee the
    blocked residual checks and blocked iterative refinement build on.
    """
    x = as_float_array(x, "x")
    if x.ndim == 1:
        return sym_matvec_lower(lower, x)
    n = lower.shape[0]
    if lower.shape[0] != lower.shape[1]:
        raise ShapeError("sym_matvec_lower_many requires a square lower triangle")
    if x.ndim != 2 or x.shape[0] != n:
        raise ShapeError(f"x must have shape ({n}, k); got {x.shape}")
    y = np.zeros((n, x.shape[1]))
    if lower.nnz == 0:
        return y
    col_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(lower.indptr))
    rows = lower.indices
    vals = lower.data
    np.add.at(y, rows, vals[:, None] * x[col_of])
    off = rows != col_of
    np.add.at(y, col_of[off], vals[off, None] * x[rows[off]])
    return y
