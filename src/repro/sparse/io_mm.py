"""Matrix Market I/O.

Supports the ``matrix coordinate real {general,symmetric}`` and
``matrix coordinate pattern {general,symmetric}`` headers, which cover the
test-matrix collections this paper family draws from (SuiteSparse /
UF collection exports). Pattern matrices get unit values.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Union

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.util.errors import ShapeError


def read_matrix_market(
    path_or_file: Union[str, Path, IO[str]],
) -> tuple[COOMatrix, dict]:
    """Read a Matrix Market coordinate file.

    Returns ``(coo, info)`` where ``info`` carries the header fields
    (``symmetry``, ``field``). Symmetric files are returned with *both*
    triangles populated (expanded), matching the convention of the rest of
    the library's "full matrix" consumers; use :func:`repro.sparse.ops.tril`
    to get the factorization input.
    """
    close = False
    if isinstance(path_or_file, (str, Path)):
        fh = open(path_or_file, "r", encoding="ascii")
        close = True
    else:
        fh = path_or_file
    try:
        header = fh.readline().strip().split()
        if len(header) != 5 or header[0] != "%%MatrixMarket":
            raise ShapeError(f"not a MatrixMarket file (header: {header})")
        _, obj, fmt, field, symmetry = (tok.lower() for tok in header)
        if obj != "matrix" or fmt != "coordinate":
            raise ShapeError(f"unsupported MatrixMarket object/format {obj}/{fmt}")
        if field not in ("real", "integer", "pattern"):
            raise ShapeError(f"unsupported MatrixMarket field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ShapeError(f"unsupported MatrixMarket symmetry {symmetry!r}")

        lineno = 1  # the header line just consumed

        def next_entry_line(what: str) -> tuple[list[str], int]:
            """Next non-blank, non-comment line's tokens (+ line number).

            Raises :class:`ShapeError` naming the line where the file ends
            instead of silently under-filling the entry arrays.
            """
            nonlocal lineno
            while True:
                line = fh.readline()
                lineno += 1
                if not line:
                    raise ShapeError(
                        f"truncated MatrixMarket file: expected {what} "
                        f"at line {lineno}, got end of file"
                    )
                parts = line.split()
                if parts and not parts[0].startswith("%"):
                    return parts, lineno

        parts, at = next_entry_line("size line")
        if len(parts) != 3:
            raise ShapeError(
                f"line {at}: size line must have 3 tokens "
                f"(rows cols nnz); got {len(parts)}: {parts}"
            )
        try:
            n_rows, n_cols, nnz = (int(tok) for tok in parts)
        except ValueError:
            raise ShapeError(
                f"line {at}: size line tokens must be integers; got {parts}"
            ) from None
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz)
        want = 2 if field == "pattern" else 3
        for k in range(nnz):
            parts, at = next_entry_line(f"entry {k + 1} of {nnz}")
            if len(parts) < want:
                raise ShapeError(
                    f"line {at}: coordinate entry needs {want} tokens "
                    f"for field {field!r}; got {len(parts)}: {parts}"
                )
            try:
                rows[k] = int(parts[0]) - 1
                cols[k] = int(parts[1]) - 1
                vals[k] = 1.0 if field == "pattern" else float(parts[2])
            except ValueError:
                raise ShapeError(
                    f"line {at}: malformed coordinate entry {parts}"
                ) from None
        if symmetry == "symmetric":
            off = rows != cols
            rows = np.concatenate([rows, cols[off]])
            cols = np.concatenate([cols, rows[: nnz][off]])
            vals = np.concatenate([vals, vals[:nnz][off]])
        coo = COOMatrix((n_rows, n_cols), rows, cols, vals)
        return coo, {"symmetry": symmetry, "field": field}
    finally:
        if close:
            fh.close()


def write_matrix_market(
    path_or_file: Union[str, Path, IO[str]],
    coo: COOMatrix,
    symmetric: bool = False,
) -> None:
    """Write *coo* in Matrix Market coordinate real format.

    With ``symmetric=True`` only the lower triangle is emitted and the
    header declares ``symmetric`` (entries above the diagonal are rejected).
    """
    m = coo.sum_duplicates()
    if symmetric and np.any(m.row < m.col):
        raise ShapeError("symmetric write requires a lower-triangular COO")
    close = False
    if isinstance(path_or_file, (str, Path)):
        fh = open(path_or_file, "w", encoding="ascii")
        close = True
    else:
        fh = path_or_file
    try:
        sym = "symmetric" if symmetric else "general"
        fh.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        fh.write(f"{m.shape[0]} {m.shape[1]} {m.nnz}\n")
        for r, c, v in zip(m.row.tolist(), m.col.tolist(), m.data.tolist()):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
    finally:
        if close:
            fh.close()


def matrix_market_roundtrip(coo: COOMatrix) -> COOMatrix:
    """Serialize then parse *coo* in-memory; used in tests."""
    buf = io.StringIO()
    write_matrix_market(buf, coo)
    buf.seek(0)
    out, _ = read_matrix_market(buf)
    return out
