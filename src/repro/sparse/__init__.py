"""From-scratch sparse matrix kernel.

Formats
-------
:class:`COOMatrix`   triplet format — assembly and I/O.
:class:`CSRMatrix`   compressed sparse row — graph traversal, matvec.
:class:`CSCMatrix`   compressed sparse column — factorization input.

All factorization code in :mod:`repro.symbolic` / :mod:`repro.mf` consumes a
:class:`CSCMatrix` holding the *lower triangle* (diagonal included) of a
symmetric matrix; :func:`repro.sparse.ops.symmetrize` and
:func:`repro.sparse.ops.tril` produce that form.

scipy is deliberately not used here — it appears only in the test suite as an
independent oracle.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import (
    coo_to_csr,
    coo_to_csc,
    csr_to_csc,
    csc_to_csr,
    csr_to_coo,
    csc_to_coo,
)
from repro.sparse.ops import (
    matvec_csr,
    matvec_csc,
    transpose_csr,
    tril,
    triu,
    symmetrize,
    full_symmetric_from_lower,
    is_structurally_symmetric,
    sym_matvec_lower,
    sym_matvec_lower_many,
)
from repro.sparse.permute import permute_symmetric_lower, apply_permutation_csc
from repro.sparse.io_mm import read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_csc",
    "csc_to_csr",
    "csr_to_coo",
    "csc_to_coo",
    "matvec_csr",
    "matvec_csc",
    "transpose_csr",
    "tril",
    "triu",
    "symmetrize",
    "full_symmetric_from_lower",
    "is_structurally_symmetric",
    "sym_matvec_lower",
    "sym_matvec_lower_many",
    "permute_symmetric_lower",
    "apply_permutation_csc",
    "read_matrix_market",
    "write_matrix_market",
]
