"""Compressed sparse column format.

CSC is the factorization format: symbolic analysis and the multifrontal
numeric phase walk columns of the lower triangle of A.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike

from repro.util.errors import ShapeError
from repro.util.validation import (
    as_float_array,
    as_index_array,
    check_index_array,
    runtime_checks_enabled,
)


class CSCMatrix:
    """Sparse matrix in compressed sparse column format.

    Invariants mirror :class:`repro.sparse.csr.CSRMatrix` with rows and
    columns exchanged: ``indices[indptr[j]:indptr[j+1]]`` holds the strictly
    increasing row indices of column ``j``.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: Sequence[int],
        indptr: ArrayLike,
        indices: ArrayLike,
        data: ArrayLike,
        *,
        _skip_check: bool = False,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = as_index_array(indptr, "indptr")
        self.indices = as_index_array(indices, "indices")
        self.data = as_float_array(data, "data")
        # _skip_check is for trusted internal constructions; under
        # REPRO_CHECK=1 the debug sanitizer re-validates those too.
        if not _skip_check or runtime_checks_enabled():
            self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.shape != (n_cols + 1,):
            raise ShapeError(
                f"indptr must have shape ({n_cols + 1},); got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise ShapeError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise ShapeError("indptr[-1] must equal len(indices)")
        if self.indices.size != self.data.size:
            raise ShapeError("indices and data must have equal length")
        check_index_array(self.indices, n_rows, "indices")
        for j in range(n_cols):
            s, e = self.indptr[j], self.indptr[j + 1]
            if e - s > 1 and np.any(np.diff(self.indices[s:e]) <= 0):
                raise ShapeError(f"column {j} has unsorted or duplicate row indices")

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (row indices, values) of column *j*."""
        s, e = self.indptr[j], self.indptr[j + 1]
        return self.indices[s:e], self.data[s:e]

    def col_degrees(self) -> np.ndarray:
        """Number of stored entries per column."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for j in range(self.shape[1]):
            rows, vals = self.col(j)
            out[rows, j] = vals
        return out

    @classmethod
    def from_dense(cls, dense: ArrayLike) -> "CSCMatrix":
        from repro.sparse.coo import COOMatrix
        from repro.sparse.convert import coo_to_csc

        return coo_to_csc(COOMatrix.from_dense(dense))

    def copy(self) -> "CSCMatrix":
        return CSCMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            _skip_check=True,
        )

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (zeros where no entry is stored)."""
        n = min(self.shape)
        d = np.zeros(n)
        for j in range(n):
            rows, vals = self.col(j)
            pos = np.searchsorted(rows, j)
            if pos < rows.size and rows[pos] == j:
                d[j] = vals[pos]
        return d

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
