"""repro — reproduction of "Sparse matrix factorization on massively
parallel computers" (SC 2009).

A from-scratch multifrontal sparse Cholesky/LDLᵀ solver with the
Gupta–Karypis–Kumar scalable parallel formulation (subtree-to-subcube
mapping, 2D block-cyclic front distribution), executed and timed on a
deterministic simulated message-passing machine.

Public entry points
-------------------
:class:`repro.core.SparseSolver`
    WSMP-style analyze / factor / solve API (sequential or simulated
    parallel).
:mod:`repro.gen`
    Problem generators (2D/3D meshes, elasticity-like operators, the
    scaled "paper suite").
:mod:`repro.machine`
    Machine models (Blue Gene/P-like, POWER5-cluster-like presets).
:mod:`repro.baselines`
    MUMPS-like and SuperLU_DIST-like comparison solvers.
"""

__version__ = "1.0.0"

__all__ = ["SparseSolver", "ParallelConfig", "SolveResult", "__version__"]


def __getattr__(name):
    # Lazy re-export so that `import repro.sparse` does not pull in the whole
    # solver stack (and to keep subpackage import order acyclic).
    if name in ("SparseSolver", "ParallelConfig", "SolveResult"):
        from repro import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
