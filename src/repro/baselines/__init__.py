"""Comparison solvers.

The paper compares WSMP's factorization against contemporaneous distributed
solvers. Under the simulated machine the architectural difference is the
front-distribution policy, so the baselines are the same engine with the
policy switched (see DESIGN.md "Substitutions" for why this isolates the
paper's claim):

* ``wsmp-like``    — subtree-to-subcube mapping + 2D block-cyclic fronts
  (the paper's solver; the reference configuration);
* ``mumps-like``   — subtree mapping + 1D row-cyclic fronts (MUMPS's
  coarser front parallelism);
* ``superlu-like`` — no tree-aware mapping: a static grid for large fronts,
  round-robin small fronts (SuperLU_DIST's static-grid character);
* ``sequential``   — the p=1 reference.
"""

from repro.baselines.registry import (
    BaselineSpec,
    BASELINES,
    get_baseline,
    simulate_baseline,
)
from repro.baselines.sequential import sequential_reference_time

__all__ = [
    "BaselineSpec",
    "BASELINES",
    "get_baseline",
    "simulate_baseline",
    "sequential_reference_time",
]
