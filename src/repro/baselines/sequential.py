"""The sequential reference.

Speedups and efficiencies in every benchmark are measured against the
simulated single-rank execution of the same engine on the same machine
model — the standard strong-scaling baseline.
"""

from __future__ import annotations

from repro.machine.model import MachineModel
from repro.parallel.driver import simulate_factorization
from repro.parallel.plan import PlanOptions
from repro.symbolic.analyze import SymbolicFactor


def sequential_reference_time(
    sym: SymbolicFactor,
    machine: MachineModel,
    nb: int = 48,
    method: str = "cholesky",
) -> float:
    """Simulated single-rank factorization time (the T(1) of speedup
    curves)."""
    res = simulate_factorization(
        sym, 1, machine, PlanOptions(nb=nb), method=method
    )
    return res.makespan
