"""Baseline registry: named solver configurations over the shared engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.model import MachineModel
from repro.parallel.driver import ParallelFactorResult, simulate_factorization
from repro.parallel.plan import PlanOptions
from repro.symbolic.analyze import SymbolicFactor
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class BaselineSpec:
    """One named solver configuration."""

    name: str
    policy: str
    description: str


BASELINES: dict[str, BaselineSpec] = {
    "wsmp-like": BaselineSpec(
        "wsmp-like",
        "2d",
        "subtree-to-subcube mapping, 2D block-cyclic fronts (the paper)",
    ),
    "mumps-like": BaselineSpec(
        "mumps-like",
        "1d",
        "subtree mapping, 1D row-cyclic fronts (MUMPS-style)",
    ),
    "superlu-like": BaselineSpec(
        "superlu-like",
        "static",
        "static grid, no subtree locality (SuperLU_DIST-style)",
    ),
}


def get_baseline(name: str) -> BaselineSpec:
    try:
        return BASELINES[name]
    except KeyError:
        raise ShapeError(
            f"unknown baseline {name!r}; known: {sorted(BASELINES)}"
        ) from None


def simulate_baseline(
    name: str,
    sym: SymbolicFactor,
    n_ranks: int,
    machine: MachineModel,
    nb: int = 48,
    method: str = "cholesky",
    threads_per_rank: int = 1,
) -> ParallelFactorResult:
    """Run a named baseline's factorization on the simulated machine."""
    spec = get_baseline(name)
    opts = PlanOptions(nb=nb, policy=spec.policy)
    return simulate_factorization(
        sym,
        n_ranks,
        machine,
        opts,
        method=method,
        threads_per_rank=threads_per_rank,
    )
