"""Ordering-quality metrics: fill-in and factorization operation count.

Benchmark T2 reports these numbers per (matrix, ordering) pair — the same
comparison the paper family uses to justify nested dissection for parallel
factorization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.permute import permute_symmetric_lower
from repro.symbolic.etree import etree
from repro.symbolic.postorder import postorder, relabel_parent
from repro.symbolic.symbolic_chol import symbolic_cholesky
from repro.symbolic.colcounts import factor_flops_from_counts


@dataclass(frozen=True)
class OrderingQuality:
    """Quality figures of one ordering on one matrix."""

    n: int
    nnz_a: int
    #: nnz(L), diagonal included
    nnz_factor: int
    #: fill ratio nnz(L) / nnz(tril(A))
    fill_ratio: float
    #: factor operation count
    factor_flops: int
    #: height of the elimination tree (parallelism proxy: shorter is better)
    etree_height: int


def ordering_quality(lower: CSCMatrix, perm: np.ndarray) -> OrderingQuality:
    """Evaluate *perm* on the symmetric matrix given by its lower triangle."""
    a1 = permute_symmetric_lower(lower, np.asarray(perm, dtype=np.int64))
    parent1 = etree(a1)
    post = postorder(parent1)
    parent = relabel_parent(parent1, post)
    a2 = permute_symmetric_lower(lower, np.asarray(perm, dtype=np.int64)[post])
    _, col_counts, nnz_factor = symbolic_cholesky(a2, parent)
    height = _tree_height(parent)
    return OrderingQuality(
        n=lower.shape[0],
        nnz_a=lower.nnz,
        nnz_factor=nnz_factor,
        fill_ratio=nnz_factor / max(lower.nnz, 1),
        factor_flops=factor_flops_from_counts(col_counts),
        etree_height=height,
    )


def _tree_height(parent: np.ndarray) -> int:
    """Height (max root-to-leaf node count) of a postordered forest."""
    n = parent.size
    if n == 0:
        return 0
    depth = np.ones(n, dtype=np.int64)
    # children have smaller indices: process ascending, push depth upward
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            depth[p] = max(depth[p], depth[j] + 1)
    return int(depth.max())
