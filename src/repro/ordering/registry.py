"""Name → ordering-function registry.

The solver config and the benchmark harness select orderings by name; this
module is the single source of truth for those names.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.ordering.natural import natural_order, reverse_order, random_order
from repro.ordering.rcm import rcm_order
from repro.ordering.amd import amd_order
from repro.ordering.compression import compressed_order
from repro.ordering.nested_dissection import NDOptions, nested_dissection_order
from repro.util.errors import OrderingError

OrderingFn = Callable[[AdjacencyGraph], np.ndarray]


def _nd_multilevel(g: AdjacencyGraph) -> np.ndarray:
    return nested_dissection_order(g, NDOptions(strategy="multilevel"))


def _nd_compressed(g: AdjacencyGraph) -> np.ndarray:
    return compressed_order(g, nested_dissection_order)


ORDERINGS: dict[str, OrderingFn] = {
    "natural": natural_order,
    "reverse": reverse_order,
    "random": random_order,
    "rcm": rcm_order,
    "amd": amd_order,
    "nd": nested_dissection_order,
    # multilevel (METIS-style) bisection inside ND
    "nd-ml": _nd_multilevel,
    # indistinguishable-vertex compression before ND (multi-dof problems)
    "nd-c": _nd_compressed,
}


def get_ordering(name: str) -> OrderingFn:
    """Look up an ordering function by registry name."""
    try:
        return ORDERINGS[name]
    except KeyError:
        raise OrderingError(
            f"unknown ordering {name!r}; known: {sorted(ORDERINGS)}"
        ) from None
