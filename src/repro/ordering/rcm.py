"""Reverse Cuthill–McKee ordering.

Bandwidth/profile-oriented: BFS from a pseudo-peripheral vertex, visiting
neighbours in increasing-degree order, then reverse. Not competitive with
ND/AMD on fill for 3D problems — which is exactly the contrast benchmark T2
reports — but cheap and predictable.
"""

from __future__ import annotations

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.graph.traversal import pseudo_peripheral_vertex


def rcm_order(g: AdjacencyGraph) -> np.ndarray:
    """RCM permutation: ``perm[k]`` = vertex eliminated at step ``k``.

    Handles disconnected graphs by restarting from a pseudo-peripheral
    vertex of each unvisited component.
    """
    n = g.n
    visited = np.zeros(n, dtype=bool)
    degs = g.degrees()
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for s in range(n):
        if visited[s]:
            continue
        start = pseudo_peripheral_vertex(g, s)
        if visited[start]:  # peripheral search stays in s's component, but be safe
            start = s
        visited[start] = True
        queue = [start]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            order[pos] = u
            pos += 1
            nbrs = g.neighbors(u)
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                fresh = fresh[np.argsort(degs[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(v) for v in fresh)
    assert pos == n
    return order[::-1].copy()
