"""Recursive nested dissection ordering.

The ordering underpinning the paper's scalable formulation: recursive graph
bisection produces balanced separator trees whose top separators become the
large distributed fronts, and whose disjoint subtrees become the
independently-factored local subtrees of the subtree-to-subcube mapping.

Leaves below a size threshold are ordered by AMD (the standard hybrid used
by METIS-style ND codes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.graph.bisection import bisect
from repro.graph.separators import vertex_separator_from_bisection
from repro.ordering.amd import amd_order


@dataclass(frozen=True)
class NDOptions:
    """Tuning knobs for nested dissection."""

    #: stop recursing and AMD-order below this many vertices
    leaf_size: int = 32
    #: maximum recursion depth (safety net; None = unlimited)
    max_depth: int | None = None
    #: balance bound passed to the bisector
    balance: float = 0.55
    #: FM refinement sweeps per bisection
    refine_passes: int = 4
    #: bisection strategy: "flat" (BFS + FM) or "multilevel" (METIS-style)
    strategy: str = "flat"
    #: switch to multilevel only above this many vertices (it has overhead)
    multilevel_threshold: int = 120


def nested_dissection_order(
    g: AdjacencyGraph, options: NDOptions | None = None
) -> np.ndarray:
    """ND permutation: ``perm[k]`` = original vertex eliminated at step k.

    Within each recursion level: both halves (recursively ordered) first,
    separator vertices last — so separators rise to the top of the
    elimination tree.
    """
    opts = options or NDOptions()
    out: list[int] = []
    _nd_recurse(g, np.arange(g.n, dtype=np.int64), out, opts, depth=0)
    perm = np.asarray(out, dtype=np.int64)
    assert perm.size == g.n
    return perm


def _nd_recurse(
    g: AdjacencyGraph,
    vmap: np.ndarray,
    out: list[int],
    opts: NDOptions,
    depth: int,
) -> None:
    """Order the subgraph *g* (original ids in *vmap*), appending to *out*."""
    if g.n == 0:
        return
    depth_stop = opts.max_depth is not None and depth >= opts.max_depth
    if g.n <= opts.leaf_size or depth_stop:
        local = amd_order(g)
        out.extend(int(v) for v in vmap[local])
        return

    # Bisect per connected component implicitly: bisect() already assigns
    # every vertex; the separator cover makes parts edge-disjoint.
    if opts.strategy == "multilevel" and g.n >= opts.multilevel_threshold:
        from repro.graph.multilevel import bisect_multilevel

        side = bisect_multilevel(
            g, balance=opts.balance, refine_passes=opts.refine_passes
        )
    else:
        side = bisect(g, balance=opts.balance, refine_passes=opts.refine_passes)
    part0, part1, sep = vertex_separator_from_bisection(g, side)

    if sep.size == 0 and (part0.size == 0 or part1.size == 0):
        # Bisection failed to split (e.g. complete graph collapsed to one
        # side) — fall back to AMD to guarantee progress.
        local = amd_order(g)
        out.extend(int(v) for v in vmap[local])
        return

    for part in (part0, part1):
        if part.size == 0:
            continue
        sub, sub_vmap = g.subgraph(part)
        _nd_recurse(sub, vmap[sub_vmap], out, opts, depth + 1)

    # Separator last (top of the elimination tree). Order the separator
    # internally by AMD on its induced subgraph for a bit of local quality.
    if sep.size:
        if sep.size > 2:
            sep_sub, sep_vmap = g.subgraph(sep)
            local = amd_order(sep_sub)
            out.extend(int(v) for v in vmap[sep_vmap[local]])
        else:
            out.extend(int(v) for v in vmap[sep])


def nd_separator_tree_sizes(g: AdjacencyGraph, options: NDOptions | None = None):
    """Diagnostic: sizes of (part0, part1, sep) at the top split.

    Used in tests and examples to show the separator law (O(n^{1/2}) in 2D,
    O(n^{2/3}) in 3D).
    """
    opts = options or NDOptions()
    side = bisect(g, balance=opts.balance, refine_passes=opts.refine_passes)
    part0, part1, sep = vertex_separator_from_bisection(g, side)
    return part0.size, part1.size, sep.size
