"""Fill-reducing orderings.

The analysis phase of the solver permutes the matrix symmetrically before
factorization. Orderings provided:

* :func:`natural_order` — identity (the "no ordering" baseline);
* :func:`rcm_order` — Reverse Cuthill–McKee (bandwidth-oriented);
* :func:`amd_order` — Approximate Minimum Degree on a quotient graph with
  element absorption and supervariable merging (the local-greedy family);
* :func:`nested_dissection_order` — recursive graph bisection with
  minimum-degree leaves (the ordering the paper's scalable formulation
  requires: ND separators give the balanced elimination trees that
  subtree-to-subcube mapping exploits).

All functions return ``perm`` with ``perm[k]`` = original vertex eliminated
at step ``k``.
"""

from repro.ordering.natural import natural_order, reverse_order, random_order
from repro.ordering.rcm import rcm_order
from repro.ordering.amd import amd_order
from repro.ordering.nested_dissection import nested_dissection_order, NDOptions
from repro.ordering.metrics import ordering_quality, OrderingQuality
from repro.ordering.registry import get_ordering, ORDERINGS
from repro.ordering.compression import (
    compressed_order,
    compress_graph,
    compression_ratio,
    find_indistinguishable_groups,
)

__all__ = [
    "natural_order",
    "reverse_order",
    "random_order",
    "rcm_order",
    "amd_order",
    "nested_dissection_order",
    "NDOptions",
    "ordering_quality",
    "OrderingQuality",
    "get_ordering",
    "ORDERINGS",
    "compressed_order",
    "compress_graph",
    "compression_ratio",
    "find_indistinguishable_groups",
]
