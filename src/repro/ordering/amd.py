"""Approximate Minimum Degree ordering on a quotient graph.

Implements the Amestoy–Davis–Duff AMD algorithm's core mechanics in pure
Python:

* quotient-graph representation (variables adjacent to variables and to
  *elements* — cliques left behind by eliminated pivots);
* element absorption (an element whose variable list is contained in the
  new pivot element's list is deleted);
* supervariable merging (indistinguishable variables — identical closed
  adjacency — are eliminated together and weighted);
* the AMD external-degree approximation
  ``d_i = w(A_i) + w(L_p \\ i) + Σ_e w(L_e \\ L_p)``.

Set-based rather than array-based, so it is O(n · deg²)-ish — fine at the
matrix sizes a pure-Python factorization handles, and algorithmically
faithful where it matters (ordering quality).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.structure import AdjacencyGraph


def amd_order(g: AdjacencyGraph, aggressive: bool = True) -> np.ndarray:
    """AMD permutation: ``perm[k]`` = original vertex eliminated at step k.

    Parameters
    ----------
    aggressive
        Enable aggressive element absorption (standard AMD behaviour).
    """
    n = g.n
    if n == 0:
        return np.empty(0, dtype=np.int64)

    adj: list[set[int]] = [set(map(int, g.neighbors(i))) for i in range(n)]
    elems: list[set[int]] = [set() for _ in range(n)]
    elem_vars: dict[int, set[int]] = {}  # element id (its pivot) -> L_e
    weight = [1] * n
    members: list[list[int]] = [[i] for i in range(n)]
    alive = [True] * n
    degree = [0] * n
    heap: list[tuple[int, int]] = []
    for i in range(n):
        degree[i] = len(adj[i])  # all weights 1 initially
        heapq.heappush(heap, (degree[i], i))

    order: list[int] = []

    def wsum(s: set[int]) -> int:
        return sum(weight[v] for v in s)

    remaining = n
    while remaining > 0:
        # Lazy-deletion pop: entry must be alive and degree current.
        while True:
            d, p = heapq.heappop(heap)
            if alive[p] and degree[p] == d:
                break

        # Pivot element's variable list.
        lp = set(adj[p])
        for e in elems[p]:
            lp |= elem_vars[e]
        lp.discard(p)
        lp = {v for v in lp if alive[v]}

        order.extend(members[p])
        alive[p] = False
        remaining -= 1

        absorbed_parents = list(elems[p])
        elems[p] = set()
        for e in absorbed_parents:
            # Element e is absorbed into the new element p.
            for v in elem_vars[e]:
                elems[v].discard(e)
            del elem_vars[e]
        adj[p] = set()

        elem_vars[p] = lp

        # Update each variable adjacent to the new element.
        touched = []
        for i in lp:
            adj[i] -= lp
            adj[i].discard(p)
            elems[i].add(p)
            touched.append(i)

        if aggressive:
            # Absorb any other element of a touched variable whose list is
            # now contained in lp.
            seen_elems: set[int] = set()
            for i in touched:
                for e in list(elems[i]):
                    if e == p or e in seen_elems:
                        continue
                    seen_elems.add(e)
                    if elem_vars[e] <= lp:
                        for v in elem_vars[e]:
                            elems[v].discard(e)
                        del elem_vars[e]

        # Supervariable detection among the updated variables: merge
        # variables with identical closed quotient-adjacency.
        sig: dict[tuple, int] = {}
        for i in list(lp):
            if not alive[i]:
                continue
            key = (
                frozenset(adj[i] | {i}),
                frozenset(elems[i]),
            )
            j = sig.get(key)
            if j is None:
                sig[key] = i
            else:
                # Merge i into j.
                weight[j] += weight[i]
                members[j].extend(members[i])
                members[i] = []
                alive[i] = False
                remaining -= 1
                lp.discard(i)
                for u in adj[i]:
                    adj[u].discard(i)
                for e in elems[i]:
                    elem_vars[e].discard(i)
                adj[i] = set()
                elems[i] = set()

        # Recompute approximate degrees of surviving updated variables.
        for i in lp:
            d = wsum(adj[i]) + wsum(lp) - weight[i]
            for e in elems[i]:
                if e == p:
                    continue
                d += wsum(elem_vars[e] - lp)
            degree[i] = d
            heapq.heappush(heap, (d, i))

    perm = np.asarray(order, dtype=np.int64)
    assert perm.size == n, f"AMD produced {perm.size} of {n} vertices"
    return perm
