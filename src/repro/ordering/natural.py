"""Trivial orderings: natural, reverse, random.

Baselines for the T2 ordering-quality comparison and useful adversaries in
tests (random orderings exercise the symbolic machinery far from the
structured paths).
"""

from __future__ import annotations

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.util.rng import make_rng


def natural_order(g: AdjacencyGraph) -> np.ndarray:
    """Identity permutation — eliminate vertices in input order."""
    return np.arange(g.n, dtype=np.int64)


def reverse_order(g: AdjacencyGraph) -> np.ndarray:
    """Reverse of the input order."""
    return np.arange(g.n - 1, -1, -1, dtype=np.int64)


def random_order(g: AdjacencyGraph, seed=None) -> np.ndarray:
    """Uniformly random elimination order (deterministic by default seed)."""
    rng = make_rng(seed)
    return rng.permutation(g.n).astype(np.int64)
