"""Graph compression for ordering (indistinguishable-vertex collapsing).

Multi-dof discretizations (elasticity: 3 unknowns per mesh vertex) produce
groups of variables with *identical* adjacency structure. Ordering codes in
this family (WSMP, METIS's compressed graphs) collapse each group to one
weighted supervertex, order the compressed graph — 3× smaller for
elasticity — and expand the permutation, keeping group members consecutive
(which also guarantees they land in the same supernode).
"""

from __future__ import annotations

import numpy as np

from repro.graph.structure import AdjacencyGraph


def find_indistinguishable_groups(g: AdjacencyGraph) -> np.ndarray:
    """Group label per vertex: vertices with identical closed neighbourhoods
    (adj(u) ∪ {u}) share a label. Labels are dense, ordered by first member.
    """
    n = g.n
    keys: dict[frozenset, int] = {}
    label = np.empty(n, dtype=np.int64)
    next_label = 0
    for u in range(n):
        key = frozenset(g.neighbors(u).tolist()) | {u}
        got = keys.get(key)
        if got is None:
            keys[key] = next_label
            label[u] = next_label
            next_label += 1
        else:
            label[u] = got
    return label


def compress_graph(
    g: AdjacencyGraph,
) -> tuple[AdjacencyGraph, np.ndarray, list[np.ndarray]]:
    """Collapse indistinguishable vertices.

    Returns ``(compressed, label, members)`` where ``label[u]`` is vertex
    u's supervertex and ``members[s]`` lists the original vertices of
    supervertex s (ascending).
    """
    label = find_indistinguishable_groups(g)
    nc = int(label.max()) + 1 if g.n else 0
    members: list[np.ndarray] = [
        np.flatnonzero(label == s) for s in range(nc)
    ]
    deg = np.diff(g.xadj)
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    cu = label[src]
    cv = label[g.adjncy]
    keep = cu != cv
    compressed = AdjacencyGraph.from_edges(nc, cu[keep], cv[keep])
    return compressed, label, members


def compressed_order(g: AdjacencyGraph, ordering_fn) -> np.ndarray:
    """Order *g* by compressing, applying *ordering_fn* to the compressed
    graph, and expanding (group members consecutive).

    Falls back to ordering the original graph when compression finds
    nothing to collapse (no overhead beyond the grouping scan).
    """
    compressed, _label, members = compress_graph(g)
    if compressed.n == g.n:
        return ordering_fn(g)
    cperm = ordering_fn(compressed)
    out = np.empty(g.n, dtype=np.int64)
    pos = 0
    for s in cperm:
        grp = members[int(s)]
        out[pos: pos + grp.size] = grp
        pos += grp.size
    assert pos == g.n
    return out


def compression_ratio(g: AdjacencyGraph) -> float:
    """|V| / |V_compressed| — 1.0 means nothing collapses."""
    label = find_indistinguishable_groups(g)
    nc = int(label.max()) + 1 if g.n else 1
    return g.n / max(nc, 1)
