"""Seeded adversarial schedule fuzzing of the shared-memory backend.

The bitwise-oracle contract of :mod:`repro.exec` ("any schedule produces
the sequential bits") is only as strong as the schedules that have been
tried. This module *manufactures* hostile schedules: a
:class:`FuzzPlan` plugs into ``TaskPool(fuzz=...)`` and

* **permutes the ready queue** — ``ready_key`` replaces the natural
  priority key with a pseudo-random one, so heavy-subtree-first order is
  destroyed and unlikely task interleavings run;
* **forces preemption points** — ``defer`` makes a worker put a
  just-popped task back (demoted behind everything currently ready) and
  pick another, up to a bounded number of times per task;
* **injects delays** — ``delay`` stalls a task body for up to a few
  milliseconds before it runs, shifting every downstream completion.

Everything is a pure function of ``(seed, task)`` via a splitmix-style
integer hash — no global RNG state — so a failing seed replays the same
perturbation byte-for-byte. The drivers
(:func:`fuzz_factor` / :func:`fuzz_solve` / :func:`fuzz_smoke`) run the
threaded backend under each seed with tracing on, then assert the three
properties that make a schedule trustworthy:

1. the factors/solutions are **bitwise identical** to the sequential
   oracle;
2. the recorded trace passes :func:`repro.check.racecheck.check_exec_trace`;
3. every fuzzed trace **normalizes identically** to the unfuzzed
   reference (determinism audit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.check.racecheck import (
    RaceReport,
    check_determinism,
    check_exec_trace,
)
from repro.exec.factor_exec import multifrontal_factor_threads
from repro.exec.pool import TaskPool
from repro.exec.solve_exec import solve_many_threads, solve_threads
from repro.mf.numeric import NumericFactor, multifrontal_factor
from repro.mf.solve_phase import solve, solve_many
from repro.util.errors import RaceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.trace import ExecTrace
    from repro.symbolic.analyze import SymbolicFactor

__all__ = [
    "FuzzConfig",
    "FuzzPlan",
    "FuzzCaseResult",
    "fuzz_factor",
    "fuzz_solve",
    "fuzz_smoke",
]


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzed schedule (all deterministic in ``seed``)."""

    seed: int
    #: replace priority order with a pseudo-random permutation
    shuffle_priorities: bool = True
    #: probability a popped task is deferred (per defer decision)
    defer_prob: float = 0.25
    #: hard cap on defers per task (the pool must stay live)
    max_defers: int = 2
    #: probability a task body gets an injected delay
    delay_prob: float = 0.3
    #: longest injected delay in seconds
    max_delay: float = 0.002


def _mix(seed: int, task: int, salt: int) -> int:
    """Splitmix64-style avalanche of ``(seed, task, salt)`` → 64 bits."""
    z = (seed * 0x9E3779B97F4A7C15 + task * 0xBF58476D1CE4E5B9 + salt) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


_M64 = (1 << 64) - 1
_U01 = float(1 << 53)


def _unit(seed: int, task: int, salt: int) -> float:
    """Deterministic uniform in ``[0, 1)`` from the hash."""
    return (_mix(seed, task, salt) >> 11) / _U01


class FuzzPlan:
    """One seeded schedule perturbation (a ``ScheduleFuzzer``).

    Stateless except for the per-task defer budget, which the pool only
    touches while holding the run's condition lock (see
    :class:`repro.exec.pool.ScheduleFuzzer`), so plain dict mutation is
    safe. A fresh plan should be used per pool run when exact replay
    matters — the defer budget carries across runs otherwise.
    """

    def __init__(self, config: FuzzConfig):
        self.config = config
        self._defers_left: dict[int, int] = {}

    def ready_key(self, task: int, key: float) -> float:
        if not self.config.shuffle_priorities:
            return key
        return _unit(self.config.seed, task, 1)

    def requeue_key(self, task: int) -> float:
        # Demote past every pseudo-random ready key so a deferred task
        # cannot be re-popped ahead of the tasks it was deferred behind.
        return 2.0 + _unit(self.config.seed, task, 2)

    def defer(self, task: int) -> bool:
        left = self._defers_left.get(task, self.config.max_defers)
        if left <= 0:
            return False
        if _unit(self.config.seed, task, 3 + left) >= self.config.defer_prob:
            return False
        self._defers_left[task] = left - 1
        return True

    def delay(self, task: int) -> float:
        if _unit(self.config.seed, task, 4) >= self.config.delay_prob:
            return 0.0
        return self.config.max_delay * _unit(self.config.seed, task, 5)


@dataclass
class FuzzCaseResult:
    """Outcome of one fuzzed schedule."""

    seed: int
    workers: int
    label: str
    bitwise_identical: bool
    race_report: RaceReport
    #: empty when the fuzzed trace normalized identically to the reference
    determinism: RaceReport
    trace: ExecTrace | None = None

    @property
    def ok(self) -> bool:
        return (
            self.bitwise_identical
            and self.race_report.ok
            and self.determinism.ok
        )

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        bits = "identical" if self.bitwise_identical else "DIVERGED"
        return (
            f"seed={self.seed} workers={self.workers} [{self.label}]: "
            f"{status} (bits {bits}, {len(self.race_report.errors)} race "
            f"error(s), {len(self.determinism.errors)} determinism "
            f"error(s))"
        )


def _factors_identical(ref: NumericFactor, got: NumericFactor) -> bool:
    if len(ref.blocks) != len(got.blocks):
        return False
    for a, b in zip(ref.blocks, got.blocks):
        if a.tobytes() != b.tobytes():
            return False
    if (ref.diag is None) != (got.diag is None):
        return False
    if ref.diag is not None and got.diag is not None:
        if ref.diag.tobytes() != got.diag.tobytes():
            return False
    return ref.perturbed_columns == got.perturbed_columns


def fuzz_factor(
    sym: SymbolicFactor,
    seeds: list[int],
    workers: int = 4,
    method: str = "cholesky",
    config: FuzzConfig | None = None,
    keep_traces: bool = False,
) -> list[FuzzCaseResult]:
    """Factor *sym* under every fuzzed schedule in *seeds*; each case is
    compared bitwise against the sequential oracle, race-checked, and
    determinism-audited against an unfuzzed traced reference run."""
    reference = multifrontal_factor(sym, method=method)
    ref_pool = TaskPool(workers, name="factor", trace=True)
    multifrontal_factor_threads(sym, method=method, pool=ref_pool)
    results: list[FuzzCaseResult] = []
    for seed in seeds:
        cfg = _seeded(config, seed)
        pool = TaskPool(
            workers, name="factor", trace=True, fuzz=FuzzPlan(cfg)
        )
        factor = multifrontal_factor_threads(sym, method=method, pool=pool)
        assert pool.trace is not None
        results.append(
            FuzzCaseResult(
                seed=seed,
                workers=workers,
                label=f"factor:{method}",
                bitwise_identical=_factors_identical(reference, factor),
                race_report=check_exec_trace(pool.trace),
                determinism=check_determinism(
                    [ref_pool.trace, pool.trace],
                    labels=["reference", f"seed{seed}"],
                ),
                trace=pool.trace if keep_traces else None,
            )
        )
    return results


def fuzz_solve(
    factor: NumericFactor,
    b: np.ndarray,
    seeds: list[int],
    workers: int = 4,
    config: FuzzConfig | None = None,
    keep_traces: bool = False,
) -> list[FuzzCaseResult]:
    """Solve under every fuzzed schedule in *seeds* (vector or panel
    *b*), with the same three-way verification as :func:`fuzz_factor`."""
    reference = solve(factor, b) if b.ndim == 1 else solve_many(factor, b)
    ref_pool = TaskPool(workers, name="solve", trace=True)
    if b.ndim == 1:
        solve_threads(factor, b, pool=ref_pool)
    else:
        solve_many_threads(factor, b, pool=ref_pool)
    results: list[FuzzCaseResult] = []
    for seed in seeds:
        cfg = _seeded(config, seed)
        pool = TaskPool(workers, name="solve", trace=True, fuzz=FuzzPlan(cfg))
        if b.ndim == 1:
            x = solve_threads(factor, b, pool=pool)
        else:
            x = solve_many_threads(factor, b, pool=pool)
        assert pool.trace is not None
        results.append(
            FuzzCaseResult(
                seed=seed,
                workers=workers,
                label=f"solve:rhs{1 if b.ndim == 1 else b.shape[1]}",
                bitwise_identical=x.tobytes() == reference.tobytes(),
                race_report=check_exec_trace(pool.trace),
                determinism=check_determinism(
                    [ref_pool.trace, pool.trace],
                    labels=["reference", f"seed{seed}"],
                ),
                trace=pool.trace if keep_traces else None,
            )
        )
    return results


def fuzz_smoke(
    sym: SymbolicFactor,
    n_seeds: int = 25,
    workers: tuple[int, ...] = (2, 4, 8),
    method: str = "cholesky",
    base_seed: int = 0,
    config: FuzzConfig | None = None,
) -> list[FuzzCaseResult]:
    """The CI smoke: *n_seeds* fuzzed factor+solve schedules, cycling the
    worker counts in *workers*; raises :class:`RaceError` on any failing
    case (its summary names the replayable seed)."""
    factor = multifrontal_factor(sym, method=method)
    rng = np.random.default_rng(base_seed)
    b = rng.standard_normal(sym.n)
    results: list[FuzzCaseResult] = []
    for i in range(n_seeds):
        seed = base_seed + i
        w = workers[i % len(workers)]
        results.extend(
            fuzz_factor(sym, [seed], workers=w, method=method, config=config)
        )
        results.extend(
            fuzz_solve(factor, b, [seed], workers=w, config=config)
        )
    bad = [r for r in results if not r.ok]
    if bad:
        raise RaceError(
            "schedule fuzzing found failing case(s):\n"
            + "\n".join(r.summary() for r in bad)
        )
    return results


def _seeded(config: FuzzConfig | None, seed: int) -> FuzzConfig:
    if config is None:
        return FuzzConfig(seed=seed)
    return FuzzConfig(
        seed=seed,
        shuffle_priorities=config.shuffle_priorities,
        defer_prob=config.defer_prob,
        max_defers=config.max_defers,
        delay_prob=config.delay_prob,
        max_delay=config.max_delay,
    )
