"""Communication race & deadlock detection over simmpi traces.

Replays a :class:`~repro.simmpi.trace.CommTrace` (recorded by the
simulator with ``trace=True``, loaded from a JSONL file, or hand-built in
tests) through a virtual post office and reports:

* **unmatched-send** — a message injected but never received (lost
  message / missing ``Recv``);
* **unmatched-recv** — a receive completion with no prior matching send
  (impossible in recorded traces; indicates a corrupted or truncated log);
* **race** — order-nondeterministic receive pair: at the moment a receive
  matched, two or more in-flight messages carried the *same* (source,
  destination, tag) key, so the delivered payload depends on arrival
  order the tag cannot distinguish;
* **deadlock** — a wait-for cycle among terminally blocked ranks (rank a
  blocked on b, b on c, …, back to a); *every* disjoint cycle is
  reported, each step carrying the blocking message key (source rank +
  tag);
* **starved** — a rank terminally blocked outside any cycle, either on a
  message that was never sent or behind a deadlock cycle its wait chain
  leads into (the diagnostic distinguishes the two);
* **conservation** — per-rank count/byte totals in the trace disagree
  with the :class:`~repro.simmpi.ledger.MessageLedger`, or the ledger
  itself violates the conservation identities
  (:meth:`~repro.simmpi.ledger.MessageLedger.verify`).

Findings carry rank and timestamp evidence. ``race`` findings are
warnings (the simulator's FIFO matching makes them deterministic *here*,
but the same program on a real network is order-dependent); everything
else is an error.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.simmpi.ledger import MessageLedger
from repro.simmpi.trace import CommEvent, CommTrace
from repro.util.errors import SimulationError

__all__ = [
    "CommFinding",
    "CommReport",
    "check_trace",
    "check_ledger",
    "check_sim_result",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class CommFinding:
    """One anomaly detected in a communication trace."""

    code: str  # "unmatched-send" | "unmatched-recv" | "race" | "deadlock" | "starved" | "conservation"
    severity: str  # ERROR | WARNING
    message: str
    rank: int | None = None
    time: float | None = None

    def format(self) -> str:
        where = "" if self.rank is None else f" [rank {self.rank}"
        if where and self.time is not None:
            where += f" @ t={self.time:.6g}"
        if where:
            where += "]"
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass
class CommReport:
    """Outcome of one trace replay."""

    findings: list[CommFinding] = field(default_factory=list)
    n_events: int = 0
    n_messages_matched: int = 0

    @property
    def errors(self) -> list[CommFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[CommFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not self.errors

    def summary(self) -> str:
        head = (
            f"commcheck: {self.n_events} events, "
            f"{self.n_messages_matched} messages matched, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        body = "\n".join(f.format() for f in self.findings)
        return head if not body else head + "\n" + body


def check_trace(
    trace: CommTrace | Iterable[CommEvent],
    ledger: MessageLedger | None = None,
) -> CommReport:
    """Replay *trace* and report every anomaly found.

    Events are replayed in ``seq`` order (file order for loaded traces).
    When *ledger* is given, the trace's per-rank totals are reconciled
    against it and the ledger's own conservation identities are verified.
    """
    events = sorted(trace, key=lambda e: e.seq)
    report = CommReport(n_events=len(events))

    # Virtual post office: (sender, receiver, tag) -> FIFO of send events.
    in_flight: dict[tuple[int, int, str], deque[CommEvent]] = {}
    # rank -> the block event it is currently parked on (None = runnable).
    waiting: dict[int, CommEvent] = {}
    # Per-rank trace totals for ledger reconciliation.
    sent_count: dict[int, int] = {}
    sent_bytes: dict[int, int] = {}
    recv_count: dict[int, int] = {}
    recv_bytes: dict[int, int] = {}

    for e in events:
        if e.kind == "send":
            in_flight.setdefault((e.rank, e.peer, e.tag), deque()).append(e)
            sent_count[e.rank] = sent_count.get(e.rank, 0) + 1
            sent_bytes[e.rank] = sent_bytes.get(e.rank, 0) + e.nbytes
        elif e.kind == "recv":
            waiting.pop(e.rank, None)
            recv_count[e.rank] = recv_count.get(e.rank, 0) + 1
            recv_bytes[e.rank] = recv_bytes.get(e.rank, 0) + e.nbytes
            key = (e.peer, e.rank, e.tag)
            queue = in_flight.get(key)
            if not queue:
                report.findings.append(
                    CommFinding(
                        code="unmatched-recv",
                        severity=ERROR,
                        message=(
                            f"receive from rank {e.peer} tag {e.tag} "
                            "completed with no matching send in the trace"
                        ),
                        rank=e.rank,
                        time=e.time,
                    )
                )
                continue
            if len(queue) > 1:
                first, second = queue[0], queue[1]
                report.findings.append(
                    CommFinding(
                        code="race",
                        severity=WARNING,
                        message=(
                            f"order-nondeterministic receive pair: "
                            f"{len(queue)} in-flight messages from rank "
                            f"{e.peer} with identical tag {e.tag} "
                            f"(sent at t={first.time:.6g} and "
                            f"t={second.time:.6g}) — delivery order is not "
                            "determined by the tag"
                        ),
                        rank=e.rank,
                        time=e.time,
                    )
                )
            queue.popleft()
            if not queue:
                del in_flight[(e.peer, e.rank, e.tag)]
            report.n_messages_matched += 1
        elif e.kind == "block":
            waiting[e.rank] = e
        else:
            report.findings.append(
                CommFinding(
                    code="unmatched-recv",
                    severity=ERROR,
                    message=f"unknown event kind {e.kind!r} at seq {e.seq}",
                    rank=e.rank,
                    time=e.time,
                )
            )

    # Leftover in-flight messages were sent but never received.
    for (src, dst, tag), queue in sorted(in_flight.items()):
        for e in queue:
            report.findings.append(
                CommFinding(
                    code="unmatched-send",
                    severity=ERROR,
                    message=(
                        f"message to rank {dst} tag {tag} "
                        f"({e.nbytes} B) was never received"
                    ),
                    rank=src,
                    time=e.time,
                )
            )

    report.findings.extend(_deadlock_findings(waiting))

    if ledger is not None:
        report.findings.extend(
            _reconcile_ledger(
                ledger, sent_count, sent_bytes, recv_count, recv_bytes
            )
        )
        report.findings.extend(check_ledger(ledger))

    return report


def _blocking_key(e: CommEvent) -> str:
    """The message key a blocked rank is parked on, for diagnostics."""
    return f"recv(src=rank {e.peer}, tag={e.tag!r})"


def _deadlock_findings(waiting: dict[int, CommEvent]) -> list[CommFinding]:
    """Wait-for cycles (deadlock) and acyclic terminal blocks (starvation)
    among ranks whose last recorded state is 'blocked'.

    *Every* disjoint cycle is reported (one finding per cycle), each step
    annotated with the blocking message key — the exact ``(source, tag)``
    receive the rank is parked on. Ranks whose wait chain merely *leads
    into* a cycle are reported as blocked behind that deadlock, distinct
    from genuine starvation (waiting on a message that was never sent).
    """
    findings: list[CommFinding] = []
    in_cycle: set[int] = set()
    # Each blocked rank waits on exactly one peer: the wait-for graph is
    # functional, so every cycle is found by walking successors from each
    # unvisited rank (disjoint cycles surface on separate walks).
    for start in sorted(waiting):
        if start in in_cycle:
            continue
        path: list[int] = []
        seen_at: dict[int, int] = {}
        r = start
        while r in waiting and r not in seen_at:
            seen_at[r] = len(path)
            path.append(r)
            r = waiting[r].peer
        if r in seen_at:
            cycle = path[seen_at[r]:]
            if not in_cycle.intersection(cycle):
                steps = " -> ".join(
                    f"rank {a} [{_blocking_key(waiting[a])}, "
                    f"blocked t={waiting[a].time:.6g}]"
                    for a in cycle
                )
                findings.append(
                    CommFinding(
                        code="deadlock",
                        severity=ERROR,
                        message=(
                            f"wait-for cycle of {len(cycle)} rank(s): "
                            f"{steps} -> rank {cycle[0]}"
                        ),
                        rank=cycle[0],
                        time=waiting[cycle[0]].time,
                    )
                )
            in_cycle.update(cycle)
    for r in sorted(waiting):
        if r in in_cycle:
            continue
        e = waiting[r]
        # Walk this rank's wait chain: ending in a deadlock cycle is a
        # different disease (victim of the deadlock) than waiting on a
        # message nobody ever sent.
        chain = r
        while chain in waiting and chain not in in_cycle:
            chain = waiting[chain].peer
        if chain in in_cycle:
            findings.append(
                CommFinding(
                    code="starved",
                    severity=ERROR,
                    message=(
                        f"blocked on {_blocking_key(e)} behind the "
                        f"wait-for cycle through rank {chain} — the "
                        "sender can never run"
                    ),
                    rank=r,
                    time=e.time,
                )
            )
        else:
            findings.append(
                CommFinding(
                    code="starved",
                    severity=ERROR,
                    message=(
                        f"blocked forever on {_blocking_key(e)} — "
                        "that message was never sent"
                    ),
                    rank=r,
                    time=e.time,
                )
            )
    return findings


def _reconcile_ledger(
    ledger: MessageLedger,
    sent_count: dict[int, int],
    sent_bytes: dict[int, int],
    recv_count: dict[int, int],
    recv_bytes: dict[int, int],
) -> list[CommFinding]:
    """Per-rank trace totals must match the ledger exactly."""
    findings: list[CommFinding] = []
    columns = (
        ("sent messages", sent_count, ledger.sent_by_rank),
        ("sent bytes", sent_bytes, ledger.bytes_sent_by_rank),
        ("received messages", recv_count, ledger.recv_by_rank),
        ("received bytes", recv_bytes, ledger.bytes_recv_by_rank),
    )
    for label, from_trace, from_ledger in columns:
        for r in range(ledger.n_ranks):
            t, led = from_trace.get(r, 0), from_ledger[r]
            if t != led:
                findings.append(
                    CommFinding(
                        code="conservation",
                        severity=ERROR,
                        message=(
                            f"{label} disagree: trace says {t}, "
                            f"ledger says {led}"
                        ),
                        rank=r,
                    )
                )
    return findings


def check_ledger(ledger: MessageLedger) -> list[CommFinding]:
    """Ledger-only conservation check as findings (empty list = clean)."""
    try:
        ledger.verify()
    except SimulationError as exc:
        return [
            CommFinding(code="conservation", severity=ERROR, message=str(exc))
        ]
    return []


def check_sim_result(result: Any) -> CommReport:
    """Convenience: check a :class:`~repro.simmpi.scheduler.SimResult`
    that was produced with ``trace=True`` (comm log + ledger)."""
    trace = getattr(result, "trace", None)
    if trace is None:
        raise SimulationError(
            "commcheck needs a traced run — build the Simulator with "
            "trace=True"
        )
    return check_trace(trace.comm, ledger=result.ledger)
