"""Debug-mode invariant sanitizer.

Validation routines for the structures every phase of the solver shares:
CSR/CSC index arrays, permutations, elimination trees, supernode
partitions, and the multifrontal update stack. Each check raises
:class:`~repro.util.errors.InvariantError` with enough evidence (indices,
offending values) to locate the corruption.

The checks are installed into hot paths behind the ``REPRO_CHECK=1``
environment switch (see :func:`enabled` /
:func:`repro.util.validation.runtime_checks_enabled`): matrix constructors
with ``_skip_check=True`` re-validate, the analyze phase checks the full
symbolic factor, the multifrontal loop asserts frontal-stack balance, and
the simulator teardown verifies message-ledger conservation. When the
switch is off the hooks cost one predicate call — no structure is walked.

The routines are duck-typed on purpose: they accept anything with the
right attributes, so this module sits at the bottom of the dependency
graph (it imports only :mod:`numpy` and :mod:`repro.util`) and every layer
can call into it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping

import numpy as np

from repro.util.errors import InvariantError, ReproError
from repro.util.validation import (
    check_permutation as _check_permutation,
    runtime_checks_enabled,
    set_runtime_checks,
)

__all__ = [
    "enabled",
    "sanitized",
    "check_csc",
    "check_csr",
    "check_permutation",
    "check_etree",
    "check_postordered",
    "check_partition",
    "check_symbolic",
    "check_frontal_balance",
    "check_ledger",
]

#: alias for the switch every hook consults
enabled = runtime_checks_enabled


@contextmanager
def sanitized(on: bool = True) -> Iterator[None]:
    """Context manager forcing the sanitizer switch on (or off) within a
    block; restores the previous state on exit. Test/self-test helper."""
    previous = set_runtime_checks(on)
    try:
        yield
    finally:
        set_runtime_checks(previous)


def _fail(message: str) -> "InvariantError":
    return InvariantError(f"sanitizer: {message}")


# -- compressed-format well-formedness ---------------------------------------


def check_compressed(matrix: Any, axis_name: str = "column") -> None:
    """Well-formedness of a compressed sparse matrix (CSR or CSC).

    Checks the shared invariants: ``indptr`` length/monotonicity, index
    bounds, sorted-and-unique minor indices per major slice, and
    ``data``/``indices`` parallelism. *matrix* needs ``shape``, ``indptr``,
    ``indices``, and ``data`` attributes; *axis_name* only shapes messages.
    """
    indptr = np.asarray(matrix.indptr)
    indices = np.asarray(matrix.indices)
    data = np.asarray(matrix.data)
    n_major = matrix.shape[1] if axis_name == "column" else matrix.shape[0]
    n_minor = matrix.shape[0] if axis_name == "column" else matrix.shape[1]
    if indptr.ndim != 1 or indptr.size != n_major + 1:
        raise _fail(
            f"indptr must have shape ({n_major + 1},); got {indptr.shape}"
        )
    if indptr.size and indptr[0] != 0:
        raise _fail(f"indptr[0] must be 0; got {indptr[0]}")
    steps = np.diff(indptr)
    if np.any(steps < 0):
        j = int(np.argmax(steps < 0))
        raise _fail(f"indptr decreases at {axis_name} {j}")
    if indptr.size and indptr[-1] != indices.size:
        raise _fail(
            f"indptr[-1] = {indptr[-1]} but {indices.size} indices stored"
        )
    if indices.size != data.size:
        raise _fail(
            f"{indices.size} indices but {data.size} values stored"
        )
    if indices.size:
        lo, hi = int(indices.min()), int(indices.max())
        if lo < 0 or hi >= n_minor:
            raise _fail(
                f"index entries must lie in [0, {n_minor}); got [{lo}, {hi}]"
            )
        # Sorted + unique within each major slice: a decreasing step in the
        # flat array is legal only at a slice boundary.
        flat_steps = np.diff(indices)
        boundaries = np.zeros(indices.size - 1, dtype=bool) if indices.size > 1 else None
        if boundaries is not None:
            interior = indptr[1:-1]
            boundaries[interior[(interior > 0) & (interior < indices.size)] - 1] = True
            bad = np.flatnonzero((flat_steps <= 0) & ~boundaries)
            if bad.size:
                k = int(bad[0])
                j = int(np.searchsorted(indptr, k, side="right")) - 1
                raise _fail(
                    f"{axis_name} {j} has unsorted or duplicate indices "
                    f"(position {k}: {int(indices[k])} then {int(indices[k + 1])})"
                )
    if data.size and not np.all(np.isfinite(data)):
        k = int(np.argmin(np.isfinite(data)))
        raise _fail(f"non-finite value at position {k}: {data[k]!r}")


def check_csc(matrix: Any) -> None:
    """CSC well-formedness (column-compressed invariants)."""
    check_compressed(matrix, axis_name="column")


def check_csr(matrix: Any) -> None:
    """CSR well-formedness (row-compressed invariants)."""
    check_compressed(matrix, axis_name="row")


# -- permutations ------------------------------------------------------------


def check_permutation(perm: Any, n: int, name: str = "perm") -> None:
    """*perm* must be a permutation of ``range(n)``."""
    try:
        _check_permutation(perm, n, name)
    except ReproError as exc:
        raise _fail(str(exc)) from exc


# -- elimination trees -------------------------------------------------------


def check_etree(parent: Any) -> None:
    """Elimination-tree validity: parent pointers in range and acyclic."""
    p = np.asarray(parent, dtype=np.int64)
    n = p.size
    if n == 0:
        return
    if p.ndim != 1:
        raise _fail(f"parent must be 1-D; got shape {p.shape}")
    bad = np.flatnonzero((p < -1) | (p >= n))
    if bad.size:
        j = int(bad[0])
        raise _fail(f"parent[{j}] = {int(p[j])} out of range [-1, {n})")
    if np.any(p == np.arange(n)):
        j = int(np.argmax(p == np.arange(n)))
        raise _fail(f"self-loop: parent[{j}] == {j}")
    # Cycle detection by chain-walking with path marking: color[j] = 0
    # unvisited, 1 on the current chain, 2 settled.
    color = np.zeros(n, dtype=np.int8)
    for j0 in range(n):
        if color[j0]:
            continue
        j = j0
        chain = []
        while j >= 0 and color[j] == 0:
            color[j] = 1
            chain.append(j)
            j = int(p[j])
        if j >= 0 and color[j] == 1:
            raise _fail(f"elimination tree contains a cycle through node {j}")
        for c in chain:
            color[c] = 2


def check_postordered(parent: Any) -> None:
    """Postorder consistency: valid etree with ``parent[j] > j`` everywhere
    (children numbered before parents — the multifrontal stack invariant)."""
    check_etree(parent)
    p = np.asarray(parent, dtype=np.int64)
    viol = np.flatnonzero((p >= 0) & (p <= np.arange(p.size)))
    if viol.size:
        j = int(viol[0])
        raise _fail(
            f"not postordered: parent[{j}] = {int(p[j])} <= {j}"
        )


# -- supernode partitions ----------------------------------------------------


def check_partition(partition: Any, n: int) -> None:
    """Supernode partition coverage: ``sn_start`` strictly increasing from
    0 to n, and ``col_to_sn`` consistent with it."""
    sn_start = np.asarray(partition.sn_start, dtype=np.int64)
    if sn_start.ndim != 1 or sn_start.size < 1:
        raise _fail(f"sn_start must be 1-D and nonempty; got shape {sn_start.shape}")
    if sn_start[0] != 0:
        raise _fail(f"sn_start[0] must be 0; got {int(sn_start[0])}")
    if sn_start[-1] != n:
        raise _fail(
            f"partition covers [0, {int(sn_start[-1])}) but the matrix has "
            f"{n} columns"
        )
    if np.any(np.diff(sn_start) <= 0):
        s = int(np.argmax(np.diff(sn_start) <= 0))
        raise _fail(f"empty or reversed supernode at position {s}")
    col_to_sn = np.asarray(partition.col_to_sn, dtype=np.int64)
    if col_to_sn.size != n:
        raise _fail(
            f"col_to_sn has {col_to_sn.size} entries for {n} columns"
        )
    expect = np.repeat(
        np.arange(sn_start.size - 1, dtype=np.int64), np.diff(sn_start)
    )
    if not np.array_equal(col_to_sn, expect):
        j = int(np.argmax(col_to_sn != expect))
        raise _fail(
            f"col_to_sn[{j}] = {int(col_to_sn[j])} but column {j} lies in "
            f"supernode {int(expect[j])}"
        )


# -- whole symbolic factors --------------------------------------------------


def check_symbolic(sym: Any) -> None:
    """Composite invariant check of a :class:`~repro.symbolic.analyze.
    SymbolicFactor`: permutation validity, postordered etree, partition
    coverage, per-supernode row structure, and assembly-tree consistency."""
    n = int(sym.n)
    check_permutation(sym.perm, n)
    check_postordered(sym.parent)
    check_partition(sym.partition, n)
    check_csc(sym.permuted_lower)
    nsn = int(sym.partition.n_supernodes)
    sn_start = np.asarray(sym.partition.sn_start, dtype=np.int64)
    for s in range(nsn):
        c0, c1 = int(sn_start[s]), int(sn_start[s + 1])
        rows = np.asarray(sym.sn_rows[s], dtype=np.int64)
        w = c1 - c0
        if rows.size < w or not np.array_equal(rows[:w], np.arange(c0, c1)):
            raise _fail(
                f"supernode {s}: first {w} rows must be its own columns "
                f"[{c0}, {c1}); got {rows[:w].tolist()}"
            )
        if rows.size > 1 and np.any(np.diff(rows) <= 0):
            raise _fail(f"supernode {s}: row structure unsorted")
        p = int(sym.sn_parent[s])
        if p >= 0 and not (0 <= p < nsn and p > s):
            raise _fail(
                f"supernode {s}: assembly-tree parent {p} invalid "
                f"(must be in ({s}, {nsn}))"
            )


# -- frontal update stack ----------------------------------------------------


def check_frontal_balance(
    stack_entries: int, updates: Mapping[int, Any]
) -> None:
    """End-of-factorization stack balance: every pushed update matrix was
    consumed by its parent's extend-add, and the entry counter returned to
    zero."""
    if updates:
        raise _fail(
            f"unconsumed update matrices for supernodes "
            f"{sorted(updates)[:5]} (frontal stack leak)"
        )
    if stack_entries != 0:
        raise _fail(
            f"frontal stack entry counter ended at {stack_entries}, not 0"
        )


# -- ledgers -----------------------------------------------------------------


def check_ledger(ledger: Any) -> None:
    """Message-ledger conservation (wraps
    :meth:`repro.simmpi.ledger.MessageLedger.verify`)."""
    try:
        ledger.verify()
    except ReproError as exc:
        raise _fail(str(exc)) from exc
