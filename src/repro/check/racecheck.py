"""Happens-before data-race & determinism checking over exec traces.

Replays an :class:`~repro.exec.trace.ExecTrace` (recorded by a
:class:`~repro.exec.pool.TaskPool` with ``trace=True`` / ``REPRO_CHECK=1``,
loaded from JSONL, or hand-built in tests) and reports every
synchronization defect it can prove from the log:

* **race** — two conflicting accesses to the same shared slot that the
  *exercised* dependency edges do not order. The partial order is
  rebuilt from the ``dep_dec`` events alone — deliberately **excluding**
  same-worker scheduling order — so a race masked by the particular
  schedule that happened to run is still caught: if the only thing
  ordering two conflicting accesses is which worker got there first,
  that is a race;
* **double-write** — a slot published more than once;
* **double-consume** — the same contribution run consumed twice
  (conservation: every contribution is produced and consumed exactly
  once);
* **missing-write** / **consume-before-write** — a consume with no
  matching publication, or one the happens-before order does not place
  after its publication;
* **unconsumed** — a published contribution nobody ever consumed;
* **nondeterminism** — two runs of the same graph (e.g. at different
  worker counts) whose canonical normalizations differ: different task
  sets, dependency edges, or per-task slot access sequences;
* **malformed** — a structurally broken trace (events outside a
  ``graph_begin``…``graph_end`` segment, a cyclic dependency log, slot
  accesses with no owning task): always a checker-stopping error.

Conflict model
--------------
``slot_write`` mutates the slot; ``slot_read`` is a pure read;
``slot_consume`` is a read *plus* invalidation for whole-slot
contributions (``lo == -1``, the factor backend sets the slot to
``None``) and a pure run read for row-run contributions (``lo``/``hi``
given, the forward solve). Two accesses conflict when they touch
overlapping ranges of one slot and at least one of them mutates.
Accesses by the same task are program-ordered; everything else needs a
``dep_dec`` path between the owning tasks.

Aborted segments (``graph_abort``: a task raised, the run was cancelled,
or the pool stalled) still get race checking over the events that *did*
happen, but conservation is skipped — an interrupted run legitimately
leaves contributions unconsumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exec.trace import EXEC_EVENT_KINDS, ExecEvent, ExecTrace
from repro.util.errors import RaceError

__all__ = [
    "RaceFinding",
    "RaceReport",
    "check_exec_trace",
    "verify_exec_trace",
    "normalize_trace",
    "check_determinism",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class RaceFinding:
    """One synchronization defect proven from an execution trace."""

    code: str  # "race" | "double-write" | "double-consume" | "missing-write"
    #            | "consume-before-write" | "unconsumed" | "nondeterminism"
    #            | "malformed"
    severity: str  # ERROR | WARNING
    message: str
    #: graph label of the segment the finding belongs to ("" = trace-level)
    graph: str = ""
    slot: str = ""
    #: the tasks involved (owning tasks of the conflicting accesses)
    tasks: tuple[int, ...] = ()

    def format(self) -> str:
        where = f" [{self.graph}]" if self.graph else ""
        if self.slot:
            where += f" slot {self.slot}"
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass
class RaceReport:
    """Outcome of one trace replay (or one determinism audit)."""

    findings: list[RaceFinding] = field(default_factory=list)
    n_events: int = 0
    n_segments: int = 0
    n_hb_pairs_checked: int = 0

    @property
    def errors(self) -> list[RaceFinding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list[RaceFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not self.errors

    def summary(self) -> str:
        head = (
            f"racecheck: {self.n_events} events, {self.n_segments} graph "
            f"run(s), {self.n_hb_pairs_checked} access pair(s) checked, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        body = "\n".join(f.format() for f in self.findings)
        return head if not body else head + "\n" + body


# ---------------------------------------------------------------------------
# segmentation


@dataclass
class _Segment:
    """One ``graph_begin`` … ``graph_end``/``graph_abort`` run."""

    label: str
    n_tasks: int
    aborted: bool
    events: list[ExecEvent]


def _split_segments(
    events: Sequence[ExecEvent], findings: list[RaceFinding]
) -> list[_Segment]:
    segments: list[_Segment] = []
    current: _Segment | None = None
    for e in events:
        if e.kind not in EXEC_EVENT_KINDS:
            findings.append(
                RaceFinding(
                    code="malformed",
                    severity=ERROR,
                    message=f"unknown event kind {e.kind!r} at seq {e.seq}",
                )
            )
            continue
        if e.kind == "graph_begin":
            if current is not None:
                findings.append(
                    RaceFinding(
                        code="malformed",
                        severity=ERROR,
                        message=(
                            f"graph_begin at seq {e.seq} inside an open "
                            f"segment ({current.label!r}) — missing "
                            "graph_end/graph_abort"
                        ),
                        graph=current.label,
                    )
                )
            current = _Segment(
                label=e.label, n_tasks=e.target, aborted=False, events=[]
            )
            continue
        if e.kind in ("graph_end", "graph_abort"):
            if current is None:
                findings.append(
                    RaceFinding(
                        code="malformed",
                        severity=ERROR,
                        message=(
                            f"{e.kind} at seq {e.seq} with no open segment"
                        ),
                        graph=e.label,
                    )
                )
                continue
            current.aborted = e.kind == "graph_abort"
            segments.append(current)
            current = None
            continue
        if current is None:
            findings.append(
                RaceFinding(
                    code="malformed",
                    severity=ERROR,
                    message=(
                        f"{e.kind} event at seq {e.seq} outside any "
                        "graph_begin/graph_end segment"
                    ),
                )
            )
            continue
        current.events.append(e)
    if current is not None:
        # An unterminated segment means the log was truncated mid-run:
        # treat it like an aborted run (race checking without conservation).
        current.aborted = True
        segments.append(current)
        findings.append(
            RaceFinding(
                code="malformed",
                severity=WARNING,
                message=(
                    f"segment {current.label!r} has no graph_end/"
                    "graph_abort (truncated log?) — conservation skipped"
                ),
                graph=current.label,
            )
        )
    return segments


# ---------------------------------------------------------------------------
# happens-before order


def _ancestor_bitsets(
    n_tasks: int,
    edges: set[tuple[int, int]],
    label: str,
    findings: list[RaceFinding],
) -> list[int] | None:
    """``reach[v]`` = bitmask of every task with a dep-edge path to *v*.

    Returns ``None`` (and records a finding) when the edge log is cyclic —
    a log that cannot come from a real pool run.
    """
    succs: list[list[int]] = [[] for _ in range(n_tasks)]
    indeg = [0] * n_tasks
    for u, v in edges:
        succs[u].append(v)
        indeg[v] += 1
    # Kahn topological order; ancestor sets propagate along it.
    order = [v for v in range(n_tasks) if indeg[v] == 0]
    reach = [0] * n_tasks
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        mask = reach[u] | (1 << u)
        for v in succs[u]:
            reach[v] |= mask
            indeg[v] -= 1
            if indeg[v] == 0:
                order.append(v)
    if len(order) != n_tasks:
        stuck = [v for v in range(n_tasks) if indeg[v] > 0]
        findings.append(
            RaceFinding(
                code="malformed",
                severity=ERROR,
                message=(
                    f"dependency-decrement edges contain a cycle through "
                    f"task(s) {stuck[:6]} — not a possible pool run"
                ),
                graph=label,
                tasks=tuple(stuck[:6]),
            )
        )
        return None
    return reach


def _ordered(reach: list[int], a: int, b: int) -> bool:
    """True when tasks *a* and *b* are happens-before comparable."""
    return bool((reach[b] >> a) & 1) or bool((reach[a] >> b) & 1)


# ---------------------------------------------------------------------------
# per-segment checking


@dataclass(frozen=True)
class _Access:
    kind: str  # "slot_write" | "slot_read" | "slot_consume"
    task: int
    seq: int
    lo: int
    hi: int

    def mutates(self) -> bool:
        # A whole-slot consume invalidates the slot (the factor backend
        # sets it to None); a row-run consume is a pure read.
        return self.kind == "slot_write" or (
            self.kind == "slot_consume" and self.lo == -1
        )

    def overlaps(self, other: "_Access") -> bool:
        if self.lo == -1 or other.lo == -1:
            return True  # whole-slot access overlaps everything
        return self.lo < other.hi and other.lo < self.hi

    def span(self) -> str:
        return "whole slot" if self.lo == -1 else f"rows [{self.lo}:{self.hi})"


def _check_segment(seg: _Segment, report: RaceReport) -> None:
    findings = report.findings
    n = seg.n_tasks
    edges: set[tuple[int, int]] = set()
    slots: dict[str, list[_Access]] = {}

    for e in seg.events:
        if e.kind == "dep_dec":
            if not (0 <= e.task < n and 0 <= e.target < n):
                findings.append(
                    RaceFinding(
                        code="malformed",
                        severity=ERROR,
                        message=(
                            f"dep_dec {e.task}->{e.target} outside the "
                            f"{n}-task graph (seq {e.seq})"
                        ),
                        graph=seg.label,
                    )
                )
                continue
            edges.add((e.task, e.target))
        elif e.kind in ("slot_write", "slot_read", "slot_consume"):
            if not 0 <= e.task < n:
                findings.append(
                    RaceFinding(
                        code="malformed",
                        severity=ERROR,
                        message=(
                            f"{e.kind} on {e.slot!r} with no owning task "
                            f"(seq {e.seq})"
                        ),
                        graph=seg.label,
                        slot=e.slot,
                    )
                )
                continue
            slots.setdefault(e.slot, []).append(
                _Access(kind=e.kind, task=e.task, seq=e.seq, lo=e.lo, hi=e.hi)
            )

    reach = _ancestor_bitsets(n, edges, seg.label, findings)
    if reach is None:
        return

    for slot in sorted(slots):
        accesses = sorted(slots[slot], key=lambda a: a.seq)
        _check_slot(seg, slot, accesses, reach, report)


def _check_slot(
    seg: _Segment,
    slot: str,
    accesses: list[_Access],
    reach: list[int],
    report: RaceReport,
) -> None:
    findings = report.findings

    # -- data races: conflicting pair not ordered by the dep edges -------
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if a.task == b.task:
                continue  # program order within one task body
            if not (a.mutates() or b.mutates()):
                continue
            if not a.overlaps(b):
                continue
            report.n_hb_pairs_checked += 1
            if not _ordered(reach, a.task, b.task):
                findings.append(
                    RaceFinding(
                        code="race",
                        severity=ERROR,
                        message=(
                            f"unordered conflicting accesses: task {a.task} "
                            f"{a.kind} ({a.span()}, seq {a.seq}) vs task "
                            f"{b.task} {b.kind} ({b.span()}, seq {b.seq}) — "
                            "no dependency-edge path orders these tasks"
                        ),
                        graph=seg.label,
                        slot=slot,
                        tasks=(a.task, b.task),
                    )
                )

    writes = [a for a in accesses if a.kind == "slot_write"]
    consumes = [a for a in accesses if a.kind == "slot_consume"]

    # -- publication discipline -----------------------------------------
    if len(writes) > 1:
        findings.append(
            RaceFinding(
                code="double-write",
                severity=ERROR,
                message=(
                    f"published {len(writes)} times (by task(s) "
                    f"{sorted({w.task for w in writes})})"
                ),
                graph=seg.label,
                slot=slot,
                tasks=tuple(sorted({w.task for w in writes})),
            )
        )

    # -- every consume follows its publication in HB order --------------
    for c in consumes + [a for a in accesses if a.kind == "slot_read"]:
        covering = [w for w in writes if w.overlaps(c)]
        verb = "consumed" if c.kind == "slot_consume" else "read"
        if not covering:
            findings.append(
                RaceFinding(
                    code="missing-write",
                    severity=ERROR,
                    message=(
                        f"task {c.task} {verb} {c.span()} but the slot "
                        "was never published"
                    ),
                    graph=seg.label,
                    slot=slot,
                    tasks=(c.task,),
                )
            )
            continue
        w = covering[0]
        if c.task != w.task and not bool((reach[c.task] >> w.task) & 1):
            findings.append(
                RaceFinding(
                    code="consume-before-write",
                    severity=ERROR,
                    message=(
                        f"task {c.task} {verb} {c.span()} without a "
                        f"dependency-edge path from publisher task {w.task}"
                    ),
                    graph=seg.label,
                    slot=slot,
                    tasks=(w.task, c.task),
                )
            )

    # -- conservation: produced exactly once, consumed exactly once -----
    if seg.aborted:
        return  # an interrupted run legitimately leaves contributions
    seen_runs: dict[tuple[int, int], _Access] = {}
    for c in consumes:
        run = (c.lo, c.hi)
        prev = seen_runs.get(run)
        if prev is not None:
            findings.append(
                RaceFinding(
                    code="double-consume",
                    severity=ERROR,
                    message=(
                        f"{c.span()} consumed twice: by task {prev.task} "
                        f"(seq {prev.seq}) and task {c.task} (seq {c.seq})"
                    ),
                    graph=seg.label,
                    slot=slot,
                    tasks=(prev.task, c.task),
                )
            )
        else:
            seen_runs[run] = c
    if writes and not consumes:
        findings.append(
            RaceFinding(
                code="unconsumed",
                severity=ERROR,
                message=(
                    f"published by task {writes[0].task} but never consumed"
                ),
                graph=seg.label,
                slot=slot,
                tasks=(writes[0].task,),
            )
        )


# ---------------------------------------------------------------------------
# public API


def check_exec_trace(trace: ExecTrace | Iterable[ExecEvent]) -> RaceReport:
    """Replay *trace* and report every provable synchronization defect.

    Events are replayed in ``seq`` order. Multiple graph runs in one
    trace (a solve's forward + backward sweeps) are checked segment by
    segment.
    """
    if isinstance(trace, ExecTrace):
        events = trace.sorted_events()
    else:
        events = sorted(trace, key=lambda e: e.seq)
    report = RaceReport(n_events=len(events))
    segments = _split_segments(events, report.findings)
    report.n_segments = len(segments)
    for seg in segments:
        _check_segment(seg, report)
    return report


def verify_exec_trace(trace: ExecTrace | Iterable[ExecEvent]) -> RaceReport:
    """Like :func:`check_exec_trace` but raises :class:`RaceError` on any
    error-severity finding; returns the (clean) report otherwise."""
    report = check_exec_trace(trace)
    if not report.ok:
        raise RaceError(report.summary())
    return report


# ---------------------------------------------------------------------------
# determinism audit


def normalize_trace(
    trace: ExecTrace | Iterable[ExecEvent],
) -> list[dict[str, object]]:
    """Canonical schedule-independent form of a trace.

    Two runs of the same task graphs must normalize identically whatever
    the worker count or interleaving: per segment, the label, task count,
    the sorted exercised dependency-edge set, and each task's slot access
    sequence (sorted; program order within one task body is already
    deterministic). Worker ids, seq stamps, and wall times are dropped.
    """
    if isinstance(trace, ExecTrace):
        events = trace.sorted_events()
    else:
        events = sorted(trace, key=lambda e: e.seq)
    scratch: list[RaceFinding] = []
    segments = _split_segments(events, scratch)
    normal: list[dict[str, object]] = []
    for seg in segments:
        edges: set[tuple[int, int]] = set()
        tasks: set[int] = set()
        slot_ops: dict[int, list[tuple[str, str, int, int]]] = {}
        for e in seg.events:
            if e.kind == "dep_dec":
                edges.add((e.task, e.target))
            elif e.kind in ("task_start", "task_end", "task_error"):
                tasks.add(e.task)
            elif e.kind in ("slot_write", "slot_read", "slot_consume"):
                slot_ops.setdefault(e.task, []).append(
                    (e.kind, e.slot, e.lo, e.hi)
                )
        normal.append(
            {
                "label": seg.label,
                "n_tasks": seg.n_tasks,
                "aborted": seg.aborted,
                "tasks": sorted(tasks),
                "edges": sorted(edges),
                "slot_ops": {
                    t: sorted(ops) for t, ops in sorted(slot_ops.items())
                },
            }
        )
    return normal


def check_determinism(
    traces: Sequence[ExecTrace | Iterable[ExecEvent]],
    labels: Sequence[str] | None = None,
) -> RaceReport:
    """Audit that every trace in *traces* normalizes identically.

    Pass traces of the same computation taken at different worker counts
    (or fuzzed schedules); any divergence in task sets, dependency edges,
    or per-task slot access sequences is a ``nondeterminism`` finding
    against the first trace (the reference).
    """
    report = RaceReport()
    if len(traces) < 2:
        return report
    if labels is None:
        labels = [f"run{i}" for i in range(len(traces))]
    ref = normalize_trace(traces[0])
    for i, other in enumerate(traces[1:], start=1):
        norm = normalize_trace(other)
        diff = _describe_divergence(ref, norm)
        if diff is not None:
            report.findings.append(
                RaceFinding(
                    code="nondeterminism",
                    severity=ERROR,
                    message=(
                        f"{labels[i]} diverges from {labels[0]}: {diff}"
                    ),
                )
            )
    return report


def _describe_divergence(
    ref: list[dict[str, object]], other: list[dict[str, object]]
) -> str | None:
    """First human-readable difference between two normalized traces."""
    if len(ref) != len(other):
        return f"{len(other)} graph run(s) vs {len(ref)}"
    for i, (a, b) in enumerate(zip(ref, other)):
        for key in ("label", "n_tasks", "aborted", "tasks", "edges"):
            if a[key] != b[key]:
                return f"segment {i} ({a['label']}): {key} differ"
        if a["slot_ops"] != b["slot_ops"]:
            ops_a: dict = a["slot_ops"]  # type: ignore[assignment]
            ops_b: dict = b["slot_ops"]  # type: ignore[assignment]
            for t in sorted(set(ops_a) | set(ops_b)):
                if ops_a.get(t) != ops_b.get(t):
                    return (
                        f"segment {i} ({a['label']}): task {t} slot "
                        f"accesses differ ({ops_a.get(t)} vs {ops_b.get(t)})"
                    )
    return None
