"""Project-specific static analysis (AST lint).

Each rule is a small class with a stable ID, scoped by the dotted module
path inferred from the file location (``src/repro/mf/numeric.py`` →
``repro.mf.numeric``). Findings carry file/line/column evidence and can be
suppressed inline with ``# repro: noqa[RP001]``, a comma-separated list
``# repro: noqa[RP001,RP004]``, or ``# repro: noqa`` for all rules, on
the offending line. Malformed bracket contents suppress nothing (they
never blanket-suppress).

Rule catalog
------------
RP001  no bare ``except`` and no silently-swallowed broad handlers
RP002  no mutation of CSR/CSC index arrays outside :mod:`repro.sparse`
RP003  numpy dtype discipline in kernel packages (mf, sparse, symbolic)
RP004  no ``print`` in library code (CLI excluded)
RP005  package ``__init__`` modules must declare ``__all__``
RP006  unused imports (``__all__``-aware; ``__init__`` re-exports exempt)
RP007  no direct ``time.perf_counter()`` outside timing/observability code
RP008  no raw threading / concurrent.futures outside :mod:`repro.exec`
RP009  shared-mutable-state discipline in :mod:`repro.exec` (no
       module-level mutable containers, no ``global`` rebinding)
RP010  lock discipline: primitives constructed only in
       :mod:`repro.exec.pool` (or via ``make_lock``), ``with``-statement
       acquisition only — no bare ``acquire``/``release``

Run via ``python -m repro.cli check --lint [PATHS…]`` or
:func:`lint_paths`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.util.errors import LintError

__all__ = [
    "LintFinding",
    "LintContext",
    "LintRule",
    "DEFAULT_RULES",
    "RULE_CATALOG",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: the bracket group is permissive on purpose — anything inside ``[...]``
#: is captured and tokenized by ``_suppressed``, so a malformed list
#: (``noqa[RP001;bogus]``) suppresses only what parses as a rule id
#: instead of falling back to suppress-everything.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<ids>[^\]]*)\])?", re.IGNORECASE
)

#: separators tolerated inside a noqa rule list: commas (canonical),
#: whitespace, and semicolons
_NOQA_SPLIT_RE = re.compile(r"[,;\s]+")

#: packages whose kernels must use the canonical dtypes (RP003)
KERNEL_PACKAGES = ("repro.mf", "repro.sparse", "repro.symbolic")

#: dtype spellings allowed in kernel code: the canonical int64/float64
#: pair, float32 (the mixed-precision working dtype), booleans, and float
#: (always float64 in numpy) — notably absent: platform-dependent ``int``
#: and every width below float32.
ALLOWED_DTYPES = frozenset(
    {
        "int64",
        "float64",
        "float32",
        "bool",
        "bool_",
        "float",
        "intp",
        "INDEX_DTYPE",
        "VALUE_DTYPE",
        "complex128",
    }
)

#: lower-case spellings and struct codes equivalent to the allowed dtypes
_ALLOWED_CANON = frozenset(
    {
        "int64",
        "float64",
        "float32",
        "bool",
        "bool_",
        "float",
        "intp",
        "complex128",
        "i8",
        "f8",
        "f4",
        "?",
    }
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintContext:
    """Everything a rule sees about one source file."""

    path: str
    #: dotted module path ("repro.mf.numeric"); "" when not under repro
    module: str
    tree: ast.Module
    lines: tuple[str, ...]

    @property
    def in_repro(self) -> bool:
        return self.module == "repro" or self.module.startswith("repro.")

    @property
    def is_package_init(self) -> bool:
        return Path(self.path).name == "__init__.py"


class LintRule:
    """Base class: subclasses set ``id``/``title`` and yield findings."""

    id: str = "RP000"
    title: str = ""

    def applies(self, ctx: LintContext) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(
        self, ctx: LintContext, node: ast.AST, message: str
    ) -> LintFinding:
        return LintFinding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# -- RP001 -------------------------------------------------------------------


def _handler_type_names(node: ast.ExceptHandler) -> list[str]:
    """Terminal names of the exception types a handler catches."""
    expr = node.type
    exprs: list[ast.expr]
    if expr is None:
        return []
    exprs = list(expr.elts) if isinstance(expr, ast.Tuple) else [expr]
    names = []
    for e in exprs:
        if isinstance(e, ast.Name):
            names.append(e.id)
        elif isinstance(e, ast.Attribute):
            names.append(e.attr)
    return names


class NoSwallowedExceptRule(LintRule):
    """RP001: no bare ``except``; broad handlers must re-raise.

    A bare ``except:`` is always flagged. ``except Exception`` /
    ``except BaseException`` is flagged when the handler body contains no
    ``raise`` — a silently-swallowed catch-all hides real failures (the
    retry paths in the serving layer must catch the typed
    :class:`~repro.util.errors.ReproError` hierarchy instead).
    """

    id = "RP001"
    title = "bare or swallowed broad except"

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:' — name the exception types"
                )
                continue
            broad = {"Exception", "BaseException"} & set(
                _handler_type_names(node)
            )
            if broad and not any(
                isinstance(inner, ast.Raise)
                for stmt in node.body
                for inner in ast.walk(stmt)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"'except {sorted(broad)[0]}' swallows the error — "
                    "re-raise or catch a typed ReproError subclass",
                )


# -- RP002 -------------------------------------------------------------------

_INDEX_ATTRS = frozenset({"indptr", "indices"})
#: ndarray methods that mutate in place
_MUTATING_METHODS = frozenset({"sort", "fill", "resize", "put", "partition"})


def _index_attr(expr: ast.expr) -> ast.Attribute | None:
    """The ``x.indptr`` / ``x.indices`` attribute inside an lvalue, if any.

    Recognizes direct rebinds (``m.indptr = …``), element stores
    (``m.indices[k] = …``), and slice stores. ``self.indptr = …`` is
    exempt: a class initializing its *own* attributes is construction,
    not corruption of a shared pattern.
    """
    if isinstance(expr, ast.Attribute) and expr.attr in _INDEX_ATTRS:
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return None
        return expr
    if isinstance(expr, ast.Subscript):
        return _index_attr(expr.value)
    return None


class NoIndexMutationRule(LintRule):
    """RP002: CSR/CSC index arrays are immutable outside :mod:`repro.sparse`.

    The analysis cache, refactorization paths, and the simulator all share
    pattern structures by reference; in-place edits to ``indptr`` /
    ``indices`` anywhere but the sparse kernels silently corrupt every
    holder of the pattern.
    """

    id = "RP002"
    title = "index-array mutation outside repro.sparse"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro and not ctx.module.startswith("repro.sparse")

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in _MUTATING_METHODS
                    and _index_attr(f.value) is not None
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"in-place '{f.attr}()' on a CSR/CSC index array — "
                        "copy it or do this inside repro.sparse",
                    )
                continue
            for t in targets:
                attr = _index_attr(t)
                if attr is not None:
                    yield self.finding(
                        ctx,
                        attr,
                        f"assignment to '.{attr.attr}' outside repro.sparse "
                        "— build a new matrix instead of mutating the "
                        "shared pattern",
                    )


# -- RP003 -------------------------------------------------------------------


def _dtype_name(expr: ast.expr) -> str | None:
    """Best-effort name of an explicit dtype argument; None = not literal
    enough to judge (left alone)."""
    if isinstance(expr, ast.Name):
        # A variable named `dtype`/`wdtype`/… carries a dtype chosen (and
        # validated) elsewhere — e.g. `work_dtype(precision)` — the same
        # dynamic-passthrough situation as the `x.dtype` attribute below.
        return None if expr.id.lower().endswith("dtype") else expr.id
    if isinstance(expr, ast.Attribute):
        # `x.dtype` is a dynamic passthrough of an existing array's dtype,
        # not a literal choice — leave it alone.
        return None if expr.attr == "dtype" else expr.attr
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


class KernelDtypeRule(LintRule):
    """RP003: kernel packages use the canonical dtypes.

    Index arrays are int64 (``repro.util.validation.INDEX_DTYPE``); values
    are float64 (``VALUE_DTYPE``) or float32, the two working precisions
    of the mixed-precision regime (``repro.util.validation.WORK_DTYPES``).
    Anything narrower or platform-dependent (``int32``, ``float16``,
    plain ``int``, ``"i4"``…) changes answer bits and overflows on
    paper-scale problems.
    """

    id = "RP003"
    title = "non-canonical dtype in kernel code"

    def applies(self, ctx: LintContext) -> bool:
        return any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in KERNEL_PACKAGES
        )

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "dtype":
                    continue
                name = _dtype_name(kw.value)
                if name is None:
                    continue
                canon = name.lower().lstrip("<>=|")
                if name in ALLOWED_DTYPES or canon in _ALLOWED_CANON:
                    continue
                yield self.finding(
                    ctx,
                    kw.value,
                    f"dtype={name!r} in a kernel — use INDEX_DTYPE (int64), "
                    "VALUE_DTYPE (float64), or a WORK_DTYPES precision "
                    "from repro.util.validation",
                )


# -- RP004 -------------------------------------------------------------------


class NoPrintRule(LintRule):
    """RP004: no ``print`` in library code.

    Reporting goes through return values and the CLI/analysis layers;
    stray prints corrupt the machine-readable output of ``repro.cli``
    subcommands (tables, traces) when the library runs underneath them.
    """

    id = "RP004"
    title = "print() in library code"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro and ctx.module != "repro.cli"

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code — return data or raise; only "
                    "repro.cli talks to stdout",
                )


# -- RP005 -------------------------------------------------------------------


class InitNeedsAllRule(LintRule):
    """RP005: package ``__init__`` modules declare ``__all__``.

    The package ``__init__`` files are the public API surface; an explicit
    ``__all__`` keeps re-exports deliberate and lets RP006 distinguish
    re-exports from dead imports.
    """

    id = "RP005"
    title = "package __init__ without __all__"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_package_init and bool(ctx.tree.body)

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        has_content = any(
            isinstance(n, (ast.Import, ast.ImportFrom, ast.FunctionDef, ast.ClassDef))
            for n in ctx.tree.body
        )
        if not has_content:
            return
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                return
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "__all__"
            ):
                return
        yield self.finding(
            ctx,
            ctx.tree.body[0],
            "public package __init__ must declare __all__",
        )


# -- RP006 -------------------------------------------------------------------


class UnusedImportRule(LintRule):
    """RP006: unused imports.

    A binding introduced by ``import``/``from … import`` must be
    referenced by name, listed in ``__all__``, or re-exported via the
    ``import x as x`` convention. Package ``__init__`` modules are exempt
    (their imports *are* the API). ``from __future__`` and ``import *``
    are ignored.
    """

    id = "RP006"
    title = "unused import"

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.is_package_init

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        imported: list[tuple[str, str, ast.AST]] = []  # (binding, shown, node)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bind = alias.asname or alias.name.split(".")[0]
                    imported.append((bind, alias.name, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if alias.asname == alias.name:
                        continue  # explicit re-export convention
                    bind = alias.asname or alias.name
                    imported.append((bind, alias.name, node))
        if not imported:
            return
        used: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                base = node.value
                while isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name):
                    used.add(base.id)
        exported = _declared_all(ctx.tree)
        for bind, shown, node in imported:
            if bind in used or bind in exported:
                continue
            yield self.finding(
                ctx,
                node,
                f"'{shown}' imported but unused",
            )


def _declared_all(tree: ast.Module) -> set[str]:
    """String entries of a top-level ``__all__`` list/tuple, if present."""
    for node in tree.body:
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            value = node.value
        if value is not None and isinstance(value, (ast.List, ast.Tuple)):
            return {
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
    return set()


# -- RP007 -------------------------------------------------------------------

#: modules allowed to call the raw clock: the timing helper itself and the
#: observability layer that funnels everything else
_CLOCK_EXEMPT_PREFIXES = ("repro.util.timing", "repro.obs")

_CLOCK_CALLS = frozenset({"perf_counter", "perf_counter_ns"})


class NoDirectPerfCounterRule(LintRule):
    """RP007: no direct ``time.perf_counter()`` in library code.

    Host timing must flow through :class:`repro.util.timing.WallTimer`,
    :func:`repro.obs.spans.span`, or the profile's ``clock`` hook so that
    every measurement is visible to the observability layer (and so the
    disabled path stays clock-free). Only ``repro.util.timing`` and
    ``repro.obs`` itself may touch the raw clock.
    """

    id = "RP007"
    title = "direct perf_counter() outside timing/obs"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro and not any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in _CLOCK_EXEMPT_PREFIXES
        )

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            name: str | None = None
            if isinstance(f, ast.Attribute) and f.attr in _CLOCK_CALLS:
                name = f.attr
            elif isinstance(f, ast.Name) and f.id in _CLOCK_CALLS:
                name = f.id
            if name is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"direct {name}() — time through repro.obs spans or "
                    "repro.util.timing.WallTimer",
                )


# -- RP008 -------------------------------------------------------------------

#: the one package allowed to use raw thread primitives — the execution
#: backend that owns all shared-memory concurrency
_THREADING_EXEMPT_PREFIXES = ("repro.exec",)

#: module roots whose import anywhere else indicates ad-hoc concurrency
_THREADING_MODULES = frozenset(
    {"threading", "_thread", "concurrent", "multiprocessing", "queue"}
)


class NoRawThreadingRule(LintRule):
    """RP008: raw thread primitives live only in :mod:`repro.exec`.

    The bitwise-oracle contract of the threads backend holds because all
    shared-memory concurrency is concentrated in one audited worker pool
    (:mod:`repro.exec.pool`). An ad-hoc ``threading.Thread`` or
    ``ThreadPoolExecutor`` elsewhere reintroduces scheduling-dependent
    operation orders — and answer bits — that no test would pin down.
    Route parallel work through ``SparseSolver(..., backend="threads")``
    or the :class:`repro.exec.pool.TaskPool` API instead.
    """

    id = "RP008"
    title = "raw threading outside repro.exec"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro and not any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in _THREADING_EXEMPT_PREFIXES
        )

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        for node in ast.walk(ctx.tree):
            names: list[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            for name in names:
                root = name.split(".")[0]
                if root in _THREADING_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import of {name!r} outside repro.exec — all "
                        "shared-memory concurrency goes through the "
                        "repro.exec worker pool (backend='threads')",
                    )


# -- RP009 -------------------------------------------------------------------

#: immutable value expressions allowed at module level in repro.exec
_IMMUTABLE_CALLS = frozenset({"frozenset", "tuple", "int", "float", "str", "bool"})


def _mutable_container_expr(expr: ast.expr) -> str | None:
    """The kind of mutable container *expr* builds, or None."""
    if isinstance(expr, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("list", "dict", "set", "bytearray", "deque", "defaultdict"):
            return expr.func.id
    return None


class SharedMutableStateRule(LintRule):
    """RP009: shared-mutable-state discipline in :mod:`repro.exec`.

    Task bodies run on concurrent worker threads; any module-level
    mutable container (list/dict/set, ``defaultdict``…) in the execution
    backend is shared by *every* pool run in the process and is exactly
    the kind of state a schedule-dependent write order corrupts. The
    sanctioned patterns are function-local state captured by task
    closures (per-run by construction), per-slot ownership partitioning,
    and ``_RunState`` fields guarded by the pool's condition variable.
    ``global`` rebinding anywhere in the package is flagged for the same
    reason. Annotated module *constants* (tuples, frozensets, numbers)
    stay fine.
    """

    id = "RP009"
    title = "module-level mutable state in repro.exec"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.module == "repro.exec" or ctx.module.startswith("repro.exec.")

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        for node in ctx.tree.body:
            value: ast.expr | None = None
            names: list[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                if isinstance(node.target, ast.Name):
                    names = [node.target.id]
            if value is None or not names:
                continue
            if names == ["__all__"]:
                continue
            kind = _mutable_container_expr(value)
            if kind is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"module-level mutable {kind} {names[0]!r} in the "
                    "execution backend — shared across every worker and "
                    "pool run; keep mutable state function-local (task "
                    "closures) or inside the lock-guarded _RunState",
                )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    f"'global {', '.join(node.names)}' in the execution "
                    "backend — rebinding module state from task bodies is "
                    "schedule-dependent; thread state through _RunState "
                    "or closures",
                )


# -- RP010 -------------------------------------------------------------------

#: thread-synchronization primitive constructors; building one of these
#: anywhere but repro.exec.pool (which wraps them behind make_lock and the
#: pool's own condition variable) evades the audited lock discipline
_SYNC_PRIMITIVES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
    }
)

#: the one module allowed to construct thread primitives
_LOCK_HOME = "repro.exec.pool"


class LockDisciplineRule(LintRule):
    """RP010: locks come from the pool, are scoped by ``with``, only.

    Two checks across the whole library:

    * **construction** — ``threading.Lock()`` / ``Condition()`` / … may
      only be built inside :mod:`repro.exec.pool`; everything else calls
      :func:`repro.exec.pool.make_lock` so each primitive's provenance is
      auditable in one file;
    * **acquisition** — no bare ``.acquire()`` / ``.release()`` calls
      anywhere: un-scoped acquisition leaks the lock on any exception
      path between the two calls. ``with lock:`` is the only sanctioned
      form (``Condition.wait``/``notify`` are fine — they require the
      ``with`` block already).
    """

    id = "RP010"
    title = "unsanctioned lock construction or bare acquire/release"

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_repro

    def check(self, ctx: LintContext) -> Iterator[LintFinding]:
        in_lock_home = ctx.module == _LOCK_HOME
        # Names bound by `from threading import X` (so a bare `Lock()`
        # call can be attributed to the threading module).
        from_threading: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "threading":
                for alias in node.names:
                    from_threading.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if isinstance(f, ast.Attribute):
                if f.attr in ("acquire", "release"):
                    yield self.finding(
                        ctx,
                        node,
                        f"bare '.{f.attr}()' — acquisition must be "
                        "'with'-statement scoped (a raised exception "
                        "between acquire and release leaks the lock)",
                    )
                    continue
                if (
                    not in_lock_home
                    and f.attr in _SYNC_PRIMITIVES
                    and isinstance(f.value, ast.Name)
                    and f.value.id == "threading"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"threading.{f.attr}() constructed outside "
                        f"{_LOCK_HOME} — obtain locks via "
                        "repro.exec.pool.make_lock()",
                    )
            elif (
                isinstance(f, ast.Name)
                and not in_lock_home
                and f.id in _SYNC_PRIMITIVES
                and f.id in from_threading
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{f.id}() (from threading) constructed outside "
                    f"{_LOCK_HOME} — obtain locks via "
                    "repro.exec.pool.make_lock()",
                )


# -- engine ------------------------------------------------------------------

DEFAULT_RULES: tuple[type[LintRule], ...] = (
    NoSwallowedExceptRule,
    NoIndexMutationRule,
    KernelDtypeRule,
    NoPrintRule,
    InitNeedsAllRule,
    UnusedImportRule,
    NoDirectPerfCounterRule,
    NoRawThreadingRule,
    SharedMutableStateRule,
    LockDisciplineRule,
)

#: id → one-line description (the DESIGN.md rule catalog is generated
#: from the docstrings; this is the quick runtime form)
RULE_CATALOG: dict[str, str] = {
    r.id: (r.__doc__ or r.title).strip().splitlines()[0] for r in DEFAULT_RULES
}


def module_name_for(path: Path) -> str:
    """Dotted module path inferred from a file location.

    Uses the last ``repro`` component in the path as the package root;
    files outside a ``repro`` tree get "" (repo-scoped rules skip them —
    pass ``module=`` to :func:`lint_source` to override).
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return ""


def _suppressed(finding: LintFinding, lines: Sequence[str]) -> bool:
    if not (1 <= finding.line <= len(lines)):
        return False
    m = _NOQA_RE.search(lines[finding.line - 1])
    if not m:
        return False
    ids = m.group("ids")
    if ids is None:
        return True  # bare "# repro: noqa" suppresses every rule
    # Empty or malformed brackets suppress nothing: only tokens that look
    # like rule ids count, so "noqa[]" or "noqa[bogus]" cannot silently
    # blanket-suppress a line.
    wanted = {
        tok.upper()
        for tok in _NOQA_SPLIT_RE.split(ids)
        if re.fullmatch(r"RP\d{3}", tok, re.IGNORECASE)
    }
    return finding.rule.upper() in wanted


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Iterable[type[LintRule]] | None = None,
) -> list[LintFinding]:
    """Lint one source string; returns unsuppressed findings in line order."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc}") from exc
    lines = tuple(source.splitlines())
    ctx = LintContext(
        path=path,
        module=module if module is not None else module_name_for(Path(path)),
        tree=tree,
        lines=lines,
    )
    findings: list[LintFinding] = []
    for rule_cls in rules or DEFAULT_RULES:
        rule = rule_cls()
        if not rule.applies(ctx):
            continue
        for f in rule.check(ctx):
            if not _suppressed(f, lines):
                findings.append(f)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str | Path,
    module: str | None = None,
    rules: Iterable[type[LintRule]] | None = None,
) -> list[LintFinding]:
    """Lint one file (see :func:`lint_source`)."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {p}: {exc}") from exc
    return lint_source(source, path=str(p), module=module, rules=rules)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[type[LintRule]] | None = None,
) -> list[LintFinding]:
    """Lint files and directory trees (``*.py``, sorted, deduplicated)."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen: set[Path] = set()
    findings: list[LintFinding] = []
    for f in files:
        key = f.resolve()
        if key in seen:
            continue
        seen.add(key)
        findings.extend(lint_file(f, rules=rules))
    return findings
