"""Correctness tooling: static analysis, comm-trace checking, sanitizers.

Three passes, one CLI (``python -m repro.cli check``):

* :mod:`repro.check.lint` — project-specific AST lint (rules RP001…RP010)
  with inline ``# repro: noqa[RPxxx]`` suppression (comma-separated rule
  lists supported);
* :mod:`repro.check.commcheck` — replays a :class:`~repro.simmpi.trace.
  CommTrace` and flags unmatched messages, conservation violations,
  wait-for cycles (deadlock), and order-nondeterministic receive pairs;
* :mod:`repro.check.racecheck` — replays an
  :class:`~repro.exec.trace.ExecTrace` through a happens-before engine
  and flags unordered conflicting slot accesses, conservation violations
  (a contribution not produced/consumed exactly once), and
  schedule-nondeterminism between runs;
* :mod:`repro.check.schedfuzz` — seeded adversarial schedule fuzzing of
  the :class:`~repro.exec.pool.TaskPool` (ready-queue permutations,
  forced preemptions, injected delays), replayable byte-for-byte;
* :mod:`repro.check.sanitize` — debug-mode invariant checks (CSR/CSC
  well-formedness, permutation validity, etree acyclicity/postorder,
  supernode coverage, frontal-stack balance, ledger conservation) hooked
  into hot paths behind ``REPRO_CHECK=1``;
* :mod:`repro.check.selftest` — embedded known-bad fixtures proving every
  checker still fires (the CI gate).

Submodules are imported lazily: the sanitizer is consulted from low-level
hot paths (sparse constructors, the simulator), so this package must be
importable without dragging in the rest of the library.
"""

from __future__ import annotations

import importlib
from typing import Any

__all__ = ["lint", "commcheck", "racecheck", "schedfuzz", "sanitize", "selftest"]

_SUBMODULES = frozenset(__all__)


def __getattr__(name: str) -> Any:
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.check.{name}")
    raise AttributeError(f"module 'repro.check' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(_SUBMODULES)
