"""Built-in self-test of the check subsystem.

Runs every analysis pass against embedded *known-bad* inputs and verifies
each one is caught (and that known-good twins pass). This is the fast CI
gate proving the checkers themselves work — a linter that silently stops
firing is worse than no linter.

Invoked by ``python -m repro.cli check --self-test``; returns structured
results so tests can assert on individual cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.check import commcheck, lint, racecheck, schedfuzz
from repro.check import sanitize
from repro.exec.trace import ExecTrace
from repro.simmpi.ledger import MessageLedger
from repro.simmpi.trace import CommTrace
from repro.util.errors import InvariantError

__all__ = ["SelfTestResult", "run_self_test"]


@dataclass(frozen=True)
class SelfTestResult:
    name: str
    passed: bool
    detail: str = ""

    def format(self) -> str:
        mark = "ok" if self.passed else "FAIL"
        tail = f" — {self.detail}" if self.detail and not self.passed else ""
        return f"  [{mark:4s}] {self.name}{tail}"


# -- lint fixtures (seeded violations, one per rule) -------------------------

_LINT_CASES: tuple[tuple[str, str, str, str, int], ...] = (
    # (rule id, module, path, source, expected finding count)
    (
        "RP001",
        "repro.service.fixture",
        "<selftest>",
        "try:\n    risky()\nexcept:\n    pass\n",
        1,
    ),
    (
        "RP001",
        "repro.service.fixture",
        "<selftest>",
        "try:\n    risky()\nexcept Exception:\n    log()\n",
        1,
    ),
    (
        "RP002",
        "repro.mf.fixture",
        "<selftest>",
        "def f(m):\n    m.indptr[0] = 1\n",
        1,
    ),
    (
        "RP003",
        "repro.sparse.fixture",
        "<selftest>",
        "import numpy as np\n\n"
        "def f():\n    return np.zeros(3, dtype=np.int32)\n",
        1,
    ),
    # The two-precision regime: float16 stays banned in kernels…
    (
        "RP003",
        "repro.mf.fixture",
        "<selftest>",
        "import numpy as np\n\n"
        "def f():\n    return np.zeros(3, dtype=np.float16)\n",
        1,
    ),
    # …while float32 (the mixed-precision working dtype) is allowed, both
    # spelled literally and threaded through a `*dtype` variable.
    (
        "RP003",
        "repro.mf.fixture",
        "<selftest>",
        "import numpy as np\n\n"
        "def f():\n    return np.zeros(3, dtype=np.float32)\n",
        0,
    ),
    (
        "RP003",
        "repro.mf.fixture",
        "<selftest>",
        "import numpy as np\n\n"
        "def f(wdtype):\n    return np.zeros(3, dtype=wdtype)\n",
        0,
    ),
    (
        "RP004",
        "repro.mf.fixture",
        "<selftest>",
        "def f(x):\n    print(x)\n",
        1,
    ),
    (
        "RP005",
        "repro.fixture",
        "fixture/__init__.py",
        "from repro.util.errors import ReproError\n",
        1,
    ),
    (
        "RP006",
        "repro.util.fixture",
        "<selftest>",
        "import os\n\n\ndef f() -> int:\n    return 1\n",
        1,
    ),
    (
        "RP007",
        "repro.mf.fixture",
        "<selftest>",
        "import time\n\n\ndef f() -> float:\n    return time.perf_counter()\n",
        1,
    ),
    (
        "RP008",
        "repro.service.fixture",
        "<selftest>",
        "import threading\n\n\ndef f():\n    return threading.Lock()\n",
        1,
    ),
    (
        "RP008",
        "repro.mf.fixture",
        "<selftest>",
        "from concurrent.futures import ThreadPoolExecutor as TPE\n\n\n"
        "def f(tasks):\n    with TPE(4) as ex:\n"
        "        return list(ex.map(str, tasks))\n",
        1,
    ),
    # Shared-mutable-state discipline in the execution backend…
    (
        "RP009",
        "repro.exec.fixture",
        "<selftest>",
        "PENDING = {}\n\n\ndef f(tid):\n    PENDING[tid] = True\n",
        1,
    ),
    (
        "RP009",
        "repro.exec.fixture",
        "<selftest>",
        "COUNT = 0\n\n\ndef f():\n    global COUNT\n    COUNT += 1\n",
        1,
    ),
    # …while immutable module constants stay fine.
    (
        "RP009",
        "repro.exec.fixture",
        "<selftest>",
        "KINDS = ('a', 'b')\nLIMIT = 8\n",
        0,
    ),
    # Lock discipline: bare acquisition, unsanctioned construction…
    (
        "RP010",
        "repro.exec.fixture",
        "<selftest>",
        "def f(lock):\n    lock.acquire()\n    try:\n        pass\n"
        "    finally:\n        lock.release()\n",
        2,
    ),
    (
        "RP010",
        "repro.exec.fixture",
        "<selftest>",
        "import threading\n\n\ndef f():\n    return threading.Lock()\n",
        1,
    ),
    (
        "RP010",
        "repro.service.fixture",
        "<selftest>",
        "from threading import Condition\n\n\ndef f():\n    return Condition()\n",
        1,
    ),
    # …while the pool module itself (and make_lock users) stay clean.
    (
        "RP010",
        "repro.exec.pool",
        "<selftest>",
        "import threading\n\n\ndef make():\n    return threading.Lock()\n",
        0,
    ),
    (
        "RP010",
        "repro.exec.fixture",
        "<selftest>",
        "from repro.exec.pool import make_lock\n\n\n"
        "def f():\n    lock = make_lock()\n    with lock:\n        pass\n",
        0,
    ),
)

_CLEAN_SOURCE = (
    "import os\n\n\n"
    "def f(m) -> str:\n"
    "    try:\n"
    "        return os.fspath(m)\n"
    "    except TypeError:\n"
    "        raise\n"
)

_SUPPRESSED_SOURCE = "def f(x):\n    print(x)  # repro: noqa[RP004]\n"

#: one line violating RP004 *and* RP007, suppressed by a comma-separated
#: rule list (with a space after the comma, the common hand-written form)
_COMMA_SUPPRESSED_SOURCE = (
    "from time import perf_counter\n\n\n"
    "def f(x):\n"
    "    print(x, perf_counter())  # repro: noqa[RP004, RP007]\n"
)

#: same two violations, but the list names only one of them
_PARTIAL_SUPPRESSED_SOURCE = (
    "from time import perf_counter\n\n\n"
    "def f(x):\n"
    "    print(x, perf_counter())  # repro: noqa[RP004]\n"
)

#: malformed bracket contents must suppress nothing (historically the
#: bracket group failed to match and the bare-noqa fallback suppressed
#: every rule on the line)
_MALFORMED_NOQA_SOURCE = "def f(x):\n    print(x)  # repro: noqa[bogus!]\n"


def _lint_results() -> list[SelfTestResult]:
    results = []
    for rule_id, module, path, source, expected in _LINT_CASES:
        found = lint.lint_source(source, path=path, module=module)
        hits = [f for f in found if f.rule == rule_id]
        verb = "catches seeded violation" if expected else "accepts allowed pattern"
        results.append(
            SelfTestResult(
                name=f"lint {rule_id} {verb}",
                passed=len(hits) == expected,
                detail=f"expected {expected} {rule_id}, got {len(hits)} "
                f"({[f.rule for f in found]})",
            )
        )
    clean = lint.lint_source(
        _CLEAN_SOURCE, path="<selftest>", module="repro.util.fixture"
    )
    results.append(
        SelfTestResult(
            name="lint passes clean source",
            passed=not clean,
            detail="; ".join(f.format() for f in clean),
        )
    )
    suppressed = lint.lint_source(
        _SUPPRESSED_SOURCE, path="<selftest>", module="repro.mf.fixture"
    )
    results.append(
        SelfTestResult(
            name="lint honors inline noqa suppression",
            passed=not suppressed,
            detail="; ".join(f.format() for f in suppressed),
        )
    )
    comma = lint.lint_source(
        _COMMA_SUPPRESSED_SOURCE, path="<selftest>", module="repro.mf.fixture"
    )
    results.append(
        SelfTestResult(
            name="lint honors comma-separated noqa rule list",
            passed=not comma,
            detail="; ".join(f.format() for f in comma),
        )
    )
    partial = lint.lint_source(
        _PARTIAL_SUPPRESSED_SOURCE,
        path="<selftest>",
        module="repro.mf.fixture",
    )
    results.append(
        SelfTestResult(
            name="lint noqa list suppresses only the named rules",
            passed=[f.rule for f in partial] == ["RP007"],
            detail="; ".join(f.format() for f in partial) or "nothing fired",
        )
    )
    malformed = lint.lint_source(
        _MALFORMED_NOQA_SOURCE, path="<selftest>", module="repro.mf.fixture"
    )
    results.append(
        SelfTestResult(
            name="lint malformed noqa brackets suppress nothing",
            passed=[f.rule for f in malformed] == ["RP004"],
            detail="; ".join(f.format() for f in malformed) or "nothing fired",
        )
    )
    return results


# -- commcheck fixtures ------------------------------------------------------


def _deadlock_trace() -> CommTrace:
    """Two ranks, each blocked receiving from the other; nothing sent."""
    t = CommTrace()
    t.add("block", 0.0, rank=0, peer=1, tag="t")
    t.add("block", 0.0, rank=1, peer=0, tag="t")
    return t


def _race_trace() -> CommTrace:
    """Two same-key messages in flight when the receive matches."""
    t = CommTrace()
    t.add("send", 0.0, rank=0, peer=1, tag="dup", nbytes=8)
    t.add("send", 1.0, rank=0, peer=1, tag="dup", nbytes=8)
    t.add("recv", 2.0, rank=1, peer=0, tag="dup", nbytes=8)
    t.add("recv", 3.0, rank=1, peer=0, tag="dup", nbytes=8)
    return t


def _lost_message_trace() -> CommTrace:
    t = CommTrace()
    t.add("send", 0.0, rank=0, peer=1, tag="x", nbytes=8)
    return t


def _clean_trace() -> CommTrace:
    t = CommTrace()
    t.add("send", 0.0, rank=0, peer=1, tag="a", nbytes=8)
    t.add("recv", 1.0, rank=1, peer=0, tag="a", nbytes=8)
    t.add("send", 1.5, rank=1, peer=0, tag="b", nbytes=16)
    t.add("recv", 2.0, rank=0, peer=1, tag="b", nbytes=16)
    return t


def _commcheck_results() -> list[SelfTestResult]:
    cases: tuple[tuple[str, CommTrace, str, bool], ...] = (
        ("deadlock", _deadlock_trace(), "deadlock", False),
        ("lost message", _lost_message_trace(), "unmatched-send", False),
        ("receive race", _race_trace(), "race", True),
    )
    results = []
    for name, trace, code, ok_expected in cases:
        report = commcheck.check_trace(trace)
        caught = any(f.code == code for f in report.findings)
        results.append(
            SelfTestResult(
                name=f"commcheck flags {name} trace",
                passed=caught and report.ok == ok_expected,
                detail=report.summary(),
            )
        )
    clean = commcheck.check_trace(_clean_trace())
    results.append(
        SelfTestResult(
            name="commcheck passes clean trace",
            passed=clean.ok and not clean.findings,
            detail=clean.summary(),
        )
    )
    bad_ledger = MessageLedger(2)
    bad_ledger.record_send(0, 1, 100, 1)  # sent but never received
    results.append(
        SelfTestResult(
            name="commcheck flags ledger conservation violation",
            passed=bool(commcheck.check_ledger(bad_ledger)),
        )
    )
    good_ledger = MessageLedger(2)
    good_ledger.record_send(0, 1, 100, 1)
    good_ledger.record_recv(1, 100)
    results.append(
        SelfTestResult(
            name="commcheck passes conserving ledger",
            passed=not commcheck.check_ledger(good_ledger),
        )
    )
    return results


# -- racecheck fixtures ------------------------------------------------------


def _clean_exec_trace() -> ExecTrace:
    """Two tasks: 0 publishes, the dep edge orders 1's consume after."""
    t = ExecTrace()
    t.add("graph_begin", target=2, label="fix")
    t.add("task_start", task=0, worker=0)
    t.add("slot_write", task=0, slot="upd:0")
    t.add("task_end", task=0, worker=0)
    t.add("dep_dec", task=0, target=1, remaining=0)
    t.add("task_start", task=1, worker=1)
    t.add("slot_consume", task=1, slot="upd:0")
    t.add("task_end", task=1, worker=1)
    t.add("graph_end", target=2, label="fix")
    return t


def _dropped_edge_trace() -> ExecTrace:
    """The clean trace minus its dependency edge: the write/consume pair
    is no longer ordered — exactly what a missed dep-count edge in the
    pool would record."""
    t = ExecTrace()
    t.add("graph_begin", target=2, label="fix")
    t.add("task_start", task=0, worker=0)
    t.add("slot_write", task=0, slot="upd:0")
    t.add("task_end", task=0, worker=0)
    t.add("task_start", task=1, worker=1)
    t.add("slot_consume", task=1, slot="upd:0")
    t.add("task_end", task=1, worker=1)
    t.add("graph_end", target=2, label="fix")
    return t


def _double_consume_trace() -> ExecTrace:
    """Chain 0→1→2 (every access HB-ordered, so no race) but tasks 1 and
    2 both consume task 0's contribution: pure conservation violation."""
    t = ExecTrace()
    t.add("graph_begin", target=3, label="fix")
    t.add("task_start", task=0, worker=0)
    t.add("slot_write", task=0, slot="upd:0")
    t.add("task_end", task=0, worker=0)
    t.add("dep_dec", task=0, target=1, remaining=0)
    t.add("task_start", task=1, worker=0)
    t.add("slot_consume", task=1, slot="upd:0")
    t.add("task_end", task=1, worker=0)
    t.add("dep_dec", task=1, target=2, remaining=0)
    t.add("task_start", task=2, worker=0)
    t.add("slot_consume", task=2, slot="upd:0")
    t.add("task_end", task=2, worker=0)
    t.add("graph_end", target=3, label="fix")
    return t


def _unconsumed_trace() -> ExecTrace:
    """A published contribution nobody consumes."""
    t = ExecTrace()
    t.add("graph_begin", target=2, label="fix")
    t.add("task_start", task=0, worker=0)
    t.add("slot_write", task=0, slot="upd:0")
    t.add("task_end", task=0, worker=0)
    t.add("dep_dec", task=0, target=1, remaining=0)
    t.add("task_start", task=1, worker=0)
    t.add("task_end", task=1, worker=0)
    t.add("graph_end", target=2, label="fix")
    return t


def _racecheck_results() -> list[SelfTestResult]:
    cases: tuple[tuple[str, ExecTrace, str], ...] = (
        ("dropped dependency edge", _dropped_edge_trace(), "race"),
        ("double-consumed contribution", _double_consume_trace(), "double-consume"),
        ("unconsumed contribution", _unconsumed_trace(), "unconsumed"),
    )
    results = []
    for name, trace, code in cases:
        report = racecheck.check_exec_trace(trace)
        caught = any(f.code == code for f in report.errors)
        results.append(
            SelfTestResult(
                name=f"racecheck flags {name}",
                passed=caught and not report.ok,
                detail=report.summary(),
            )
        )
    clean = racecheck.check_exec_trace(_clean_exec_trace())
    results.append(
        SelfTestResult(
            name="racecheck passes clean trace",
            passed=clean.ok and not clean.findings,
            detail=clean.summary(),
        )
    )
    det = racecheck.check_determinism(
        [_clean_exec_trace(), _dropped_edge_trace()], labels=["ref", "dropped"]
    )
    results.append(
        SelfTestResult(
            name="racecheck determinism audit flags diverging traces",
            passed=any(f.code == "nondeterminism" for f in det.errors),
            detail=det.summary(),
        )
    )
    same = racecheck.check_determinism(
        [_clean_exec_trace(), _clean_exec_trace()], labels=["a", "b"]
    )
    results.append(
        SelfTestResult(
            name="racecheck determinism audit passes identical traces",
            passed=same.ok and not same.findings,
            detail=same.summary(),
        )
    )
    return results


# -- schedfuzz fixtures ------------------------------------------------------


def _schedfuzz_results() -> list[SelfTestResult]:
    """The fuzzer's replayability contract: same seed → same perturbation
    (and different seeds actually perturb differently)."""
    results = []
    cfg = schedfuzz.FuzzConfig(seed=42)
    a, b = schedfuzz.FuzzPlan(cfg), schedfuzz.FuzzPlan(cfg)
    tasks = range(64)
    same = all(
        a.ready_key(t, -1.0) == b.ready_key(t, -1.0)
        and a.requeue_key(t) == b.requeue_key(t)
        and a.delay(t) == b.delay(t)
        for t in tasks
    )
    results.append(
        SelfTestResult(name="schedfuzz same seed replays identically", passed=same)
    )
    other = schedfuzz.FuzzPlan(schedfuzz.FuzzConfig(seed=43))
    differs = any(
        a.ready_key(t, -1.0) != other.ready_key(t, -1.0) for t in tasks
    )
    results.append(
        SelfTestResult(name="schedfuzz seeds differ", passed=differs)
    )
    # The defer budget is bounded: a task can never be deferred forever.
    plan = schedfuzz.FuzzPlan(schedfuzz.FuzzConfig(seed=7, defer_prob=1.0))
    defers = sum(1 for _ in range(100) if plan.defer(5))
    results.append(
        SelfTestResult(
            name="schedfuzz defer budget is bounded",
            passed=defers == cfg.max_defers,
            detail=f"{defers} defers granted",
        )
    )
    return results


# -- sanitizer fixtures ------------------------------------------------------


class _FakeCSC:
    """Minimal duck-typed CSC for corruption fixtures."""

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: Sequence[int],
        indices: Sequence[int],
        data: Sequence[float],
    ) -> None:
        self.shape = shape
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)


def _sanitize_cases() -> tuple[tuple[str, Callable[[], None]], ...]:
    good = _FakeCSC((2, 2), [0, 2, 3], [0, 1, 1], [1.0, 2.0, 3.0])
    unsorted_csc = _FakeCSC((3, 2), [0, 2, 3], [2, 0, 1], [1.0, 2.0, 3.0])
    ragged = _FakeCSC((2, 2), [0, 5, 3], [0, 1, 1], [1.0, 2.0, 3.0])
    cyclic = np.asarray([1, 2, 0], dtype=np.int64)
    not_post = np.asarray([-1, 0], dtype=np.int64)

    class _Part:
        sn_start = np.asarray([0, 2], dtype=np.int64)  # covers only 2 of 3
        col_to_sn = np.asarray([0, 0], dtype=np.int64)

    return (
        ("unsorted CSC indices", lambda: sanitize.check_csc(unsorted_csc)),
        ("ragged indptr", lambda: sanitize.check_csc(ragged)),
        ("cyclic etree", lambda: sanitize.check_etree(cyclic)),
        ("non-postordered etree", lambda: sanitize.check_postordered(not_post)),
        (
            "uncovered supernode partition",
            lambda: sanitize.check_partition(_Part(), 3),
        ),
        (
            "invalid permutation",
            lambda: sanitize.check_permutation(np.asarray([0, 0, 2]), 3),
        ),
        (
            "frontal stack leak",
            lambda: sanitize.check_frontal_balance(16, {3: object()}),
        ),
        ("well-formed CSC accepted", lambda: sanitize.check_csc(good)),
    )


def _sanitize_results() -> list[SelfTestResult]:
    results = []
    for name, thunk in _sanitize_cases():
        expect_raise = not name.endswith("accepted")
        try:
            thunk()
            caught = False
            detail = "no InvariantError raised"
        except InvariantError as exc:
            caught = True
            detail = str(exc)
        results.append(
            SelfTestResult(
                name=f"sanitizer: {name}",
                passed=caught == expect_raise,
                detail=detail,
            )
        )
    return results


def run_self_test() -> list[SelfTestResult]:
    """Run all embedded self-tests; the caller decides how to report."""
    return (
        _lint_results()
        + _commcheck_results()
        + _racecheck_results()
        + _schedfuzz_results()
        + _sanitize_results()
    )
