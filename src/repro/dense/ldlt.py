"""Dense LDLᵀ factorization (no pivoting).

For symmetric indefinite-but-strongly-regular fronts (the solver's LDLᵀ
mode for symmetric matrices that are not positive definite but have
non-vanishing leading minors, e.g. shifted operators). No Bunch–Kaufman
2×2 pivots: the paper family's symmetric solvers use 1×1 pivots with
ordering-time safeguards, and our generators produce strongly regular
matrices.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.errors import SingularMatrixError
from repro.dense.chol import _check_square

#: relative pivot-magnitude threshold below which a pivot counts as zero
PIVOT_TOL = 1e-13


def ldlt_in_place(
    a: np.ndarray,
    perturb: float | None = None,
    col_offset: int = 0,
    perturbed: list[int] | None = None,
) -> np.ndarray:
    """Factor symmetric *a* as L·D·Lᵀ with unit lower L.

    Overwrites the strictly-lower triangle of *a* with the strictly-lower
    part of L and returns the diagonal D as a separate 1-D array (the
    diagonal of *a* is overwritten with D as well).

    With ``perturb=None`` (default), raises :class:`SingularMatrixError` on
    an (effectively) zero pivot. With a positive *perturb* — an **absolute**
    threshold, typically ``epsilon · max|diag(A)|`` of the *global* matrix —
    tiny pivots are replaced by ``±perturb`` (static pivoting: the
    factorization proceeds, the global column ``col_offset + j`` is appended
    to *perturbed*, and the caller recovers accuracy by iterative
    refinement — the strategy solvers of this family use to avoid dynamic
    pivoting's communication).
    """
    n = _check_square(a)
    if perturb is None:
        scale = float(np.max(np.abs(np.diagonal(a)))) if n else 0.0
        tol = PIVOT_TOL * max(scale, 1.0)
    else:
        tol = float(perturb)
    d = np.empty(n, dtype=a.dtype)
    for j in range(n):
        pivot = a[j, j]
        if not math.isfinite(pivot) or abs(pivot) <= tol:
            if perturb is None or not math.isfinite(pivot):
                raise SingularMatrixError(
                    f"zero pivot {pivot:.6g} at column {j}", column=j
                )
            sign = 1.0 if pivot >= 0 else -1.0
            # Rounded to the working dtype so the stored pivot, the returned
            # D entry, and the divisor below are the same number.
            pivot = a.dtype.type(sign * tol)
            a[j, j] = pivot
            if perturbed is not None:
                perturbed.append(col_offset + j)
        d[j] = pivot
        if j + 1 < n:
            col = a[j + 1:, j] / pivot
            a[j + 1:, j + 1:] -= np.outer(col, a[j + 1:, j])
            a[j + 1:, j] = col
        a[j, j] = pivot
    return d


def ldlt(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(L, d)`` with unit-lower L and diagonal vector d such that
    ``A = L @ diag(d) @ L.T`` (input unchanged)."""
    work = np.array(a, dtype=np.float64, copy=True)
    d = ldlt_in_place(work)
    l = np.tril(work, -1) + np.eye(a.shape[0])
    return l, d
