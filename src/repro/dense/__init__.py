"""Dense kernels consumed by the multifrontal method.

Everything the frontal matrices need: blocked Cholesky and LDLᵀ, triangular
solves, symmetric rank-k updates, and the *partial* factorization that
eliminates a front's pivot block and forms its Schur complement.

Kernels are written over numpy primitives (vectorized inner loops, in-place
updates) per the HPC-Python idioms: the O(n³) work lands in BLAS-backed
``@``/``-=`` array ops, the O(n) control flow stays in Python.
"""

from repro.dense.chol import cholesky_in_place, cholesky
from repro.dense.ldlt import ldlt_in_place, ldlt
from repro.dense.trsm import (
    solve_lower_inplace,
    solve_lower_transpose_inplace,
    solve_lower_transpose_outer_inplace,
    solve_unit_lower_inplace,
    solve_unit_lower_transpose_outer_inplace,
)
from repro.dense.syrk import syrk_lower_update
from repro.dense.partial_factor import partial_cholesky, partial_ldlt

__all__ = [
    "cholesky_in_place",
    "cholesky",
    "ldlt_in_place",
    "ldlt",
    "solve_lower_inplace",
    "solve_lower_transpose_inplace",
    "solve_lower_transpose_outer_inplace",
    "solve_unit_lower_inplace",
    "solve_unit_lower_transpose_outer_inplace",
    "syrk_lower_update",
    "partial_cholesky",
    "partial_ldlt",
]
