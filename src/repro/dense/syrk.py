"""Symmetric rank-k update.

``C <- C - A Aᵀ`` restricted (by contract) to the lower triangle: the
upper triangle of C is written too but is never read by the factorization
kernels, matching the "lower is meaningful" convention used throughout the
front code.
"""

from __future__ import annotations

import numpy as np

from repro.dense.chol import _check_consistent
from repro.util.errors import ShapeError


def syrk_lower_update(c: np.ndarray, a: np.ndarray) -> None:
    """In-place ``C -= A @ A.T`` (C square, leading dims match)."""
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ShapeError(f"C must be square; got {c.shape}")
    if a.ndim != 2 or a.shape[0] != c.shape[0]:
        raise ShapeError(
            f"A rows {a.shape} incompatible with C order {c.shape[0]}"
        )
    _check_consistent(c, a)
    c -= a @ a.T


def syrk_lower_update_scaled(c: np.ndarray, a: np.ndarray, d: np.ndarray) -> None:
    """In-place ``C -= A @ diag(d) @ A.T`` (the LDLᵀ form of the update)."""
    if d.ndim != 1 or d.size != a.shape[1]:
        raise ShapeError("d must be 1-D with length = A columns")
    _check_consistent(c, a, d)
    c -= (a * d[None, :]) @ a.T
