"""Partial factorization of a frontal matrix.

The core dense operation of the multifrontal method: given a symmetric
front F of order m with k pivot columns,

    F = [ F11  ·   ]      (lower triangles meaningful)
        [ F21  F22 ]

factor F11 = L11 L11ᵀ, compute L21 = F21 L11^{-T}, and form the Schur
complement U = F22 - L21 L21ᵀ. The (L11, L21) block is the slice of the
global factor owned by the supernode; U is the update matrix passed to the
parent front.
"""

from __future__ import annotations

import numpy as np

from repro.dense.chol import cholesky_in_place, _trsm_right_lower_transpose, _check_square
from repro.dense.ldlt import ldlt_in_place
from repro.dense.syrk import syrk_lower_update, syrk_lower_update_scaled
from repro.util.errors import ShapeError


def partial_cholesky(front: np.ndarray, k: int, block: int = 64) -> None:
    """Eliminate the first *k* pivots of symmetric *front* in place.

    On return the leading m×k panel holds [L11; L21] (lower triangle of L11
    meaningful) and the trailing (m-k)×(m-k) block holds the Schur
    complement (lower triangle meaningful).

    Raises :class:`~repro.util.errors.NotPositiveDefiniteError` if a pivot
    fails, with the *local* column index recorded.
    """
    m = _check_square(front)
    if not (0 <= k <= m):
        raise ShapeError(f"pivot count {k} out of range for front of order {m}")
    if k == 0:
        return
    cholesky_in_place(front[:k, :k], block=block)
    if k < m:
        panel = front[k:, :k]
        _trsm_right_lower_transpose(front[:k, :k], panel)
        syrk_lower_update(front[k:, k:], panel)


def partial_ldlt(
    front: np.ndarray,
    k: int,
    perturb: float | None = None,
    col_offset: int = 0,
    perturbed: list[int] | None = None,
) -> np.ndarray:
    """LDLᵀ variant of :func:`partial_cholesky`.

    Returns the k pivot values D (also left on the diagonal of the pivot
    block); the panel holds unit-lower L21·(scaled), i.e. ``L21`` such that
    ``F21 = L21 diag(d) L11ᵀ`` with unit L11. Static pivot perturbation
    passes through to :func:`repro.dense.ldlt.ldlt_in_place`.
    """
    m = _check_square(front)
    if not (0 <= k <= m):
        raise ShapeError(f"pivot count {k} out of range for front of order {m}")
    if k == 0:
        return np.empty(0, dtype=front.dtype)
    d = ldlt_in_place(
        front[:k, :k], perturb=perturb, col_offset=col_offset, perturbed=perturbed
    )
    if k < m:
        panel = front[k:, :k]
        # Solve panel <- F21 L11^{-T} D^{-1}: first the unit-triangular
        # solve, then the diagonal scaling.
        _trsm_right_unit_lower_transpose(front[:k, :k], panel)
        scaled = panel / d[None, :]
        syrk_lower_update_scaled(front[k:, k:], scaled, d)
        panel[:, :] = scaled
    return d


def _trsm_right_unit_lower_transpose(l: np.ndarray, b: np.ndarray) -> None:
    """B <- B L^{-T} with unit-diagonal lower L (strictly-lower part read)."""
    k = l.shape[0]
    for j in range(k):
        if j + 1 < k:
            b[:, j + 1:] -= np.outer(b[:, j], l[j + 1:, j])
