"""Dense triangular solves used by the solve phase and the frontal kernels.

All operate in place on the right-hand side; RHS may be a vector or a
matrix of multiple right-hand sides.
"""

from __future__ import annotations

import numpy as np

from repro.dense.chol import _check_consistent
from repro.util.errors import ShapeError


def _check(l: np.ndarray, b: np.ndarray) -> int:
    if l.ndim != 2 or l.shape[0] != l.shape[1]:
        raise ShapeError(f"triangular factor must be square; got {l.shape}")
    if b.shape[0] != l.shape[0]:
        raise ShapeError(
            f"rhs leading dimension {b.shape[0]} != factor order {l.shape[0]}"
        )
    _check_consistent(l, b)
    return l.shape[0]


def solve_lower_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """``b <- L^{-1} b`` (forward substitution, non-unit diagonal)."""
    n = _check(l, b)
    for j in range(n):
        b[j] = b[j] / l[j, j]
        if j + 1 < n:
            b[j + 1:] -= np.multiply.outer(l[j + 1:, j], b[j]) if b.ndim > 1 else l[j + 1:, j] * b[j]


def solve_lower_transpose_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """``b <- L^{-T} b`` (backward substitution with the transpose)."""
    n = _check(l, b)
    for j in range(n - 1, -1, -1):
        if j + 1 < n:
            if b.ndim > 1:
                b[j] -= l[j + 1:, j] @ b[j + 1:]
            else:
                b[j] -= l[j + 1:, j] @ b[j + 1:]
        b[j] = b[j] / l[j, j]


def solve_unit_lower_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """``b <- L^{-1} b`` with *unit* diagonal (LDLᵀ forward sweep; only the
    strictly-lower part of *l* is read)."""
    n = _check(l, b)
    for j in range(n):
        if j + 1 < n:
            if b.ndim > 1:
                b[j + 1:] -= np.multiply.outer(l[j + 1:, j], b[j])
            else:
                b[j + 1:] -= l[j + 1:, j] * b[j]


def solve_unit_lower_transpose_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """``b <- L^{-T} b`` with unit diagonal (LDLᵀ backward sweep)."""
    n = _check(l, b)
    for j in range(n - 1, -1, -1):
        if j + 1 < n:
            b[j] -= l[j + 1:, j] @ b[j + 1:]


def solve_lower_transpose_outer_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """``b <- L^{-T} b`` in the column-oriented (outer-product) form.

    Same triangular solve as :func:`solve_lower_transpose_inplace`, but the
    inner update is a saxpy ``b[:j] -= l[j, :j] * b[j]`` instead of a dot
    product. Every operation is elementwise, so with a multi-column *b*
    each column gets the exact floating-point operation sequence it would
    get solved alone — the blocked multi-RHS solve phase relies on this to
    stay bitwise identical per column regardless of how many right-hand
    sides ride in the panel (BLAS dot/gemv reductions reorder sums with
    the operand shape and cannot give that guarantee).
    """
    n = _check(l, b)
    for j in range(n - 1, -1, -1):
        b[j] = b[j] / l[j, j]
        if j:
            if b.ndim > 1:
                b[:j] -= np.multiply.outer(l[j, :j], b[j])
            else:
                b[:j] -= l[j, :j] * b[j]


def solve_unit_lower_transpose_outer_inplace(l: np.ndarray, b: np.ndarray) -> None:
    """``b <- L^{-T} b``, unit diagonal, column-oriented form (see
    :func:`solve_lower_transpose_outer_inplace` for why it exists)."""
    n = _check(l, b)
    for j in range(n - 1, -1, -1):
        if j:
            if b.ndim > 1:
                b[:j] -= np.multiply.outer(l[j, :j], b[j])
            else:
                b[:j] -= l[j, :j] * b[j]
