"""Dense Cholesky factorization (lower, in place, blocked).

The unblocked kernel is a vectorized left-looking loop; the blocked driver
applies it to diagonal panels and uses matrix products for the off-diagonal
panels — the same structure a LAPACK ``potrf`` has, expressed in numpy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.errors import NotPositiveDefiniteError, ShapeError

#: default blocking factor for the panel sweep
DEFAULT_BLOCK = 64


def _cholesky_unblocked(a: np.ndarray, col_offset: int = 0) -> None:
    """In-place lower Cholesky of a small square block.

    *col_offset* is only used to report the failing global column.
    """
    n = a.shape[0]
    for j in range(n):
        d = a[j, j]
        if d <= 0.0 or not math.isfinite(d):
            raise NotPositiveDefiniteError(
                f"non-positive pivot {d:.6g} at column {col_offset + j}",
                column=col_offset + j,
            )
        # Round the pivot to the working dtype before using it: the stored
        # L[j,j] and the divisor below must be the same number, or fp32
        # factors would be inconsistent with their own diagonal.
        d = a.dtype.type(math.sqrt(d))
        a[j, j] = d
        if j + 1 < n:
            a[j + 1:, j] /= d
            # Rank-1 trailing update restricted to the lower triangle: do a
            # full outer-product column sweep (cheap at block sizes).
            a[j + 1:, j + 1:] -= np.outer(a[j + 1:, j], a[j + 1:, j])


def cholesky_in_place(a: np.ndarray, block: int = DEFAULT_BLOCK) -> None:
    """Factor SPD *a* as L·Lᵀ, overwriting its lower triangle with L.

    The strictly upper triangle is left untouched (callers treat it as
    garbage). Raises :class:`NotPositiveDefiniteError` on a non-positive
    pivot.
    """
    n = _check_square(a)
    if block < 1:
        raise ShapeError("block must be >= 1")
    for k in range(0, n, block):
        kb = min(block, n - k)
        _cholesky_unblocked(a[k: k + kb, k: k + kb], col_offset=k)
        if k + kb < n:
            # Panel solve: A[k+kb:, k:k+kb] <- A[k+kb:, k:k+kb] L_kk^{-T}
            lkk = a[k: k + kb, k: k + kb]
            panel = a[k + kb:, k: k + kb]
            _trsm_right_lower_transpose(lkk, panel)
            # Trailing symmetric update (lower triangle only by blocks).
            trail = a[k + kb:, k + kb:]
            trail -= panel @ panel.T
    # Note: the trailing update writes the full square; only the lower
    # triangle is meaningful, matching the contract above.


def cholesky(a: np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """Return the lower Cholesky factor of SPD *a* (input unchanged)."""
    work = np.array(a, dtype=np.float64, copy=True)
    cholesky_in_place(work, block=block)
    return np.tril(work)


def _trsm_right_lower_transpose(l: np.ndarray, b: np.ndarray) -> None:
    """B <- B L^{-T} in place, L lower-triangular (non-unit diagonal).

    Column-sweep formulation so each column update is one BLAS-2 call.
    """
    k = l.shape[0]
    for j in range(k):
        b[:, j] /= l[j, j]
        if j + 1 < k:
            # Remaining columns see the rank-1 correction from column j.
            b[:, j + 1:] -= np.outer(b[:, j], l[j + 1:, j])


#: dtypes the in-place kernels operate in: the canonical fp64 and the
#: reduced fp32 working precision of mixed-precision fronts
WORKING_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _check_square(a: np.ndarray) -> int:
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"expected a square 2-D array; got shape {a.shape}")
    if a.dtype not in WORKING_DTYPES:
        raise ShapeError(
            "in-place kernels require a float64 or float32 working array; "
            f"got dtype {a.dtype}"
        )
    return a.shape[0]


def _check_consistent(work: np.ndarray, *others: np.ndarray) -> None:
    """All operands of an in-place kernel must share the working dtype.

    Mixed fp32/fp64 operands would silently upcast intermediate products
    and break both the memory win and the bitwise contracts, so they raise
    instead.
    """
    for o in others:
        if o.dtype != work.dtype:
            raise ShapeError(
                "in-place kernel operands must share one working dtype; "
                f"got {work.dtype} and {o.dtype}"
            )
