"""Bounded LRU cache of completed analyses, keyed by pattern fingerprint.

A cache entry owns a :class:`~repro.core.SparseSolver` whose analyze phase
has run (ordering + symbolic factorization) plus the parallel
:class:`~repro.parallel.plan.FactorPlan` objects derived from it, one per
distinct parallel configuration. Hits skip straight to the numeric phase
through the solver's ``update_values``/``refactor`` path; the plan reuse
additionally skips plan construction for simulated-parallel execution.

:class:`AnalysisCache` itself is a plain synchronous structure; eviction
is strict LRU on *use*, and every transition is counted so the metrics
report can show hit rate and eviction pressure. The fleet wraps it in a
:class:`ShardedAnalysisCache` — shard = pattern-fingerprint hash — whose
per-shard mutexes make lookups safe under concurrent serving workers
while keeping hot shards from evicting cold shards' entries.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.solver import SparseSolver
from repro.exec.pool import make_lock
from repro.parallel.plan import FactorPlan
from repro.service.fingerprint import PatternFingerprint
from repro.util.errors import ShapeError


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`AnalysisCache`."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def merged(cls, parts: Iterable["CacheStats"]) -> "CacheStats":
        """Sum of several shards' counters (the fleet-wide view)."""
        out = cls()
        for p in parts:
            out.hits += p.hits
            out.misses += p.misses
            out.inserts += p.inserts
            out.evictions += p.evictions
        return out


@dataclass
class AnalysisEntry:
    """One cached analysis: an analyzed solver + its derived parallel plans."""

    fingerprint: PatternFingerprint
    solver: SparseSolver
    #: (n_ranks, nb, policy, min_dist_width) -> structural factor plan
    plans: dict[tuple, FactorPlan] = field(default_factory=dict)
    #: wall seconds the original analyze phase cost (== seconds a hit saves)
    analyze_seconds: float = 0.0
    hits: int = 0


class AnalysisCache:
    """Bounded LRU map ``PatternFingerprint -> AnalysisEntry``."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ShapeError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, AnalysisEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fp: PatternFingerprint) -> bool:
        return fp.key in self._entries

    def get(self, fp: PatternFingerprint) -> AnalysisEntry | None:
        """Look up an analysis; counts a hit or miss and refreshes LRU."""
        entry = self._entries.get(fp.key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(fp.key)
        self.stats.hits += 1
        entry.hits += 1
        return entry

    def put(self, entry: AnalysisEntry) -> AnalysisEntry:
        """Insert (or replace) an analysis, evicting the LRU tail if full."""
        key = entry.fingerprint.key
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.inserts += 1
        return entry

    def clear(self) -> None:
        self._entries.clear()


class ShardedAnalysisCache:
    """Fingerprint-hash sharded analysis cache for the serving fleet.

    The shard of a pattern is a deterministic function of its fingerprint
    digest (``shard_of``), so every request for one pattern — from any
    worker, in any order — lands on the same shard. Each shard is an
    independent :class:`AnalysisCache` (own LRU list, own
    :class:`CacheStats`) guarded by its own mutex from
    :func:`repro.exec.pool.make_lock`, giving the fleet:

    * **isolation** — a hot shard's eviction pressure never touches the
      entries (or stats) of another shard;
    * **lock granularity** — workers serving different shards never
      contend on cache metadata.

    *capacity* is the total entry budget; it is split evenly
    (``ceil(capacity / shards)`` per shard, so the effective total may
    round up). ``shards=1`` degenerates to one locked LRU — the
    single-executor service uses exactly that.

    The sharded cache only serializes *metadata* (lookup / insert / LRU
    order). Two workers may still race on one *entry's* solver if they
    execute the same pattern concurrently; the fleet scheduler prevents
    that by never dispatching two batches with the same fingerprint at
    once (per-fingerprint in-flight exclusion).
    """

    def __init__(self, capacity: int = 32, shards: int = 1):
        if shards < 1:
            raise ShapeError("shard count must be >= 1")
        per_shard = max(1, math.ceil(capacity / shards))
        self.n_shards = shards
        self.capacity = per_shard * shards
        self._shards = [AnalysisCache(per_shard) for _ in range(shards)]
        self._locks = [make_lock() for _ in range(shards)]

    def shard_of(self, fp: PatternFingerprint) -> int:
        """Deterministic shard index of *fp* (leading digest bits)."""
        return int(fp.digest[:15], 16) % self.n_shards

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def __contains__(self, fp: PatternFingerprint) -> bool:
        i = self.shard_of(fp)
        with self._locks[i]:
            return fp in self._shards[i]

    def get(self, fp: PatternFingerprint) -> AnalysisEntry | None:
        i = self.shard_of(fp)
        with self._locks[i]:
            return self._shards[i].get(fp)

    def put(self, entry: AnalysisEntry) -> AnalysisEntry:
        i = self.shard_of(entry.fingerprint)
        with self._locks[i]:
            return self._shards[i].put(entry)

    def clear(self) -> None:
        for i, shard in enumerate(self._shards):
            with self._locks[i]:
                shard.clear()

    @property
    def stats(self) -> CacheStats:
        """Merged (fleet-wide) transition counters across all shards."""
        return CacheStats.merged(s.stats for s in self._shards)

    def shard_stats(self) -> list[CacheStats]:
        """Per-shard counters, indexed by shard (autoscaling signals)."""
        return [s.stats for s in self._shards]

    def shard_sizes(self) -> list[int]:
        """Resident entry count per shard."""
        return [len(s) for s in self._shards]
