"""Bounded LRU cache of completed analyses, keyed by pattern fingerprint.

A cache entry owns a :class:`~repro.core.SparseSolver` whose analyze phase
has run (ordering + symbolic factorization) plus the parallel
:class:`~repro.parallel.plan.FactorPlan` objects derived from it, one per
distinct parallel configuration. Hits skip straight to the numeric phase
through the solver's ``update_values``/``refactor`` path; the plan reuse
additionally skips plan construction for simulated-parallel execution.

The cache is a plain synchronous structure (the dispatch loop is
synchronous); eviction is strict LRU on *use*, and every transition is
counted so the metrics report can show hit rate and eviction pressure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.solver import SparseSolver
from repro.parallel.plan import FactorPlan
from repro.service.fingerprint import PatternFingerprint
from repro.util.errors import ShapeError


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`AnalysisCache`."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class AnalysisEntry:
    """One cached analysis: an analyzed solver + its derived parallel plans."""

    fingerprint: PatternFingerprint
    solver: SparseSolver
    #: (n_ranks, nb, policy, min_dist_width) -> structural factor plan
    plans: dict[tuple, FactorPlan] = field(default_factory=dict)
    #: wall seconds the original analyze phase cost (== seconds a hit saves)
    analyze_seconds: float = 0.0
    hits: int = 0


class AnalysisCache:
    """Bounded LRU map ``PatternFingerprint -> AnalysisEntry``."""

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ShapeError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, AnalysisEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fp: PatternFingerprint) -> bool:
        return fp.key in self._entries

    def get(self, fp: PatternFingerprint) -> AnalysisEntry | None:
        """Look up an analysis; counts a hit or miss and refreshes LRU."""
        entry = self._entries.get(fp.key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(fp.key)
        self.stats.hits += 1
        entry.hits += 1
        return entry

    def put(self, entry: AnalysisEntry) -> AnalysisEntry:
        """Insert (or replace) an analysis, evicting the LRU tail if full."""
        key = entry.fingerprint.key
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.inserts += 1
        return entry

    def clear(self) -> None:
        self._entries.clear()
