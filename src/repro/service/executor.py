"""The worker: executes one coalesced batch of solve jobs.

Execution pipeline per batch (all jobs in a batch share pattern, values,
and method):

1. **analysis** — cache lookup by pattern fingerprint; a hit installs the
   new values on the cached analysis (``SparseSolver.update_values``, the
   refactor path) and skips ordering + symbolic + plan construction
   entirely; a miss runs ``analyze()`` and populates the cache;
2. **numeric factor + solve** — on the sequential host engine, or on the
   simulated parallel machine when a :class:`ParallelConfig` is set
   (reusing the cached structural :class:`FactorPlan`);
3. **resilience** — a parallel-path failure *degrades* the batch to the
   host engine (counted, not retried); a threads-backend *infrastructure*
   failure (:class:`~repro.util.errors.ExecBackendError`) degrades to the
   plain sequential backend — safe because the two are bitwise identical
   — counted in ``service_backend_fallback_total``; an fp32 batch whose
   factorization breaks down or whose refinement stalls re-runs with an
   fp64 factor — counted in ``service_precision_fallback_total``; a host
   failure with retry budget left returns a :class:`Requeue` directive —
   the batch goes back to the queue parked until ``not_before`` (the
   exponential backoff) instead of the worker sleeping inline, so other
   queued jobs are never stalled behind one flaky one; the per-job wall
   budget is measured from the *first* attempt's start across requeues
   and checked both at dispatch (fail fast) and on failure, with the
   backoff delay capped at the remaining budget (cooperative timeout).

Mixed precision: a job's requested ``precision`` selects the working
dtype of the host numeric factor. fp32 batches always run fp64 iterative
refinement so completed results carry fp64-level backward error. The
simulated parallel engine models an fp64 machine and ignores the knob
(its results report ``precision="fp64"``).

The executor is synchronous and deterministic given a deterministic clock;
tests inject fake ``clock``/``sleep`` callables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.solver import ParallelConfig, SparseSolver
from repro.mf.refine import iterative_refinement_many
from repro.mf.solve_phase import solve_many as mf_solve_many
from repro.parallel.driver import simulate_factorization, simulate_solve
from repro.parallel.plan import FactorPlan
from repro.service.cache import AnalysisCache, AnalysisEntry
from repro.service.jobs import (
    COMPLETED,
    FAILED,
    TIMED_OUT,
    JobResult,
    SolveJob,
)
from repro.obs.spans import span
from repro.service.metrics import ServiceMetrics
from repro.sparse.ops import sym_matvec_lower_many
from repro.util.errors import ExecBackendError, ReproError
from repro.util.timing import WallTimer


@dataclass
class Requeue:
    """Directive returned by :meth:`Executor.execute` instead of results:
    park the batch and retry it at ``not_before``.

    The executor never sleeps a backoff inline — that would stall every
    other queued job behind one flaky batch. The dispatch loop pushes the
    jobs back (each already stamped with ``attempts``/``not_before``/
    ``last_error``) and serves other ready work until the park expires.
    """

    jobs: list[SolveJob]
    #: service-clock time the retry becomes dispatchable
    not_before: float
    #: attempts burned so far (resumed by the next dispatch)
    attempts: int
    #: formatted error of the failed attempt
    error: str


@dataclass(frozen=True)
class ExecutorOptions:
    """Execution policy of the worker."""

    #: fill-reducing ordering used for fresh analyses
    ordering: str = "nd"
    #: run factor+solve on the simulated parallel machine (None = host)
    parallel: ParallelConfig | None = None
    #: additional attempts after the first failure (sequential engine)
    max_retries: int = 2
    #: base backoff in seconds; doubles per retry
    retry_backoff: float = 0.01
    #: iterative refinement on the host solve path
    refine: bool = False
    use_cache: bool = True
    #: host execution backend: ``"seq"`` or ``"threads"`` (the shared-memory
    #: pool of :mod:`repro.exec`; bitwise identical to ``"seq"``)
    backend: str = "seq"
    #: worker threads for ``backend="threads"`` (None = auto)
    workers: int | None = None


class Executor:
    """Runs batches against the solver engines with retry + degradation."""

    def __init__(
        self,
        cache: AnalysisCache,
        metrics: ServiceMetrics,
        options: ExecutorOptions | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.cache = cache
        self.metrics = metrics
        self.options = options or ExecutorOptions()
        self._clock = clock
        self._sleep = sleep

    # -- batch entry point ---------------------------------------------------

    def execute(self, batch: list[SolveJob]) -> list[JobResult] | Requeue:
        """Execute a coalesced batch: one result per job, same order — or
        a :class:`Requeue` directive when a retryable failure should be
        attempted again later without blocking the worker."""
        with span("service.batch", jobs=len(batch)) as sp:
            return self._execute(batch, sp)

    def _execute(self, batch: list[SolveJob], sp) -> list[JobResult] | Requeue:
        t_start = self._clock()
        job0 = batch[0]
        b_block = np.hstack([job.b for job in batch])
        sp.set(rhs=int(b_block.shape[1]))

        # The wall budget spans requeued attempts: measure from the first
        # dispatch of the earliest-started job in the batch.
        for job in batch:
            if job.first_started_at is None:
                job.first_started_at = t_start
        started = min(job.first_started_at for job in batch)
        attempts = max(job.attempts for job in batch)
        degraded = any(job.degraded for job in batch)
        budgets = [j.timeout for j in batch if j.timeout is not None]
        budget = min(budgets) if budgets else None
        if budget is not None and t_start - started >= budget:
            # Fail fast: the budget was burned by earlier attempts (and
            # the park in between); don't start another one.
            return self._timeout_failures(
                batch,
                job0.last_error or "wall budget exhausted before dispatch",
                attempts,
                degraded,
                t_start - started,
            )

        try:
            entry, cache_hit, timings = self._prepare(job0)
        except ReproError as exc:
            # Analysis is deterministic: retrying it cannot help.
            return self._failures(batch, FAILED, _fmt(exc), attempts, degraded)
        sp.set(cache_hit=cache_hit)

        if self.options.parallel is not None and not degraded:
            engine = "parallel"
        elif self.options.backend == "threads":
            engine = "threads"
        else:
            engine = "sequential"
        precision = job0.precision
        while True:
            try:
                x, residuals, precision = self._run(
                    engine, entry, job0.method, b_block, timings, precision
                )
                break
            except ReproError as exc:
                if engine == "parallel":
                    # A failing parallel plan/driver will fail again:
                    # degrade to the host engine instead of retrying.
                    engine = (
                        "threads"
                        if self.options.backend == "threads"
                        else "sequential"
                    )
                    degraded = True
                    self.metrics.inc("degradations")
                    continue
                if precision != "fp64" and not isinstance(exc, ExecBackendError):
                    # Deterministic numeric failure of the reduced-precision
                    # factor (e.g. a pivot that is positive in fp64 but not
                    # in fp32): retrying cannot help, the fp64 rung can.
                    precision = "fp64"
                    self.metrics.inc("service_precision_fallback_total")
                    continue
                if engine == "threads" and isinstance(exc, ExecBackendError):
                    # Pool infrastructure failed (bad worker config, a
                    # cancelled pool, a stalled graph). The sequential
                    # backend computes bitwise-identical answers, so fall
                    # back rather than retrying the broken pool.
                    engine = "sequential"
                    degraded = True
                    self.metrics.inc("service_backend_fallback_total")
                    continue
                if attempts >= self.options.max_retries:
                    return self._failures(
                        batch, FAILED, _fmt(exc), attempts, degraded
                    )
                # Check the wall budget *before* burning a backoff park:
                # an over-budget batch fails fast, and a near-budget batch
                # only parks for the remainder.
                elapsed = self._clock() - started
                if budget is not None and elapsed >= budget:
                    return self._timeout_failures(
                        batch, _fmt(exc), attempts, degraded, elapsed
                    )
                attempts += 1
                self.metrics.inc("retries")
                delay = self.options.retry_backoff * 2 ** (attempts - 1)
                if budget is not None:
                    delay = min(delay, budget - elapsed)
                # Requeue instead of sleeping: park the batch until the
                # backoff expires so the worker can serve other jobs.
                not_before = started + elapsed + delay
                for job in batch:
                    job.attempts = attempts
                    job.degraded = degraded
                    job.not_before = not_before
                    job.last_error = _fmt(exc)
                return Requeue(
                    jobs=list(batch),
                    not_before=not_before,
                    attempts=attempts,
                    error=_fmt(exc),
                )

        timings["job_total"] = self._clock() - t_start
        results = []
        col = 0
        for job in batch:
            xj = x[:, col: col + job.n_rhs]
            rj = float(np.max(residuals[col: col + job.n_rhs]))
            col += job.n_rhs
            results.append(
                JobResult(
                    job_id=job.job_id,
                    status=COMPLETED,
                    x=xj[:, 0] if job.squeeze else xj,
                    residual=rj,
                    retries=attempts,
                    degraded=degraded,
                    cache_hit=cache_hit,
                    batched_rhs=int(b_block.shape[1]),
                    timings=dict(timings),
                    precision=precision,
                )
            )
        return results

    # -- phases --------------------------------------------------------------

    def _prepare(self, job: SolveJob) -> tuple[AnalysisEntry, bool, dict]:
        """Resolve the analysis for *job* (cache hit or fresh analyze)."""
        timings: dict[str, float] = {}
        entry = self.cache.get(job.fingerprint) if self.options.use_cache else None
        if entry is not None:
            with span("service.prepare", cache_hit=True), WallTimer() as t:
                entry.solver.method = job.method
                entry.solver.update_values(job.lower)
            timings["values_update"] = t.elapsed
            return entry, True, timings
        with span("service.prepare", cache_hit=False), WallTimer() as t:
            solver = SparseSolver(
                job.lower, method=job.method, ordering=self.options.ordering
            )
            solver.analyze()
        timings["analyze"] = t.elapsed
        entry = AnalysisEntry(
            fingerprint=job.fingerprint,
            solver=solver,
            analyze_seconds=t.elapsed,
        )
        if self.options.use_cache:
            self.cache.put(entry)
        return entry, False, timings

    def _run(
        self,
        engine: str,
        entry: AnalysisEntry,
        method: str,
        b_block: np.ndarray,
        timings: dict,
        precision: str = "fp64",
    ) -> tuple[np.ndarray, np.ndarray, str]:
        """Numeric factor + blocked solve on the chosen engine.

        Returns ``(x, residuals, effective_precision)`` — the precision
        may have been walked down to fp64 by the in-solve refinement
        fallback (host engines) or pinned at fp64 (parallel engine).
        """
        if engine == "parallel":
            x = self._run_parallel(entry, method, b_block, timings)
            precision = "fp64"  # the simulated machine models fp64 hardware
        else:
            x, precision = self._run_host(
                entry, b_block, timings, engine, precision
            )
        lower = entry.solver.lower
        # One blocked residual matvec for the whole panel (bitwise identical
        # per column to the per-column check).
        r = b_block - sym_matvec_lower_many(lower, x)
        denom = np.maximum(np.max(np.abs(b_block), axis=0), 1e-300)
        residuals = np.max(np.abs(r), axis=0) / denom
        return x, residuals, precision

    def _run_host(
        self,
        entry: AnalysisEntry,
        b_block: np.ndarray,
        timings: dict,
        engine: str = "sequential",
        precision: str = "fp64",
    ) -> tuple[np.ndarray, str]:
        """Factor + solve on the host: sequential or the threads backend
        (bitwise identical, so the engine choice never changes answers).

        Returns ``(x, effective_precision)``. fp32 batches always run
        iterative refinement (it is what recovers fp64 accuracy); when
        refinement stalls or diverges on any column the batch re-factors
        the same values in fp64 and refines against the robust factor.
        """
        solver = entry.solver
        workers = self.options.workers
        if engine == "threads":
            backend = "threads"
            from repro.exec import solve_many_threads

            def solve_fn(factor, b):
                return solve_many_threads(factor, b, workers=workers)
        else:
            backend = "seq"
            solve_fn = mf_solve_many

        def timed_factor(prec: str) -> None:
            with span(
                "service.factor", engine=engine, precision=prec
            ), WallTimer() as t:
                solver.factor(backend=backend, workers=workers, precision=prec)
            timings["factor"] = timings.get("factor", 0.0) + t.elapsed
            # Precision-tagged phase timing: drained into per-precision
            # latency histograms (factor_fp32 / factor_fp64) by the service.
            key = f"factor_{prec}"
            timings[key] = timings.get(key, 0.0) + t.elapsed

        timed_factor(precision)
        if solver.numeric.exec_stats is not None:
            # Surface the pool's telemetry through the service registry.
            solver.numeric.exec_stats.publish(self.metrics.registry)
        refine = self.options.refine or precision != "fp64"
        factor_before_solve = timings.get("factor", 0.0)
        # Genuine blocked multi-RHS solve: one permute → sweep → unpermute
        # pass for the whole coalesced panel (and one blocked refinement
        # loop when enabled), not a per-column re-traversal.
        with span(
            "service.solve",
            engine=engine,
            rhs=int(b_block.shape[1]),
            refine=refine,
            precision=precision,
        ), WallTimer() as t:
            if refine:
                res = iterative_refinement_many(
                    solver.numeric, solver.lower, b_block, solve_fn=solve_fn
                )
                if precision != "fp64" and not bool(np.all(res.converged)):
                    # Reduced-precision refinement stalled or diverged: the
                    # last rung of the ladder is an fp64 re-factor of the
                    # same values on the same analysis.
                    self.metrics.inc("service_precision_fallback_total")
                    precision = "fp64"
                    timed_factor(precision)
                    res = iterative_refinement_many(
                        solver.numeric, solver.lower, b_block, solve_fn=solve_fn
                    )
                x = res.x
            else:
                x = solve_fn(solver.numeric, b_block)
        # A precision fallback re-factors *inside* the solve window; keep
        # the factor share out of the solve phase timing.
        fallback_factor = timings.get("factor", 0.0) - factor_before_solve
        timings["solve"] = timings.get("solve", 0.0) + max(
            t.elapsed - fallback_factor, 0.0
        )
        return x, precision

    def _run_parallel(
        self, entry: AnalysisEntry, method: str, b_block: np.ndarray, timings: dict
    ) -> np.ndarray:
        cfg = self.options.parallel
        key = (cfg.n_ranks, cfg.nb, cfg.policy)
        plan = entry.plans.get(key)
        if plan is None:
            with span("service.plan", ranks=cfg.n_ranks), WallTimer() as t:
                plan = FactorPlan(
                    entry.solver.sym, cfg.n_ranks, cfg.plan_options()
                )
            timings["plan"] = timings.get("plan", 0.0) + t.elapsed
            entry.plans[key] = plan
        with span("service.factor", engine="parallel"), WallTimer() as t:
            fres = simulate_factorization(
                entry.solver.sym,
                cfg.n_ranks,
                cfg.machine,
                cfg.plan_options(),
                method=method,
                threads_per_rank=cfg.threads_per_rank,
                plan=plan,
            )
        timings["factor"] = timings.get("factor", 0.0) + t.elapsed
        with span(
            "service.solve", engine="parallel", rhs=int(b_block.shape[1])
        ), WallTimer() as t:
            # Blocked (n, k) distributed solve: one latency-bound sweep
            # amortized over every coalesced right-hand side.
            sres = simulate_solve(fres, b_block)
        timings["solve"] = timings.get("solve", 0.0) + t.elapsed
        x = sres.x
        return x if x.ndim == 2 else x[:, None]

    # -- failure shaping -----------------------------------------------------

    def _failures(
        self,
        batch: list[SolveJob],
        status: str,
        error: str,
        attempts: int,
        degraded: bool,
    ) -> list[JobResult]:
        return [
            JobResult(
                job_id=job.job_id,
                status=status,
                retries=attempts,
                degraded=degraded,
                error=error,
            )
            for job in batch
        ]

    def _timeout_failures(
        self,
        batch: list[SolveJob],
        error: str,
        attempts: int,
        degraded: bool,
        elapsed: float,
    ) -> list[JobResult]:
        """Per-job status when the batch runs out of wall budget.

        Only jobs whose *own* timeout elapsed are ``TIMED_OUT``; coalesced
        neighbors with a longer (or no) budget report ``FAILED`` with the
        underlying error instead of inheriting the strictest timeout.
        """
        return [
            JobResult(
                job_id=job.job_id,
                status=(
                    TIMED_OUT
                    if job.timeout is not None and elapsed >= job.timeout
                    else FAILED
                ),
                retries=attempts,
                degraded=degraded,
                error=error,
            )
            for job in batch
        ]


def _fmt(exc: Exception) -> str:
    """The error string format every failure path shares."""
    return f"{type(exc).__name__}: {exc}"
