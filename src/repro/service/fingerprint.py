"""Canonical sparsity-pattern fingerprints — the analysis-cache key.

The serving layer amortizes the analyze phase (ordering + symbolic +
parallel plan) across requests that share a sparsity pattern. The cache key
must therefore identify *exactly* the set of patterns an analysis is valid
for: two matrices with equal fingerprints are guaranteed to have identical
lower-triangle CSC structure, so a cached analysis applies verbatim via the
``refactor()`` value-update path.

Invariance contract (property-tested in ``tests/test_service.py``):

* **value changes** — invariant: only ``(n, indptr, indices)`` are hashed,
  never ``data``;
* **representation** — invariant under full-symmetric vs. lower-triangular
  storage: the input is canonicalized to its lower triangle first (the same
  reduction :class:`repro.core.SparseSolver` applies);
* **symmetric permutations** — *not* invariant, by design. ``P A Pᵀ``
  is a different pattern requiring its own analysis (the ordering and
  elimination tree change), so permuted copies must miss the cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import tril


@dataclass(frozen=True)
class PatternFingerprint:
    """Identity of one lower-triangular sparsity pattern."""

    n: int
    nnz: int
    #: sha256 over (shape, indptr, indices) of the canonical lower triangle
    digest: str

    @property
    def key(self) -> tuple[int, int, str]:
        return (self.n, self.nnz, self.digest)

    def __str__(self) -> str:  # compact form for logs / metrics reports
        return f"n={self.n} nnz={self.nnz} {self.digest[:12]}"


def _index_bytes(arr: np.ndarray) -> bytes:
    """Deterministic byte view of an index array (fixed dtype + layout)."""
    return np.ascontiguousarray(arr, dtype=np.int64).tobytes()


def pattern_fingerprint(a: CSCMatrix) -> PatternFingerprint:
    """Fingerprint the sparsity pattern of *a*.

    *a* may be a full symmetric matrix or its lower triangle; both map to
    the same fingerprint (the structure is canonicalized to the lower
    triangle before hashing). Values are ignored entirely.
    """
    lower = tril(a)
    h = hashlib.sha256()
    h.update(f"{lower.shape[0]}x{lower.shape[1]};".encode())
    h.update(_index_bytes(lower.indptr))
    h.update(_index_bytes(lower.indices))
    return PatternFingerprint(
        n=lower.shape[0], nnz=lower.nnz, digest=h.hexdigest()
    )


def values_digest(a: CSCMatrix) -> str:
    """Digest of the *numeric values* of the canonical lower triangle.

    Used by the request queue to coalesce jobs that share both pattern and
    values into one blocked multi-RHS solve — jobs with equal pattern but
    different values still share the cached analysis, just not a factor.
    """
    lower = tril(a)
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(lower.data, dtype=np.float64).tobytes())
    return h.hexdigest()
