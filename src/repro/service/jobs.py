"""The job model of the serving layer.

A *job* is one solve request: a symmetric matrix (full or lower triangle),
one or more right-hand sides, and scheduling attributes (priority,
deadline, per-job timeout). The dispatch loop may coalesce several jobs
that share a pattern *and* values into one blocked multi-RHS solve; the
per-job identity is kept so each submitter gets its own result back.

All times are seconds on the service clock (``time.monotonic`` unless a
test injects its own).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.service.fingerprint import PatternFingerprint
from repro.sparse.csc import CSCMatrix

# Job lifecycle states.
PENDING = "pending"
COMPLETED = "completed"
FAILED = "failed"
EXPIRED = "expired"  # deadline passed before dispatch
TIMED_OUT = "timed-out"  # per-job wall budget exhausted mid-execution

TERMINAL_STATES = (COMPLETED, FAILED, EXPIRED, TIMED_OUT)


@dataclass
class SolveJob:
    """One solve request as tracked by the queue."""

    job_id: int
    #: lower triangle of the (canonicalized) matrix
    lower: CSCMatrix
    #: right-hand sides, shape ``(n, k)`` (a single RHS is stored as k=1)
    b: np.ndarray
    fingerprint: PatternFingerprint
    values_key: str
    method: str = "cholesky"
    #: smaller = more urgent
    priority: int = 0
    #: absolute service-clock time after which the job is dropped undone
    deadline: float | None = None
    #: wall-second budget once execution starts (checked between attempts)
    timeout: float | None = None
    #: service-clock time of submission (queue-wait measurement)
    submitted_at: float = 0.0
    #: True when the caller passed a 1-D right-hand side
    squeeze: bool = False
    #: requested working precision of the numeric factor ("fp64"/"fp32")
    precision: str = "fp64"
    #: submitting tenant (admission quotas are per tenant)
    tenant: str = "default"
    #: retry attempts already burned across requeues (the executor resumes
    #: the backoff ladder here instead of restarting it)
    attempts: int = 0
    #: service-clock time before which the queue must not dispatch this job
    #: (set by the executor's retry requeue — the non-blocking backoff)
    not_before: float | None = None
    #: service-clock time the first execution attempt started; the per-job
    #: wall budget (``timeout``) is measured from here across requeues
    first_started_at: float | None = None
    #: a degradation (parallel → host, threads → sequential) happened on an
    #: earlier attempt; survives requeues so the final result reports it
    degraded: bool = False
    #: formatted error of the most recent failed attempt (requeued jobs
    #: that later exhaust their budget report this as the cause)
    last_error: str | None = None

    @property
    def n_rhs(self) -> int:
        return int(self.b.shape[1])

    def batch_key(self) -> tuple:
        """Jobs with equal batch keys may run as one blocked solve.

        Precision is part of the key: an fp32 and an fp64 request against
        the same values need different numeric factors, so they cannot
        share a batch.
        """
        return (self.fingerprint.key, self.values_key, self.method, self.precision)


@dataclass
class JobResult:
    """Outcome of one job, terminal state included."""

    job_id: int
    status: str
    #: solution, shape matching the submitted ``b`` (None unless completed)
    x: np.ndarray | None = None
    #: worst relative max-norm residual over this job's right-hand sides
    residual: float | None = None
    #: attempts beyond the first
    retries: int = 0
    #: True when the parallel driver failed and the sequential engine took over
    degraded: bool = False
    cache_hit: bool = False
    #: number of RHS columns in the blocked solve this job rode in
    batched_rhs: int = 1
    #: seconds from submit to dispatch
    queue_wait: float = 0.0
    #: per-phase wall seconds (analyze / plan / factor / solve)
    timings: dict[str, float] = field(default_factory=dict)
    error: str | None = None
    #: working precision that actually produced ``x`` — "fp64" after an
    #: automatic fp32→fp64 fallback, even for an fp32 request
    precision: str = "fp64"

    @property
    def ok(self) -> bool:
        return self.status == COMPLETED
