"""Serving layer: `SparseSolver` as a servable engine.

The paper's application workflow — nonlinear/transient finite-element
runs — is repeated numeric factorization on a fixed sparsity pattern.
This package turns that into a request-level service:

* :mod:`repro.service.fingerprint` — canonical sparsity-pattern
  fingerprints (the analysis-cache key);
* :mod:`repro.service.cache` — bounded LRU cache of completed analyses
  (ordering + symbolic + parallel plans) with hit/miss/eviction stats;
* :mod:`repro.service.jobs` / :mod:`repro.service.queue` — the job model
  and the synchronous dispatch loop with priority ordering, deadlines,
  and same-pattern request coalescing into blocked multi-RHS solves;
* :mod:`repro.service.executor` — the worker: cached-analysis reuse via
  the ``refactor`` path, per-job timeouts, bounded retry with backoff,
  graceful degradation from the parallel driver to the sequential engine;
* :mod:`repro.service.metrics` — counters + latency histograms and the
  text report (``repro.cli serve-sim`` prints it).
"""

from repro.service.cache import (
    AnalysisCache,
    AnalysisEntry,
    CacheStats,
    ShardedAnalysisCache,
)
from repro.service.executor import Executor, ExecutorOptions, Requeue
from repro.util.errors import AdmissionError
from repro.service.fingerprint import (
    PatternFingerprint,
    pattern_fingerprint,
    values_digest,
)
from repro.service.jobs import (
    COMPLETED,
    EXPIRED,
    FAILED,
    PENDING,
    TIMED_OUT,
    JobResult,
    SolveJob,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.queue import JobQueue, ServiceConfig, SolverService

__all__ = [
    "AdmissionError",
    "AnalysisCache",
    "AnalysisEntry",
    "CacheStats",
    "ShardedAnalysisCache",
    "Executor",
    "ExecutorOptions",
    "Requeue",
    "PatternFingerprint",
    "pattern_fingerprint",
    "values_digest",
    "COMPLETED",
    "EXPIRED",
    "FAILED",
    "PENDING",
    "TIMED_OUT",
    "JobResult",
    "SolveJob",
    "LatencyHistogram",
    "ServiceMetrics",
    "JobQueue",
    "ServiceConfig",
    "SolverService",
]
