"""Service observability: counters and latency histograms + text report.

Counters track discrete events (jobs submitted/completed/failed, cache
hits, retries, degradations, batches); histograms track per-phase wall
time (queue wait, analyze, plan, factor, solve, end-to-end). The report is
plain text in the repo's table format, rendered through
:mod:`repro.analysis.report` so service output matches the rest of the
measurement instrumentation.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict

from repro.analysis.report import (
    LatencySummary,
    render_counter_table,
    render_latency_table,
)
from repro.service.cache import CacheStats
from repro.util.tables import format_table


class LatencyHistogram:
    """All-sample latency recorder (seconds) with percentile summaries."""

    def __init__(self) -> None:
        self._sorted: list[float] = []
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        insort(self._sorted, float(seconds))
        self.total += float(seconds)

    @property
    def count(self) -> int:
        return len(self._sorted)

    def summary(self) -> LatencySummary:
        return LatencySummary(
            count=self.count,
            total=self.total,
            min=self._sorted[0] if self._sorted else 0.0,
            max=self._sorted[-1] if self._sorted else 0.0,
            sorted_samples=tuple(self._sorted),
        )


class ServiceMetrics:
    """Counter + histogram registry of one :class:`SolverService`."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.histograms: dict[str, LatencyHistogram] = {}

    def inc(self, name: str, by: int = 1) -> None:
        self.counters[name] += by

    def observe(self, name: str, seconds: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram()
        hist.observe(seconds)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def summaries(self) -> dict[str, LatencySummary]:
        return {name: h.summary() for name, h in self.histograms.items()}

    def report(self, cache_stats: CacheStats | None = None) -> str:
        """Full plain-text metrics report (counters, cache, latencies)."""
        parts = [render_counter_table(dict(self.counters), title="service counters")]
        if cache_stats is not None:
            parts.append(
                format_table(
                    ["hits", "misses", "hit rate", "inserts", "evictions"],
                    [
                        [
                            cache_stats.hits,
                            cache_stats.misses,
                            round(cache_stats.hit_rate, 3),
                            cache_stats.inserts,
                            cache_stats.evictions,
                        ]
                    ],
                    title="analysis cache",
                )
            )
        if self.histograms:
            parts.append(
                render_latency_table(self.summaries(), title="phase latency")
            )
        return "\n\n".join(parts)
