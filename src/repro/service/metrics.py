"""Service observability: a compatibility shim over :mod:`repro.obs.metrics`.

Counters track discrete events (jobs submitted/completed/failed, cache
hits, retries, degradations, batches); histograms track per-phase wall
time (queue wait, analyze, plan, factor, solve, end-to-end). The numbers
now live in a :class:`~repro.obs.metrics.MetricsRegistry`, so the serving
layer shares one metrics vocabulary with the rest of the observability
stack (Prometheus exposition, snapshot/delta, ``repro.cli obs``). Each
latency is recorded twice on purpose: an all-sample
:class:`~repro.obs.metrics.SampleHistogram` keeps the exact percentiles
the text report prints, and the registry's fixed-bucket histogram feeds
the exporters.

The public surface (``inc`` / ``observe`` / ``counter`` / ``summaries`` /
``report``) is unchanged from the pre-shim class.

The registry side is thread-safe on its own (see
:mod:`repro.obs.metrics`); the shim adds one mutex of its own around the
all-sample histograms, whose get-or-create dict and sorted-insert
recorder would otherwise race under the serving fleet's workers.
"""

from __future__ import annotations

from repro.analysis.report import (
    LatencySummary,
    render_counter_table,
    render_latency_table,
)
from repro.exec.pool import make_lock
from repro.obs.metrics import MetricsRegistry, SampleHistogram
from repro.service.cache import CacheStats
from repro.util.tables import format_table


class LatencyHistogram(SampleHistogram):
    """All-sample latency recorder (seconds) with percentile summaries.

    Alias of :class:`repro.obs.metrics.SampleHistogram`, kept for the
    serving layer's historical import path.
    """


class ServiceMetrics:
    """Counter + histogram registry of one :class:`SolverService`."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.histograms: dict[str, LatencyHistogram] = {}
        self._lock = make_lock()

    @property
    def counters(self) -> dict[str, int]:
        """Counter readings (shim view over the registry)."""
        return {
            name: int(value)
            for name, value in self.registry.counter_values().items()
        }

    def inc(self, name: str, by: int = 1) -> None:
        self.registry.inc(name, by)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = LatencyHistogram()
            hist.observe(seconds)
        self.registry.observe(name, seconds)

    def counter(self, name: str) -> int:
        return int(self.registry.counter_value(name))

    def summaries(self) -> dict[str, LatencySummary]:
        with self._lock:
            items = list(self.histograms.items())
        return {name: h.summary() for name, h in items}

    def report(self, cache_stats: CacheStats | None = None) -> str:
        """Full plain-text metrics report (counters, cache, latencies)."""
        parts = [render_counter_table(self.counters, title="service counters")]
        if cache_stats is not None:
            parts.append(
                format_table(
                    ["hits", "misses", "hit rate", "inserts", "evictions"],
                    [
                        [
                            cache_stats.hits,
                            cache_stats.misses,
                            round(cache_stats.hit_rate, 3),
                            cache_stats.inserts,
                            cache_stats.evictions,
                        ]
                    ],
                    title="analysis cache",
                )
            )
        if self.histograms:
            parts.append(
                render_latency_table(self.summaries(), title="phase latency")
            )
        return "\n\n".join(parts)
