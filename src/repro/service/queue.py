"""Priority queue + synchronous dispatch loop: ``SolverService``.

The service is the serving layer's front door. Callers ``submit()`` solve
requests (matrix + right-hand sides + priority/deadline/timeout) and
``drain()`` runs the dispatch loop: take the most urgent pending job,
coalesce every other pending job with the *same pattern and values* into
one blocked multi-RHS solve (amortizing both the numeric factorization and
the latency-bound solve sweeps), drop jobs whose deadline has passed, and
hand the batch to the :class:`~repro.service.executor.Executor`.

The loop is synchronous and single-worker by design — the repo's engines
are deterministic simulations, and determinism is what makes the serving
layer's results bit-checkable against the cold path. Sharding and async
backends plug in behind this same interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.solver import ParallelConfig, as_symmetric_lower
from repro.obs.spans import span
from repro.service.cache import AnalysisCache
from repro.service.executor import Executor, ExecutorOptions
from repro.service.fingerprint import pattern_fingerprint, values_digest
from repro.service.jobs import EXPIRED, JobResult, SolveJob
from repro.service.metrics import ServiceMetrics
from repro.util.errors import ShapeError
from repro.util.validation import as_float_array, work_dtype


class JobQueue:
    """Priority-ordered pending jobs (smaller priority first, FIFO ties)."""

    def __init__(self) -> None:
        self._jobs: list[tuple[int, int, SolveJob]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def push(self, job: SolveJob) -> None:
        self._jobs.append((job.priority, self._seq, job))
        self._seq += 1

    def pop_batch(
        self, coalesce: bool = True, max_rhs: int | None = None
    ) -> list[SolveJob]:
        """Pop the most urgent job plus (optionally) every pending job
        sharing its pattern+values+method, bounded by *max_rhs* columns.

        Coalescing stops at the first same-key job that does not fit the
        *max_rhs* budget: skipping it while still admitting later-submitted
        same-key jobs would let them jump the queue at equal priority
        (FIFO inversion). The non-fitting job keeps its place and heads the
        next batch instead.
        """
        if not self._jobs:
            return []
        self._jobs.sort(key=lambda item: item[:2])
        head = self._jobs[0][2]
        key = head.batch_key()
        batch = [head]
        total = head.n_rhs
        rest = []
        key_closed = False
        for item in self._jobs[1:]:
            job = item[2]
            if coalesce and not key_closed and job.batch_key() == key:
                if max_rhs is None or total + job.n_rhs <= max_rhs:
                    batch.append(job)
                    total += job.n_rhs
                    continue
                key_closed = True
            rest.append(item)
        self._jobs = rest
        return batch


@dataclass(frozen=True)
class ServiceConfig:
    """Policy knobs of one :class:`SolverService`."""

    #: analysis cache slots (distinct sparsity patterns held)
    cache_capacity: int = 32
    #: disable to force a cold analyze per request (benchmarks ablate this)
    cache_enabled: bool = True
    #: coalesce same-pattern+values requests into blocked multi-RHS solves
    coalesce: bool = True
    #: max right-hand-side columns per coalesced batch
    max_batch_rhs: int = 32
    ordering: str = "nd"
    #: execute on the simulated parallel machine (None = sequential host)
    parallel: ParallelConfig | None = None
    max_retries: int = 2
    retry_backoff: float = 0.01
    #: iterative refinement on the host solve path
    refine: bool = False
    #: host execution backend ("seq" or "threads", see repro.exec)
    backend: str = "seq"
    #: worker threads for backend="threads" (None = auto)
    workers: int | None = None
    #: default working precision of numeric factors ("fp64" or "fp32");
    #: per-request override via ``submit(precision=...)``. fp32 batches
    #: always run iterative refinement and fall back to an fp64 re-factor
    #: when refinement stalls (counted in service_precision_fallback_total)
    precision: str = "fp64"

    def executor_options(self) -> ExecutorOptions:
        return ExecutorOptions(
            ordering=self.ordering,
            parallel=self.parallel,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            refine=self.refine,
            use_cache=self.cache_enabled,
            backend=self.backend,
            workers=self.workers,
        )


class SolverService:
    """Solver-as-a-service: submit/drain with analysis reuse and batching."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.cache = AnalysisCache(self.config.cache_capacity)
        self.queue = JobQueue()
        self.executor = Executor(
            self.cache,
            self.metrics,
            self.config.executor_options(),
            clock=clock,
            sleep=sleep,
        )
        self.results: dict[int, JobResult] = {}
        self._clock = clock
        self._next_id = 0

    # -- request intake ------------------------------------------------------

    def submit(
        self,
        a,
        b,
        method: str = "cholesky",
        priority: int = 0,
        deadline: float | None = None,
        timeout: float | None = None,
        precision: str | None = None,
    ) -> int:
        """Enqueue one solve request; returns its job id.

        *a* is a full symmetric or lower-triangular :class:`CSCMatrix`;
        *b* has shape ``(n,)`` or ``(n, k)``. *deadline* is absolute on the
        service clock (see :meth:`now`); *timeout* is a wall-second budget
        once execution starts. *precision* overrides the service-wide
        default (:attr:`ServiceConfig.precision`) for this request.
        """
        if precision is None:
            precision = self.config.precision
        work_dtype(precision)  # validate the name before enqueueing
        lower = as_symmetric_lower(a)
        b = as_float_array(b, "b")
        n = lower.shape[0]
        if b.ndim > 2 or b.shape[0] != n:
            raise ShapeError(
                f"b must have shape ({n},) or ({n}, k); got {b.shape}"
            )
        squeeze = b.ndim == 1
        job = SolveJob(
            job_id=self._next_id,
            lower=lower,
            b=b[:, None] if squeeze else np.asarray(b),
            fingerprint=pattern_fingerprint(lower),
            values_key=values_digest(lower),
            method=method,
            priority=priority,
            deadline=deadline,
            timeout=timeout,
            submitted_at=self._clock(),
            squeeze=squeeze,
            precision=precision,
        )
        self._next_id += 1
        self.queue.push(job)
        self.metrics.inc("jobs_submitted")
        return job.job_id

    def now(self) -> float:
        """Current service-clock time (the reference for deadlines)."""
        return self._clock()

    # -- dispatch loop -------------------------------------------------------

    def drain(self) -> dict[int, JobResult]:
        """Process every pending job; returns results keyed by job id."""
        with span("service.drain", pending=len(self.queue)):
            return self._drain()

    def _drain(self) -> dict[int, JobResult]:
        processed: dict[int, JobResult] = {}
        while len(self.queue):
            batch = self.queue.pop_batch(
                coalesce=self.config.coalesce,
                max_rhs=self.config.max_batch_rhs,
            )
            now = self._clock()
            live = []
            for job in batch:
                if job.deadline is not None and now > job.deadline:
                    self.metrics.inc("jobs_expired")
                    processed[job.job_id] = JobResult(
                        job_id=job.job_id,
                        status=EXPIRED,
                        queue_wait=now - job.submitted_at,
                        error="deadline passed before dispatch",
                    )
                else:
                    live.append(job)
            if not live:
                continue
            self.metrics.inc("batches")
            if len(live) > 1:
                self.metrics.inc("coalesced_jobs", len(live) - 1)
            for job, res in zip(live, self.executor.execute(live)):
                res.queue_wait = now - job.submitted_at
                self.metrics.observe("queue_wait", res.queue_wait)
                for phase, seconds in res.timings.items():
                    self.metrics.observe(phase, seconds)
                self.metrics.inc(f"jobs_{res.status}")
                if res.cache_hit:
                    self.metrics.inc("cache_hit_jobs")
                processed[job.job_id] = res
        self.results.update(processed)
        return processed

    def solve(self, a, b, **kwargs) -> JobResult:
        """Convenience: submit one request and drain the queue."""
        job_id = self.submit(a, b, **kwargs)
        return self.drain()[job_id]

    # -- observability -------------------------------------------------------

    def metrics_report(self) -> str:
        """Plain-text metrics report (counters, cache stats, latencies)."""
        return self.metrics.report(
            self.cache.stats if self.config.cache_enabled else None
        )
