"""Deadline/priority job queue + the dispatch loops: ``SolverService``.

The service is the serving layer's front door. Callers ``submit()`` solve
requests (matrix + right-hand sides + priority/deadline/timeout/tenant)
and ``drain()`` runs the dispatch loop: take the most urgent pending job,
coalesce every other pending job with the *same pattern and values* into
one blocked multi-RHS solve (amortizing both the numeric factorization and
the latency-bound solve sweeps), drop jobs whose deadline has passed, and
hand the batch to the :class:`~repro.service.executor.Executor`.

Two dispatch modes share that contract:

* **single executor** (``fleet_workers=1``, the default) — the classic
  synchronous loop; deterministic given a deterministic clock.
* **fleet** (``fleet_workers>1``) — N worker threads (a
  :class:`repro.exec.fleet.FleetCrew`) pull batches concurrently from the
  same queue. The analysis cache is sharded by pattern-fingerprint hash
  (:class:`~repro.service.cache.ShardedAnalysisCache`), and batches with
  the same fingerprint are never in flight simultaneously, so each job's
  results stay **bitwise identical** to the single-executor run — only
  wall-clock timings and queue waits differ.

Scheduling is EDF-first by default (``queue_policy="edf"``): earliest
deadline wins, priority breaks deadline ties, jobs without deadlines sort
behind any deadline and among themselves by priority; submission order
breaks all remaining ties (FIFO). ``queue_policy="priority"`` restores
the pure priority order (deadlines still expire jobs, they just don't
order them) — the ablation the fleet benchmark measures.

Admission control rejects work *at submit time* with a typed
:class:`~repro.util.errors.AdmissionError`: ``max_pending`` bounds the
whole queue (backpressure), ``tenant_quota`` bounds one tenant's pending
jobs. Rejected requests are counted, never enqueued.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.solver import ParallelConfig, as_symmetric_lower
from repro.obs.spans import span
from repro.service.cache import ShardedAnalysisCache
from repro.service.executor import Executor, ExecutorOptions, Requeue
from repro.service.fingerprint import pattern_fingerprint, values_digest
from repro.service.jobs import EXPIRED, JobResult, SolveJob
from repro.service.metrics import ServiceMetrics
from repro.util.errors import AdmissionError, ReproError, ShapeError
from repro.util.validation import as_float_array, work_dtype

#: queue ordering policies (see module docstring)
QUEUE_POLICIES = ("edf", "priority")


class _Entry:
    """One queued job plus its lazy-deletion flag.

    Entries live in up to three heaps at once (the ready heap, the
    per-batch-key heap, the parked heap); claiming marks the entry and
    every heap skips claimed entries on pop instead of searching.
    """

    __slots__ = ("job", "claimed")

    def __init__(self, job: SolveJob) -> None:
        self.job = job
        self.claimed = False


class JobQueue:
    """Deadline/priority-ordered pending jobs with O(log n) push/pop.

    A binary heap keyed ``(order_key, seq)`` replaces the historical
    sort-the-whole-list-per-pop (O(n log n) *per batch*); a secondary
    per-``batch_key`` heap serves coalescing candidates in the same
    global order, preserving the documented FIFO no-inversion contract:
    coalescing stops at the first same-key job that does not fit the
    ``max_rhs`` budget — skipping it while admitting later-submitted
    same-key jobs would let them jump the queue at equal rank.

    Jobs with ``not_before`` set (retry backoff parks) wait in a separate
    heap keyed by wake time and only become dispatchable once
    ``pop_batch`` is called with a ``now`` at or past it.
    """

    def __init__(self, policy: str = "edf") -> None:
        if policy not in QUEUE_POLICIES:
            raise ShapeError(
                f"unknown queue policy {policy!r}; expected one of {QUEUE_POLICIES}"
            )
        self.policy = policy
        self._heap: list[tuple[tuple, int, _Entry]] = []
        self._by_key: dict[tuple, list[tuple[tuple, int, _Entry]]] = {}
        self._parked: list[tuple[float, int, _Entry]] = []
        self._tenant_pending: dict[str, int] = {}
        self._seq = 0
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def tenant_pending(self, tenant: str) -> int:
        """Pending (queued, not yet dispatched) jobs of *tenant*."""
        return self._tenant_pending.get(tenant, 0)

    def pending_by_tenant(self) -> dict[str, int]:
        """Snapshot of pending-job counts per tenant."""
        return dict(self._tenant_pending)

    def order_key(self, job: SolveJob) -> tuple:
        """The policy's ordering key (smaller dispatches first).

        ``"edf"``: ``(deadline, priority)`` with no-deadline treated as
        +inf — the earliest deadline wins outright and priority only
        breaks deadline ties. ``"priority"``: ``(priority,)``.
        """
        if self.policy == "edf":
            deadline = job.deadline if job.deadline is not None else math.inf
            return (deadline, job.priority)
        return (job.priority,)

    def push(self, job: SolveJob) -> None:
        """Enqueue *job* (parked when its ``not_before`` is set)."""
        entry = _Entry(job)
        seq = self._seq
        self._seq += 1
        self._n += 1
        self._tenant_pending[job.tenant] = (
            self._tenant_pending.get(job.tenant, 0) + 1
        )
        if job.not_before is not None:
            heapq.heappush(self._parked, (job.not_before, seq, entry))
        else:
            self._ready_push(seq, entry)

    def _ready_push(self, seq: int, entry: _Entry) -> None:
        key = self.order_key(entry.job)
        item = (key, seq, entry)
        heapq.heappush(self._heap, item)
        heapq.heappush(self._by_key.setdefault(entry.job.batch_key(), []), item)

    def _admit_due(self, now: float) -> None:
        """Move parked jobs whose wake time has arrived to the ready heap."""
        while self._parked and self._parked[0][0] <= now:
            _, _, entry = heapq.heappop(self._parked)
            if entry.claimed:
                continue
            seq = self._seq
            self._seq += 1
            self._ready_push(seq, entry)

    def next_ready_at(self) -> float | None:
        """Earliest wake time among parked jobs (None when none parked)."""
        while self._parked and self._parked[0][2].claimed:
            heapq.heappop(self._parked)
        return self._parked[0][0] if self._parked else None

    def _claim(self, entry: _Entry) -> None:
        entry.claimed = True
        self._n -= 1
        tenant = entry.job.tenant
        left = self._tenant_pending.get(tenant, 0) - 1
        if left > 0:
            self._tenant_pending[tenant] = left
        else:
            self._tenant_pending.pop(tenant, None)

    def pop_batch(
        self,
        coalesce: bool = True,
        max_rhs: int | None = None,
        now: float | None = None,
        exclude: set | None = None,
    ) -> list[SolveJob]:
        """Pop the most urgent ready job plus (optionally) every pending
        job sharing its pattern+values+method+precision, bounded by
        *max_rhs* columns.

        *now* admits parked retries whose backoff expired. *exclude* is a
        set of fingerprint keys currently in flight (fleet mode): jobs on
        those patterns are skipped — not popped — so two workers never
        mutate one cached analysis concurrently. Returns ``[]`` when
        nothing is dispatchable (everything parked or excluded).

        Coalescing stops at the first same-key job that does not fit the
        *max_rhs* budget: skipping it while still admitting
        later-submitted same-key jobs would let them jump the queue at
        equal rank (FIFO inversion). The non-fitting job keeps its place
        and heads a later batch instead.
        """
        if now is not None:
            self._admit_due(now)
        deferred = []
        head: _Entry | None = None
        while self._heap:
            item = heapq.heappop(self._heap)
            entry = item[2]
            if entry.claimed:
                continue  # lazily dropped (claimed via the by-key heap)
            if exclude and entry.job.fingerprint.key in exclude:
                deferred.append(item)
                continue
            head = entry
            break
        for item in deferred:
            heapq.heappush(self._heap, item)
        if head is None:
            return []
        self._claim(head)
        batch = [head.job]
        key = head.job.batch_key()
        if coalesce:
            total = head.job.n_rhs
            kheap = self._by_key.get(key, [])
            while kheap:
                entry = kheap[0][2]
                if entry.claimed:
                    heapq.heappop(kheap)
                    continue
                if max_rhs is not None and total + entry.job.n_rhs > max_rhs:
                    break  # key closed: the non-fitting job keeps its place
                heapq.heappop(kheap)
                self._claim(entry)
                batch.append(entry.job)
                total += entry.job.n_rhs
        kheap = self._by_key.get(key)
        if kheap is not None and not kheap:
            del self._by_key[key]
        return batch


@dataclass(frozen=True)
class ServiceConfig:
    """Policy knobs of one :class:`SolverService`."""

    #: analysis cache slots (distinct sparsity patterns held, all shards)
    cache_capacity: int = 32
    #: disable to force a cold analyze per request (benchmarks ablate this)
    cache_enabled: bool = True
    #: coalesce same-pattern+values requests into blocked multi-RHS solves
    coalesce: bool = True
    #: max right-hand-side columns per coalesced batch
    max_batch_rhs: int = 32
    ordering: str = "nd"
    #: execute on the simulated parallel machine (None = sequential host)
    parallel: ParallelConfig | None = None
    max_retries: int = 2
    retry_backoff: float = 0.01
    #: iterative refinement on the host solve path
    refine: bool = False
    #: host execution backend ("seq" or "threads", see repro.exec)
    backend: str = "seq"
    #: worker threads for backend="threads" (None = auto)
    workers: int | None = None
    #: default working precision of numeric factors ("fp64" or "fp32");
    #: per-request override via ``submit(precision=...)``. fp32 batches
    #: always run iterative refinement and fall back to an fp64 re-factor
    #: when refinement stalls (counted in service_precision_fallback_total)
    precision: str = "fp64"
    #: queue ordering: "edf" (earliest deadline first, priority on ties)
    #: or "priority" (pure priority; deadlines only expire)
    queue_policy: str = "edf"
    #: serving worker slots draining the queue concurrently (1 = the
    #: classic synchronous single-executor loop)
    fleet_workers: int = 1
    #: analysis-cache shards (pattern-fingerprint hash)
    shards: int = 1
    #: admission control: max pending jobs queue-wide (None = unbounded)
    max_pending: int | None = None
    #: admission control: max pending jobs per tenant (None = no quotas)
    tenant_quota: int | None = None

    def executor_options(self) -> ExecutorOptions:
        return ExecutorOptions(
            ordering=self.ordering,
            parallel=self.parallel,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            refine=self.refine,
            use_cache=self.cache_enabled,
            backend=self.backend,
            workers=self.workers,
        )


class SolverService:
    """Solver-as-a-service: submit/drain with analysis reuse and batching."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.cache = ShardedAnalysisCache(
            self.config.cache_capacity, shards=self.config.shards
        )
        self.queue = JobQueue(policy=self.config.queue_policy)
        self.executor = Executor(
            self.cache,
            self.metrics,
            self.config.executor_options(),
            clock=clock,
            sleep=sleep,
        )
        self.results: dict[int, JobResult] = {}
        self._clock = clock
        self._sleep = sleep
        self._next_id = 0

    # -- request intake ------------------------------------------------------

    def submit(
        self,
        a,
        b,
        method: str = "cholesky",
        priority: int = 0,
        deadline: float | None = None,
        timeout: float | None = None,
        precision: str | None = None,
        tenant: str = "default",
    ) -> int:
        """Enqueue one solve request; returns its job id.

        *a* is a full symmetric or lower-triangular :class:`CSCMatrix`;
        *b* has shape ``(n,)`` or ``(n, k)``. *deadline* is absolute on the
        service clock (see :meth:`now`); *timeout* is a wall-second budget
        once execution starts. *precision* overrides the service-wide
        default (:attr:`ServiceConfig.precision`) for this request.
        *tenant* names the submitter for per-tenant quota accounting.

        Raises :class:`~repro.util.errors.AdmissionError` (never
        enqueueing) when the bounded queue is full or the tenant is at
        its pending-job quota.
        """
        self._admit(tenant)
        if precision is None:
            precision = self.config.precision
        work_dtype(precision)  # validate the name before enqueueing
        lower = as_symmetric_lower(a)
        b = as_float_array(b, "b")
        n = lower.shape[0]
        if b.ndim > 2 or b.shape[0] != n:
            raise ShapeError(
                f"b must have shape ({n},) or ({n}, k); got {b.shape}"
            )
        squeeze = b.ndim == 1
        job = SolveJob(
            job_id=self._next_id,
            lower=lower,
            b=b[:, None] if squeeze else np.asarray(b),
            fingerprint=pattern_fingerprint(lower),
            values_key=values_digest(lower),
            method=method,
            priority=priority,
            deadline=deadline,
            timeout=timeout,
            submitted_at=self._clock(),
            squeeze=squeeze,
            precision=precision,
            tenant=tenant,
        )
        self._next_id += 1
        self.queue.push(job)
        self.metrics.inc("jobs_submitted")
        return job.job_id

    def _admit(self, tenant: str) -> None:
        """Admission control: reject (typed, counted) instead of enqueue."""
        limit = self.config.max_pending
        if limit is not None and len(self.queue) >= limit:
            self.metrics.inc("service_admission_rejected_total")
            self.metrics.inc("service_admission_rejected_backpressure_total")
            raise AdmissionError(
                f"queue full: {len(self.queue)} pending >= max_pending="
                f"{limit}; back off and resubmit",
                reason="backpressure",
            )
        quota = self.config.tenant_quota
        if quota is not None and self.queue.tenant_pending(tenant) >= quota:
            self.metrics.inc("service_admission_rejected_total")
            self.metrics.inc("service_admission_rejected_quota_total")
            raise AdmissionError(
                f"tenant {tenant!r} is at its pending-job quota ({quota})",
                reason="quota",
            )

    def now(self) -> float:
        """Current service-clock time (the reference for deadlines)."""
        return self._clock()

    # -- dispatch loops ------------------------------------------------------

    def drain(self) -> dict[int, JobResult]:
        """Process every pending job; returns results keyed by job id."""
        with span(
            "service.drain",
            pending=len(self.queue),
            workers=self.config.fleet_workers,
        ):
            if self.config.fleet_workers > 1:
                processed = self._drain_fleet()
            else:
                processed = self._drain()
        self.publish_autoscale_signals()
        self.results.update(processed)
        return processed

    def _drain(self) -> dict[int, JobResult]:
        """The classic synchronous single-executor loop."""
        processed: dict[int, JobResult] = {}
        floor = 0.0  # logical time reached by sleeping until a park expires
        while len(self.queue):
            now = max(self._clock(), floor)
            batch = self.queue.pop_batch(
                coalesce=self.config.coalesce,
                max_rhs=self.config.max_batch_rhs,
                now=now,
            )
            if not batch:
                # Only parked retries remain: sleep to the earliest wake.
                wake = self.queue.next_ready_at()
                if wake is None:
                    raise ReproError(
                        "job queue stalled: pending jobs but none ready"
                    )
                self._sleep(max(wake - now, 0.0))
                # Injected clocks (tests, simulations) may not advance on
                # an injected sleep; the wake time has logically passed
                # either way.
                floor = wake
                continue
            live = self._expire(batch, now, processed)
            if not live:
                continue
            self.metrics.inc("batches")
            if len(live) > 1:
                self.metrics.inc("coalesced_jobs", len(live) - 1)
            outcome = self.executor.execute(live)
            if isinstance(outcome, Requeue):
                self._requeue(outcome)
                continue
            self._record(live, outcome, now, processed)
        return processed

    def _drain_fleet(self) -> dict[int, JobResult]:
        """Fleet mode: N crew workers pull from the shared queue.

        Scheduling invariant: at most one in-flight batch per pattern
        fingerprint (``inflight`` exclusion), so concurrent workers never
        touch the same cached analysis — which is what keeps fleet
        results bitwise identical to the single-executor drain, per job,
        at any worker count.
        """
        from repro.exec.fleet import RUN, STOP, WAIT, FleetCrew, FleetDirective

        processed: dict[int, JobResult] = {}
        inflight: set = set()
        crew = FleetCrew(self.config.fleet_workers, name="service-fleet")
        gauge = self.metrics.registry.gauge

        # poll/complete run under the crew's condition lock — they are the
        # scheduler's critical section; execute runs concurrently.

        def poll(wid: int) -> FleetDirective:
            now = self._clock()
            while True:
                batch = self.queue.pop_batch(
                    coalesce=self.config.coalesce,
                    max_rhs=self.config.max_batch_rhs,
                    now=now,
                    exclude=inflight,
                )
                if not batch:
                    break
                live = self._expire(batch, now, processed)
                if not live:
                    continue
                self.metrics.inc("batches")
                if len(live) > 1:
                    self.metrics.inc("coalesced_jobs", len(live) - 1)
                inflight.add(live[0].fingerprint.key)
                gauge("service_inflight_batches").set(float(len(inflight)))
                return FleetDirective(RUN, item=(live, now))
            if not len(self.queue) and not inflight:
                return FleetDirective(STOP)
            wake = self.queue.next_ready_at()
            timeout = max(wake - now, 0.0) if wake is not None else None
            return FleetDirective(WAIT, timeout=timeout)

        def execute(wid: int, item):
            live, _ = item
            return self.executor.execute(live)

        def complete(wid: int, item, outcome) -> None:
            live, dispatched = item
            inflight.discard(live[0].fingerprint.key)
            gauge("service_inflight_batches").set(float(len(inflight)))
            if isinstance(outcome, Requeue):
                self._requeue(outcome)
            else:
                self._record(live, outcome, dispatched, processed)

        crew.serve(poll, execute, complete)
        return processed

    # -- shared dispatch bookkeeping -----------------------------------------

    def _expire(
        self,
        batch: list[SolveJob],
        now: float,
        processed: dict[int, JobResult],
    ) -> list[SolveJob]:
        """Drop batch members whose deadline passed; returns the live rest."""
        live = []
        for job in batch:
            if job.deadline is not None and now > job.deadline:
                self.metrics.inc("jobs_expired")
                self.metrics.inc("service_deadline_jobs_total")
                self.metrics.inc("service_deadline_missed_total")
                processed[job.job_id] = JobResult(
                    job_id=job.job_id,
                    status=EXPIRED,
                    queue_wait=now - job.submitted_at,
                    error="deadline passed before dispatch",
                )
            else:
                live.append(job)
        return live

    def _requeue(self, rq: Requeue) -> None:
        """Park a retry batch until its backoff expires (non-blocking)."""
        for job in rq.jobs:
            self.queue.push(job)

    def _record(
        self,
        live: list[SolveJob],
        results: list[JobResult],
        dispatched: float,
        processed: dict[int, JobResult],
    ) -> None:
        done = self._clock()
        for job, res in zip(live, results):
            res.queue_wait = dispatched - job.submitted_at
            self.metrics.observe("queue_wait", res.queue_wait)
            for phase, seconds in res.timings.items():
                self.metrics.observe(phase, seconds)
            self.metrics.inc(f"jobs_{res.status}")
            if res.cache_hit:
                self.metrics.inc("cache_hit_jobs")
            if job.deadline is not None:
                self.metrics.inc("service_deadline_jobs_total")
                if done > job.deadline:
                    # Completed, but past its SLO: a deadline miss too.
                    self.metrics.inc("service_deadline_missed_total")
            processed[job.job_id] = res

    def solve(self, a, b, **kwargs) -> JobResult:
        """Convenience: submit one request and drain the queue."""
        job_id = self.submit(a, b, **kwargs)
        return self.drain()[job_id]

    # -- observability -------------------------------------------------------

    def publish_autoscale_signals(self) -> None:
        """Publish the fleet's autoscaling gauges into the obs registry.

        ``service_queue_depth`` (pending jobs), ``service_tenants_pending``
        (tenants with queued work), ``service_deadline_miss_ratio``
        (missed / all deadline-carrying terminal jobs),
        ``service_cache_hit_rate`` plus ``service_cache_shard<i>_hit_rate``
        per shard. Scrape-ready via ``repro.obs.export.prometheus_text``.
        """
        gauge = self.metrics.registry.gauge
        gauge("service_queue_depth").set(float(len(self.queue)))
        gauge("service_tenants_pending").set(
            float(len(self.queue.pending_by_tenant()))
        )
        jobs = self.metrics.counter("service_deadline_jobs_total")
        missed = self.metrics.counter("service_deadline_missed_total")
        gauge("service_deadline_miss_ratio").set(
            missed / jobs if jobs else 0.0
        )
        gauge("service_cache_hit_rate").set(self.cache.stats.hit_rate)
        for i, st in enumerate(self.cache.shard_stats()):
            gauge(f"service_cache_shard{i}_hit_rate").set(st.hit_rate)

    @property
    def deadline_miss_ratio(self) -> float:
        """Fraction of deadline-carrying terminal jobs that missed it."""
        jobs = self.metrics.counter("service_deadline_jobs_total")
        missed = self.metrics.counter("service_deadline_missed_total")
        return missed / jobs if jobs else 0.0

    def metrics_report(self) -> str:
        """Plain-text metrics report (counters, cache stats, latencies)."""
        return self.metrics.report(
            self.cache.stats if self.config.cache_enabled else None
        )
