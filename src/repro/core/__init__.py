"""The public solver API (WSMP-style analyze / factor / solve)."""

from repro.core.lu_solver import UnsymmetricSolver, LUSolveResult
from repro.core.solver import (
    SparseSolver,
    ParallelConfig,
    SolveResult,
    AnalyzeInfo,
    ParallelRunReport,
)

__all__ = [
    "UnsymmetricSolver",
    "LUSolveResult",
    "SparseSolver",
    "ParallelConfig",
    "SolveResult",
    "AnalyzeInfo",
    "ParallelRunReport",
]
