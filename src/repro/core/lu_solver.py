"""`UnsymmetricSolver` — the LU front door.

Same three-phase shape as :class:`~repro.core.solver.SparseSolver`, for
general square matrices: analyze on the symmetrized pattern, multifrontal
static-pivoting LU, solve with iterative refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.mf.lu import LUFactor, lu_analyze, lu_solve, multifrontal_lu
from repro.ordering.registry import get_ordering
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import matvec_csc, symmetrize, tril
from repro.symbolic.analyze import AnalyzeOptions
from repro.util.errors import ReproError, ShapeError
from repro.util.validation import as_float_array


@dataclass(frozen=True)
class LUSolveResult:
    """Solution plus accuracy diagnostics."""

    x: np.ndarray
    residual: float
    refinement_iterations: int


class UnsymmetricSolver:
    """Sparse unsymmetric direct solver (multifrontal LU, static pivoting).

    Parameters
    ----------
    a
        General square CSC matrix.
    ordering
        Ordering name (applied to the symmetrized adjacency graph) or an
        explicit permutation.
    pivot_perturbation
        Static-pivoting threshold relative to ``max |a_ij|``; ``None``
        raises on zero diagonal pivots. Diagonally dominant inputs
        (e.g. upwind discretizations) need neither.
    """

    def __init__(
        self,
        a: CSCMatrix,
        ordering="nd",
        analyze_options: AnalyzeOptions | None = None,
        pivot_perturbation: float | None = None,
    ):
        if a.shape[0] != a.shape[1]:
            raise ShapeError("matrix must be square")
        self.a = a
        self.ordering = ordering
        self.analyze_options = analyze_options
        self.pivot_perturbation = pivot_perturbation
        self.sym = None
        self.permuted_full: CSCMatrix | None = None
        self.factor_data: LUFactor | None = None

    def analyze(self):
        """Ordering (on A + Aᵀ's graph) + symbolic factorization."""
        if isinstance(self.ordering, str):
            pattern_lower = tril(symmetrize(self.a, mode="pattern"))
            graph = AdjacencyGraph.from_symmetric_lower(pattern_lower)
            perm = get_ordering(self.ordering)(graph)
        else:
            perm = np.asarray(self.ordering, dtype=np.int64)
        self.sym, self.permuted_full = lu_analyze(
            self.a, perm, self.analyze_options
        )
        return self.sym

    def factor(self) -> LUFactor:
        """Numeric multifrontal LU."""
        if self.sym is None:
            self.analyze()
        self.factor_data = multifrontal_lu(
            self.sym,
            self.permuted_full,
            pivot_perturbation=self.pivot_perturbation,
        )
        return self.factor_data

    def solve(
        self, b: np.ndarray, refine: bool = True, max_iter: int = 5, tol: float = 1e-12
    ) -> LUSolveResult:
        """Solve ``A x = b`` with optional iterative refinement."""
        if self.factor_data is None:
            self.factor()
        b = as_float_array(b, "b")
        norm_b = float(np.max(np.abs(b))) if b.size else 0.0
        x = lu_solve(self.factor_data, b)
        if norm_b == 0.0:
            return LUSolveResult(np.zeros_like(b), 0.0, 0)
        iters = 0
        r = b - matvec_csc(self.a, x)
        rel = float(np.max(np.abs(r))) / norm_b
        if refine:
            for iters in range(1, max_iter + 1):
                if rel <= tol:
                    iters -= 1
                    break
                x = x + lu_solve(self.factor_data, r)
                r = b - matvec_csc(self.a, x)
                rel = float(np.max(np.abs(r))) / norm_b
        return LUSolveResult(x=x, residual=rel, refinement_iterations=iters)

    @property
    def perturbed_columns(self) -> tuple[int, ...]:
        if self.factor_data is None:
            raise ReproError("factor() first")
        return self.factor_data.perturbed_columns

    def simulate(self, config, b: np.ndarray | None = None, verify: bool = False):
        """Run the distributed LU factorization (and optionally one solve)
        on the simulated machine described by a
        :class:`~repro.core.solver.ParallelConfig`.

        Returns ``(factor_result, x_or_None)``.
        """
        from repro.parallel.lu_par import (
            simulate_lu_factorization,
            simulate_lu_solve,
        )

        if self.sym is None:
            self.analyze()
        res = simulate_lu_factorization(
            self.sym,
            self.permuted_full,
            config.n_ranks,
            config.machine,
            config.plan_options(),
            pivot_perturbation=self.pivot_perturbation,
        )
        if verify:
            if self.factor_data is None:
                self.factor()
            l_ref, u_ref = self.factor_data.to_dense_lu()
            l_got, u_got = res.to_dense_lu()
            err = max(
                float(np.max(np.abs(l_ref - l_got))),
                float(np.max(np.abs(u_ref - u_got))),
            )
            scale = max(float(np.max(np.abs(u_ref))), 1.0)
            if err > 1e-8 * scale:
                raise ReproError(f"distributed LU mismatch: max err {err:.3e}")
        x = None
        if b is not None:
            _sim, x = simulate_lu_solve(res, as_float_array(b, "b"))
        return res, x
