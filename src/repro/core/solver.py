"""`SparseSolver` — the library's front door.

Mirrors the three-phase interface of WSMP (and of every serious sparse
direct solver): symbolic **analyze** once per sparsity pattern, numeric
**factor** once per value set, **solve** per right-hand side. A fourth
entry point, :meth:`SparseSolver.simulate`, runs the same factorization
distributed over a simulated massively parallel machine and reports its
timing — the reproduction's measurement instrument.

Example
-------
>>> from repro.gen import grid3d_laplacian
>>> from repro.core import SparseSolver
>>> import numpy as np
>>> a = grid3d_laplacian(4)
>>> solver = SparseSolver(a)
>>> info = solver.analyze()
>>> _ = solver.factor()
>>> x = solver.solve(np.ones(a.shape[0])).x
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.structure import AdjacencyGraph
from repro.machine.model import MachineModel
from repro.machine.presets import GENERIC_CLUSTER
from repro.mf.numeric import NumericFactor, multifrontal_factor
from repro.mf.refine import iterative_refinement_many
from repro.mf.solve_phase import solve_many as mf_solve_many
from repro.obs.spans import span
from repro.ordering.registry import get_ordering
from repro.parallel.driver import (
    ParallelFactorResult,
    ParallelSolveResult,
    simulate_factorization,
    simulate_solve,
)
from repro.parallel.plan import PlanOptions
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import sym_matvec_lower_many, tril, is_structurally_symmetric
from repro.symbolic.analyze import AnalyzeOptions, SymbolicFactor, analyze
from repro.util.errors import PatternMismatchError, ReproError, ShapeError

#: execution backends of the numeric phases: ``"seq"`` runs on the host
#: thread, ``"threads"`` on a :mod:`repro.exec` worker pool (bitwise
#: identical results either way — the sequential path is the oracle)
EXEC_BACKENDS = ("seq", "threads")
from repro.util.timing import WallTimer
from repro.util.validation import as_float_array, work_dtype


def as_symmetric_lower(a: CSCMatrix) -> CSCMatrix:
    """Reduce *a* to the lower triangle of a symmetric matrix.

    Accepts either the lower triangle directly or a full symmetric CSC
    matrix (verified structurally and numerically, then reduced) — the
    input convention of :class:`SparseSolver` and its ``refactor`` path.
    """
    if a.shape[0] != a.shape[1]:
        raise ShapeError("matrix must be square")
    lower = tril(a)
    if lower.nnz != a.nnz:
        # Caller passed a full symmetric matrix: verify and reduce.
        if not is_structurally_symmetric(a):
            raise ShapeError(
                "matrix is neither lower-triangular nor structurally "
                "symmetric"
            )
        from repro.sparse.convert import csc_to_csr

        t = csc_to_csr(a)  # CSR of A == CSC layout of A^T
        if not np.allclose(t.data, a.data, rtol=1e-12, atol=0):
            raise ShapeError(
                "matrix is structurally but not numerically symmetric; "
                "symmetrize it first (repro.sparse.symmetrize)"
            )
    return lower


@dataclass(frozen=True)
class AnalyzeInfo:
    """Summary of the analyze phase."""

    n: int
    nnz_a: int
    nnz_factor: int
    nnz_stored: int
    factor_flops: int
    solve_flops: int
    n_supernodes: int
    fill_ratio: float
    #: host wall time of the analyze phase [s]
    wall_time: float


@dataclass(frozen=True)
class SolveResult:
    """Solution plus accuracy diagnostics."""

    x: np.ndarray
    #: normwise backward error of the returned solution (worst column)
    residual: float
    #: refinement iterations performed (0 = plain direct solve)
    refinement_iterations: int
    #: working precision of the factor that produced ``x`` — ``"fp64"``
    #: after an automatic fp32→fp64 fallback, even if ``factor()`` was
    #: called with ``precision="fp32"``
    precision: str = "fp64"


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of one simulated parallel run."""

    n_ranks: int
    machine: MachineModel = GENERIC_CLUSTER
    threads_per_rank: int = 1
    #: block-cyclic block size
    nb: int = 48
    #: front distribution policy ("2d", "1d", "static")
    policy: str = "2d"

    def plan_options(self) -> PlanOptions:
        return PlanOptions(nb=self.nb, policy=self.policy)


@dataclass(frozen=True)
class ParallelRunReport:
    """Timing report of one simulated parallel factorization (+ solve)."""

    config: ParallelConfig
    factor_time: float
    factor_gflops: float
    peak_fraction: float
    comm_fraction: float
    n_messages: int
    total_bytes: int
    solve_time: float | None = None
    #: full result objects for deeper inspection
    factor_result: ParallelFactorResult | None = field(
        default=None, repr=False, compare=False
    )
    solve_result: ParallelSolveResult | None = field(
        default=None, repr=False, compare=False
    )


class SparseSolver:
    """Sparse symmetric direct solver (Cholesky / LDLᵀ).

    Parameters
    ----------
    a
        The matrix: either the lower triangle of a symmetric matrix, or a
        full symmetric CSC matrix (detected and reduced automatically).
    method
        ``"cholesky"`` for SPD input, ``"ldlt"`` for symmetric strongly
        regular input.
    ordering
        Fill-reducing ordering name from :data:`repro.ordering.ORDERINGS`
        (default ``"nd"`` — nested dissection, required for good parallel
        scaling) or an explicit permutation array.
    """

    def __init__(
        self,
        a: CSCMatrix,
        method: str = "cholesky",
        ordering="nd",
        analyze_options: AnalyzeOptions | None = None,
        pivot_perturbation: float | None = None,
    ):
        if method not in ("cholesky", "ldlt"):
            raise ShapeError(f"unknown method {method!r}")
        self.lower = as_symmetric_lower(a)
        self.method = method
        self.ordering = ordering
        self.analyze_options = analyze_options
        self.pivot_perturbation = pivot_perturbation
        self.sym: SymbolicFactor | None = None
        self.numeric: NumericFactor | None = None
        self._analyze_info: AnalyzeInfo | None = None

    # -- phases ------------------------------------------------------------

    def analyze(self) -> AnalyzeInfo:
        """Ordering + symbolic factorization (once per pattern)."""
        with span(
            "solver.analyze", n=self.lower.shape[0], nnz=self.lower.nnz
        ), WallTimer() as t:
            if isinstance(self.ordering, str):
                with span("solver.ordering", ordering=self.ordering):
                    graph = AdjacencyGraph.from_symmetric_lower(self.lower)
                    perm = get_ordering(self.ordering)(graph)
            else:
                perm = np.asarray(self.ordering, dtype=np.int64)
            with span("solver.symbolic"):
                self.sym = analyze(self.lower, perm, self.analyze_options)
        s = self.sym
        self._analyze_info = AnalyzeInfo(
            n=s.n,
            nnz_a=self.lower.nnz,
            nnz_factor=s.nnz_factor,
            nnz_stored=s.nnz_stored,
            factor_flops=s.factor_flops,
            solve_flops=s.solve_flops,
            n_supernodes=s.n_supernodes,
            fill_ratio=s.nnz_factor / max(self.lower.nnz, 1),
            wall_time=t.elapsed,
        )
        return self._analyze_info

    def factor(
        self,
        backend: str = "seq",
        workers: int | None = None,
        precision: str = "fp64",
    ) -> NumericFactor:
        """Numeric factorization on the host.

        ``backend="seq"`` (default) runs on the calling thread;
        ``backend="threads"`` runs the same elimination-tree task graph on
        a :mod:`repro.exec` worker pool (*workers* threads, default
        :func:`repro.exec.pool.default_workers`) and returns a **bitwise
        identical** factor for any worker count.

        ``precision="fp32"`` factors in single precision — half the factor
        memory and bandwidth. :meth:`solve` recovers fp64 accuracy through
        iterative refinement and automatically re-factors in fp64 when
        refinement cannot (ill-conditioned systems).
        """
        if self.sym is None:
            self.analyze()
        work_dtype(precision)  # validate early, before any work
        with span(
            "solver.factor",
            method=self.method,
            backend=backend,
            precision=precision,
        ):
            self.numeric = self._factor_backend(backend, workers, precision)
        return self.numeric

    def _factor_backend(
        self, backend: str, workers: int | None, precision: str = "fp64"
    ) -> NumericFactor:
        if backend == "seq":
            return multifrontal_factor(
                self.sym,
                method=self.method,
                pivot_perturbation=self.pivot_perturbation,
                precision=precision,
            )
        if backend == "threads":
            from repro.exec import multifrontal_factor_threads

            return multifrontal_factor_threads(
                self.sym,
                method=self.method,
                pivot_perturbation=self.pivot_perturbation,
                workers=workers,
                precision=precision,
            )
        raise ShapeError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{EXEC_BACKENDS}"
        )

    def _solve_backend(self, backend: str, workers: int | None):
        """Blocked solve kernel for *backend*: ``solve_fn(factor, b)``."""
        if backend == "seq":
            return mf_solve_many
        if backend == "threads":
            from repro.exec import solve_many_threads

            def solve_fn(factor: NumericFactor, b: np.ndarray) -> np.ndarray:
                return solve_many_threads(factor, b, workers=workers)

            return solve_fn
        raise ShapeError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{EXEC_BACKENDS}"
        )

    def solve(
        self,
        b: np.ndarray,
        refine: bool = True,
        tol: float = 1e-12,
        backend: str = "seq",
        workers: int | None = None,
    ) -> SolveResult:
        """Solve ``A x = b`` (factors first if needed).

        *b* is one right-hand side ``(n,)`` or a panel ``(n, k)``. A panel
        runs the blocked path — one permute/sweep/unpermute pass for all
        columns, bitwise identical per column to solving each column alone.
        For a panel the reported ``residual`` and ``refinement_iterations``
        are the worst (max) over columns.

        ``backend="threads"`` runs the triangular sweeps (including those
        inside iterative refinement) level-set scheduled on a
        :mod:`repro.exec` worker pool — bitwise identical to the default
        sequential sweeps for any worker count. The backend applies to the
        solve only; pass it to :meth:`factor` separately.
        """
        if self.numeric is None:
            self.factor()
        b = as_float_array(b, "b")
        solve_fn = self._solve_backend(backend, workers)
        n_rhs = 1 if b.ndim == 1 else int(b.shape[1])
        with span(
            "solver.solve",
            refine=refine,
            rhs=n_rhs,
            backend=backend,
            precision=self.numeric.precision,
        ):
            if refine:
                res = iterative_refinement_many(
                    self.numeric, self.lower, b, tol=tol, solve_fn=solve_fn
                )
                if self.numeric.precision != "fp64" and not bool(
                    np.all(res.converged)
                ):
                    # Reduced-precision refinement stalled or diverged on at
                    # least one column: re-factor in fp64 (same values, same
                    # analysis) and refine against the robust factor — the
                    # last rung of the precision degradation ladder.
                    with span(
                        "solver.precision_fallback",
                        method=self.method,
                        backend=backend,
                    ):
                        self.numeric = self._factor_backend(
                            backend, workers, "fp64"
                        )
                    res = iterative_refinement_many(
                        self.numeric, self.lower, b, tol=tol, solve_fn=solve_fn
                    )
                x = res.x[:, 0] if b.ndim == 1 else res.x
                return SolveResult(
                    x=x,
                    residual=float(np.max(res.residuals)),
                    refinement_iterations=int(np.max(res.iterations)),
                    precision=self.numeric.precision,
                )
            x = solve_fn(self.numeric, b)
            b2 = b[:, None] if b.ndim == 1 else b
            x2 = x[:, None] if x.ndim == 1 else x
            r = b2 - sym_matvec_lower_many(self.lower, x2)
            denom = np.maximum(np.max(np.abs(b2), axis=0), 1e-300)
            return SolveResult(
                x=x,
                residual=float(np.max(np.max(np.abs(r), axis=0) / denom)),
                refinement_iterations=0,
                precision=self.numeric.precision,
            )

    # -- simulated parallel execution ---------------------------------------

    def simulate(
        self,
        config: ParallelConfig,
        b: np.ndarray | None = None,
        verify: bool = False,
    ) -> ParallelRunReport:
        """Run the distributed factorization (and optionally a solve) on
        the simulated machine described by *config*.

        With ``verify=True`` the distributed factor is reassembled and
        compared against the sequential factor (tests use this; it defeats
        the purpose of simulating large machines on big problems, so it is
        off by default).
        """
        if self.sym is None:
            self.analyze()
        with span(
            "solver.simulate",
            ranks=config.n_ranks,
            machine=config.machine.name,
        ):
            fres = simulate_factorization(
                self.sym,
                config.n_ranks,
                config.machine,
                config.plan_options(),
                method=self.method,
                threads_per_rank=config.threads_per_rank,
            )
        if verify:
            if self.numeric is None:
                self.factor()
            ref = self.numeric.to_dense_l()
            got = fres.to_dense_l()
            err = float(np.max(np.abs(ref - got)))
            scale = float(np.max(np.abs(ref))) or 1.0
            if err > 1e-8 * scale:
                raise ReproError(
                    f"distributed factor mismatch: max err {err:.3e}"
                )
        sres = None
        if b is not None:
            sres = simulate_solve(fres, as_float_array(b, "b"))
        return ParallelRunReport(
            config=config,
            factor_time=fres.makespan,
            factor_gflops=fres.gflops,
            peak_fraction=fres.peak_fraction,
            comm_fraction=fres.comm_fraction(),
            n_messages=fres.sim.ledger.n_messages,
            total_bytes=fres.sim.ledger.total_bytes,
            solve_time=None if sres is None else sres.makespan,
            factor_result=fres,
            solve_result=sres,
        )

    # -- convenience ---------------------------------------------------------

    def update_values(self, new_a: CSCMatrix) -> None:
        """Install new numeric values on the *same* pattern, no factorization.

        Accepts a full symmetric or lower-triangular matrix, exactly like
        the constructor. The existing analysis (ordering + symbolic) is
        kept; any previously computed numeric factor is invalidated. Both
        :meth:`refactor` and the simulated-parallel path (where the numeric
        phase runs on the distributed engine, not the host) build on this.
        """
        if self.sym is None:
            raise ReproError("call analyze() (or factor()) before refactor()")
        lower = as_symmetric_lower(new_a)
        if lower.shape != self.lower.shape:
            raise PatternMismatchError(
                "refactor requires the same matrix dimension; got "
                f"{lower.shape}, analyzed {self.lower.shape}"
            )
        if not (
            np.array_equal(lower.indptr, self.lower.indptr)
            and np.array_equal(lower.indices, self.lower.indices)
        ):
            raise PatternMismatchError(
                "refactor requires the same sparsity pattern; run a new "
                "SparseSolver (or re-analyze) for a different structure"
            )
        self.lower = lower
        # Permute the new values through the existing symbolic ordering.
        from repro.sparse.permute import permute_symmetric_lower

        self.sym.permuted_lower = permute_symmetric_lower(
            lower, self.sym.perm
        )
        self.numeric = None

    def refactor(
        self,
        new_a: CSCMatrix,
        backend: str = "seq",
        workers: int | None = None,
        precision: str | None = None,
    ) -> NumericFactor:
        """Numeric re-factorization with new values on the *same* pattern.

        The workhorse of nonlinear/transient workflows (the paper's
        sheet-forming runs factor thousands of matrices with one analysis):
        reuses the symbolic factorization, only the numeric phase reruns.
        Raises :class:`~repro.util.errors.PatternMismatchError` when *new_a*
        has a different structure. *backend* / *workers* as in
        :meth:`factor`. *precision* ``None`` keeps the previous factor's
        working precision (fp64 when nothing was factored yet).
        """
        if precision is None:
            precision = "fp64" if self.numeric is None else self.numeric.precision
        work_dtype(precision)
        self.update_values(new_a)
        with span(
            "solver.refactor",
            method=self.method,
            backend=backend,
            precision=precision,
        ):
            self.numeric = self._factor_backend(backend, workers, precision)
        return self.numeric

    def condition_estimate(self, max_iter: int = 5) -> float:
        """Hager–Higham 1-norm condition estimate (factors if needed)."""
        from repro.mf.condest import condest

        if self.numeric is None:
            self.factor()
        return condest(self.lower, self.numeric, max_iter=max_iter)

    def schur_complement(self, schur_set) -> np.ndarray:
        """Dense Schur complement of this matrix onto *schur_set* (see
        :func:`repro.mf.schur.schur_complement`)."""
        from repro.mf.schur import schur_complement as _schur

        ordering = self.ordering if isinstance(self.ordering, str) else "nd"
        return _schur(
            self.lower, schur_set, method=self.method, ordering=ordering
        )

    @property
    def info(self) -> AnalyzeInfo:
        if self._analyze_info is None:
            raise ReproError("call analyze() first")
        return self._analyze_info
