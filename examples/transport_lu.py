"""Transport scenario: unsymmetric convection–diffusion solved with the
multifrontal LU path.

Sweeps the Péclet number (convection strength). Upwinding keeps the matrix
row-diagonally dominant at every Péclet, so static-pivoting LU needs no
perturbation and refinement converges immediately — and at pe=0 the
operator degenerates to the symmetric Laplacian, letting us cross-check LU
against the Cholesky solver on the exact same system.

Run:  python examples/transport_lu.py
"""

import numpy as np

from repro.core import SparseSolver, UnsymmetricSolver
from repro.gen import convection_diffusion2d, grid2d_laplacian
from repro.sparse.ops import matvec_csc
from repro.util.rng import make_rng
from repro.util.tables import format_table


def main(nx: int = 24) -> None:
    n = nx * nx
    b = make_rng(5).standard_normal(n)

    rows = []
    for pe in (0.0, 0.5, 2.0, 8.0):
        a = convection_diffusion2d(nx, wind=(1.0, 0.3), peclet=pe)
        solver = UnsymmetricSolver(a, ordering="nd")
        res = solver.solve(b)
        r = np.max(np.abs(b - matvec_csc(a, res.x)))
        asym = float(np.max(np.abs(a.to_dense() - a.to_dense().T)))
        rows.append(
            [pe, asym, res.residual, res.refinement_iterations, f"{r:.1e}"]
        )
    print(
        format_table(
            ["Peclet", "max |A-A^T|", "rel residual", "refine iters", "abs resid"],
            rows,
            title=f"convection-diffusion {nx}x{nx} (multifrontal LU)",
        )
    )

    # Cross-check at pe=0: LU and Cholesky solve the same symmetric system.
    a0 = convection_diffusion2d(nx, peclet=0.0)
    x_lu = UnsymmetricSolver(a0).solve(b).x
    x_chol = SparseSolver(grid2d_laplacian(nx)).solve(b).x
    print(
        f"\npe=0 cross-check vs Cholesky path: "
        f"max diff {np.max(np.abs(x_lu - x_chol)):.2e}"
    )
    assert np.allclose(x_lu, x_chol, atol=1e-9)


if __name__ == "__main__":
    main()
