"""Structural-analysis scenario: a 3-dof-per-node elasticity-like operator
(the paper's motivating workload: implicit structural mechanics / sheet
forming), solved for several load cases with iterative refinement, then a
hybrid MPI×SMP capacity check on a POWER5-cluster-style machine.

Run:  python examples/structural_analysis_3d.py
"""

import numpy as np

from repro import SparseSolver, ParallelConfig
from repro.gen import elasticity3d
from repro.machine import POWER5_CLUSTER
from repro.mf.solve_phase import solve_many
from repro.util.rng import make_rng
from repro.util.tables import format_table


def main() -> None:
    # 8x8x8 hex mesh, 3 displacement dofs per vertex -> n = 1536.
    a = elasticity3d(8, seed=42)
    n = a.shape[0]
    solver = SparseSolver(a, method="cholesky", ordering="nd")
    info = solver.analyze()
    print(
        f"elasticity operator: n={n}, nnz={a.nnz}, "
        f"nnz(L)={info.nnz_factor}, {info.factor_flops/1e6:.1f} Mflop"
    )

    solver.factor()

    # Multiple load cases: a gravity-like load plus two point loads.
    rng = make_rng(7)
    loads = np.zeros((n, 3))
    loads[2::3, 0] = -1.0  # uniform z load
    loads[rng.integers(0, n, 5), 1] = 10.0  # point loads, case 2
    loads[rng.integers(0, n, 5), 2] = -10.0  # point loads, case 3

    x = solve_many(solver.numeric, loads)
    rows = []
    for k in range(3):
        res = solver.solve(loads[:, k])
        rows.append(
            [
                f"case {k}",
                float(np.max(np.abs(res.x))),
                res.residual,
                res.refinement_iterations,
            ]
        )
        assert np.allclose(res.x, x[:, k], atol=1e-8)
    print(format_table(["load case", "max |u|", "residual", "refine iters"], rows))

    # Capacity check: how do hybrid configurations of a 32-core POWER5
    # allocation compare for this model?
    print("\nhybrid configurations on 32 cores (POWER5-cluster model):")
    rows = []
    for ranks, threads in ((32, 1), (8, 4), (2, 16)):
        rep = solver.simulate(
            ParallelConfig(
                n_ranks=ranks,
                machine=POWER5_CLUSTER,
                threads_per_rank=threads,
                nb=32,
            )
        )
        rows.append(
            [
                f"{ranks} x {threads}",
                rep.factor_time * 1e3,
                rep.factor_gflops,
                rep.n_messages,
                rep.comm_fraction * 100,
            ]
        )
    print(
        format_table(
            ["ranks x threads", "factor [ms]", "Gflop/s", "msgs", "comm %"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
