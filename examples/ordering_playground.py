"""Ordering playground: how fill-reducing orderings shape the factor.

Compares natural / RCM / AMD / nested-dissection on 2D and 3D meshes and
shows the top-level separator sizes that drive the difference (O(sqrt n) in
2D, O(n^(2/3)) in 3D).

Run:  python examples/ordering_playground.py
"""

from repro.gen import grid2d_laplacian, grid3d_laplacian, grid2d_anisotropic
from repro.graph import AdjacencyGraph
from repro.ordering import get_ordering, ordering_quality
from repro.ordering.nested_dissection import nd_separator_tree_sizes
from repro.util.tables import format_table

PROBLEMS = {
    "grid2d 24x24": lambda: grid2d_laplacian(24),
    "grid3d 9x9x9": lambda: grid3d_laplacian(9),
    "aniso 24x24": lambda: grid2d_anisotropic(24, epsilon=0.01),
}

ORDER_NAMES = ["natural", "rcm", "amd", "nd"]


def main() -> None:
    for pname, build in PROBLEMS.items():
        lower = build()
        graph = AdjacencyGraph.from_symmetric_lower(lower)
        rows = []
        for oname in ORDER_NAMES:
            q = ordering_quality(lower, get_ordering(oname)(graph))
            rows.append(
                [
                    oname,
                    q.nnz_factor,
                    round(q.fill_ratio, 2),
                    round(q.factor_flops / 1e6, 3),
                    q.etree_height,
                ]
            )
        print(
            format_table(
                ["ordering", "nnz(L)", "fill", "Mflops", "etree height"],
                rows,
                title=f"\n{pname} (n={lower.shape[0]}, nnz={lower.nnz})",
            )
        )

    print("\ntop-level vertex separators (the ND scaling driver):")
    rows = []
    for pname, build in PROBLEMS.items():
        lower = build()
        g = AdjacencyGraph.from_symmetric_lower(lower)
        p0, p1, sep = nd_separator_tree_sizes(g)
        rows.append([pname, g.n, p0, p1, sep])
    print(format_table(["problem", "n", "|part0|", "|part1|", "|separator|"], rows))


if __name__ == "__main__":
    main()
