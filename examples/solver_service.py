"""Transient analysis through the serving layer.

The paper's motivating application — nonlinear/transient finite-element
runs (sheet-metal forming) — factors thousands of matrices that all share
one sparsity pattern. This example drives that workflow through
``repro.service``: a time loop of numeric refactorizations on a fixed
3D-mesh pattern (stiffness values drift each step), interleaved with a
handful of side problems on *new* patterns (which must pay for their own
analysis). With the analysis cache on, every repeat-pattern step skips
ordering + symbolic factorization + parallel planning and goes straight to
the numeric phase.

Run:  PYTHONPATH=src python examples/solver_service.py
"""

import numpy as np

from repro.gen import grid3d_laplacian, random_spd_sparse
from repro.service import COMPLETED, ServiceConfig, SolverService
from repro.sparse.csc import CSCMatrix
from repro.util.rng import make_rng
from repro.util.timing import WallTimer


def main(steps: int = 100, size: int = 6, new_patterns: int = 5) -> None:
    base = grid3d_laplacian(size)
    n = base.shape[0]
    rng = make_rng(7)
    service = SolverService(ServiceConfig(cache_capacity=new_patterns + 1))

    print(
        f"transient loop: {steps} refactor steps on a {size}^3 mesh "
        f"(n={n}), {new_patterns} fresh-pattern side problems\n"
    )
    with WallTimer() as t:
        for step in range(steps):
            # The transient step: same pattern, drifted stiffness values.
            stepped = CSCMatrix(
                base.shape,
                base.indptr,
                base.indices,
                base.data * (1.0 + 0.3 * np.sin(0.1 * step)) ,
                _skip_check=True,
            )
            service.submit(stepped, rng.standard_normal(n))
            # A few side problems on brand-new patterns, spread over the run.
            if new_patterns and step % max(steps // new_patterns, 1) == 0:
                side = random_spd_sparse(
                    32 + step, avg_degree=5, seed=1000 + step
                )
                service.submit(
                    side, rng.standard_normal(side.shape[0]), priority=1
                )
            results = service.drain()
            bad = [r for r in results.values() if r.status != COMPLETED]
            assert not bad, bad

    print(service.metrics_report())
    stats = service.cache.stats
    served = service.metrics.counter("jobs_completed")
    print(
        f"\nserved {served} jobs in {t.elapsed:.2f} s "
        f"({served / max(t.elapsed, 1e-9):.1f} jobs/s); "
        f"analysis ran {stats.misses} times for {served} requests "
        f"(hit rate {stats.hit_rate:.0%})"
    )


if __name__ == "__main__":
    main()
