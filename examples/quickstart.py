"""Quickstart: factor and solve a 3D Poisson system, then simulate the
same factorization on a 256-rank Blue Gene/P-style machine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SparseSolver, ParallelConfig
from repro.gen import grid3d_laplacian
from repro.machine import BLUEGENE_P

def main() -> None:
    # Lower triangle of the 7-point Laplacian on a 12x12x12 grid (SPD).
    a = grid3d_laplacian(12)
    n = a.shape[0]
    print(f"matrix: n={n}, nnz(tril)={a.nnz}")

    solver = SparseSolver(a, method="cholesky", ordering="nd")

    info = solver.analyze()
    print(
        f"analyze: nnz(L)={info.nnz_factor} (fill {info.fill_ratio:.2f}x), "
        f"{info.factor_flops/1e6:.1f} Mflop, {info.n_supernodes} supernodes, "
        f"{info.wall_time*1e3:.0f} ms"
    )

    solver.factor()
    b = np.ones(n)
    result = solver.solve(b)
    print(
        f"solve: relative residual {result.residual:.2e} "
        f"after {result.refinement_iterations} refinement step(s)"
    )

    # Simulate the same factorization on 256 ranks of a BG/P-like machine.
    report = solver.simulate(
        ParallelConfig(n_ranks=256, machine=BLUEGENE_P, nb=32), b=b
    )
    print(
        f"simulated 256-rank BG/P: factor {report.factor_time*1e3:.2f} ms "
        f"({report.factor_gflops:.1f} Gflop/s, "
        f"{report.peak_fraction*100:.1f}% of peak), "
        f"solve {report.solve_time*1e3:.2f} ms, "
        f"{report.n_messages} messages"
    )
    x = report.solve_result.x
    print(f"simulated solve matches host solve: {np.allclose(x, result.x)}")


if __name__ == "__main__":
    main()
