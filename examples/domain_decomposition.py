"""Domain-decomposition scenario: Schur complements as the coupling
operator between subdomains.

Splits a 2D mesh into two subdomains joined by an interface column,
condenses each subdomain onto the interface with
:func:`repro.mf.schur_complement`, solves the small dense interface system,
and back-substitutes — the classic substructuring workflow that consumes a
sparse direct solver as its kernel (and a WSMP API feature).

Run:  python examples/domain_decomposition.py
"""

import numpy as np

from repro import SparseSolver
from repro.gen import grid2d_laplacian
from repro.mf import schur_complement
from repro.mf.schur import split_symmetric_lower
from repro.sparse.ops import sym_matvec_lower
from repro.util.rng import make_rng


def main(nx: int = 17) -> None:
    # nx odd: the middle grid column is the interface.
    a = grid2d_laplacian(nx)
    n = nx * nx
    interface = np.arange(nx // 2, n, nx)  # middle column, one per row
    rng = make_rng(3)
    b = rng.standard_normal(n)

    print(f"mesh {nx}x{nx}: n={n}, interface size={interface.size}")

    # --- substructuring solve -------------------------------------------
    a_ii, a_bi, a_bb = split_symmetric_lower(a, interface)
    interior = np.setdiff1d(np.arange(n), interface)
    b_i, b_b = b[interior], b[interface]

    s = schur_complement(a, interface)
    print(f"Schur complement: {s.shape[0]}x{s.shape[0]} dense, SPD={np.linalg.eigvalsh(s).min() > 0}")

    inner = SparseSolver(a_ii)
    inner.factor()
    # Condensed RHS: g = b_B - A_BI A_II^{-1} b_I
    y = inner.solve(b_i).x
    g = b_b - a_bi @ y
    # Interface solve, then interior back-substitution.
    x_b = np.linalg.solve(s, g)
    x_i = inner.solve(b_i - a_bi.T @ x_b).x
    x = np.empty(n)
    x[interface] = x_b
    x[interior] = x_i

    # --- verification against the monolithic solve ------------------------
    mono = SparseSolver(a).solve(b).x
    err = np.max(np.abs(x - mono))
    resid = np.max(np.abs(b - sym_matvec_lower(a, x)))
    print(f"substructured vs monolithic: max diff {err:.2e}, residual {resid:.2e}")
    assert err < 1e-9


if __name__ == "__main__":
    main()
