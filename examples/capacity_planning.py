"""Capacity planning: choose a machine allocation before running anything.

Given a problem, use the *symbolic* instruments — the analytic performance
model, the memory predictor, and the tree-parallelism profile — to answer
the questions an HPC user asks before submitting a job:

  1. how many ranks until the strong-scaling curve turns back up?
  2. how many ranks do I *need* just to fit in memory?
  3. what does the elimination tree say about useful parallelism?

Then validate one operating point with the executing simulator.

Run:  python examples/capacity_planning.py
"""

from repro import SparseSolver
from repro.analysis import (
    min_feasible_ranks,
    predict_factor_time,
    predict_scaling,
)
from repro.analysis.memory import predict_peak_bytes_per_rank
from repro.gen import grid3d_laplacian
from repro.machine import BLUEGENE_P
from repro.parallel import FactorPlan, PlanOptions, simulate_factorization
from repro.symbolic.tree_stats import tree_stats
from repro.util.errors import ReproError
from repro.util.tables import format_table


def main(mesh: int = 14) -> None:
    a = grid3d_laplacian(mesh)
    solver = SparseSolver(a, ordering="nd")
    info = solver.analyze()
    sym = solver.sym
    opts = PlanOptions(nb=32)
    print(
        f"problem: {mesh}^3 Poisson, n={info.n}, "
        f"{info.factor_flops/1e6:.0f} Mflop, nnz(L)={info.nnz_factor}"
    )

    # 1. Predicted strong-scaling curve (no execution).
    ranks = [1, 4, 16, 64, 256, 1024, 4096]
    pts = predict_scaling(sym, ranks, BLUEGENE_P, opts)
    rows = [[p, t * 1e3, round(pts[0][1] / t, 2)] for p, t in pts]
    print()
    print(
        format_table(
            ["ranks", "predicted time [ms]", "predicted speedup"],
            rows,
            title="analytic model (BG/P)",
        )
    )
    best_p, best_t = min(pts, key=lambda pt: pt[1])
    print(f"-> curve bottoms out near p={best_p} ({best_t*1e3:.2f} ms)")

    # 2. Memory feasibility for a small-memory node (BG/P had 512 MB/core).
    for budget_mb in (512, 8, 1):
        try:
            p_fit = min_feasible_ranks(sym, budget_mb * 1e6, opts)
            print(f"fits in {budget_mb} MB/rank from p={p_fit}")
        except ReproError as exc:
            print(f"does not fit {budget_mb} MB/rank: {exc}")
    plan1 = FactorPlan(sym, 1, opts)
    print(
        f"(single-rank footprint: "
        f"{predict_peak_bytes_per_rank(plan1)/1e6:.1f} MB)"
    )

    # 3. Tree parallelism profile.
    stats = tree_stats(sym)
    print(
        f"tree: {stats.n_leaves} leaves, height {stats.height}, "
        f"avg concurrency {stats.avg_concurrency:.1f} "
        f"(critical path {stats.critical_path_flops/1e6:.1f} Mflop "
        f"of {stats.total_flops/1e6:.1f})"
    )

    # 4. Validate one operating point with the executing simulator.
    p_check = min(best_p, 64)
    res = simulate_factorization(sym, p_check, BLUEGENE_P, opts)
    pred = predict_factor_time(sym, p_check, BLUEGENE_P, opts)
    print(
        f"validation at p={p_check}: DES {res.makespan*1e3:.2f} ms vs "
        f"model {pred*1e3:.2f} ms (ratio {res.makespan/pred:.2f})"
    )


if __name__ == "__main__":
    main()
