"""Scaling study: reproduce the paper's headline experiment shape on one
matrix — strong scaling of the factorization on the Blue Gene/P model,
with the MUMPS-like (1D fronts) and SuperLU-like (static grid) baselines
alongside.

Run:  python examples/scaling_study.py [mesh_size]
"""

import sys

from repro import SparseSolver
from repro.analysis import render_scaling_table, scaling_series
from repro.baselines import BASELINES, simulate_baseline
from repro.gen import grid3d_laplacian
from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions
from repro.util.tables import format_table


def main(mesh: int = 12) -> None:
    a = grid3d_laplacian(mesh)
    solver = SparseSolver(a, ordering="nd")
    info = solver.analyze()
    print(
        f"3D Poisson {mesh}^3: n={info.n}, nnz(L)={info.nnz_factor}, "
        f"{info.factor_flops/1e6:.1f} Mflop"
    )

    ranks = [1, 2, 4, 8, 16, 32, 64]
    pts = scaling_series(solver.sym, ranks, BLUEGENE_P, PlanOptions(nb=32))
    print()
    print(render_scaling_table(pts, title="WSMP-style solver (2D subcube)"))

    print("\nsolver comparison (factor time in ms):")
    rows = []
    for p in (4, 16, 64):
        row = [p]
        for name in BASELINES:
            res = simulate_baseline(name, solver.sym, p, BLUEGENE_P, nb=32)
            row.append(res.makespan * 1e3)
        rows.append(row)
    print(format_table(["ranks"] + list(BASELINES), rows))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
