"""A4 (ablation) — LU vs Cholesky on matched structure.

Design fact probed: on the same sparsity pattern the unsymmetric LU path
stores ~2× the entries and performs ~2× the flops of the symmetric
Cholesky path — the reason symmetric solvers exist at all. Checked by
running both engines on a convection–diffusion operator (LU) and its
symmetric diffusion limit (Cholesky) on the same mesh and ordering.
"""


from harness import banner

from repro.core import SparseSolver, UnsymmetricSolver
from repro.gen import convection_diffusion2d, grid2d_laplacian
from repro.util.tables import format_table

MESHES = [12, 20, 28]


def test_a4_lu_vs_cholesky(benchmark):
    rows = []
    ratios = []
    for nx in MESHES:
        chol = SparseSolver(grid2d_laplacian(nx), ordering="nd")
        chol.factor()
        lu = UnsymmetricSolver(
            convection_diffusion2d(nx, peclet=1.0), ordering="nd"
        )
        lu.factor()
        f_chol = chol.numeric.stats.flops
        f_lu = lu.factor_data.stats.flops
        e_chol = chol.numeric.stats.factor_entries
        e_lu = lu.factor_data.stats.factor_entries
        ratios.append((f_lu / f_chol, e_lu / e_chol))
        rows.append(
            [
                f"{nx}x{nx}",
                f_chol / 1e6,
                f_lu / 1e6,
                round(f_lu / f_chol, 2),
                e_chol,
                e_lu,
                round(e_lu / e_chol, 2),
            ]
        )
    banner("A4", "LU vs Cholesky cost on matched structure")
    print(
        format_table(
            [
                "mesh",
                "chol Mflop",
                "LU Mflop",
                "flop ratio",
                "chol entries",
                "LU entries",
                "entry ratio",
            ],
            rows,
        )
    )

    # Shape: both ratios near 2 (within [1.6, 2.6]) at every size — the
    # orderings may differ slightly between the two paths, hence slack.
    for fr, er in ratios:
        assert 1.4 <= fr <= 2.8, fr
        assert 1.4 <= er <= 2.8, er

    a = convection_diffusion2d(20, peclet=1.0)
    benchmark.pedantic(
        lambda: UnsymmetricSolver(a, ordering="nd").factor(),
        rounds=1,
        iterations=1,
    )
