"""F4 — hybrid MPI × SMP configurations at fixed core count.

Paper analogue: WSMP's hybrid-mode results on SMP nodes. Expected shape:
at a fixed core budget, multithreaded ranks trade per-rank compute
efficiency (SMP overhead) for a smaller, cheaper message economy; the best
configuration is typically an intermediate thread count, and pure-MPI moves
the most messages.
"""

from harness import NB, analyzed, banner

from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, hybrid_configurations, simulate_factorization
from repro.util.tables import format_table

CORES = 64
MATRIX = "cube-l"


def test_f4_hybrid_smp(benchmark):
    sym = analyzed(MATRIX)
    configs = hybrid_configurations(CORES, BLUEGENE_P)
    rows = []
    times = {}
    msgs = {}
    for n_ranks, threads in configs:
        res = simulate_factorization(
            sym,
            n_ranks,
            BLUEGENE_P,
            PlanOptions(nb=NB),
            threads_per_rank=threads,
        )
        times[(n_ranks, threads)] = res.makespan
        msgs[(n_ranks, threads)] = res.sim.ledger.n_messages
        rows.append(
            [
                n_ranks,
                threads,
                res.makespan * 1e3,
                round(res.gflops, 3),
                res.sim.ledger.n_messages,
                round(res.comm_fraction() * 100, 1),
            ]
        )
    banner("F4", f"Hybrid MPI x SMP at {CORES} cores ({MATRIX}, BG/P model)")
    print(
        format_table(
            ["ranks", "threads", "time [ms]", "Gflop/s", "msgs", "comm%"],
            rows,
        )
    )

    # Shape: message count strictly decreases as threads replace ranks.
    counts = [msgs[cfg] for cfg in configs]
    assert all(b < a for a, b in zip(counts, counts[1:]))

    benchmark.pedantic(
        lambda: simulate_factorization(
            sym, CORES // 4, BLUEGENE_P, PlanOptions(nb=NB), threads_per_rank=4
        ),
        rounds=1,
        iterations=1,
    )
