"""T5 — triangular-solve scaling and factor/solve ratio.

Paper analogue: the solve-phase numbers solvers in this family report next
to factorization. Expected shape: solve time scales much worse than
factorization (2 flops per factor entry — latency-bound), so the
factor:solve time ratio *shrinks* with p.
"""

import numpy as np

from harness import NB, analyzed, banner

from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, simulate_factorization, simulate_solve
from repro.util.tables import format_table

RANKS = [1, 4, 16, 64]
MATRIX = "cube-l"


def test_t5_solve_scaling(benchmark):
    sym = analyzed(MATRIX)
    b = np.ones(sym.n)
    rows = []
    factor_t = {}
    solve_t = {}
    for p in RANKS:
        fres = simulate_factorization(sym, p, BLUEGENE_P, PlanOptions(nb=NB))
        sres = simulate_solve(fres, b)
        factor_t[p] = fres.makespan
        solve_t[p] = sres.makespan
        rows.append(
            [
                p,
                fres.makespan * 1e3,
                sres.makespan * 1e3,
                fres.makespan / sres.makespan,
                factor_t[RANKS[0]] / fres.makespan,
                solve_t[RANKS[0]] / sres.makespan,
            ]
        )
    banner("T5", f"Factor vs solve scaling ({MATRIX}, BG/P model)")
    print(
        format_table(
            [
                "ranks",
                "factor [ms]",
                "solve [ms]",
                "factor/solve",
                "factor speedup",
                "solve speedup",
            ],
            rows,
        )
    )

    # Shape: factorization speedup exceeds solve speedup at the top end.
    p = RANKS[-1]
    assert factor_t[1] / factor_t[p] > solve_t[1] / solve_t[p]

    # Blocked multi-RHS solves amortize the latency-bound sweep: 8 RHS in
    # one blocked sweep must beat 8 sequential single-RHS sweeps by >2x.
    fres = simulate_factorization(sym, 16, BLUEGENE_P, PlanOptions(nb=NB))
    b8 = np.ones((sym.n, 8))
    t_block = simulate_solve(fres, b8).makespan
    t_single = simulate_solve(fres, b8[:, 0]).makespan
    print(
        f"\nmulti-RHS at p=16: 8 blocked = {t_block*1e3:.3f} ms vs "
        f"8 x single = {8*t_single*1e3:.3f} ms "
        f"(amortization {8*t_single/t_block:.1f}x)"
    )
    assert t_block < 8 * t_single / 2

    fres = simulate_factorization(sym, 16, BLUEGENE_P, PlanOptions(nb=NB))
    benchmark.pedantic(
        lambda: simulate_solve(fres, b), rounds=1, iterations=1
    )
