"""OBS — observability overhead guard.

Two contracts from the observability layer, asserted (loosely) so CI
catches regressions:

* **bit-identity** — the numeric factor with span recording + profiling
  enabled is bitwise identical to the factor with observability off;
* **~zero disabled cost** — with no recorder installed, the instrumented
  phases pay one global read per ``span()`` call (a shared no-op object),
  so a disabled ``span()`` call must stay within a microsecond-scale
  budget and the end-to-end factor time must not blow up relative to an
  enabled run.
"""

import statistics

import numpy as np

from harness import analyzed, banner

from repro.mf.numeric import multifrontal_factor
from repro.obs.spans import recording, span
from repro.util.tables import format_table
from repro.util.timing import WallTimer

MATRIX = "cube-s"
REPS = 5


def _factor_seconds(sym, enabled: bool) -> tuple[float, list[np.ndarray]]:
    times = []
    blocks = None
    for _ in range(REPS):
        if enabled:
            with recording(), WallTimer() as t:
                nf = multifrontal_factor(sym)
        else:
            with WallTimer() as t:
                nf = multifrontal_factor(sym)
        times.append(t.elapsed)
        blocks = nf.blocks
    return statistics.median(times), blocks


def test_obs_overhead_and_bit_identity():
    sym = analyzed(MATRIX)

    t_off, blocks_off = _factor_seconds(sym, enabled=False)
    t_on, blocks_on = _factor_seconds(sym, enabled=True)

    # Contract 1: observability never changes answer bits.
    assert len(blocks_off) == len(blocks_on)
    for b_off, b_on in zip(blocks_off, blocks_on):
        assert np.array_equal(b_off, b_on), "obs changed factor bits"

    # Contract 2a: a disabled span() call is a cheap no-op.
    n_calls = 200_000
    with WallTimer() as t:
        for _ in range(n_calls):
            with span("bench.noop", k=1):
                pass
    ns_per_call = t.elapsed / n_calls * 1e9
    assert ns_per_call < 10_000, (
        f"disabled span() costs {ns_per_call:.0f} ns/call — the no-op path "
        "regressed (budget 10 µs, typical <1 µs)"
    )

    # Contract 2b: the disabled factor is not slower than the enabled one
    # beyond noise (loose 1.5x: same code path minus recording).
    assert t_off <= t_on * 1.5 + 0.05, (
        f"factor with obs OFF ({t_off:.4f}s) much slower than ON "
        f"({t_on:.4f}s) — disabled path regressed"
    )

    banner("OBS", "Observability overhead (median of %d reps)" % REPS)
    print(
        format_table(
            ["config", "factor [s]", "relative"],
            [
                ["obs off", round(t_off, 4), 1.0],
                [
                    "obs on (spans+profile)",
                    round(t_on, 4),
                    round(t_on / t_off, 3) if t_off > 0 else float("nan"),
                ],
            ],
            title=f"multifrontal factor on {MATRIX}",
        )
    )
    print(f"disabled span() cost: {ns_per_call:.0f} ns/call")
