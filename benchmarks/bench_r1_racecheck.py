"""R1 (race verification) — fuzzed-schedule sweep of the threads backend.

Design choice probed: the shared-memory backend's bitwise-oracle contract
("any schedule produces the sequential bits") rests on postorder-
partitioned publish/consume slots and dependency-counted scheduling — not
on luck of the schedule. This experiment manufactures 25 adversarial
schedules (seeded ready-queue permutations, forced preemptions, injected
delays) cycling workers through {2, 4, 8}, and asserts for every one:

* the factors and solutions are **bitwise identical** to the sequential
  driver;
* the recorded synchronization trace passes the **happens-before race
  checker** (zero unordered conflicting slot accesses, conservation of
  every contribution);
* every fuzzed trace **normalizes identically** to an unfuzzed reference
  run (determinism audit).

Any failing case prints its replayable seed — re-running with that seed
reproduces the schedule byte-for-byte.
"""

from collections import Counter

from harness import banner

from repro.check import schedfuzz
from repro.core.solver import SparseSolver
from repro.gen import grid3d_laplacian
from repro.util.tables import format_table
from repro.util.timing import WallTimer

SIZE = 10  # 10^3 Laplacian, n = 1000: big enough for real task overlap
N_SEEDS = 25
WORKERS = (2, 4, 8)


def test_r1_racecheck_fuzz_sweep():
    lower = grid3d_laplacian(SIZE)
    solver = SparseSolver(lower)
    solver.analyze()
    sym = solver.sym

    with WallTimer() as t:
        results = schedfuzz.fuzz_smoke(
            sym, n_seeds=N_SEEDS, workers=WORKERS
        )  # raises RaceError (with replayable seeds) on any failure

    assert len(results) == 2 * N_SEEDS  # one factor + one solve per seed
    assert all(r.ok for r in results)
    pairs = sum(r.race_report.n_hb_pairs_checked for r in results)
    assert pairs > 0

    by_workers = Counter(r.workers for r in results)
    rows = [
        [
            f"workers={w}",
            by_workers[w],
            sum(
                r.race_report.n_hb_pairs_checked
                for r in results
                if r.workers == w
            ),
            "yes",
            0,
        ]
        for w in WORKERS
    ]
    banner(
        "R1",
        f"Fuzzed-schedule race sweep (cube {SIZE}^3, n={sym.n}, "
        f"{N_SEEDS} seeds x factor+solve, {t.elapsed:.2f} s)",
    )
    print(
        format_table(
            ["schedule", "cases", "HB pairs", "bitwise", "races"], rows
        )
    )
    print(
        f"\n{len(results)} fuzzed schedules, {pairs} conflicting access "
        "pairs checked: all bitwise-identical to sequential, zero races, "
        "zero determinism divergences"
    )
