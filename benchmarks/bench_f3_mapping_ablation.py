"""F3 — 1D vs 2D front-distribution ablation.

Paper analogue: the core scalability argument — 2D block-cyclic fronts
communicate O(m²/√g) per rank versus O(m²) for 1D, so the gap between the
two widens with the rank count. This bench isolates exactly that switch
(identical mapping, identical numerics, only the front layout differs).
"""

from harness import NB, analyzed, banner

from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, simulate_factorization
from repro.util.tables import format_table

RANKS = [4, 16, 64]
MATRIX = "cube-l"


def test_f3_mapping_ablation(benchmark):
    sym = analyzed(MATRIX)
    rows = []
    gaps = {}
    for p in RANKS:
        r2d = simulate_factorization(
            sym, p, BLUEGENE_P, PlanOptions(nb=NB, policy="2d")
        )
        r1d = simulate_factorization(
            sym, p, BLUEGENE_P, PlanOptions(nb=NB, policy="1d")
        )
        gaps[p] = r1d.makespan / r2d.makespan
        rows.append(
            [
                p,
                r2d.makespan * 1e3,
                r1d.makespan * 1e3,
                round(gaps[p], 3),
                round(r2d.sim.ledger.total_bytes / 1e6, 3),
                round(r1d.sim.ledger.total_bytes / 1e6, 3),
            ]
        )
    banner("F3", f"2D vs 1D front distribution ({MATRIX}, BG/P model)")
    print(
        format_table(
            [
                "ranks",
                "2D time [ms]",
                "1D time [ms]",
                "1D/2D",
                "2D MB",
                "1D MB",
            ],
            rows,
        )
    )

    # Shape: the 1D/2D ratio grows with p (2D pulls ahead at scale) and
    # 1D moves more bytes at the largest p.
    assert gaps[RANKS[-1]] >= gaps[RANKS[0]] * 0.95
    assert rows[-1][5] > rows[-1][4]

    benchmark.pedantic(
        lambda: simulate_factorization(
            sym, 16, BLUEGENE_P, PlanOptions(nb=NB, policy="1d")
        ),
        rounds=1,
        iterations=1,
    )
