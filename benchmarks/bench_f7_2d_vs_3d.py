"""F7 — 2D versus 3D problem scaling (the separator-law contrast).

Paper analogue: the observation that 3D problems sustain much higher
performance and scale further than 2D problems of comparable size: 3D
meshes have O(n^{2/3}) separators (big dense fronts, flop-rich), 2D meshes
O(n^{1/2}) (small fronts, latency-bound).
"""

from harness import NB, analyzed_custom, banner

from repro.analysis import scaling_series
from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions
from repro.util.tables import format_table

RANKS = [1, 4, 16, 64]


def test_f7_2d_vs_3d(benchmark):
    # Matched problem sizes: 13^3 = 2197 vs 47^2 = 2209 unknowns.
    sym3d = analyzed_custom("cube", 13)
    sym2d = analyzed_custom("plate", 47)
    s3 = scaling_series(sym3d, RANKS, BLUEGENE_P, PlanOptions(nb=NB))
    s2 = scaling_series(sym2d, RANKS, BLUEGENE_P, PlanOptions(nb=NB))
    rows = []
    for a, b in zip(s3, s2):
        rows.append(
            [
                a.n_ranks,
                round(a.gflops, 3),
                round(b.gflops, 3),
                round(a.efficiency, 3),
                round(b.efficiency, 3),
            ]
        )
    banner(
        "F7",
        f"3D (n={sym3d.n}, {sym3d.factor_flops/1e6:.1f} Mflop) vs "
        f"2D (n={sym2d.n}, {sym2d.factor_flops/1e6:.1f} Mflop)",
    )
    print(
        format_table(
            ["ranks", "3D Gflop/s", "2D Gflop/s", "3D eff", "2D eff"], rows
        )
    )

    # Shape: 3D has far more factor work at equal n, sustains a higher
    # rate, and scales at least as well.
    assert sym3d.factor_flops > 3 * sym2d.factor_flops
    assert s3[-1].gflops > s2[-1].gflops
    assert s3[-1].speedup >= s2[-1].speedup * 0.9

    from repro.parallel import simulate_factorization

    benchmark.pedantic(
        lambda: simulate_factorization(sym3d, 16, BLUEGENE_P, PlanOptions(nb=NB)),
        rounds=1,
        iterations=1,
    )
