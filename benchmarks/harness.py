"""Shared benchmark harness.

Builds and caches the analyzed problems once per pytest session, provides
the machine sweep helpers, and prints each experiment's table in the format
the paper's tables/figures report (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

from functools import lru_cache

from repro.gen import (
    elasticity3d,
    grid2d_9pt,
    grid3d_laplacian,
    grid3d_27pt,
    get_paper_matrix,
)
from repro.graph import AdjacencyGraph
from repro.machine import BLUEGENE_P, POWER5_CLUSTER
from repro.ordering import get_ordering
from repro.symbolic import analyze
from repro.symbolic.analyze import SymbolicFactor

#: rank counts used by the strong-scaling sweeps (powers of two, like the
#: paper's core counts, scaled to what a laptop-hosted simulation handles)
SCALING_RANKS = [1, 2, 4, 8, 16, 32, 64, 128]

#: block-cyclic block size used across the benches
NB = 32


@lru_cache(maxsize=None)
def analyzed(name: str, ordering: str = "nd") -> SymbolicFactor:
    """Analyzed paper-suite instance (cached for the whole bench session)."""
    lower = get_paper_matrix(name).build()
    graph = AdjacencyGraph.from_symmetric_lower(lower)
    perm = get_ordering(ordering)(graph)
    return analyze(lower, perm)


@lru_cache(maxsize=None)
def analyzed_custom(kind: str, size: int, ordering: str = "nd") -> SymbolicFactor:
    """Analyzed ad-hoc instance for benches needing specific shapes."""
    builders = {
        "cube": grid3d_laplacian,
        "cube27": grid3d_27pt,
        "plate": grid2d_9pt,
        "elast": elasticity3d,
    }
    lower = builders[kind](size)
    graph = AdjacencyGraph.from_symmetric_lower(lower)
    perm = get_ordering(ordering)(graph)
    return analyze(lower, perm)


def banner(exp_id: str, description: str) -> None:
    print()
    print("=" * 78)
    print(f"[{exp_id}] {description}")
    print("=" * 78)


MACHINES = {
    "bluegene-p": BLUEGENE_P,
    "power5-cluster": POWER5_CLUSTER,
}
