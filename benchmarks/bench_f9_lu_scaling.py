"""F9 — distributed LU scaling next to the symmetric path.

Paper-family analogue: WSMP reports both its symmetric and unsymmetric
solvers on the same platforms. Expected shape: LU does ~2× the flops on
the same (symmetrized) structure, sustains a *higher* aggregate rate (its
fronts are flop-denser), and scales with the same subtree-to-subcube
character.
"""


from harness import banner

from repro.core import UnsymmetricSolver
from repro.gen import convection_diffusion2d, grid2d_laplacian
from repro.graph import AdjacencyGraph
from repro.machine import BLUEGENE_P
from repro.ordering import nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization
from repro.parallel.lu_par import simulate_lu_factorization
from repro.symbolic import analyze
from repro.util.tables import format_table

RANKS = [1, 4, 16]
MESH = 40


def test_f9_lu_scaling(benchmark):
    # Same mesh: symmetric diffusion (Cholesky) vs convection (LU).
    lower = grid2d_laplacian(MESH)
    g = AdjacencyGraph.from_symmetric_lower(lower)
    sym_chol = analyze(lower, nested_dissection_order(g))

    lu = UnsymmetricSolver(convection_diffusion2d(MESH, peclet=1.0))
    lu.analyze()

    rows = []
    chol_t = {}
    lu_t = {}
    for p in RANKS:
        rc = simulate_factorization(sym_chol, p, BLUEGENE_P, PlanOptions(nb=16))
        rl = simulate_lu_factorization(
            lu.sym, lu.permuted_full, p, BLUEGENE_P, PlanOptions(nb=16)
        )
        chol_t[p] = rc.makespan
        lu_t[p] = rl.makespan
        rows.append(
            [
                p,
                rc.makespan * 1e3,
                rl.makespan * 1e3,
                round(rl.makespan / rc.makespan, 2),
                round(rl.total_flops / max(rc.total_flops, 1), 2),
            ]
        )
    banner("F9", f"Cholesky vs LU distributed scaling ({MESH}x{MESH} mesh, BG/P)")
    print(
        format_table(
            ["ranks", "chol [ms]", "LU [ms]", "LU/chol time", "LU/chol flops"],
            rows,
        )
    )

    # Shape: LU costs roughly 2x at p=1 and both paths speed up somewhere
    # in the sweep (a small 2D problem saturates quickly — see F7).
    assert 1.3 <= lu_t[1] / chol_t[1] <= 3.0
    assert min(lu_t.values()) < lu_t[1]
    assert min(chol_t.values()) < chol_t[1]

    benchmark.pedantic(
        lambda: simulate_lu_factorization(
            lu.sym, lu.permuted_full, 4, BLUEGENE_P, PlanOptions(nb=16)
        ),
        rounds=1,
        iterations=1,
    )
