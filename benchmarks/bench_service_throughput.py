"""S1 (serving layer) — analysis-cache throughput on a transient-FE trace.

Design choice probed: the serving layer keys completed analyses (ordering +
symbolic + parallel plan) on a sparsity-pattern fingerprint, so the
paper's application workflow — repeated numeric factorization on one
pattern with drifting values — skips straight to the numeric phase on
every repeat request. Expected shape: >= 2x request throughput with the
cache on versus off on a repeated-pattern trace, with *bitwise identical*
solutions (the cached path factors the same permuted problem the cold path
re-derives from scratch).
"""

import numpy as np

from harness import banner

from repro.gen import grid3d_laplacian
from repro.service import COMPLETED, ServiceConfig, SolverService
from repro.sparse.csc import CSCMatrix
from repro.util.rng import make_rng
from repro.util.timing import WallTimer
from repro.util.tables import format_table

STEPS = 16
SIZE = 6


def replay_trace(cache_enabled: bool):
    """One transient run: STEPS same-pattern requests, drifting values."""
    base = grid3d_laplacian(SIZE)
    n = base.shape[0]
    rng = make_rng(42)
    service = SolverService(ServiceConfig(cache_enabled=cache_enabled))
    results = {}
    with WallTimer() as t:
        for step in range(STEPS):
            stepped = CSCMatrix(
                base.shape,
                base.indptr,
                base.indices,
                base.data * (1.0 + 0.4 * step / STEPS),
                _skip_check=True,
            )
            service.submit(stepped, rng.standard_normal(n))
            results.update(service.drain())
    return service, results, t.elapsed


def test_s1_service_throughput(benchmark):
    svc_on, res_on, t_on = replay_trace(cache_enabled=True)
    svc_off, res_off, t_off = replay_trace(cache_enabled=False)

    assert all(r.status == COMPLETED for r in res_on.values())
    assert all(r.status == COMPLETED for r in res_off.values())
    # The cached path must not change the answer by a single bit: refactor
    # reuses the very analysis the cold path recomputes deterministically.
    for job_id, r in res_on.items():
        assert np.array_equal(r.x, res_off[job_id].x)

    thr_on = STEPS / t_on
    thr_off = STEPS / t_off
    stats = svc_on.cache.stats
    banner(
        "S1",
        f"Serving-layer analysis cache (cube {SIZE}^3, {STEPS}-step "
        "transient trace, sequential engine)",
    )
    print(
        format_table(
            ["cache", "jobs", "time [s]", "jobs/s", "analyze runs", "hit rate"],
            [
                ["on", STEPS, round(t_on, 3), round(thr_on, 1), stats.misses,
                 round(stats.hit_rate, 3)],
                ["off", STEPS, round(t_off, 3), round(thr_off, 1), STEPS, 0.0],
            ],
        )
    )
    print(
        f"\nspeedup: {thr_on / thr_off:.2f}x; solutions bitwise identical "
        "across both paths"
    )

    assert stats.misses == 1 and stats.hits == STEPS - 1
    assert thr_on >= 2.0 * thr_off

    benchmark.pedantic(
        lambda: replay_trace(cache_enabled=True), rounds=1, iterations=1
    )
