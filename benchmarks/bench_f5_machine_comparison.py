"""F5 — machine comparison: Blue Gene/P model vs POWER5+ cluster model.

Paper analogue: the two-platform evaluation. Expected shape: the
POWER5-like machine (fat fast cores, higher-latency fat-tree) wins at small
rank counts on raw per-core speed; the BG/P-like machine (slim cores,
low-latency torus) holds parallel efficiency better as p grows.
"""

from harness import NB, analyzed, banner

from repro.analysis import scaling_series
from repro.machine import BLUEGENE_P, POWER5_CLUSTER
from repro.parallel import PlanOptions
from repro.util.tables import format_table

RANKS = [1, 4, 16, 64]
MATRIX = "cube-l"


def test_f5_machine_comparison(benchmark):
    sym = analyzed(MATRIX)
    bgp = scaling_series(sym, RANKS, BLUEGENE_P, PlanOptions(nb=NB))
    p5 = scaling_series(sym, RANKS, POWER5_CLUSTER, PlanOptions(nb=NB))
    rows = []
    for a, b in zip(bgp, p5):
        rows.append(
            [
                a.n_ranks,
                a.time * 1e3,
                b.time * 1e3,
                round(a.efficiency, 3),
                round(b.efficiency, 3),
            ]
        )
    banner("F5", f"BG/P model vs POWER5-cluster model ({MATRIX})")
    print(
        format_table(
            ["ranks", "BG/P [ms]", "P5 [ms]", "BG/P eff", "P5 eff"], rows
        )
    )

    # Shape: P5 faster at p=1 (fat core); BG/P at least as efficient at the
    # largest p (low-latency torus).
    assert p5[0].time < bgp[0].time
    assert bgp[-1].efficiency >= p5[-1].efficiency * 0.9

    from repro.parallel import simulate_factorization

    benchmark.pedantic(
        lambda: simulate_factorization(
            sym, 16, POWER5_CLUSTER, PlanOptions(nb=NB)
        ),
        rounds=1,
        iterations=1,
    )
