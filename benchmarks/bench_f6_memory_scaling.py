"""F6 — memory scalability: per-rank factor + working storage vs ranks.

Paper analogue: the memory-scalability discussion (a major WSMP-lineage
claim: 2D mapping also divides memory, enabling problems no single node
can hold). Expected shape: the max-per-rank entry count decays roughly like
1/p until the distributed top fronts dominate.
"""

from harness import NB, SCALING_RANKS, analyzed, banner

from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, simulate_factorization
from repro.util.tables import format_table

MATRIX = "cube-l"


def test_f6_memory_scaling(benchmark):
    sym = analyzed(MATRIX)
    rows = []
    per_rank = {}
    for p in SCALING_RANKS:
        res = simulate_factorization(sym, p, BLUEGENE_P, PlanOptions(nb=NB))
        peaks = res.peak_entries_by_rank()
        per_rank[p] = int(peaks.max())
        rows.append(
            [
                p,
                int(peaks.max()),
                int(peaks.sum() / p),
                round(peaks.max() / max(peaks.mean(), 1), 2),
                round(per_rank[SCALING_RANKS[0]] / peaks.max(), 2),
            ]
        )
    banner("F6", f"Per-rank memory (factor+stack entries) vs ranks ({MATRIX})")
    print(
        format_table(
            ["ranks", "max entries", "mean entries", "max/mean", "reduction"],
            rows,
        )
    )

    # Shape: per-rank memory shrinks with p, by at least 4x at p=64.
    assert per_rank[64] < per_rank[1] / 4

    benchmark.pedantic(
        lambda: simulate_factorization(sym, 8, BLUEGENE_P, PlanOptions(nb=NB)),
        rounds=1,
        iterations=1,
    )
