"""T4 — solver comparison at scale.

Paper analogue: WSMP versus MUMPS and SuperLU_DIST factorization times on
the same matrices and core counts. Expected shape: all three comparable at
small p; the subtree-to-subcube + 2D solver pulls ahead as p grows, the
static-grid solver degrades first.
"""

from harness import NB, analyzed, banner

from repro.baselines import BASELINES, simulate_baseline
from repro.machine import BLUEGENE_P
from repro.util.tables import format_table

RANKS = [1, 4, 16, 64]
MATRIX = "cube-l"


def test_t4_solver_comparison(benchmark):
    sym = analyzed(MATRIX)
    times = {}
    rows = []
    for p in RANKS:
        row = [p]
        for name in ("wsmp-like", "mumps-like", "superlu-like"):
            res = simulate_baseline(name, sym, p, BLUEGENE_P, nb=NB)
            times[(name, p)] = res.makespan
            row.append(res.makespan * 1e3)
        rows.append(row)
    banner("T4", f"Factorization time [ms] by solver ({MATRIX}, BG/P model)")
    print(
        format_table(
            ["ranks", "wsmp-like", "mumps-like", "superlu-like"], rows
        )
    )
    for name, spec in BASELINES.items():
        print(f"  {name:13s} = {spec.description}")

    # Shape checks at the largest p.
    p = RANKS[-1]
    assert times[("wsmp-like", p)] <= times[("mumps-like", p)] * 1.05
    assert times[("wsmp-like", p)] < times[("superlu-like", p)]

    benchmark.pedantic(
        lambda: simulate_baseline("wsmp-like", sym, 16, BLUEGENE_P, nb=NB),
        rounds=1,
        iterations=1,
    )
