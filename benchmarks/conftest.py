"""Benchmark suite configuration.

Each bench prints the table/figure it regenerates; this conftest tees that
output into ``benchmarks/results/<test_name>.txt`` so EXPERIMENTS.md always
has a fresh artifact to reference, and re-emits it to the terminal.
"""

import sys
from pathlib import Path

import pytest

# Allow `import harness` when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def tee_bench_output(request, capsys):
    yield
    captured = capsys.readouterr()
    if captured.out.strip():
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{request.node.name}.txt").write_text(captured.out)
        sys.stdout.write(captured.out)
