"""P1 (precision) — fp32 fronts + fp64-recovering refinement vs full fp64.

Design choice probed: storing and factoring fronts in fp32 halves the
factor's memory footprint and moves the flop-dominant inner kernels to
single precision, while fp64 residual accumulation in iterative refinement
recovers full double-precision backward error on well-conditioned systems —
the mixed-precision recipe LAPACK's ``dsgesv`` ships and that the paper's
memory-bound large-scale runs motivate.

Three contracts, asserted so CI catches regressions:

* **accuracy** — the fp32-factored solver path (which auto-refines) reaches
  a normwise backward error <= 1e-12 on every SPD suite matrix, for both
  Cholesky and LDLᵀ, without falling back to an fp64 re-factor;
* **memory** — fp32 factor blocks occupy half the fp64 bytes (ratio >= 1.8
  asserted; exactly 2.0 expected);
* **win** — at least one of: numeric-factorization speedup >= 1.3x, or the
  memory ratio >= 1.8x. The memory half is deterministic, so the gate is
  CI-safe even where BLAS sgemm/dgemm throughput happens to be flat.
"""

from harness import banner

from repro.core.solver import SparseSolver
from repro.gen import grid2d_9pt, grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.mf.numeric import multifrontal_factor
from repro.ordering import amd_order
from repro.symbolic import analyze
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.util.timing import WallTimer

SUITE = [
    ("grid2d-9pt-40", lambda: grid2d_9pt(40)),
    ("grid3d-10", lambda: grid3d_laplacian(10)),
    ("grid3d-13", lambda: grid3d_laplacian(13)),
]
REPS = 3
BERR_CEIL = 1e-12
SPEEDUP_FLOOR = 1.3
MEMORY_FLOOR = 1.8


def _best_of(fn) -> float:
    times = []
    for _ in range(REPS):
        with WallTimer() as t:
            fn()
        times.append(t.elapsed)
    return min(times)


def _factor_bytes(numeric) -> int:
    diag = numeric.diag.nbytes if numeric.diag is not None else 0
    return sum(blk.nbytes for blk in numeric.blocks) + diag


def test_p1_mixed_precision():
    rng = make_rng(1401)
    rows = []
    speedups = []
    mem_ratios = []
    for name, build in SUITE:
        lower = build()
        n = lower.shape[0]
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, amd_order(g))

        t64 = _best_of(lambda sym=sym: multifrontal_factor(sym))
        t32 = _best_of(
            lambda sym=sym: multifrontal_factor(sym, precision="fp32")
        )
        f64 = multifrontal_factor(sym)
        f32 = multifrontal_factor(sym, precision="fp32")
        mem64 = _factor_bytes(f64)
        mem32 = _factor_bytes(f32)

        # Contract 1: accuracy through the solver path (auto-refinement),
        # both methods, staying at fp32 (no fallback re-factor needed).
        b = rng.standard_normal(n)
        iters = {}
        for method in ("cholesky", "ldlt"):
            solver = SparseSolver(lower, method=method)
            solver.factor(precision="fp32")
            res = solver.solve(b)
            assert res.precision == "fp32", (
                f"{name}/{method}: unexpected fp64 fallback"
            )
            assert res.residual <= BERR_CEIL, (
                f"{name}/{method}: berr {res.residual:.2e} > {BERR_CEIL}"
            )
            iters[method] = res.refinement_iterations

        speedup = t64 / t32
        mem_ratio = mem64 / mem32
        speedups.append(speedup)
        mem_ratios.append(mem_ratio)
        rows.append(
            [
                name,
                n,
                t64 * 1e3,
                t32 * 1e3,
                speedup,
                mem64 / 1e6,
                mem32 / 1e6,
                mem_ratio,
                f"{iters['cholesky']}/{iters['ldlt']}",
            ]
        )

    banner(
        "P1",
        f"Mixed-precision fronts: fp64 vs fp32 numeric factorization "
        f"(best of {REPS}), accuracy via fp64-refined solver path",
    )
    print(
        format_table(
            [
                "matrix",
                "n",
                "fp64 [ms]",
                "fp32 [ms]",
                "speedup",
                "fp64 [MB]",
                "fp32 [MB]",
                "mem ratio",
                "IR iters (chol/ldlt)",
            ],
            rows,
        )
    )
    best_speedup = max(speedups)
    min_mem = min(mem_ratios)
    print(
        f"\nbest factor speedup: {best_speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x), min memory ratio: {min_mem:.2f}x "
        f"(floor {MEMORY_FLOOR}x); backward error <= {BERR_CEIL:.0e} "
        f"on every matrix without fp64 fallback"
    )

    # Contract 2: halved factor storage (deterministic).
    assert min_mem >= MEMORY_FLOOR
    # Contract 3: the mixed-precision regime must win on at least one axis.
    assert best_speedup >= SPEEDUP_FLOOR or min_mem >= MEMORY_FLOOR
