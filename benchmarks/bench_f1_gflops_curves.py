"""F1 — factorization GFLOPS (and % of peak) versus rank count.

Paper analogue: the achieved-performance plots. Expected shape: aggregate
GFLOPS rises with p but the per-core fraction of peak decays; larger /
denser problems sustain a higher fraction of peak at every p.
"""

from harness import NB, SCALING_RANKS, analyzed, analyzed_custom, banner

from repro.analysis import render_series, scaling_series
from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions

MATRICES = ["cube-m", "cube-l", "hexmesh-m"]


def test_f1_gflops_curves(benchmark):
    banner("F1", "Achieved Gflop/s and %-of-peak vs ranks (BG/P model)")
    curves = {}
    for name in MATRICES:
        sym = analyzed(name)
        pts = scaling_series(sym, SCALING_RANKS, BLUEGENE_P, PlanOptions(nb=NB))
        curves[name] = pts
        print()
        print(
            render_series(
                "ranks",
                [pt.n_ranks for pt in pts],
                {
                    "Gflop/s": [round(pt.gflops, 3) for pt in pts],
                    "%peak": [round(pt.peak_fraction * 100, 2) for pt in pts],
                },
                title=f"{name}",
            )
        )

    # Shape: gflops grows with p for every matrix; at *matched* mesh size,
    # the denser 27-point stencil sustains a higher fraction of peak than
    # the 7-point one (bigger, flop-richer fronts).
    for name, pts in curves.items():
        assert pts[-1].gflops > pts[0].gflops
    from repro.parallel import simulate_factorization as _simfac

    dense10 = _simfac(
        analyzed_custom("cube27", 10), 1, BLUEGENE_P, PlanOptions(nb=NB)
    )
    sparse10 = _simfac(
        analyzed_custom("cube", 10), 1, BLUEGENE_P, PlanOptions(nb=NB)
    )
    assert dense10.peak_fraction > sparse10.peak_fraction

    from repro.parallel import simulate_factorization

    sym = analyzed("cube-m")
    benchmark.pedantic(
        lambda: simulate_factorization(sym, 32, BLUEGENE_P, PlanOptions(nb=NB)),
        rounds=1,
        iterations=1,
    )
