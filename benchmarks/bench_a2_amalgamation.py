"""A2 (ablation) — relaxed supernode amalgamation.

Design choice probed: merging small supernodes into parents adds explicit
zeros (more flops, more storage) but yields fewer, larger fronts (better
kernel efficiency, fewer extend-adds/messages). Expected shape: with
amalgamation on, fewer supernodes and — despite the extra arithmetic —
equal or better simulated time; storage overhead bounded by the configured
ratio.
"""

from harness import NB, banner

from repro.gen import grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.machine import BLUEGENE_P
from repro.ordering import nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization
from repro.symbolic import AnalyzeOptions, analyze
from repro.util.tables import format_table

P = 16


def test_a2_amalgamation(benchmark):
    lower = grid3d_laplacian(12)
    g = AdjacencyGraph.from_symmetric_lower(lower)
    perm = nested_dissection_order(g)
    rows = []
    results = {}
    for label, amal in (("off", False), ("on", True)):
        sym = analyze(lower, perm, AnalyzeOptions(amalgamate=amal))
        res = simulate_factorization(sym, P, BLUEGENE_P, PlanOptions(nb=NB))
        seq = simulate_factorization(sym, 1, BLUEGENE_P, PlanOptions(nb=NB))
        results[label] = (sym, res, seq)
        rows.append(
            [
                label,
                sym.n_supernodes,
                sym.nnz_stored,
                round(sym.nnz_stored / sym.nnz_factor, 3),
                seq.makespan * 1e3,
                res.makespan * 1e3,
                res.sim.ledger.n_messages,
            ]
        )
    banner("A2", f"Supernode amalgamation ablation (cube 12^3, p={P})")
    print(
        format_table(
            [
                "amalgamation",
                "supernodes",
                "stored entries",
                "overhead",
                "p=1 [ms]",
                f"p={P} [ms]",
                "msgs",
            ],
            rows,
        )
    )

    sym_off, res_off, _ = results["off"]
    sym_on, res_on, _ = results["on"]
    assert sym_on.n_supernodes <= sym_off.n_supernodes
    assert sym_on.nnz_stored <= 1.3 * sym_on.nnz_factor  # bounded overhead
    assert res_on.sim.ledger.n_messages <= res_off.sim.ledger.n_messages * 1.2

    benchmark.pedantic(
        lambda: analyze(lower, perm, AnalyzeOptions(amalgamate=True)),
        rounds=1,
        iterations=1,
    )
