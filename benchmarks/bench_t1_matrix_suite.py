"""T1 — the test-matrix suite table.

Paper analogue: the evaluation's matrix inventory (name, order, nonzeros,
factor nonzeros, factor operations). Regenerated here for the scaled
synthetic suite, with the host-side analyze cost as the timed kernel.
"""

from harness import analyzed, banner

from repro.gen import paper_suite
from repro.util.tables import format_table


def test_t1_matrix_suite_table(benchmark):
    rows = []
    for m in paper_suite():
        sym = analyzed(m.name)
        rows.append(
            [
                m.name,
                m.mesh,
                sym.n,
                sym.permuted_lower.nnz,
                sym.nnz_factor,
                sym.factor_flops / 1e6,
                sym.n_supernodes,
                m.archetype,
            ]
        )
    banner("T1", "Test matrix suite (nested-dissection ordering)")
    print(
        format_table(
            ["name", "mesh", "n", "nnz(A)", "nnz(L)", "Mflops", "supernodes", "archetype"],
            rows,
        )
    )

    # Timed kernel: full analyze of a mid-size instance.
    from repro.gen import get_paper_matrix
    from repro.graph import AdjacencyGraph
    from repro.ordering import nested_dissection_order
    from repro.symbolic import analyze as run_analyze

    lower = get_paper_matrix("cube-m").build()

    def kernel():
        g = AdjacencyGraph.from_symmetric_lower(lower)
        return run_analyze(lower, nested_dissection_order(g))

    sym = benchmark(kernel)
    assert sym.n == lower.shape[0]
