"""A1 (ablation) — block-cyclic block size.

Design choice probed: the nb of the 2D block-cyclic layout trades kernel
efficiency (bigger blocks → closer to peak) against pipeline granularity
and load balance (smaller blocks → smoother distribution, more messages).
Expected shape: a shallow optimum at an intermediate nb; tiny blocks pay
message count, huge blocks pay imbalance.
"""

from harness import analyzed, banner

from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, simulate_factorization
from repro.util.tables import format_table

MATRIX = "cube-l"
P = 16
BLOCKS = [8, 16, 32, 64, 128]


def test_a1_block_size(benchmark):
    sym = analyzed(MATRIX)
    rows = []
    times = {}
    msgs = {}
    for nb in BLOCKS:
        res = simulate_factorization(sym, P, BLUEGENE_P, PlanOptions(nb=nb))
        times[nb] = res.makespan
        msgs[nb] = res.sim.ledger.n_messages
        rows.append(
            [
                nb,
                res.makespan * 1e3,
                round(res.gflops, 3),
                res.sim.ledger.n_messages,
                round(res.comm_fraction() * 100, 1),
            ]
        )
    banner("A1", f"Block size ablation ({MATRIX}, p={P}, BG/P model)")
    print(format_table(["nb", "time [ms]", "Gflop/s", "msgs", "comm%"], rows))

    # Shape: message count decreases monotonically with nb; the best time
    # is not at the smallest block size.
    counts = [msgs[nb] for nb in BLOCKS]
    assert all(b <= a for a, b in zip(counts, counts[1:]))
    assert min(times, key=times.get) != BLOCKS[0]

    benchmark.pedantic(
        lambda: simulate_factorization(sym, P, BLUEGENE_P, PlanOptions(nb=32)),
        rounds=1,
        iterations=1,
    )
