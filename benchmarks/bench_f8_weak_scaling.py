"""F8 — weak scaling (scaled problem sizes).

Paper analogue: the scaled-speedup discussion in the scalability analysis
of this solver family: with 3D mesh problems, factor work grows like n²
(front sizes n^{2/3} cubed), so doubling ranks with ~doubled *work* should
hold efficiency far better than strong scaling at fixed size. We grow a
cube mesh so factor flops per rank stay roughly constant and report the
time drift.
"""

from harness import NB, analyzed_custom, banner

from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, simulate_factorization
from repro.util.tables import format_table

# Mesh sizes chosen so (factor flops / ranks) stays roughly level: for 3D
# meshes factor work grows like k^6 (n^2), so k grows like p^(1/6).
CASES = [(10, 1), (11, 2), (12, 4), (14, 8), (16, 16)]


def test_f8_weak_scaling(benchmark):
    rows = []
    times = []
    per_rank = []
    for mesh, p in CASES:
        sym = analyzed_custom("cube", mesh)
        res = simulate_factorization(sym, p, BLUEGENE_P, PlanOptions(nb=NB))
        times.append(res.makespan)
        per_rank.append(sym.factor_flops / p)
        rows.append(
            [
                f"{mesh}^3",
                p,
                round(sym.factor_flops / 1e6, 2),
                round(sym.factor_flops / p / 1e6, 2),
                res.makespan * 1e3,
                round(times[0] / res.makespan, 3),
            ]
        )
    banner("F8", "Weak scaling: ~constant factor flops per rank (BG/P)")
    print(
        format_table(
            ["mesh", "ranks", "Mflop", "Mflop/rank", "time [ms]", "weak eff"],
            rows,
        )
    )

    # Shape: per-rank work stays within 2.5x across the sweep, and weak
    # efficiency at the largest p beats *strong* efficiency at the same p
    # on the base problem — the reason scaled problems are how this solver
    # family demonstrates thousands of cores.
    assert max(per_rank) / min(per_rank) < 2.5
    base = analyzed_custom("cube", CASES[0][0])
    p_last = CASES[-1][1]
    strong = simulate_factorization(
        base, p_last, BLUEGENE_P, PlanOptions(nb=NB)
    ).makespan
    strong_eff = times[0] / (p_last * strong)
    weak_eff = times[0] / times[-1]
    print(f"\nweak eff at p={p_last}: {weak_eff:.3f}  vs strong eff: {strong_eff:.3f}")
    assert weak_eff > strong_eff

    sym = analyzed_custom("cube", 12)
    benchmark.pedantic(
        lambda: simulate_factorization(sym, 4, BLUEGENE_P, PlanOptions(nb=NB)),
        rounds=1,
        iterations=1,
    )
