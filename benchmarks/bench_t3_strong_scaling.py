"""T3 — strong scaling of the numeric factorization.

Paper analogue: the headline table/plot — factorization time versus core
count per matrix on the Blue Gene/P model. Expected shape: near-linear
speedup while per-rank work dominates, roll-off once the (small, simulated)
problems run out of tree+front parallelism; larger matrices scale further.
"""

from harness import NB, SCALING_RANKS, analyzed, banner

from repro.analysis import render_scaling_table, scaling_series
from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions

MATRICES = ["cube-m", "cube-l", "cube-xl", "elast-m"]


def test_t3_strong_scaling(benchmark):
    banner("T3", "Strong scaling of factorization time (Blue Gene/P model)")
    series = {}
    for name in MATRICES:
        sym = analyzed(name)
        pts = scaling_series(
            sym, SCALING_RANKS, BLUEGENE_P, PlanOptions(nb=NB)
        )
        series[name] = pts
        print()
        print(
            render_scaling_table(
                pts, title=f"{name} (n={sym.n}, {sym.factor_flops/1e6:.1f} Mflop)"
            )
        )

    # Shape checks: every matrix speeds up; the largest matrix holds
    # efficiency at p=8 at least as well as the smallest.
    for name, pts in series.items():
        assert pts[-1].time < pts[0].time, f"{name} failed to speed up"
    eff_at = lambda pts, p: next(x.efficiency for x in pts if x.n_ranks == p)
    assert eff_at(series["cube-l"], 8) >= eff_at(series["cube-m"], 8) - 0.05
    assert eff_at(series["cube-xl"], 8) >= eff_at(series["cube-l"], 8) - 0.05

    # Timed kernel: one mid-scale simulation.
    from repro.parallel import simulate_factorization

    sym = analyzed("cube-m")
    benchmark.pedantic(
        lambda: simulate_factorization(sym, 16, BLUEGENE_P, PlanOptions(nb=NB)),
        rounds=1,
        iterations=1,
    )
