"""T2 — ordering quality and analysis cost.

Paper analogue: the justification for nested dissection — fill and operation
count versus minimum-degree-style and bandwidth orderings, plus elimination
tree height (the parallelism proxy).
"""

from harness import banner

from repro.gen import get_paper_matrix
from repro.graph import AdjacencyGraph
from repro.ordering import get_ordering, ordering_quality
from repro.util.tables import format_table

INSTANCES = ["cube-s", "cube-m", "plate-m", "elast-s"]
ORDER_NAMES = ["natural", "rcm", "amd", "nd", "nd-ml", "nd-c"]


def test_t2_ordering_quality_table(benchmark):
    rows = []
    for name in INSTANCES:
        lower = get_paper_matrix(name).build()
        graph = AdjacencyGraph.from_symmetric_lower(lower)
        for oname in ORDER_NAMES:
            perm = get_ordering(oname)(graph)
            q = ordering_quality(lower, perm)
            rows.append(
                [
                    name,
                    oname,
                    q.n,
                    q.nnz_factor,
                    round(q.fill_ratio, 2),
                    q.factor_flops / 1e6,
                    q.etree_height,
                ]
            )
    banner("T2", "Ordering quality: fill, flops, etree height per ordering")
    print(
        format_table(
            ["matrix", "ordering", "n", "nnz(L)", "fill", "Mflops", "tree height"],
            rows,
        )
    )

    # ND must beat natural on every 3D instance (the paper-family claim).
    by_key = {(r[0], r[1]): r for r in rows}
    for name in ("cube-s", "cube-m"):
        assert by_key[(name, "nd")][5] < by_key[(name, "natural")][5]

    lower = get_paper_matrix("cube-s").build()
    graph = AdjacencyGraph.from_symmetric_lower(lower)
    amd = get_ordering("amd")
    benchmark(lambda: amd(graph))
