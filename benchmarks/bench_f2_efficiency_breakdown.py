"""F2 — parallel efficiency and communication-fraction breakdown.

Paper analogue: the efficiency/overhead analysis. Expected shape:
efficiency decays with p while the communication fraction (send + wait
time over total rank time) grows toward 1; message counts grow superlinearly
in p at fixed problem size.
"""

from harness import NB, SCALING_RANKS, analyzed, banner

from repro.analysis import load_imbalance, render_series, scaling_series
from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, simulate_factorization

MATRIX = "cube-l"


def test_f2_efficiency_breakdown(benchmark):
    sym = analyzed(MATRIX)
    pts = scaling_series(sym, SCALING_RANKS, BLUEGENE_P, PlanOptions(nb=NB))
    imbalance = []
    for pt in pts:
        res = simulate_factorization(
            sym, pt.n_ranks, BLUEGENE_P, PlanOptions(nb=NB)
        )
        imbalance.append(round(load_imbalance(res), 3))
    banner("F2", f"Efficiency and communication breakdown ({MATRIX}, BG/P)")
    print(
        render_series(
            "ranks",
            [pt.n_ranks for pt in pts],
            {
                "efficiency": [round(pt.efficiency, 3) for pt in pts],
                "comm frac": [round(pt.comm_fraction, 3) for pt in pts],
                "messages": [pt.n_messages for pt in pts],
                "MB moved": [round(pt.total_bytes / 1e6, 3) for pt in pts],
                "imbalance": imbalance,
            },
        )
    )

    effs = [pt.efficiency for pt in pts]
    comms = [pt.comm_fraction for pt in pts]
    assert effs[0] == 1.0
    assert effs[-1] < effs[0]
    assert comms[-1] > comms[1]

    benchmark.pedantic(
        lambda: simulate_factorization(sym, 64, BLUEGENE_P, PlanOptions(nb=NB)),
        rounds=1,
        iterations=1,
    )
