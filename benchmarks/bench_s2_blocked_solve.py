"""S2 (serving layer) — blocked multi-RHS host solve vs the per-column path.

Design choice probed: the serving layer coalesces same-pattern requests
into one ``(n, k)`` panel, and `repro.mf.solve_phase.solve_many` runs a
*single* permute → forward sweep → diagonal scale → backward sweep →
unpermute pass over the whole panel. The per-column alternative re-runs
the permutation, the full supernode traversal, and every per-front Python
overhead k times — the classic BLAS-2 vs BLAS-3 gap that task-based
sparse solvers treat as table stakes.

Two contracts, asserted so CI catches regressions:

* **bit-identity** — every column of the blocked solve is bitwise
  identical to a stand-alone single-RHS solve of that column (Cholesky
  and LDLᵀ); the blocked path may only amortize overhead, never change
  answer bits;
* **amortization** — the blocked solve at k=16 beats 16 per-column solves
  by >= 3x wall time on the bench matrix.
"""

import statistics

import numpy as np

from harness import banner

from repro.core.solver import SparseSolver
from repro.gen import grid3d_laplacian
from repro.mf.solve_phase import solve, solve_many
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.util.timing import WallTimer

SIZE = 10  # 10^3 Laplacian, n = 1000
KS = [1, 2, 4, 8, 16]
REPS = 3
SPEEDUP_FLOOR = 3.0


def _best_of(fn) -> float:
    times = []
    for _ in range(REPS):
        with WallTimer() as t:
            fn()
        times.append(t.elapsed)
    return min(times)


def test_s2_blocked_solve():
    lower = grid3d_laplacian(SIZE)
    n = lower.shape[0]
    rng = make_rng(1302)

    # Contract 1: bit-identity per column, both factorization methods.
    for method in ("cholesky", "ldlt"):
        solver = SparseSolver(lower, method=method)
        solver.factor()
        b = rng.standard_normal((n, 16))
        x_blocked = solve_many(solver.numeric, b)
        for j in range(b.shape[1]):
            x_col = solve(solver.numeric, b[:, j])
            assert np.array_equal(x_blocked[:, j], x_col), (
                f"blocked {method} solve differs from per-column at col {j}"
            )

    # Contract 2: the speedup curve over k.
    solver = SparseSolver(lower)
    solver.factor()
    factor = solver.numeric
    rows = []
    speedups = {}
    for k in KS:
        b = rng.standard_normal((n, k))

        def per_column(b=b, k=k):
            for j in range(k):
                solve(factor, b[:, j])

        t_col = _best_of(per_column)
        t_blk = _best_of(lambda b=b: solve_many(factor, b))
        speedups[k] = t_col / t_blk
        rows.append(
            [k, t_col * 1e3, t_blk * 1e3, speedups[k], t_blk / k * 1e3]
        )

    banner(
        "S2",
        f"Blocked multi-RHS host solve (cube {SIZE}^3, n={n}, "
        f"best of {REPS})",
    )
    print(
        format_table(
            [
                "k",
                "per-column [ms]",
                "blocked [ms]",
                "speedup",
                "blocked/RHS [ms]",
            ],
            rows,
        )
    )
    med = statistics.median(speedups.values())
    print(
        f"\nspeedup at k=16: {speedups[16]:.2f}x (floor {SPEEDUP_FLOOR}x); "
        f"median over k: {med:.2f}x; solutions bitwise identical per column"
    )

    assert speedups[16] >= SPEEDUP_FLOOR
