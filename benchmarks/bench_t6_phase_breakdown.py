"""T6 — phase breakdown: analysis vs numeric factorization vs solve.

Paper analogue: the phase-cost table solver papers report (one symbolic
analysis amortizes over many factorizations; one factorization over many
solves). Host wall time for the (Python) analysis phase; simulated
machine time for the numeric phases.
"""

import numpy as np

from harness import NB, analyzed, banner

from repro.gen import get_paper_matrix
from repro.graph import AdjacencyGraph
from repro.machine import BLUEGENE_P
from repro.ordering import nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization, simulate_solve
from repro.symbolic import analyze as run_analyze
from repro.util.tables import format_table
from repro.util.timing import WallTimer

MATRICES = ["cube-s", "cube-m", "elast-m", "plate-l"]


def test_t6_phase_breakdown(benchmark):
    rows = []
    for name in MATRICES:
        lower = get_paper_matrix(name).build()
        with WallTimer() as t:
            g = AdjacencyGraph.from_symmetric_lower(lower)
            sym = run_analyze(lower, nested_dissection_order(g))
        fres = simulate_factorization(sym, 1, BLUEGENE_P, PlanOptions(nb=NB))
        sres = simulate_solve(fres, np.ones(sym.n))
        rows.append(
            [
                name,
                sym.n,
                round(t.elapsed, 3),
                round(fres.makespan * 1e3, 3),
                round(sres.makespan * 1e3, 4),
                round(fres.makespan / sres.makespan, 1),
            ]
        )
    banner("T6", "Phase breakdown: analyze (host) vs factor vs solve (sim, p=1)")
    print(
        format_table(
            [
                "matrix",
                "n",
                "analyze [s, host]",
                "factor [ms, sim]",
                "solve [ms, sim]",
                "factor/solve",
            ],
            rows,
        )
    )

    # Shape: factorization dominates a single solve on every 3D matrix.
    for r in rows:
        if r[0].startswith("cube") or r[0].startswith("elast"):
            assert r[5] > 3

    sym = analyzed("cube-m")
    fres = simulate_factorization(sym, 1, BLUEGENE_P, PlanOptions(nb=NB))
    benchmark.pedantic(
        lambda: simulate_solve(fres, np.ones(sym.n)), rounds=1, iterations=1
    )
