"""E1 (execution backend) — threads backend vs sequential on real cores.

Design choice probed: the shared-memory backend (`repro.exec`) walks the
same supernodal assembly-tree task graph as the sequential driver, but
executes independent fronts concurrently on worker threads; numpy's
BLAS-3-sized kernels release the GIL, so the speedup is real-core
parallelism, not bookkeeping tricks. The paper's claim this reproduces
at laptop scale: elimination-tree task parallelism feeds a multifrontal
factorization enough independent dense work to scale.

Two contracts:

* **bit-identity** (always asserted) — the threads backend at every
  measured worker count produces factors and solutions byte-for-byte
  identical to the sequential driver; parallelism may never change
  answer bits. This is the cheap half and runs on any machine.
* **speedup** (asserted only when the host has >= 4 cores; CI pins
  ``OPENBLAS_NUM_THREADS=1`` so BLAS-internal threading cannot mask or
  fake the task-level scaling) — factorization at 4 workers beats the
  sequential driver by >= 1.5x wall time on the largest paper-suite
  matrix (cube-xl, 20^3 Laplacian, n=8000).
"""

import os

import numpy as np
import pytest

from harness import banner

from repro.core.solver import SparseSolver
from repro.exec import multifrontal_factor_threads, solve_many_threads
from repro.gen import grid3d_laplacian
from repro.mf.numeric import multifrontal_factor
from repro.mf.solve_phase import solve_many
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.util.timing import WallTimer

SIZE = 20  # cube-xl: 20^3 Laplacian, n = 8000 (largest paper-suite matrix)
WORKER_COUNTS = [1, 2, 4]
REPS = 3
SPEEDUP_FLOOR = 1.5
SPEEDUP_WORKERS = 4
MIN_CORES = 4


def _best_of(fn) -> float:
    times = []
    for _ in range(REPS):
        with WallTimer() as t:
            fn()
        times.append(t.elapsed)
    return min(times)


def test_e1_threads_backend():
    lower = grid3d_laplacian(SIZE)
    n = lower.shape[0]
    solver = SparseSolver(lower)
    solver.analyze()
    sym = solver.sym
    rng = make_rng(2009)
    b = rng.standard_normal((n, 8))

    # Contract 1: bit-identity at every worker count (always enforced).
    ref = multifrontal_factor(sym)
    x_ref = solve_many(ref, b)
    for w in WORKER_COUNTS + [SPEEDUP_WORKERS]:
        f = multifrontal_factor_threads(sym, workers=w)
        assert all(
            a.tobytes() == c.tobytes() for a, c in zip(ref.blocks, f.blocks)
        ), f"threads factor differs from sequential at workers={w}"
        assert f.stats.flops == ref.stats.flops
        x = solve_many_threads(f, b, workers=w)
        assert np.array_equal(x, x_ref), (
            f"threads solve differs from sequential at workers={w}"
        )

    # Contract 2: the scaling curve.
    t_seq = _best_of(lambda: multifrontal_factor(sym))
    rows = [["seq", t_seq * 1e3, 1.0]]
    speedups = {}
    for w in sorted(set(WORKER_COUNTS + [SPEEDUP_WORKERS])):
        t_w = _best_of(lambda w=w: multifrontal_factor_threads(sym, workers=w))
        speedups[w] = t_seq / t_w
        rows.append([f"threads x{w}", t_w * 1e3, speedups[w]])

    banner(
        "E1",
        f"Threads-backend factorization (cube-xl {SIZE}^3, n={n}, "
        f"nnz(L)={sym.nnz_factor}, best of {REPS})",
    )
    print(format_table(["backend", "factor [ms]", "speedup"], rows))

    cores = os.cpu_count() or 1
    print(
        f"\nhost cores: {cores}; speedup at {SPEEDUP_WORKERS} workers: "
        f"{speedups[SPEEDUP_WORKERS]:.2f}x (floor {SPEEDUP_FLOOR}x, "
        f"enforced when cores >= {MIN_CORES}); "
        "factors and solutions bitwise identical at every worker count"
    )

    if cores < MIN_CORES:
        # Bit-identity above has already been enforced; only the timing
        # gate needs real cores.
        pytest.skip(
            f"speedup floor needs >= {MIN_CORES} cores; host has {cores}"
        )
    assert speedups[SPEEDUP_WORKERS] >= SPEEDUP_FLOOR
