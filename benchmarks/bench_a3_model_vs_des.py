"""A3 (ablation) — analytic model versus discrete-event simulation.

Cross-validates the two measurement instruments: the closed-form
critical-path model (:mod:`repro.analysis.model`) must track the executing
simulator within a small factor and bend at the same place, and then
extends the scaling curve to rank counts far beyond what the executing
simulator can host (the paper's 4096–8192-core regime).
"""

from harness import NB, analyzed, banner

from repro.analysis import predict_factor_time
from repro.machine import BLUEGENE_P
from repro.parallel import PlanOptions, simulate_factorization
from repro.util.tables import format_table

MATRIX = "cube-l"
DES_RANKS = [1, 4, 16, 64]
MODEL_ONLY = [256, 1024, 4096]


def test_a3_model_vs_des(benchmark):
    sym = analyzed(MATRIX)
    opts = PlanOptions(nb=NB)
    rows = []
    ratios = []
    for p in DES_RANKS:
        des = simulate_factorization(sym, p, BLUEGENE_P, opts).makespan
        mod = predict_factor_time(sym, p, BLUEGENE_P, opts)
        ratios.append(des / mod)
        rows.append([p, des * 1e3, mod * 1e3, round(des / mod, 3)])
    for p in MODEL_ONLY:
        mod = predict_factor_time(sym, p, BLUEGENE_P, opts)
        rows.append([p, "-", mod * 1e3, "-"])
    banner("A3", f"DES vs analytic model ({MATRIX}, BG/P model)")
    print(
        format_table(
            ["ranks", "DES [ms]", "model [ms]", "DES/model"], rows
        )
    )

    # The model stays within 3x of the executing simulator everywhere.
    assert all(1 / 3 <= r <= 3 for r in ratios), ratios

    benchmark.pedantic(
        lambda: predict_factor_time(sym, 4096, BLUEGENE_P, opts),
        rounds=1,
        iterations=1,
    )
