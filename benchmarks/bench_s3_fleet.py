"""S3 (serving fleet) — sharded SLO-aware serving vs the single executor.

Design choices probed, on a synthetic load replay with Poisson arrivals,
bursty tenants, and hot-pattern skew:

* **fleet bitwise identity** (always asserted) — N worker slots pulling
  coalesced batches concurrently from the shared queue produce solutions
  byte-for-byte identical to the single-executor drain, per job, because
  the scheduler never lets two batches with the same pattern fingerprint
  be in flight at once (the cached analysis is the only shared mutable
  numeric state) and per-job answer bits are independent of batch
  composition (the blocked solve's per-column bitwise contract).
* **fleet throughput** (asserted only when the host has >= 4 cores) —
  4 fleet workers on the skewed replay beat the single executor by
  >= 2x wall time; numpy's BLAS-3 kernels release the GIL, so
  independent factorizations overlap on real cores.
* **EDF beats priority-only on deadline misses** (always asserted;
  deterministic fake clock) — on a trace whose priorities are
  anti-correlated with its deadlines, earliest-deadline-first ordering
  meets every deadline while pure priority ordering misses half.
* **admission control under bursts** (always asserted) — a bursty tenant
  hitting its quota is rejected with a typed error while other tenants'
  work is admitted and completes; rejections are counted, never enqueued.
"""

import os

import numpy as np
import pytest

from harness import banner

from repro.gen import grid3d_laplacian, random_spd_sparse
from repro.service import (
    COMPLETED,
    AdmissionError,
    ServiceConfig,
    SolverService,
)
from repro.sparse.csc import CSCMatrix
from repro.util.rng import make_rng
from repro.util.tables import format_table
from repro.util.timing import WallTimer

FLEET_WORKERS = 4
SHARDS = 4
SPEEDUP_FLOOR = 2.0
MIN_CORES = 4

#: distinct sparsity patterns in the replay (cube Laplacians)
PATTERN_SIZES = [7, 8, 9, 10, 11, 12]
#: index of the hot pattern the skewed trace concentrates on
HOT = 3
#: total requests in the replay
REQUESTS = 48
#: probability a request lands on the hot pattern
HOT_SKEW = 0.5
#: hot-pattern requests arrive in value-waves of this size: same values
#: within a wave, so coalescing (not just parallelism) absorbs the skew
WAVE = 4
#: mean Poisson interarrival time of the offered load [s]
MEAN_IAT = 0.01
#: deadline slack granted to every request [s]
SLACK = 120.0


class FakeClock:
    """Deterministic service clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def build_replay(seed=7):
    """The load replay: (matrix, rhs, priority, tenant, arrival) tuples.

    Poisson arrivals (exponential interarrivals), three steady tenants
    plus one bursty tenant owning every hot-wave request, and hot-pattern
    skew with values drifting per wave.
    """
    rng = make_rng(seed)
    bases = [grid3d_laplacian(s) for s in PATTERN_SIZES]
    trace = []
    arrival = 0.0
    hot_count = 0
    for req in range(REQUESTS):
        arrival += float(rng.exponential(MEAN_IAT))
        if rng.random() < HOT_SKEW:
            base = bases[HOT]
            wave = hot_count // WAVE
            hot_count += 1
            matrix = CSCMatrix(
                base.shape,
                base.indptr,
                base.indices,
                base.data * (1.0 + 0.05 * wave),
                _skip_check=True,
            )
            tenant = "burst"
        else:
            i = int(rng.integers(len(bases)))
            base = bases[i]
            matrix = CSCMatrix(
                base.shape,
                base.indptr,
                base.indices,
                base.data * (1.0 + 0.01 * req),
                _skip_check=True,
            )
            tenant = f"tenant{req % 3}"
        b = rng.standard_normal(matrix.shape[0])
        trace.append((matrix, b, req % 3, tenant, arrival))
    return trace


def replay(trace, config):
    """Submit the whole trace, drain once, return (service, results, wall)."""
    service = SolverService(config)
    t0 = service.now()
    ids = []
    for matrix, b, priority, tenant, arrival in trace:
        ids.append(
            service.submit(
                matrix,
                b,
                priority=priority,
                tenant=tenant,
                deadline=t0 + arrival + SLACK,
            )
        )
    with WallTimer() as t:
        results = service.drain()
    return service, [results[i] for i in ids], t.elapsed


def test_s3_fleet_bitwise_and_throughput():
    trace = build_replay()
    svc_1, res_1, t_1 = replay(trace, ServiceConfig())
    svc_f, res_f, t_f = replay(
        trace, ServiceConfig(fleet_workers=FLEET_WORKERS, shards=SHARDS)
    )

    # Contract 1: bitwise identity per job, any worker count (always).
    assert all(r.status == COMPLETED for r in res_1)
    assert all(r.status == COMPLETED for r in res_f)
    for a, b in zip(res_1, res_f):
        assert np.array_equal(a.x, b.x), (
            f"fleet solution differs from single executor on job {a.job_id}"
        )

    speedup = t_1 / t_f
    jobs = len(trace)
    banner(
        "S3",
        f"Serving fleet vs single executor ({jobs} requests, "
        f"{len(PATTERN_SIZES)} patterns, hot-pattern skew {HOT_SKEW}, "
        f"Poisson mean interarrival {MEAN_IAT * 1e3:.0f} ms)",
    )
    print(
        format_table(
            ["mode", "jobs", "time [s]", "jobs/s", "batches", "hit rate",
             "miss ratio"],
            [
                ["single", jobs, round(t_1, 3), round(jobs / t_1, 1),
                 svc_1.metrics.counter("batches"),
                 round(svc_1.cache.stats.hit_rate, 3),
                 round(svc_1.deadline_miss_ratio, 3)],
                [f"fleet x{FLEET_WORKERS}", jobs, round(t_f, 3),
                 round(jobs / t_f, 1), svc_f.metrics.counter("batches"),
                 round(svc_f.cache.stats.hit_rate, 3),
                 round(svc_f.deadline_miss_ratio, 3)],
            ],
        )
    )
    cores = os.cpu_count() or 1
    print(
        f"\nhost cores: {cores}; fleet speedup {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x, enforced when cores >= {MIN_CORES}); "
        f"shard sizes {svc_f.cache.shard_sizes()}; "
        "solutions bitwise identical across both modes"
    )

    if cores < MIN_CORES:
        # Bit-identity above has already been enforced; only the timing
        # gate needs real cores.
        pytest.skip(
            f"speedup floor needs >= {MIN_CORES} cores; host has {cores}"
        )
    assert speedup >= SPEEDUP_FLOOR


# EDF experiment: K jobs with anti-correlated priorities and deadlines on
# a deterministic clock. The sequential drain consumes a fixed number of
# clock ticks per batch (1 dispatch + 3 in execute/record), so job i —
# submitted i-th, K submit ticks up front — completes at tick 10 + 4(i+1)
# when served in deadline order; +2 slack makes EDF meet every deadline
# while any inversion (priority order is exactly reversed) misses.
EDF_JOBS = 10


def _edf_trace():
    mats = [random_spd_sparse(24 + 2 * i, seed=100 + i) for i in range(EDF_JOBS)]
    deadlines = [EDF_JOBS + 4 * (i + 1) + 2 for i in range(EDF_JOBS)]
    priorities = [EDF_JOBS - i for i in range(EDF_JOBS)]
    return mats, deadlines, priorities


def _run_policy(policy):
    mats, deadlines, priorities = _edf_trace()
    svc = SolverService(
        ServiceConfig(queue_policy=policy),
        clock=FakeClock(),
        sleep=lambda s: None,
    )
    for m, d, p in zip(mats, deadlines, priorities):
        svc.submit(m, np.ones(m.shape[0]), priority=p, deadline=d)
    svc.drain()
    return (
        svc.metrics.counter("service_deadline_missed_total"),
        svc.metrics.counter("service_deadline_jobs_total"),
        svc.deadline_miss_ratio,
    )


def test_s3_edf_vs_priority():
    edf_missed, edf_jobs, edf_ratio = _run_policy("edf")
    pri_missed, pri_jobs, pri_ratio = _run_policy("priority")

    banner(
        "S3-EDF",
        f"EDF vs priority-only deadline misses ({EDF_JOBS} jobs, "
        "anti-correlated priorities/deadlines, deterministic clock)",
    )
    print(
        format_table(
            ["policy", "deadline jobs", "missed", "miss ratio"],
            [
                ["edf", edf_jobs, edf_missed, round(edf_ratio, 3)],
                ["priority", pri_jobs, pri_missed, round(pri_ratio, 3)],
            ],
        )
    )
    assert edf_jobs == pri_jobs == EDF_JOBS
    assert edf_missed == 0, "EDF must meet every deadline on this trace"
    assert pri_missed > 0, (
        "priority-only must miss deadlines on the anti-correlated trace"
    )
    assert edf_ratio < pri_ratio


def test_s3_admission_under_burst():
    m = grid3d_laplacian(5)
    rng = make_rng(3)
    svc = SolverService(ServiceConfig(max_pending=16, tenant_quota=4))
    admitted = 0
    rejections = {"quota": 0, "backpressure": 0}
    for i in range(12):  # the burst: one tenant far past its quota
        try:
            svc.submit(m, rng.standard_normal(m.shape[0]), tenant="burst")
            admitted += 1
        except AdmissionError as exc:
            rejections[exc.reason] += 1
    for i in range(6):  # steady tenants are unaffected by the burst
        svc.submit(m, rng.standard_normal(m.shape[0]), tenant=f"tenant{i % 3}")
        admitted += 1
    results = svc.drain()

    banner("S3-ADM", "Admission control under a tenant burst")
    print(
        format_table(
            ["admitted", "quota rejects", "backpressure rejects", "completed"],
            [[admitted, rejections["quota"], rejections["backpressure"],
              sum(1 for r in results.values() if r.status == COMPLETED)]],
        )
    )
    assert rejections["quota"] == 8  # 12 burst submits, quota 4
    assert admitted == 10
    assert len(results) == admitted
    assert all(r.status == COMPLETED for r in results.values())
    assert svc.metrics.counter("service_admission_rejected_total") == 8
    # After the drain the tenant's pending count is back to zero: admitted.
    svc.submit(m, rng.standard_normal(m.shape[0]), tenant="burst")
