"""Tests for repro.dense kernels against numpy/scipy oracles."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings, strategies as st

from repro.dense import (
    cholesky,
    cholesky_in_place,
    ldlt,
    ldlt_in_place,
    solve_lower_inplace,
    solve_lower_transpose_inplace,
    solve_unit_lower_inplace,
    syrk_lower_update,
    partial_cholesky,
    partial_ldlt,
)
from repro.dense.trsm import solve_unit_lower_transpose_inplace
from repro.dense.syrk import syrk_lower_update_scaled
from repro.util.errors import NotPositiveDefiniteError, ShapeError, SingularMatrixError


def spd(rng, n, shift=None):
    a = rng.standard_normal((n, n))
    m = a @ a.T
    m += (shift if shift is not None else n) * np.eye(n)
    return m


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 64, 100])
    def test_matches_numpy(self, rng, n):
        a = spd(rng, n)
        l = cholesky(a)
        np.testing.assert_allclose(l, np.linalg.cholesky(a), rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("block", [1, 3, 8, 200])
    def test_blocking_invariant(self, rng, block):
        a = spd(rng, 30)
        l = cholesky(a, block=block)
        np.testing.assert_allclose(l @ l.T, a, rtol=1e-10, atol=1e-10)

    def test_in_place_overwrites_lower(self, rng):
        a = spd(rng, 10)
        work = a.copy()
        cholesky_in_place(work)
        np.testing.assert_allclose(
            np.tril(work), np.linalg.cholesky(a), rtol=1e-10, atol=1e-10
        )

    def test_not_pd_raises_with_column(self):
        a = np.diag([1.0, -1.0, 2.0])
        with pytest.raises(NotPositiveDefiniteError) as ei:
            cholesky(a)
        assert ei.value.column == 1

    def test_not_pd_in_blocked_region(self, rng):
        a = spd(rng, 80)
        a[70, 70] = -1e6
        with pytest.raises(NotPositiveDefiniteError) as ei:
            cholesky(a, block=16)
        assert ei.value.column is not None and ei.value.column >= 64

    def test_rejects_non_square(self):
        with pytest.raises(ShapeError):
            cholesky_in_place(np.ones((2, 3)))

    def test_rejects_non_working_dtype(self):
        # float32 is a valid working dtype now; float16 is still rejected.
        with pytest.raises(ShapeError):
            cholesky_in_place(np.eye(3, dtype=np.float16))

    def test_fp32_matches_fp64_shape_contract(self):
        a = np.eye(3, dtype=np.float32)
        cholesky_in_place(a)
        assert a.dtype == np.float32

    def test_rejects_bad_block(self):
        with pytest.raises(ShapeError):
            cholesky_in_place(np.eye(3), block=0)

    def test_empty_matrix(self):
        a = np.zeros((0, 0))
        cholesky_in_place(a)  # no-op

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 24), st.integers(0, 10_000))
    def test_property_reconstruction(self, n, seed):
        rng = np.random.default_rng(seed)
        a = spd(rng, n)
        l = cholesky(a)
        np.testing.assert_allclose(l @ l.T, a, rtol=1e-9, atol=1e-9)
        assert np.all(np.diag(l) > 0)


class TestLDLT:
    @pytest.mark.parametrize("n", [1, 2, 8, 30])
    def test_reconstruction_spd(self, rng, n):
        a = spd(rng, n)
        l, d = ldlt(a)
        np.testing.assert_allclose(l @ np.diag(d) @ l.T, a, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(np.diag(l), 1.0)

    def test_indefinite_strongly_regular(self):
        # Symmetric indefinite with non-zero leading minors.
        a = np.array([[2.0, 1.0, 0.0], [1.0, -3.0, 1.0], [0.0, 1.0, 4.0]])
        l, d = ldlt(a)
        np.testing.assert_allclose(l @ np.diag(d) @ l.T, a, rtol=1e-10, atol=1e-12)
        assert (d < 0).any()

    def test_zero_pivot_raises(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(SingularMatrixError) as ei:
            ldlt(a)
        assert ei.value.column == 0

    def test_matches_scipy_ldl_spd(self, rng):
        a = spd(rng, 12)
        l, d = ldlt(a)
        lu, ds, _ = scipy.linalg.ldl(a, lower=True)
        # scipy may permute; for SPD diagonally dominant it should not.
        np.testing.assert_allclose(l, lu, rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(d, np.diag(ds), rtol=1e-8, atol=1e-8)

    def test_in_place_returns_diag(self, rng):
        a = spd(rng, 6)
        work = a.copy()
        d = ldlt_in_place(work)
        np.testing.assert_allclose(np.diagonal(work), d)


class TestTrsm:
    @pytest.mark.parametrize("nrhs", [None, 1, 4])
    def test_forward(self, rng, nrhs):
        l = np.tril(rng.standard_normal((8, 8))) + 4 * np.eye(8)
        b = rng.standard_normal(8) if nrhs is None else rng.standard_normal((8, nrhs))
        x = b.copy()
        solve_lower_inplace(l, x)
        np.testing.assert_allclose(l @ x, b, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("nrhs", [None, 3])
    def test_backward_transpose(self, rng, nrhs):
        l = np.tril(rng.standard_normal((8, 8))) + 4 * np.eye(8)
        b = rng.standard_normal(8) if nrhs is None else rng.standard_normal((8, nrhs))
        x = b.copy()
        solve_lower_transpose_inplace(l, x)
        np.testing.assert_allclose(l.T @ x, b, rtol=1e-10, atol=1e-10)

    def test_unit_forward(self, rng):
        l = np.tril(rng.standard_normal((7, 7)), -1) + np.eye(7)
        b = rng.standard_normal(7)
        x = b.copy()
        solve_unit_lower_inplace(l, x)
        np.testing.assert_allclose(l @ x, b, rtol=1e-10, atol=1e-10)

    def test_unit_backward(self, rng):
        l = np.tril(rng.standard_normal((7, 7)), -1) + np.eye(7)
        b = rng.standard_normal(7)
        x = b.copy()
        solve_unit_lower_transpose_inplace(l, x)
        np.testing.assert_allclose(l.T @ x, b, rtol=1e-10, atol=1e-10)

    def test_unit_ignores_diagonal_values(self, rng):
        l = np.tril(rng.standard_normal((5, 5)), -1)
        l_garbage = l + np.diag(rng.standard_normal(5))
        b = rng.standard_normal(5)
        x1, x2 = b.copy(), b.copy()
        solve_unit_lower_inplace(l + np.eye(5), x1)
        solve_unit_lower_inplace(l_garbage, x2)
        np.testing.assert_allclose(x1, x2)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            solve_lower_inplace(np.eye(3), np.ones(4))
        with pytest.raises(ShapeError):
            solve_lower_inplace(np.ones((2, 3)), np.ones(2))


class TestSyrk:
    def test_update(self, rng):
        c = rng.standard_normal((6, 6))
        a = rng.standard_normal((6, 3))
        expected = c - a @ a.T
        syrk_lower_update(c, a)
        np.testing.assert_allclose(c, expected)

    def test_scaled_update(self, rng):
        c = rng.standard_normal((5, 5))
        a = rng.standard_normal((5, 2))
        d = np.array([2.0, -3.0])
        expected = c - a @ np.diag(d) @ a.T
        syrk_lower_update_scaled(c, a, d)
        np.testing.assert_allclose(c, expected)

    def test_shape_checks(self):
        with pytest.raises(ShapeError):
            syrk_lower_update(np.ones((2, 3)), np.ones((2, 2)))
        with pytest.raises(ShapeError):
            syrk_lower_update(np.eye(3), np.ones((2, 2)))
        with pytest.raises(ShapeError):
            syrk_lower_update_scaled(np.eye(3), np.ones((3, 2)), np.ones(3))


class TestPartialFactor:
    @pytest.mark.parametrize("m,k", [(6, 2), (10, 10), (8, 0), (5, 1), (40, 13)])
    def test_partial_cholesky_blocks(self, rng, m, k):
        a = spd(rng, m)
        front = a.copy()
        partial_cholesky(front, k)
        if k == 0:
            np.testing.assert_allclose(front, a)
            return
        l_full = np.linalg.cholesky(a)
        np.testing.assert_allclose(
            np.tril(front[:k, :k]), l_full[:k, :k], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(front[k:, :k], l_full[k:, :k], rtol=1e-9, atol=1e-9)
        # Schur complement oracle
        schur = a[k:, k:] - l_full[k:, :k] @ l_full[k:, :k].T
        np.testing.assert_allclose(
            np.tril(front[k:, k:]), np.tril(schur), rtol=1e-8, atol=1e-8
        )

    def test_partial_cholesky_out_of_range(self, rng):
        with pytest.raises(ShapeError):
            partial_cholesky(spd(rng, 4), 5)

    @pytest.mark.parametrize("m,k", [(6, 2), (9, 9), (7, 3)])
    def test_partial_ldlt_blocks(self, rng, m, k):
        a = spd(rng, m)
        front = a.copy()
        d = partial_ldlt(front, k)
        l11 = np.tril(front[:k, :k], -1) + np.eye(k)
        np.testing.assert_allclose(
            l11 @ np.diag(d) @ l11.T, a[:k, :k], rtol=1e-9, atol=1e-9
        )
        if k < m:
            l21 = front[k:, :k]
            np.testing.assert_allclose(
                l21 @ np.diag(d) @ l11.T, a[k:, :k], rtol=1e-8, atol=1e-8
            )
            schur = a[k:, k:] - l21 @ np.diag(d) @ l21.T
            np.testing.assert_allclose(
                np.tril(front[k:, k:]), np.tril(schur), rtol=1e-8, atol=1e-8
            )

    def test_partial_consistency_chol_vs_ldlt(self, rng):
        """For SPD fronts, L_chol = L_ldlt @ sqrt(D)."""
        a = spd(rng, 8)
        f1, f2 = a.copy(), a.copy()
        partial_cholesky(f1, 3)
        d = partial_ldlt(f2, 3)
        l11c = np.tril(f1[:3, :3])
        l11d = np.tril(f2[:3, :3], -1) + np.eye(3)
        np.testing.assert_allclose(l11c, l11d * np.sqrt(d)[None, :], rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            np.tril(f1[3:, 3:]), np.tril(f2[3:, 3:]), rtol=1e-8, atol=1e-8
        )
