"""Tests for repro.util: errors, validation, rng, timing, tables."""

import numpy as np
import pytest

from repro.util import (
    ReproError,
    ShapeError,
    check_index_array,
    check_permutation,
    check_square,
    check_same_shape,
    as_float_array,
    as_index_array,
    make_rng,
    WallTimer,
    format_table,
)
from repro.util.errors import (
    NotPositiveDefiniteError,
    SingularMatrixError,
    OrderingError,
    SimulationError,
    NotSymmetricError,
)
from repro.util.rng import spawn_rng, DEFAULT_SEED
from repro.util.tables import format_si


class TestErrors:
    def test_hierarchy_all_derive_from_repro_error(self):
        for exc in (
            ShapeError,
            NotSymmetricError,
            NotPositiveDefiniteError,
            SingularMatrixError,
            OrderingError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)

    def test_not_pd_error_carries_column(self):
        err = NotPositiveDefiniteError("pivot", column=7)
        assert err.column == 7

    def test_singular_error_carries_column(self):
        err = SingularMatrixError("zero pivot", column=3)
        assert err.column == 3

    def test_not_pd_default_column_none(self):
        assert NotPositiveDefiniteError("x").column is None


class TestValidation:
    def test_as_index_array_from_list(self):
        a = as_index_array([1, 2, 3])
        assert a.dtype == np.int64
        assert a.tolist() == [1, 2, 3]

    def test_as_index_array_rejects_fractional_floats(self):
        with pytest.raises(ShapeError):
            as_index_array(np.array([1.5, 2.0]))

    def test_as_index_array_accepts_integral_floats(self):
        a = as_index_array(np.array([1.0, 2.0]))
        assert a.tolist() == [1, 2]

    def test_as_float_array_rejects_nan(self):
        with pytest.raises(ShapeError):
            as_float_array([1.0, np.nan])

    def test_as_float_array_rejects_inf(self):
        with pytest.raises(ShapeError):
            as_float_array([np.inf])

    def test_as_float_array_empty_ok(self):
        assert as_float_array([]).size == 0

    def test_check_index_array_in_range(self):
        check_index_array(np.array([0, 4], dtype=np.int64), 5)

    def test_check_index_array_negative(self):
        with pytest.raises(ShapeError):
            check_index_array(np.array([-1], dtype=np.int64), 5)

    def test_check_index_array_too_large(self):
        with pytest.raises(ShapeError):
            check_index_array(np.array([5], dtype=np.int64), 5)

    def test_check_index_array_empty_ok(self):
        check_index_array(np.empty(0, dtype=np.int64), 0)

    def test_check_permutation_valid(self):
        p = check_permutation([2, 0, 1], 3)
        assert p.tolist() == [2, 0, 1]

    def test_check_permutation_duplicate(self):
        with pytest.raises(ShapeError):
            check_permutation([0, 0, 2], 3)

    def test_check_permutation_wrong_length(self):
        with pytest.raises(ShapeError):
            check_permutation([0, 1], 3)

    def test_check_permutation_out_of_range(self):
        with pytest.raises(ShapeError):
            check_permutation([0, 1, 3], 3)

    def test_check_permutation_empty(self):
        assert check_permutation([], 0).size == 0

    def test_check_square(self):
        assert check_square((4, 4)) == 4
        with pytest.raises(ShapeError):
            check_square((4, 5))

    def test_check_same_shape(self):
        check_same_shape((2, 3), (2, 3))
        with pytest.raises(ShapeError):
            check_same_shape((2, 3), (3, 2))


class TestRng:
    def test_default_seed_reproducible(self):
        a = make_rng().random(4)
        b = make_rng().random(4)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed(self):
        a = make_rng(7).random(4)
        b = make_rng(7).random(4)
        np.testing.assert_array_equal(a, b)
        c = make_rng(8).random(4)
        assert not np.array_equal(a, c)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_spawned_streams_differ(self):
        a = spawn_rng(make_rng(1), 0).random(8)
        b = spawn_rng(make_rng(1), 1).random(8)
        assert not np.array_equal(a, b)

    def test_spawned_streams_deterministic(self):
        a = spawn_rng(make_rng(1), 3).random(8)
        b = spawn_rng(make_rng(1), 3).random(8)
        np.testing.assert_array_equal(a, b)

    def test_default_seed_value(self):
        assert DEFAULT_SEED == 20090101


class TestTiming:
    def test_context_manager(self):
        with WallTimer() as t:
            pass
        assert t.elapsed >= 0.0

    def test_start_stop(self):
        t = WallTimer()
        t.start()
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            WallTimer().stop()

    def test_reenter_while_running_raises(self):
        t = WallTimer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_exit_after_stop_inside_block_raises(self):
        # Regression: this used to be a bare assert, which disappears
        # under `python -O` and let __exit__ crash on arithmetic instead.
        with pytest.raises(RuntimeError, match="not running"):
            with WallTimer() as t:
                t.stop()

    def test_timer_is_reusable_after_exit(self):
        t = WallTimer()
        with t:
            pass
        with t:
            pass
        assert t.elapsed >= 0.0


class TestTables:
    def test_basic_table(self):
        s = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = s.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        s = format_table(["x"], [[1]], title="T1")
        assert s.splitlines()[0] == "T1"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formats(self):
        s = format_table(["v"], [[1.23456789e9], [0.0], [1e-9]])
        assert "e+09" in s or "e9" in s
        assert "0" in s

    def test_format_si(self):
        assert format_si(2.5e9, "flop/s") == "2.50 Gflop/s"
        assert format_si(1.5e3) == "1.50 K"
        assert format_si(12.0) == "12.00 "
