"""Tests for the subtree-to-subcube mapping, grids, and plans."""

import numpy as np
import pytest

from repro.gen import grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.ordering import nested_dissection_order
from repro.parallel import (
    map_supernodes_to_ranks,
    ProcessGrid,
    grid_dims,
    block_starts,
    FactorPlan,
    PlanOptions,
)
from repro.parallel.mapping import subtree_flops
from repro.symbolic import analyze
from repro.util.errors import ShapeError


def analyzed(lower, ordering=nested_dissection_order):
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, ordering(g))


@pytest.fixture(scope="module")
def sym3d():
    return analyzed(grid3d_laplacian(6))


class TestGridDims:
    @pytest.mark.parametrize("g,expected", [(1, (1, 1)), (4, (2, 2)), (8, (2, 4)), (16, (4, 4)), (6, (2, 3)), (7, (1, 7))])
    def test_near_square(self, g, expected):
        assert grid_dims(g) == expected

    def test_invalid(self):
        with pytest.raises(ShapeError):
            grid_dims(0)


class TestBlockStarts:
    def test_pivot_aligned(self):
        s = block_starts(100, 35, 16)
        assert 35 in s.tolist()
        assert s[0] == 0 and s[-1] == 100

    def test_sizes_bounded(self):
        s = block_starts(97, 40, 16)
        assert np.all(np.diff(s) <= 16)
        assert np.all(np.diff(s) >= 1)

    def test_no_update_region(self):
        s = block_starts(32, 32, 16)
        assert s.tolist() == [0, 16, 32]

    def test_invalid(self):
        with pytest.raises(ShapeError):
            block_starts(10, 12, 4)
        with pytest.raises(ShapeError):
            block_starts(10, 5, 0)


class TestProcessGrid:
    def test_owner_cycles(self):
        g = ProcessGrid((0, 1, 2, 3), 2, 2)
        assert g.owner(0, 0) == 0
        assert g.owner(0, 1) == 1
        assert g.owner(1, 0) == 2
        assert g.owner(2, 2) == 0  # wraps

    def test_coords_roundtrip(self):
        g = ProcessGrid((5, 6, 7, 8, 9, 10), 2, 3)
        for r in g.ranks:
            i, j = g.coords(r)
            assert g.at(i, j) == r

    def test_row_col_members(self):
        g = ProcessGrid((0, 1, 2, 3), 2, 2)
        assert g.row_members(0) == (0, 1)
        assert g.col_members(1) == (1, 3)

    def test_one_d(self):
        g = ProcessGrid.one_d((4, 5, 6))
        assert (g.gr, g.gc) == (3, 1)
        assert g.owner(0, 0) == 4
        assert g.owner(1, 7) == 5

    def test_owned_blocks_partition(self):
        g = ProcessGrid((0, 1, 2, 3), 2, 2)
        nb = 5
        seen = set()
        for r in g.ranks:
            for bi, bj in g.owned_blocks(r, nb):
                assert bi >= bj
                assert (bi, bj) not in seen
                seen.add((bi, bj))
        assert len(seen) == nb * (nb + 1) // 2

    def test_mismatched_dims(self):
        with pytest.raises(ShapeError):
            ProcessGrid((0, 1, 2), 2, 2)


class TestMapping:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_all_assigned(self, sym3d, p):
        m = map_supernodes_to_ranks(sym3d, p)
        assert len(m.sn_ranks) == sym3d.n_supernodes
        for group in m.sn_ranks:
            assert len(group) >= 1
            assert all(0 <= r < p for r in group)

    def test_p1_all_sequential(self, sym3d):
        m = map_supernodes_to_ranks(sym3d, 1)
        assert all(g == (0,) for g in m.sn_ranks)
        assert m.dist_supernodes == []

    def test_groups_shrink_down_tree(self, sym3d):
        m = map_supernodes_to_ranks(sym3d, 8)
        for s in range(sym3d.n_supernodes):
            p = int(sym3d.sn_parent[s])
            if p >= 0 and not m.is_seq(p):
                # Child group is contained in a distributed parent's group.
                assert set(m.sn_ranks[s]) <= set(m.sn_ranks[p])

    def test_root_gets_everyone_on_big_tree(self, sym3d):
        m = map_supernodes_to_ranks(sym3d, 4)
        roots = sym3d.roots()
        total = set()
        for r in roots:
            total |= set(m.sn_ranks[r])
        assert total == {0, 1, 2, 3}

    def test_all_ranks_get_seq_work(self, sym3d):
        m = map_supernodes_to_ranks(sym3d, 8)
        work = m.rank_seq_work()
        assert np.all(work > 0)

    def test_seq_load_balance(self):
        sym = analyzed(grid3d_laplacian(7))
        m = map_supernodes_to_ranks(sym, 4)
        work = m.rank_seq_work()
        assert work.max() <= 4.0 * max(work.min(), 1.0)

    def test_supernodes_for_rank_sorted_and_complete(self, sym3d):
        m = map_supernodes_to_ranks(sym3d, 4)
        covered = set()
        for r in range(4):
            sns = m.supernodes_for_rank(r)
            assert sns == sorted(sns)
            covered |= set(sns)
        assert covered == set(range(sym3d.n_supernodes))

    def test_invalid_p(self, sym3d):
        with pytest.raises(ShapeError):
            map_supernodes_to_ranks(sym3d, 0)

    def test_subtree_flops_monotone(self, sym3d):
        w = subtree_flops(sym3d)
        for s in range(sym3d.n_supernodes):
            p = int(sym3d.sn_parent[s])
            if p >= 0:
                assert w[p] > w[s]

    def test_more_ranks_more_distributed(self, sym3d):
        m2 = map_supernodes_to_ranks(sym3d, 2)
        m16 = map_supernodes_to_ranks(sym3d, 16)
        assert len(m16.dist_supernodes) >= len(m2.dist_supernodes)


class TestPlan:
    @pytest.mark.parametrize("policy", ["2d", "1d", "static"])
    def test_policies_build(self, sym3d, policy):
        plan = FactorPlan(sym3d, 4, PlanOptions(nb=16, policy=policy))
        desc = plan.describe()
        assert desc["policy"] == policy
        assert desc["n_supernodes"] == sym3d.n_supernodes

    def test_1d_grids_are_columns(self, sym3d):
        plan = FactorPlan(sym3d, 4, PlanOptions(nb=16, policy="1d"))
        for s in plan.mapping.dist_supernodes:
            grid = plan.dist[s].grid
            assert grid.gc == 1

    def test_2d_grids_near_square(self, sym3d):
        plan = FactorPlan(sym3d, 16, PlanOptions(nb=16, policy="2d"))
        for s in plan.mapping.dist_supernodes:
            grid = plan.dist[s].grid
            assert grid.gr <= grid.gc

    def test_ea_pairs_cover_senders_and_dests(self, sym3d):
        plan = FactorPlan(sym3d, 8, PlanOptions(nb=16))
        checked = 0
        for c in range(sym3d.n_supernodes):
            if sym3d.sn_parent[c] < 0:
                continue
            pairs = plan.ea_pairs(c)
            assert pairs, f"child {c} has no transfer pairs"
            for sender, dest in pairs:
                assert plan.ea_dests_from(c, sender)
                assert sender in plan.ea_senders_to(c, dest)
            checked += 1
        assert checked > 0

    def test_ea_runs_cover_update(self, sym3d):
        plan = FactorPlan(sym3d, 8, PlanOptions(nb=16))
        for c in range(sym3d.n_supernodes):
            if sym3d.sn_parent[c] < 0:
                continue
            mu = sym3d.front_size(c) - sym3d.supernode_width(c)
            runs = plan.ea_runs(c)
            assert runs[0][0] == 0
            assert runs[-1][1] == mu
            for (a0, a1, _, _), (b0, _, _, _) in zip(runs, runs[1:]):
                assert a1 == b0

    def test_bad_policy(self, sym3d):
        with pytest.raises(ShapeError):
            PlanOptions(policy="3d")

    def test_update_holders_subset_of_group(self, sym3d):
        plan = FactorPlan(sym3d, 8, PlanOptions(nb=16))
        for s in range(sym3d.n_supernodes):
            holders = plan.update_holders(s)
            assert set(holders) <= set(plan.mapping.sn_ranks[s])
