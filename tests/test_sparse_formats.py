"""Tests for repro.sparse formats and conversions, with scipy as oracle."""

import numpy as np
import pytest
import scipy.sparse as sps
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    CSCMatrix,
    coo_to_csr,
    coo_to_csc,
    csr_to_csc,
    csc_to_csr,
    csr_to_coo,
    csc_to_coo,
)
from repro.util.errors import ShapeError


def random_coo(rng, shape=(8, 6), nnz=20, allow_dups=True):
    r = rng.integers(0, shape[0], size=nnz)
    c = rng.integers(0, shape[1], size=nnz)
    v = rng.standard_normal(nnz)
    return COOMatrix(shape, r, c, v)


class TestCOO:
    def test_construct_and_nnz(self):
        m = COOMatrix((3, 3), [0, 1], [1, 2], [5.0, 6.0])
        assert m.nnz == 2
        assert m.shape == (3, 3)

    def test_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            COOMatrix((3, 3), [0, 1], [1], [5.0, 6.0])

    def test_out_of_range_row(self):
        with pytest.raises(ShapeError):
            COOMatrix((3, 3), [3], [0], [1.0])

    def test_out_of_range_col(self):
        with pytest.raises(ShapeError):
            COOMatrix((3, 3), [0], [-1], [1.0])

    def test_from_to_dense_roundtrip(self, rng):
        d = rng.standard_normal((5, 7))
        d[rng.random((5, 7)) < 0.5] = 0.0
        m = COOMatrix.from_dense(d)
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_duplicates_sum_in_to_dense(self):
        m = COOMatrix((2, 2), [0, 0], [0, 0], [1.0, 2.0])
        assert m.to_dense()[0, 0] == 3.0

    def test_sum_duplicates(self):
        m = COOMatrix((2, 2), [0, 1, 0], [0, 1, 0], [1.0, 4.0, 2.0])
        s = m.sum_duplicates()
        assert s.nnz == 2
        np.testing.assert_array_equal(s.to_dense(), [[3.0, 0.0], [0.0, 4.0]])

    def test_sum_duplicates_sorted_order(self, rng):
        m = random_coo(rng, nnz=50)
        s = m.sum_duplicates()
        keys = s.row * m.shape[1] + s.col
        assert np.all(np.diff(keys) > 0)

    def test_prune_drops_small(self):
        m = COOMatrix((2, 2), [0, 1], [0, 1], [1e-12, 1.0])
        p = m.prune(tol=1e-10)
        assert p.nnz == 1

    def test_prune_cancels_duplicates(self):
        m = COOMatrix((2, 2), [0, 0], [0, 0], [1.0, -1.0])
        assert m.prune().nnz == 0

    def test_empty(self):
        m = COOMatrix.empty((4, 4))
        assert m.nnz == 0
        np.testing.assert_array_equal(m.to_dense(), np.zeros((4, 4)))

    def test_transpose(self, rng):
        m = random_coo(rng)
        np.testing.assert_array_equal(m.transpose().to_dense(), m.to_dense().T)

    def test_repr(self):
        assert "COOMatrix" in repr(COOMatrix.empty((2, 2)))


class TestCSR:
    def test_from_dense_matches_scipy(self, rng):
        d = rng.standard_normal((6, 9))
        d[rng.random((6, 9)) < 0.6] = 0.0
        ours = CSRMatrix.from_dense(d)
        ref = sps.csr_matrix(d)
        np.testing.assert_array_equal(ours.indptr, ref.indptr)
        np.testing.assert_array_equal(ours.indices, ref.indices)
        np.testing.assert_allclose(ours.data, ref.data)

    def test_row_access(self):
        m = CSRMatrix.from_dense(np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0]]))
        cols, vals = m.row(0)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 2.0]
        cols, vals = m.row(1)
        assert cols.size == 0

    def test_row_degrees(self):
        m = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))
        assert m.row_degrees().tolist() == [2, 1]

    def test_validation_bad_indptr_start(self):
        with pytest.raises(ShapeError):
            CSRMatrix((1, 2), [1, 2], [0], [1.0])

    def test_validation_decreasing_indptr(self):
        with pytest.raises(ShapeError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 1.0])

    def test_validation_unsorted_row(self):
        with pytest.raises(ShapeError):
            CSRMatrix((1, 3), [0, 2], [2, 0], [1.0, 1.0])

    def test_validation_duplicate_col(self):
        with pytest.raises(ShapeError):
            CSRMatrix((1, 3), [0, 2], [1, 1], [1.0, 1.0])

    def test_validation_indptr_tail(self):
        with pytest.raises(ShapeError):
            CSRMatrix((1, 3), [0, 3], [0, 1], [1.0, 1.0])

    def test_copy_is_deep(self):
        m = CSRMatrix.from_dense(np.eye(3))
        c = m.copy()
        c.data[0] = 99.0
        assert m.data[0] == 1.0


class TestCSC:
    def test_from_dense_matches_scipy(self, rng):
        d = rng.standard_normal((7, 5))
        d[rng.random((7, 5)) < 0.6] = 0.0
        ours = CSCMatrix.from_dense(d)
        ref = sps.csc_matrix(d)
        np.testing.assert_array_equal(ours.indptr, ref.indptr)
        np.testing.assert_array_equal(ours.indices, ref.indices)
        np.testing.assert_allclose(ours.data, ref.data)

    def test_col_access(self):
        m = CSCMatrix.from_dense(np.array([[1.0, 0.0], [3.0, 0.0]]))
        rows, vals = m.col(0)
        assert rows.tolist() == [0, 1]
        assert vals.tolist() == [1.0, 3.0]
        rows, _ = m.col(1)
        assert rows.size == 0

    def test_diagonal(self):
        d = np.array([[2.0, 1.0], [1.0, 0.0]])
        m = CSCMatrix.from_dense(d)
        np.testing.assert_array_equal(m.diagonal(), [2.0, 0.0])

    def test_col_degrees(self):
        m = CSCMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 1.0]]))
        assert m.col_degrees().tolist() == [1, 2]

    def test_validation_unsorted_col(self):
        with pytest.raises(ShapeError):
            CSCMatrix((3, 1), [0, 2], [2, 0], [1.0, 1.0])


class TestConversions:
    @pytest.mark.parametrize("shape,nnz", [((5, 5), 10), ((8, 3), 15), ((3, 9), 12), ((1, 1), 1)])
    def test_coo_csr_csc_roundtrips(self, rng, shape, nnz):
        m = random_coo(rng, shape, nnz)
        dense = m.to_dense()
        csr = coo_to_csr(m)
        csc = coo_to_csc(m)
        np.testing.assert_allclose(csr.to_dense(), dense)
        np.testing.assert_allclose(csc.to_dense(), dense)
        np.testing.assert_allclose(csr_to_csc(csr).to_dense(), dense)
        np.testing.assert_allclose(csc_to_csr(csc).to_dense(), dense)
        np.testing.assert_allclose(csr_to_coo(csr).to_dense(), dense)
        np.testing.assert_allclose(csc_to_coo(csc).to_dense(), dense)

    def test_empty_matrix_conversions(self):
        m = COOMatrix.empty((4, 6))
        assert coo_to_csr(m).nnz == 0
        assert coo_to_csc(m).nnz == 0

    def test_csr_to_csc_canonical(self, rng):
        m = random_coo(rng, (10, 10), 40)
        csc = csr_to_csc(coo_to_csr(m))
        for j in range(10):
            rows, _ = csc.col(j)
            assert np.all(np.diff(rows) > 0)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_roundtrip_random(self, data):
        n_rows = data.draw(st.integers(1, 12), label="rows")
        n_cols = data.draw(st.integers(1, 12), label="cols")
        nnz = data.draw(st.integers(0, 30), label="nnz")
        r = data.draw(
            st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
        )
        c = data.draw(
            st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
        )
        v = data.draw(
            st.lists(
                st.floats(-10, 10, allow_nan=False), min_size=nnz, max_size=nnz
            )
        )
        m = COOMatrix((n_rows, n_cols), np.array(r, dtype=np.int64), np.array(c, dtype=np.int64), np.array(v))
        dense = m.to_dense()
        np.testing.assert_allclose(coo_to_csr(m).to_dense(), dense, atol=1e-12)
        np.testing.assert_allclose(coo_to_csc(m).to_dense(), dense, atol=1e-12)
