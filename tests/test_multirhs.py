"""Tests for the blocked multi-RHS distributed solve."""

import numpy as np
import pytest

from repro.gen import grid2d_laplacian, grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.machine import GENERIC_CLUSTER
from repro.ordering import nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization, simulate_solve
from repro.sparse.ops import sym_matvec_lower
from repro.symbolic import analyze
from repro.util.errors import ShapeError
from repro.util.rng import make_rng


def analyzed(lower):
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, nested_dissection_order(g))


@pytest.fixture(scope="module")
def factored():
    lower = grid3d_laplacian(4)
    sym = analyzed(lower)
    res = simulate_factorization(sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8))
    return lower, res


class TestMultiRHS:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_block_residuals(self, factored, k):
        lower, res = factored
        n = lower.shape[0]
        b = make_rng(k).standard_normal((n, k))
        sol = simulate_solve(res, b)
        assert sol.x.shape == (n, k)
        for j in range(k):
            r = np.max(np.abs(b[:, j] - sym_matvec_lower(lower, sol.x[:, j])))
            assert r < 1e-10

    def test_block_matches_column_solves(self, factored):
        lower, res = factored
        n = lower.shape[0]
        b = make_rng(9).standard_normal((n, 3))
        block = simulate_solve(res, b).x
        for j in range(3):
            single = simulate_solve(res, b[:, j]).x
            np.testing.assert_allclose(block[:, j], single, rtol=1e-12)

    def test_block_amortizes_time(self, factored):
        lower, res = factored
        n = lower.shape[0]
        b = make_rng(10).standard_normal((n, 8))
        t_block = simulate_solve(res, b).makespan
        t_single = simulate_solve(res, b[:, 0]).makespan
        # Eight RHS in one sweep must cost far less than eight sweeps.
        assert t_block < 4 * t_single

    def test_ldlt_multirhs(self):
        lower = grid2d_laplacian(6)
        sym = analyzed(lower)
        res = simulate_factorization(
            sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8), method="ldlt"
        )
        b = make_rng(11).standard_normal((36, 2))
        sol = simulate_solve(res, b)
        for j in range(2):
            r = np.max(np.abs(b[:, j] - sym_matvec_lower(lower, sol.x[:, j])))
            assert r < 1e-10

    def test_p1_multirhs(self):
        lower = grid2d_laplacian(5)
        sym = analyzed(lower)
        res = simulate_factorization(sym, 1, GENERIC_CLUSTER, PlanOptions(nb=8))
        b = make_rng(12).standard_normal((25, 4))
        sol = simulate_solve(res, b)
        assert sol.x.shape == (25, 4)

    def test_bad_shapes_rejected(self, factored):
        _, res = factored
        with pytest.raises(ShapeError):
            simulate_solve(res, np.ones(5))
        with pytest.raises(ShapeError):
            simulate_solve(res, np.ones((64, 2, 2)))
