"""Tests for graph compression ordering and the unstructured-mesh
generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SparseSolver
from repro.gen import elasticity3d, grid2d_laplacian, unstructured2d
from repro.graph import AdjacencyGraph, connected_components
from repro.ordering import (
    amd_order,
    compressed_order,
    compress_graph,
    compression_ratio,
    find_indistinguishable_groups,
    nested_dissection_order,
    ordering_quality,
)
from repro.sparse.ops import full_symmetric_from_lower
from repro.util.errors import ShapeError
from repro.util.rng import make_rng


class TestIndistinguishableGroups:
    def test_elasticity_compresses_3x(self):
        lower = elasticity3d(3, seed=1)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        ratio = compression_ratio(g)
        assert ratio == pytest.approx(3.0)

    def test_scalar_mesh_does_not_compress(self):
        g = AdjacencyGraph.from_symmetric_lower(grid2d_laplacian(5))
        assert compression_ratio(g) == pytest.approx(1.0)

    def test_groups_cover_all_vertices(self):
        lower = elasticity3d(2, seed=0)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        compressed, label, members = compress_graph(g)
        total = np.sort(np.concatenate(members))
        np.testing.assert_array_equal(total, np.arange(g.n))
        for s, grp in enumerate(members):
            assert np.all(label[grp] == s)

    def test_compressed_graph_structure(self):
        # Two twin vertices (same closed neighbourhood) collapse.
        g = AdjacencyGraph.from_edges(4, [0, 0, 1, 1, 0], [2, 3, 2, 3, 1])
        # vertices 0 and 1: adj {1,2,3}|{0,..} closed: {0,1,2,3} both.
        compressed, label, members = compress_graph(g)
        assert label[0] == label[1]
        assert compressed.n == 3


class TestCompressedOrder:
    def test_valid_permutation(self):
        lower = elasticity3d(3, seed=2)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        perm = compressed_order(g, nested_dissection_order)
        np.testing.assert_array_equal(np.sort(perm), np.arange(g.n))

    def test_group_members_consecutive(self):
        lower = elasticity3d(2, seed=3)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        label = find_indistinguishable_groups(g)
        perm = compressed_order(g, amd_order)
        # Scan the permutation: each group's members appear as a block.
        seen = {}
        for pos, v in enumerate(perm):
            lab = int(label[v])
            if lab in seen:
                assert pos == seen[lab] + 1, f"group {lab} not consecutive"
            seen[lab] = pos

    def test_quality_comparable_to_direct(self):
        lower = elasticity3d(4, seed=4)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        q_direct = ordering_quality(lower, nested_dissection_order(g))
        q_comp = ordering_quality(lower, compressed_order(g, nested_dissection_order))
        assert q_comp.factor_flops <= q_direct.factor_flops * 1.3

    def test_compression_speeds_up_ordering(self):
        import time

        lower = elasticity3d(5, seed=5)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        t0 = time.perf_counter()
        nested_dissection_order(g)
        direct = time.perf_counter() - t0
        t0 = time.perf_counter()
        compressed_order(g, nested_dissection_order)
        comp = time.perf_counter() - t0
        assert comp < direct  # 3x smaller ordering graph

    def test_fallback_when_incompressible(self):
        g = AdjacencyGraph.from_symmetric_lower(grid2d_laplacian(4))
        a = compressed_order(g, amd_order)
        b = amd_order(g)
        np.testing.assert_array_equal(a, b)

    def test_end_to_end_solve(self):
        lower = elasticity3d(3, seed=6)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        perm = compressed_order(g, nested_dissection_order)
        solver = SparseSolver(lower, ordering=perm)
        b = make_rng(1).standard_normal(lower.shape[0])
        assert solver.solve(b).residual < 1e-10


class TestUnstructured:
    def test_spd_small(self):
        lower = unstructured2d(60, seed=1)
        full = full_symmetric_from_lower(lower).to_dense()
        assert np.linalg.eigvalsh(full).min() > 0

    def test_deterministic(self):
        a = unstructured2d(50, seed=2).to_dense()
        b = unstructured2d(50, seed=2).to_dense()
        np.testing.assert_array_equal(a, b)

    def test_mostly_connected(self):
        lower = unstructured2d(300, seed=3)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        comp = connected_components(g)
        counts = np.bincount(comp)
        assert counts.max() > 0.9 * g.n

    def test_bounded_degree(self):
        lower = unstructured2d(400, seed=4)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        assert g.degrees().max() < 40

    def test_validation(self):
        with pytest.raises(ShapeError):
            unstructured2d(0)
        with pytest.raises(ShapeError):
            unstructured2d(10, radius_factor=0)

    def test_solves(self):
        lower = unstructured2d(200, seed=5)
        solver = SparseSolver(lower)
        b = make_rng(2).standard_normal(200)
        assert solver.solve(b).residual < 1e-10

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 120), st.integers(0, 1000))
    def test_property_spd_diag_dominant(self, n, seed):
        lower = unstructured2d(n, seed=seed)
        full = full_symmetric_from_lower(lower).to_dense()
        # strictly diagonally dominant by construction
        off = np.abs(full).sum(axis=1) - np.abs(np.diag(full))
        assert np.all(np.diag(full) >= off + 0.99)
