"""Refactorization + blocked multi-RHS under the *parallel* driver.

The single-RHS sequential refactor path was already covered; these tests
exercise the serving-layer workflow at the driver level: one analysis, many
numeric factorizations on the simulated machine, blocked (n, k) solves,
and structural-plan reuse across refactorizations."""

import numpy as np
import pytest

from repro.core import SparseSolver
from repro.gen import grid2d_laplacian, grid3d_laplacian
from repro.machine import GENERIC_CLUSTER
from repro.parallel import (
    FactorPlan,
    PlanOptions,
    simulate_factorization,
    simulate_solve,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import full_symmetric_from_lower, sym_matvec_lower
from repro.util.errors import ShapeError
from repro.util.rng import make_rng

pytestmark = pytest.mark.service


def scaled(lower, factor):
    return CSCMatrix(
        lower.shape, lower.indptr, lower.indices, lower.data * factor,
        _skip_check=True,
    )


def max_residual(lower, b, x):
    r = np.abs(b - np.column_stack(
        [sym_matvec_lower(lower, x[:, j]) for j in range(x.shape[1])]
    ))
    return float(np.max(r))


class TestParallelRefactorMultiRHS:
    @pytest.fixture(scope="class")
    def solver(self):
        s = SparseSolver(grid3d_laplacian(4))
        s.analyze()
        return s

    def test_refactor_then_parallel_multirhs(self, solver):
        """One analysis, two numeric value sets, blocked solves for both."""
        lower = solver.lower
        n = lower.shape[0]
        b = make_rng(21).standard_normal((n, 3))

        res1 = simulate_factorization(
            solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        x1 = simulate_solve(res1, b).x

        solver.update_values(scaled(lower, 2.0))
        res2 = simulate_factorization(
            solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        x2 = simulate_solve(res2, b).x

        assert max_residual(solver.lower, b, x2) < 1e-9
        # A x = b and (2A) y = b  =>  y = x / 2.
        np.testing.assert_allclose(x2, x1 / 2.0, rtol=1e-9)
        solver.update_values(lower)  # restore for other tests

    def test_plan_reuse_across_refactorizations(self, solver):
        """The structural plan survives numeric refactorization bit-for-bit."""
        plan = FactorPlan(solver.sym, 4, PlanOptions(nb=8))
        b = make_rng(22).standard_normal((solver.lower.shape[0], 2))

        fresh = simulate_factorization(
            solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8)
        )
        reused = simulate_factorization(
            solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8), plan=plan
        )
        assert reused.plan is plan
        np.testing.assert_array_equal(
            fresh.to_dense_l(), reused.to_dense_l()
        )

        solver.update_values(scaled(solver.lower, 3.0))
        refit = simulate_factorization(
            solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8), plan=plan
        )
        x = simulate_solve(refit, b).x
        assert max_residual(solver.lower, b, x) < 1e-9
        solver.update_values(scaled(solver.lower, 1.0 / 3.0))

    def test_mismatched_plan_rejected(self, solver):
        other = SparseSolver(grid2d_laplacian(4))
        other.analyze()
        plan = FactorPlan(other.sym, 4, PlanOptions(nb=8))
        with pytest.raises(ShapeError):
            simulate_factorization(
                solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8), plan=plan
            )
        plan_wrong_p = FactorPlan(solver.sym, 2, PlanOptions(nb=8))
        with pytest.raises(ShapeError):
            simulate_factorization(
                solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8),
                plan=plan_wrong_p,
            )

    def test_full_symmetric_refactor_parallel_ldlt(self):
        """Full-symmetric refactor input + LDLT on the parallel engine."""
        lower = grid2d_laplacian(6)
        solver = SparseSolver(lower, method="ldlt")
        solver.analyze()
        solver.update_values(full_symmetric_from_lower(scaled(lower, 1.5)))
        res = simulate_factorization(
            solver.sym, 4, GENERIC_CLUSTER, PlanOptions(nb=8), method="ldlt"
        )
        b = make_rng(23).standard_normal((36, 2))
        x = simulate_solve(res, b).x
        assert max_residual(solver.lower, b, x) < 1e-9
