"""Small-surface tests for corners not covered elsewhere."""

import pytest

from repro.machine import BLUEGENE_P, GENERIC_CLUSTER, MachineModel, Torus3D
from repro.mf.accounting import FactorStats
from repro.parallel import hybrid_configurations
from repro.parallel.plan import FactorPlan, PlanOptions
from repro.gen import grid2d_laplacian
from repro.graph import AdjacencyGraph
from repro.ordering import nested_dissection_order
from repro.symbolic import analyze
from repro.util.errors import ShapeError
from repro.util.tables import format_si


class TestHybridConfigurations:
    def test_bgp_64_cores(self):
        cfgs = hybrid_configurations(64, BLUEGENE_P)
        assert (64, 1) in cfgs
        assert (16, 4) in cfgs  # BG/P has 4 hw threads
        assert all(r * t == 64 for r, t in cfgs)

    def test_thread_cap_respected(self):
        cfgs = hybrid_configurations(32, BLUEGENE_P)
        assert max(t for _, t in cfgs) <= BLUEGENE_P.max_threads_per_rank

    def test_invalid_cores(self):
        with pytest.raises(ShapeError):
            hybrid_configurations(0, BLUEGENE_P)

    def test_single_core(self):
        assert hybrid_configurations(1, GENERIC_CLUSTER) == [(1, 1)]


class TestFactorStats:
    def test_mean_front_order(self):
        s = FactorStats()
        s.observe_front(10, 2, 100)
        s.observe_front(20, 4, 400)
        assert s.mean_front_order == 15.0
        assert s.max_front_order == 20
        assert s.flops == 500
        assert s.n_fronts == 2

    def test_empty_mean(self):
        assert FactorStats().mean_front_order == 0.0


class TestFormatSi:
    def test_tera(self):
        assert format_si(2.5e12, "flop") == "2.50 Tflop"

    def test_mega(self):
        assert format_si(3.2e6) == "3.20 M"

    def test_negative(self):
        assert format_si(-5e9, "B") == "-5.00 GB"


class TestTorusEdges:
    def test_single_rank(self):
        assert Torus3D().hops(0, 0, 1) == 0

    def test_prime_rank_count(self):
        t = Torus3D()
        # 7 ranks folds into 7x1x1; max wraparound distance is 3.
        assert t.hops(0, 3, 7) == 3
        assert t.hops(0, 4, 7) == 3


class TestPlanDescribe:
    def test_fields(self):
        lower = grid2d_laplacian(6)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        plan = FactorPlan(sym, 4, PlanOptions(nb=8))
        d = plan.describe()
        assert d["n_ranks"] == 4
        assert d["n_distributed"] + d["n_sequential"] == d["n_supernodes"]
        assert 1 <= d["max_group"] <= 4


class TestMachineCompare:
    def test_smp_speedup_floor(self):
        m = MachineModel(
            name="x",
            flop_rate=1e9,
            dense_efficiency=0.5,
            small_kernel_efficiency=0.1,
            kernel_crossover=10,
            mem_bandwidth=1e9,
            alpha=1e-6,
            alpha_hop=0.0,
            beta=1e-9,
            max_threads_per_rank=64,
            smp_efficiency_slope=0.5,
        )
        # Efficiency clamps at 0.1 per thread, never negative speedup.
        assert m.smp_speedup(64) > 0
