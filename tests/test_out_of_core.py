"""Tests for the out-of-core (bounded-memory) factorization mode."""

import numpy as np
import pytest

from repro.gen import grid3d_laplacian
from repro.graph import AdjacencyGraph
from repro.mf import factor_solve, multifrontal_factor
from repro.ordering import nested_dissection_order
from repro.sparse.ops import sym_matvec_lower
from repro.symbolic import analyze
from repro.util.errors import ShapeError
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def sym():
    lower = grid3d_laplacian(6)
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return lower, analyze(lower, nested_dissection_order(g))


class TestOutOfCore:
    def test_unlimited_no_spill(self, sym):
        _, s = sym
        factor = multifrontal_factor(s)
        assert factor.stats.spill_entries_written == 0
        assert factor.stats.spill_entries_read == 0

    def test_generous_cap_no_spill(self, sym):
        _, s = sym
        reference = multifrontal_factor(s)
        cap = reference.stats.peak_stack_entries + max(
            o * o for o in reference.stats.front_orders
        )
        factor = multifrontal_factor(s, memory_limit_entries=cap)
        assert factor.stats.spill_entries_written == 0

    def test_tight_cap_spills_and_stays_correct(self, sym):
        lower, s = sym
        reference = multifrontal_factor(s)
        max_front = max(o * o for o in reference.stats.front_orders)
        # Cap just above the largest front: everything else must spill.
        factor = multifrontal_factor(s, memory_limit_entries=max_front + 10)
        assert factor.stats.spill_entries_written > 0
        # Write volume equals read volume (every spill is reloaded once).
        assert (
            factor.stats.spill_entries_written
            == factor.stats.spill_entries_read
        )
        # Numerics identical to the in-core factorization.
        np.testing.assert_array_equal(
            factor.to_dense_l(), reference.to_dense_l()
        )
        # And the solve works.
        b = make_rng(3).standard_normal(s.n)
        x = factor_solve(factor, b)
        r = np.max(np.abs(b - sym_matvec_lower(lower, x)))
        assert r < 1e-10

    def test_impossible_cap_raises(self, sym):
        _, s = sym
        with pytest.raises(ShapeError, match="in-core limit"):
            multifrontal_factor(s, memory_limit_entries=4)

    def test_spill_volume_decreases_with_cap(self, sym):
        _, s = sym
        reference = multifrontal_factor(s)
        max_front = max(o * o for o in reference.stats.front_orders)
        tight = multifrontal_factor(s, memory_limit_entries=max_front + 10)
        loose = multifrontal_factor(
            s, memory_limit_entries=max_front + reference.stats.peak_stack_entries // 2
        )
        assert (
            loose.stats.spill_entries_written
            <= tight.stats.spill_entries_written
        )
