"""Tests for repro.exec: the real shared-memory execution backend.

The headline contract is the **bitwise oracle**: for any worker count,
the threads backend produces byte-for-byte the factors and solutions of
the sequential path. The rest covers the pool machinery itself —
dependency scheduling, exception propagation (drains cleanly, no
deadlock), cancellation, stall detection — and the task-graph builders.
"""

import numpy as np
import pytest

from repro.core.solver import SparseSolver
from repro.exec import (
    MAX_DEFAULT_WORKERS,
    TaskGraph,
    TaskPool,
    backward_solve_task_graph,
    default_workers,
    factor_task_graph,
    forward_contributions,
    forward_solve_task_graph,
    multifrontal_factor_threads,
    solve_many_threads,
    solve_threads,
)
from repro.gen import (
    elasticity3d,
    grid2d_anisotropic,
    grid2d_laplacian,
    grid3d_laplacian,
    random_spd_sparse,
    unstructured2d,
)
from repro.mf.numeric import multifrontal_factor
from repro.mf.solve_phase import solve, solve_many
from repro.util.errors import (
    ExecBackendError,
    NotPositiveDefiniteError,
    ShapeError,
)
from repro.util.rng import make_rng

pytestmark = pytest.mark.exec

WORKER_COUNTS = [1, 2, 4, 8]

#: SPD generator suite for identity checks (name -> lower triangle)
SUITE = {
    "grid2d": lambda: grid2d_laplacian(9),
    "grid3d": lambda: grid3d_laplacian(5),
    "aniso": lambda: grid2d_anisotropic(8),
    "elast": lambda: elasticity3d(3),
    "random": lambda: random_spd_sparse(160, avg_degree=6, seed=7),
    "unstructured": lambda: unstructured2d(120, seed=11),
}


def _analyzed(lower, method="cholesky"):
    solver = SparseSolver(lower, method=method)
    solver.analyze()
    return solver.sym


def _assert_factors_identical(ref, got):
    assert len(ref.blocks) == len(got.blocks)
    for s, (a, b) in enumerate(zip(ref.blocks, got.blocks)):
        assert a.tobytes() == b.tobytes(), f"block {s} differs"
    if ref.diag is None:
        assert got.diag is None
    else:
        assert ref.diag.tobytes() == got.diag.tobytes()
    assert ref.perturbed_columns == got.perturbed_columns
    assert ref.stats.flops == got.stats.flops
    assert ref.stats.factor_entries == got.stats.factor_entries
    assert ref.stats.front_orders == got.stats.front_orders


# -- bitwise identity ---------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SUITE))
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_factor_bitwise_identity(name, workers):
    lower = SUITE[name]()
    sym = _analyzed(lower)
    ref = multifrontal_factor(sym)
    got = multifrontal_factor_threads(sym, workers=workers)
    _assert_factors_identical(ref, got)
    assert got.exec_stats is not None
    assert got.exec_stats.completed == sym.n_supernodes
    assert got.exec_stats.workers == workers


@pytest.mark.parametrize("name", sorted(SUITE))
@pytest.mark.parametrize("workers", [1, 4])
def test_solve_bitwise_identity(name, workers):
    lower = SUITE[name]()
    sym = _analyzed(lower)
    factor = multifrontal_factor(sym)
    rng = make_rng(42)
    b1 = rng.standard_normal(sym.n)
    bp = rng.standard_normal((sym.n, 7))
    assert (
        solve_threads(factor, b1, workers=workers).tobytes()
        == solve(factor, b1).tobytes()
    )
    assert (
        solve_many_threads(factor, bp, workers=workers).tobytes()
        == solve_many(factor, bp).tobytes()
    )
    # One-column panel goes through the single-RHS dispatch, like solve_many.
    assert (
        solve_many_threads(factor, bp[:, :1], workers=workers).tobytes()
        == solve_many(factor, bp[:, :1]).tobytes()
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_ldlt_bitwise_identity(workers):
    lower = grid2d_laplacian(8)
    sym = _analyzed(lower, method="ldlt")
    ref = multifrontal_factor(sym, method="ldlt")
    got = multifrontal_factor_threads(sym, method="ldlt", workers=workers)
    _assert_factors_identical(ref, got)
    b = make_rng(3).standard_normal((sym.n, 4))
    assert (
        solve_many_threads(got, b, workers=workers).tobytes()
        == solve_many(ref, b).tobytes()
    )


def test_ldlt_perturbation_bitwise_identity():
    # Near-singular LDLᵀ: perturbed pivot columns must match exactly too.
    from repro.sparse.csc import CSCMatrix

    lower = grid2d_laplacian(7)
    data = lower.data.copy()
    for j in range(lower.shape[0]):
        k = lower.indptr[j]
        if lower.indices[k] == j:
            data[k] *= 1e-300  # crush one diagonal entry -> tiny pivot
            break
    tiny = CSCMatrix(lower.shape, lower.indptr, lower.indices, data)
    sym = _analyzed(tiny, method="ldlt")
    ref = multifrontal_factor(sym, method="ldlt", pivot_perturbation=1e-12)
    got = multifrontal_factor_threads(
        sym, method="ldlt", pivot_perturbation=1e-12, workers=4
    )
    assert ref.perturbed_columns, "fixture failed to trigger a perturbation"
    _assert_factors_identical(ref, got)


def test_repeated_runs_deterministic():
    sym = _analyzed(grid3d_laplacian(5))
    b = make_rng(0).standard_normal((sym.n, 3))
    baseline_factor = multifrontal_factor_threads(sym, workers=4)
    baseline_solve = solve_many_threads(baseline_factor, b, workers=4)
    for _ in range(3):
        f = multifrontal_factor_threads(sym, workers=4)
        _assert_factors_identical(baseline_factor, f)
        x = solve_many_threads(f, b, workers=4)
        assert x.tobytes() == baseline_solve.tobytes()


def test_solver_facade_backend():
    lower = grid3d_laplacian(5)
    s_seq = SparseSolver(lower)
    s_thr = SparseSolver(lower)
    s_seq.factor()
    s_thr.factor(backend="threads", workers=4)
    _assert_factors_identical(s_seq.numeric, s_thr.numeric)
    b = make_rng(9).standard_normal((lower.shape[0], 5))
    r_seq = s_seq.solve(b)
    r_thr = s_thr.solve(b, backend="threads", workers=4)
    assert r_seq.x.tobytes() == r_thr.x.tobytes()
    assert r_seq.residual == r_thr.residual
    assert r_seq.refinement_iterations == r_thr.refinement_iterations
    with pytest.raises(ShapeError):
        s_seq.factor(backend="gpu")
    with pytest.raises(ShapeError):
        s_seq.solve(b, backend="gpu")


# -- pool machinery -----------------------------------------------------------


def _chain_graph(n, label="chain"):
    """n tasks in a straight dependency line 0 -> 1 -> ... -> n-1."""
    dependents = [[t + 1] if t + 1 < n else [] for t in range(n)]
    n_deps = np.asarray([0] + [1] * (n - 1), dtype=np.int64)
    return TaskGraph(
        n_tasks=n,
        dependents=dependents,
        n_deps=n_deps,
        priority=np.zeros(n),
        label=label,
    )


def test_pool_runs_all_tasks_in_dependency_order():
    order = []
    pool = TaskPool(4)
    stats = pool.run(_chain_graph(20), lambda t: order.append(t))
    assert order == list(range(20))
    assert stats.completed == 20
    assert stats.n_tasks == 20


def test_pool_exception_propagates_and_drains():
    ran = []

    def boom(t):
        ran.append(t)
        if t == 3:
            raise NotPositiveDefiniteError("pivot -1 at column 3")

    pool = TaskPool(4)
    with pytest.raises(NotPositiveDefiniteError, match="column 3"):
        pool.run(_chain_graph(10), boom)
    # Tasks after the failing one never ran; the pool returned (no deadlock).
    assert max(ran) == 3
    # The pool is NOT shut down by a task failure: a later run works.
    out = []
    pool.run(_chain_graph(4, label="retry"), lambda t: out.append(t))
    assert out == [0, 1, 2, 3]


def test_pool_cancel_from_task():
    pool = TaskPool(2)
    seen = []

    def body(t):
        seen.append(t)
        if t == 2:
            pool.cancel()

    with pytest.raises(ExecBackendError, match="cancelled"):
        pool.run(_chain_graph(50), body)
    assert len(seen) < 50
    # cancel() is a permanent shutdown: further runs are refused.
    with pytest.raises(ExecBackendError, match="shut down"):
        pool.run(_chain_graph(2), lambda t: None)
    assert pool.cancelled


def test_pool_cancel_races_inflight_completion():
    # cancel() while a task body is mid-flight: the straggler finishes
    # *after* the shutdown, its completion bookkeeping must not resurrect
    # the run, and run() still reports the cancellation.
    import threading

    pool = TaskPool(2)
    release = threading.Event()
    started = threading.Event()

    def body(t):
        if t == 0:
            started.set()
            assert release.wait(timeout=10)

    outcome = []

    def runner():
        try:
            pool.run(_chain_graph(40), body)
            outcome.append(None)
        except ExecBackendError as exc:
            outcome.append(exc)

    th = threading.Thread(target=runner)
    th.start()
    assert started.wait(timeout=10)
    pool.cancel()  # task 0 is still in flight right now
    release.set()  # ... and only completes after the shutdown
    th.join(timeout=10)
    assert not th.is_alive()
    assert outcome and isinstance(outcome[0], ExecBackendError)
    assert "cancelled" in str(outcome[0])
    assert pool.cancelled
    with pytest.raises(ExecBackendError, match="shut down"):
        pool.run(_chain_graph(2), lambda t: None)


def test_pool_two_simultaneous_failures_propagate_one():
    # Two workers fail in the same drain: exactly one exception wins,
    # it propagates verbatim, and the pool stays usable afterwards.
    import threading

    barrier = threading.Barrier(2, timeout=10)
    graph = TaskGraph(
        n_tasks=4,
        dependents=[[1, 2], [3], [3], []],
        n_deps=np.asarray([0, 1, 1, 2], dtype=np.int64),
        priority=np.zeros(4),
        label="diamond",
    )

    def body(t):
        if t in (1, 2):
            barrier.wait()  # both failures are in flight together
            raise NotPositiveDefiniteError(f"pivot failed in task {t}")

    pool = TaskPool(2)
    with pytest.raises(NotPositiveDefiniteError, match="pivot failed"):
        pool.run(graph, body)
    # A task failure is not a shutdown: the pool accepts the next run.
    out = []
    pool.run(_chain_graph(3, label="after"), lambda t: out.append(t))
    assert out == [0, 1, 2]


def test_pool_stall_detection_on_cyclic_graph():
    # 0 and 1 depend on each other: no task is ever ready.
    graph = TaskGraph(
        n_tasks=2,
        dependents=[[1], [0]],
        n_deps=np.asarray([1, 1], dtype=np.int64),
        priority=np.zeros(2),
        label="cycle",
    )
    pool = TaskPool(2)
    with pytest.raises(ExecBackendError, match="stalled"):
        pool.run(graph, lambda t: None)


def test_pool_rejects_bad_worker_counts():
    with pytest.raises(ExecBackendError):
        TaskPool(0)
    with pytest.raises(ExecBackendError):
        TaskPool(-1)
    with pytest.raises(ExecBackendError):
        TaskPool(2.5)  # type: ignore[arg-type]


def test_default_workers_bounded():
    w = default_workers()
    assert 1 <= w <= MAX_DEFAULT_WORKERS


def test_factor_threads_validates_like_sequential():
    sym = _analyzed(grid2d_laplacian(4))
    with pytest.raises(ShapeError):
        multifrontal_factor_threads(sym, method="qr")
    with pytest.raises(ShapeError):
        multifrontal_factor_threads(sym, pivot_perturbation=1e-10)


def test_not_positive_definite_propagates_through_pool():
    lower = grid2d_laplacian(6)
    data = lower.data.copy()
    # Flip every diagonal entry negative: guaranteed indefinite.
    for j in range(lower.shape[0]):
        k = lower.indptr[j]
        if lower.indices[k] == j:
            data[k] = -abs(data[k])
    from repro.sparse.csc import CSCMatrix

    bad = CSCMatrix(lower.shape, lower.indptr, lower.indices, data)
    sym = _analyzed(bad)
    with pytest.raises(NotPositiveDefiniteError):
        multifrontal_factor_threads(sym, workers=4)


# -- task graphs --------------------------------------------------------------


def test_task_graphs_mirror_tree():
    sym = _analyzed(grid2d_laplacian(7))
    up = factor_task_graph(sym)
    fwd = forward_solve_task_graph(sym)
    bwd = backward_solve_task_graph(sym)
    assert up.n_tasks == fwd.n_tasks == bwd.n_tasks == sym.n_supernodes
    for s in range(sym.n_supernodes):
        p = int(sym.sn_parent[s])
        if p >= 0:
            assert p in up.dependents[s]
            assert p in fwd.dependents[s]
            assert s in bwd.dependents[p]
    # Up graphs: roots of the tree have no deps in bwd; leaves none in up.
    assert sum(1 for t in up.roots()) >= 1
    assert set(bwd.roots()) == {
        s for s in range(sym.n_supernodes) if sym.sn_parent[s] < 0
    }


def test_forward_contributions_cover_update_rows():
    sym = _analyzed(grid3d_laplacian(4))
    plan = forward_contributions(sym)
    sn_start = sym.partition.sn_start
    for s in range(sym.n_supernodes):
        w = sym.supernode_width(s)
        upd_rows = sym.sn_rows[s][w:]
        covered = np.concatenate(
            [upd_rows[r.lo: r.hi] for r in plan.outgoing[s]]
        ) if plan.outgoing[s] else np.empty(0, dtype=np.int64)
        assert np.array_equal(covered, upd_rows)
        for r in plan.outgoing[s]:
            # Every row of a run is owned by the run's target supernode.
            for row in upd_rows[r.lo: r.hi]:
                t = int(np.searchsorted(sn_start, row, side="right")) - 1
                assert t == r.target
    # Incoming lists are ascending by source (the sequential apply order).
    for t in range(sym.n_supernodes):
        srcs = [src for src, _, _ in plan.incoming[t]]
        assert srcs == sorted(srcs)


def test_task_graph_validates_shapes():
    with pytest.raises(ExecBackendError):
        TaskGraph(
            n_tasks=3,
            dependents=[[]],
            n_deps=np.zeros(3, dtype=np.int64),
            priority=np.zeros(3),
        )


# -- observability ------------------------------------------------------------


def test_exec_events_recorded_and_exported():
    from repro.obs import chrome_trace, recording, validate_chrome_trace
    from repro.obs.export import EXEC_PID

    lower = grid3d_laplacian(4)
    solver = SparseSolver(lower)
    with recording() as rec:
        solver.factor(backend="threads", workers=2)
        solver.solve(
            np.ones(lower.shape[0]), refine=False, backend="threads", workers=2
        )
    assert rec.exec_events, "worker task events missing"
    kinds = {e.name.split(":")[0] for e in rec.exec_events}
    assert kinds >= {"factor", "fwd", "bwd"}
    assert all(e.end >= e.start for e in rec.exec_events)
    assert {e.worker for e in rec.exec_events} <= {0, 1}
    obj = chrome_trace(rec)
    validate_chrome_trace(obj)
    rows = [
        e
        for e in obj["traceEvents"]
        if e["pid"] == EXEC_PID and e["ph"] == "X"
    ]
    assert len(rows) == len(rec.exec_events)


def test_pool_stats_publish():
    from repro.obs.metrics import MetricsRegistry

    sym = _analyzed(grid2d_laplacian(6))
    registry = MetricsRegistry()
    multifrontal_factor_threads(sym, workers=2, registry=registry)
    assert registry.counter_value("exec_tasks") == sym.n_supernodes
    assert registry.gauge_values()["exec_workers"] == 2.0
    assert "exec_queue_depth_peak" in registry.gauge_values()


# -- service degradation ladder ----------------------------------------------


def test_service_threads_backend_matches_seq():
    from repro.service import ServiceConfig, SolverService

    lower = grid2d_laplacian(8)
    b = make_rng(5).standard_normal(lower.shape[0])
    out = {}
    for backend in ("seq", "threads"):
        svc = SolverService(ServiceConfig(backend=backend, workers=3))
        jid = svc.submit(lower, b)
        svc.drain()
        res = svc.results[jid]
        assert res.status == "completed"
        out[backend] = res
    assert out["seq"].x.tobytes() == out["threads"].x.tobytes()


def test_service_falls_back_to_sequential_on_exec_error():
    from repro.service import ServiceConfig, SolverService

    lower = grid2d_laplacian(8)
    b = make_rng(5).standard_normal(lower.shape[0])
    # workers=0 makes the pool constructor raise ExecBackendError, so the
    # executor's ladder must degrade threads -> sequential and still answer.
    svc = SolverService(ServiceConfig(backend="threads", workers=0))
    jid = svc.submit(lower, b)
    svc.drain()
    res = svc.results[jid]
    assert res.status == "completed"
    assert res.degraded
    assert svc.metrics.counter("service_backend_fallback_total") == 1
    ref = SolverService(ServiceConfig())
    jid2 = ref.submit(lower, b)
    ref.drain()
    assert ref.results[jid2].x.tobytes() == res.x.tobytes()
