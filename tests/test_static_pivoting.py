"""Tests for LDLᵀ static pivot perturbation + refinement recovery."""

import numpy as np
import pytest

from repro.core import SparseSolver
from repro.dense.ldlt import ldlt_in_place
from repro.gen import grid2d_laplacian
from repro.mf import multifrontal_factor
from repro.sparse import CSCMatrix
from repro.symbolic import analyze
from repro.util.errors import ShapeError, SingularMatrixError


def nearly_singular_lower(eps=1e-16):
    """SPD-structured matrix with one pivot collapsing to ~eps."""
    d = np.array(
        [
            [4.0, 0.0, 0.0, -1.0],
            [0.0, eps, 0.0, 0.0],
            [0.0, 0.0, 3.0, 1.0],
            [-1.0, 0.0, 1.0, 5.0],
        ]
    )
    return CSCMatrix.from_dense(np.tril(d))


class TestDenseKernel:
    def test_perturbation_records_columns(self):
        a = np.diag([2.0, 1e-18, 3.0])
        hits: list[int] = []
        d = ldlt_in_place(a.copy(), perturb=1e-8, col_offset=10, perturbed=hits)
        assert hits == [11]
        assert abs(d[1]) == pytest.approx(1e-8)  # absolute threshold

    def test_no_perturbation_raises(self):
        a = np.diag([2.0, 1e-18, 3.0])
        with pytest.raises(SingularMatrixError):
            ldlt_in_place(a.copy())

    def test_perturbation_preserves_sign(self):
        a = np.diag([2.0, -1e-18, 3.0])
        hits: list[int] = []
        d = ldlt_in_place(a.copy(), perturb=1e-8, perturbed=hits)
        assert d[1] < 0

    def test_nan_still_raises(self):
        a = np.diag([2.0, np.nan, 3.0])
        with pytest.raises(SingularMatrixError):
            ldlt_in_place(a.copy(), perturb=1e-8)

    def test_healthy_pivots_untouched(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((6, 6))
        a = m @ m.T + 6 * np.eye(6)
        hits: list[int] = []
        d1 = ldlt_in_place(a.copy(), perturb=1e-10, perturbed=hits)
        d2 = ldlt_in_place(a.copy())
        assert hits == []
        np.testing.assert_array_equal(d1, d2)


class TestMultifrontalPath:
    def test_factor_records_perturbed_columns(self):
        lower = nearly_singular_lower()
        sym = analyze(lower, np.arange(4))
        factor = multifrontal_factor(sym, method="ldlt", pivot_perturbation=1e-8)
        assert len(factor.perturbed_columns) == 1

    def test_without_perturbation_raises(self):
        lower = nearly_singular_lower()
        sym = analyze(lower, np.arange(4))
        with pytest.raises(SingularMatrixError):
            multifrontal_factor(sym, method="ldlt")

    def test_perturbation_rejected_for_cholesky(self):
        lower = grid2d_laplacian(3)
        sym = analyze(lower, np.arange(9))
        with pytest.raises(ShapeError):
            multifrontal_factor(sym, method="cholesky", pivot_perturbation=1e-8)

    def test_clean_matrix_no_perturbations(self):
        lower = grid2d_laplacian(4)
        sym = analyze(lower, np.arange(16))
        factor = multifrontal_factor(sym, method="ldlt", pivot_perturbation=1e-12)
        assert factor.perturbed_columns == ()


class TestSolverRecovery:
    def test_refinement_recovers_marginal_pivot(self):
        """A pivot just *below* the perturbation threshold: the perturbed
        factor is a good preconditioner (|1 - d/d̂| < 1), so refinement
        converges back to the true solution. (A pivot orders of magnitude
        below the threshold is mathematically unrecoverable — static
        pivoting's documented limitation.)"""
        # scale = 5 -> threshold = 1e-6 * 5 = 5e-6; pivot 3e-6 is perturbed.
        lower = nearly_singular_lower(eps=3e-6)
        solver = SparseSolver(lower, method="ldlt", pivot_perturbation=1e-6)
        from repro.sparse.ops import sym_matvec_lower

        x_true = np.array([1.0, 2.0, -1.0, 0.5])
        b = sym_matvec_lower(lower, x_true)
        res = solver.solve(b, tol=1e-12)
        assert len(solver.numeric.perturbed_columns) == 1
        unrefined = solver.solve(b, refine=False)
        err_ref = np.max(np.abs(res.x - x_true))
        err_raw = np.max(np.abs(unrefined.x - x_true))
        assert err_ref < 0.05
        assert err_ref < err_raw / 10

    def test_solver_api_passthrough(self):
        solver = SparseSolver(
            nearly_singular_lower(), method="ldlt", pivot_perturbation=1e-8
        )
        solver.factor()
        assert len(solver.numeric.perturbed_columns) == 1
