"""Observability layer tests: spans, metrics, exporters, profiling, and
the timeline renderers in ``repro.analysis.tracing``."""

import json

import numpy as np
import pytest

from repro.analysis.tracing import ascii_gantt, rank_activity_table
from repro.core.solver import SparseSolver
from repro.gen import grid2d_laplacian
from repro.machine import get_machine
from repro.obs import export as obs_export
from repro.obs import spans as obs_spans
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    SampleHistogram,
)
from repro.obs.profile import (
    FrontProfile,
    gflops_comparison,
    render_gflops_comparison,
    render_top_fronts,
)
from repro.obs.spans import NULL_SPAN, SpanRecorder, recording, span
from repro.parallel import PlanOptions, simulate_factorization
from repro.simmpi.trace import Trace, TraceEvent
from repro.util.errors import ReproError

pytestmark = pytest.mark.obs


# -- spans -------------------------------------------------------------------


class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        assert obs_spans.current_recorder() is None
        s1 = span("anything", key=1)
        s2 = span("else")
        assert s1 is NULL_SPAN and s2 is NULL_SPAN
        with s1 as s:
            assert s.set(more=2) is NULL_SPAN

    def test_recording_collects_nested_spans(self):
        with recording() as rec:
            with span("outer", kind="test"):
                with span("inner") as sp:
                    sp.set(found=3)
            with span("outer"):
                pass
        assert [s.name for s in rec.spans] == ["inner", "outer", "outer"]
        inner = rec.by_name("inner")[0]
        outer_first = rec.by_name("outer")[0]
        assert inner.depth == 1
        assert inner.parent_id == outer_first.span_id
        assert outer_first.depth == 0 and outer_first.parent_id == -1
        assert inner.attrs == {"found": 3}
        assert outer_first.attrs == {"kind": "test"}
        assert inner.duration >= 0.0
        counts = rec.phase_totals()
        assert counts["outer"][0] == 2 and counts["inner"][0] == 1
        assert rec.total("outer") >= 0.0

    def test_recording_restores_previous_state(self):
        assert obs_spans.current_recorder() is None
        outer_rec = SpanRecorder()
        with recording(outer_rec):
            assert obs_spans.current_recorder() is outer_rec
            with recording() as inner_rec:
                assert obs_spans.current_recorder() is inner_rec
            assert obs_spans.current_recorder() is outer_rec
        assert obs_spans.current_recorder() is None
        assert not obs_spans.obs_enabled()

    def test_span_records_on_exception(self):
        with recording() as rec:
            with pytest.raises(ValueError):
                with span("failing"):
                    raise ValueError("boom")
        assert [s.name for s in rec.spans] == ["failing"]

    def test_solver_phases_recorded(self, small_spd_lower):
        lower, _ = small_spd_lower
        with recording() as rec:
            solver = SparseSolver(lower)
            solver.analyze()
            solver.factor()
            solver.solve(np.ones(lower.shape[0]))
        names = {s.name for s in rec.spans}
        assert {
            "solver.analyze",
            "solver.ordering",
            "solver.symbolic",
            "solver.factor",
            "mf.factor",
            "solver.solve",
        } <= names


# -- bit-identical results with obs on/off -----------------------------------


class TestNoBehaviorChange:
    def test_factor_bits_identical_with_obs_on(self, small_spd_lower):
        lower, _ = small_spd_lower
        s_off = SparseSolver(lower)
        s_off.analyze()
        s_off.factor()
        with recording():
            s_on = SparseSolver(lower)
            s_on.analyze()
            s_on.factor()
        for b_off, b_on in zip(s_off.numeric.blocks, s_on.numeric.blocks):
            assert np.array_equal(b_off, b_on)


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.inc("jobs")
        reg.inc("jobs", 2)
        reg.gauge("depth").set(5)
        reg.gauge("depth").dec(2)
        assert reg.counter_value("jobs") == 3
        assert reg.counter_value("missing") == 0
        assert reg.gauge_values() == {"depth": 3.0}
        with pytest.raises(ValueError):
            reg.counter("jobs").inc(-1)

    def test_histogram_buckets(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap.counts == (1, 2, 1, 1)
        assert snap.cumulative() == (1, 3, 4, 5)
        assert snap.count == 5
        assert snap.sum == pytest.approx(56.05)
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.5))

    def test_snapshot_delta(self):
        reg = MetricsRegistry()
        reg.inc("jobs", 2)
        reg.observe("wait", 0.5)
        before = reg.snapshot()
        reg.inc("jobs", 3)
        reg.gauge("depth").set(7)
        reg.observe("wait", 0.7)
        delta = reg.snapshot().delta(before)
        assert delta.counters["jobs"] == 3
        assert delta.gauges["depth"] == 7.0
        assert delta.histograms["wait"].count == 1

    def test_sample_histogram_summary(self):
        sh = SampleHistogram()
        for v in (3.0, 1.0, 2.0):
            sh.observe(v)
        summ = sh.summary()
        assert summ.count == 3
        assert summ.min == 1.0 and summ.max == 3.0
        assert summ.sorted_samples == (1.0, 2.0, 3.0)

    def test_report_renders(self):
        reg = MetricsRegistry()
        reg.inc("jobs")
        reg.observe("wait", 0.2)
        text = reg.report()
        assert "jobs" in text and "wait" in text and "histogram" in text

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.inc("jobs_total", 4)
        reg.gauge("queue_depth").set(2)
        reg.observe("wait_seconds", 0.002)
        text = obs_export.prometheus_text(reg)
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 4" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert '# TYPE repro_wait_seconds histogram' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_wait_seconds_count 1" in text
        # one bucket line per upper bound plus +Inf
        n_buckets = text.count("repro_wait_seconds_bucket")
        assert n_buckets == len(DEFAULT_LATENCY_BUCKETS) + 1


# -- service metrics shim ----------------------------------------------------


class TestServiceMetricsShim:
    def test_shim_backed_by_registry(self):
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics()
        m.inc("jobs_submitted", 2)
        m.observe("queue_wait", 0.01)
        assert m.counter("jobs_submitted") == 2
        assert m.counters == {"jobs_submitted": 2}
        assert m.registry.counter_value("jobs_submitted") == 2
        assert m.registry.histograms()["queue_wait"].count == 1
        assert m.summaries()["queue_wait"].count == 1
        assert "jobs_submitted" in m.report()
        # the registry view is Prometheus-exportable
        assert "queue_wait" in obs_export.prometheus_text(m.registry)


# -- profiling ---------------------------------------------------------------


class TestProfile:
    def test_numeric_factor_profiles_every_front(self, small_spd_lower):
        lower, _ = small_spd_lower
        with recording() as rec:
            solver = SparseSolver(lower)
            solver.analyze()
            solver.factor()
        prof = rec.profile
        assert len(prof.host) == solver.sym.n_supernodes
        assert prof.total_flops > 0
        assert prof.total_bytes > 0
        assert all(r.seconds >= 0 for r in prof.host)
        top = prof.top_fronts(3)
        assert len(top) == min(3, len(prof.host))
        assert top == sorted(
            prof.host, key=lambda r: (r.seconds, r.flops), reverse=True
        )[:3]

    def test_sim_flops_recorded_per_supernode(self, small_spd_lower):
        lower, _ = small_spd_lower
        solver = SparseSolver(lower)
        solver.analyze()
        with recording() as rec:
            fres = simulate_factorization(
                solver.sym, 2, get_machine("generic-cluster")
            )
        assert rec.profile.sim_flops
        assert sum(rec.profile.sim_flops.values()) == pytest.approx(
            fres.total_flops
        )

    def test_gflops_comparison_tables(self):
        prof = FrontProfile()
        prof.observe_front(0, 32, 8, 10_000, 1e-4)
        prof.observe_front(1, 16, 4, 2_000, 5e-5)
        machine = get_machine("generic-cluster")
        rows = gflops_comparison(prof, machine, k=2)
        assert rows[-1]["supernode"] == -1  # overall row
        assert all(r["modeled_gflops"] > 0 for r in rows)
        text = render_top_fronts(prof, 2)
        assert "hottest fronts" in text
        text2 = render_gflops_comparison(prof, machine, k=2)
        assert "measured vs modeled" in text2


# -- chrome trace exporter ---------------------------------------------------


class TestChromeTrace:
    def _observed_sim(self, small_spd_lower, n_ranks=3):
        lower, _ = small_spd_lower
        solver = SparseSolver(lower)
        with recording() as rec:
            solver.analyze()
            solver.factor()
            fres = simulate_factorization(
                solver.sym,
                n_ranks,
                get_machine("generic-cluster"),
                PlanOptions(nb=8),
                trace=True,
            )
        return rec, fres

    def test_merged_trace_valid_and_complete(self, small_spd_lower, tmp_path):
        n_ranks = 3
        rec, fres = self._observed_sim(small_spd_lower, n_ranks)
        path = str(tmp_path / "trace.json")
        obj = obs_export.write_chrome_trace(
            path, recorder=rec, sim_trace=fres.sim.trace
        )
        # round-trip through the file: valid JSON and structurally clean
        loaded = obs_export.validate_chrome_trace_file(path)
        assert loaded == json.loads(json.dumps(obj))
        events = loaded["traceEvents"]
        assert obs_export.validate_trace_events(events) == []
        # monotone timestamps
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        # all simulated ranks present as threads of the sim process
        sim_tids = {
            e["tid"]
            for e in events
            if e["pid"] == obs_export.SIM_PID and e["ph"] == "X"
        }
        assert sim_tids == set(range(n_ranks))
        # host spans present under the host process
        host_names = {
            e["name"]
            for e in events
            if e["pid"] == obs_export.HOST_PID and e["ph"] == "X"
        }
        assert "solver.analyze" in host_names
        assert "parallel.factor_sim" in host_names

    def test_comm_instant_events(self, small_spd_lower):
        rec, fres = self._observed_sim(small_spd_lower)
        events = obs_export.chrome_trace_events(
            recorder=rec, sim_trace=fres.sim.trace, include_comm=True
        )
        assert any(e["ph"] == "i" for e in events)
        assert obs_export.validate_trace_events(events) == []

    def test_validation_rejects_garbage(self, tmp_path):
        assert obs_export.validate_trace_events("nope")
        assert obs_export.validate_trace_events([{"name": "x"}])
        bad = [
            {"name": "a", "ph": "X", "ts": 5.0, "dur": 1.0, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 1.0, "dur": 1.0, "pid": 0, "tid": 0},
        ]
        problems = obs_export.validate_trace_events(bad)
        assert any("monotone" in p for p in problems)
        with pytest.raises(ReproError):
            obs_export.validate_chrome_trace({"no": "events"})
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ReproError):
            obs_export.validate_chrome_trace_file(str(p))

    def test_report_combines_sections(self, small_spd_lower):
        rec, _ = self._observed_sim(small_spd_lower)
        reg = MetricsRegistry()
        reg.inc("runs")
        text = obs_export.report(
            rec, reg, get_machine("generic-cluster"), top_fronts=3
        )
        assert "host phases" in text
        assert "runs" in text
        assert "hottest fronts" in text
        assert "measured vs modeled" in text
        assert obs_export.report() == "(nothing recorded)"


# -- timeline renderers (repro.analysis.tracing) -----------------------------


def _toy_trace() -> Trace:
    t = Trace()
    t.add(0, "compute", 0.0, 0.6, detail=100.0)
    t.add(0, "send", 0.6, 0.7)
    t.add(1, "wait", 0.0, 0.5)
    t.add(1, "compute", 0.5, 1.0)
    return t


class TestTimelineRendering:
    def test_rank_activity_table(self):
        table = rank_activity_table(_toy_trace(), 2)
        lines = table.splitlines()
        assert "rank" in lines[0]
        r0 = lines[2].split("|")
        assert float(r0[1]) == pytest.approx(600.0)  # compute ms
        assert float(r0[2]) == pytest.approx(100.0)  # send ms
        assert float(r0[4]) == pytest.approx(100.0)  # busy %
        r1 = lines[3].split("|")
        assert float(r1[3]) == pytest.approx(500.0)  # wait ms
        assert float(r1[4]) == pytest.approx(50.0)

    def test_ascii_gantt_renders_kinds(self):
        art = ascii_gantt(_toy_trace(), 2, width=10)
        rows = art.splitlines()
        assert rows[1].startswith("r0")
        assert "#" in rows[1] and ">" in rows[1]
        assert "." in rows[2] and "#" in rows[2]
        assert ascii_gantt(Trace(), 2) == "(empty trace)"

    def test_ascii_gantt_zero_duration_event_at_trace_end(self):
        # Regression: an instantaneous event exactly at the trace end used
        # to land in bucket `width` and silently vanish. Trace.add drops
        # zero-duration events, so append directly.
        t = Trace()
        t.add(0, "compute", 0.0, 1.0)
        t.events.append(TraceEvent(rank=1, kind="send", start=1.0, end=1.0))
        art = ascii_gantt(t, 2, width=8)
        r1 = art.splitlines()[2]
        assert r1.startswith("r1")
        assert ">" in r1  # the event is rendered, clamped into the last column
        assert r1.rstrip().endswith(">")


# -- CLI ---------------------------------------------------------------------


class TestObsCli:
    def test_cli_obs_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "trace.json")
        prom_path = str(tmp_path / "metrics.prom")
        rc = main(
            [
                "obs",
                "--mesh",
                "plate:6",
                "--ranks",
                "2",
                "--trace-out",
                trace_path,
                "--metrics",
                "--top-fronts",
                "3",
                "--prom-out",
                prom_path,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "host phases" in out
        assert "metrics" in out
        assert "hottest fronts" in out
        assert "measured vs modeled" in out
        assert "host residual" in out
        obj = obs_export.validate_chrome_trace_file(trace_path)
        assert any(
            e["pid"] == obs_export.SIM_PID for e in obj["traceEvents"]
        )
        assert "# TYPE" in (tmp_path / "metrics.prom").read_text()

    def test_cli_obs_leaves_recorder_uninstalled(self):
        from repro.cli import main

        main(["obs", "--mesh", "plate:4", "--ranks", "2"])
        assert obs_spans.current_recorder() is None


# -- grid fixture sanity (the matrix obs examples run on) --------------------


def test_plate_mesh_is_spd_seed():
    lower = grid2d_laplacian(6)
    assert lower.shape[0] == 36
