"""Tests for the serving layer (`repro.service`): fingerprints, the
analysis cache, the queue/dispatch loop, and the executor's resilience
(retry, degradation, timeout)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ParallelConfig, SparseSolver
from repro.gen import grid2d_laplacian, grid3d_laplacian, random_spd_sparse
from repro.machine import GENERIC_CLUSTER
from repro.service import (
    EXPIRED,
    FAILED,
    TIMED_OUT,
    AnalysisCache,
    AnalysisEntry,
    ServiceConfig,
    SolverService,
    pattern_fingerprint,
    values_digest,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import full_symmetric_from_lower
from repro.util.errors import PatternMismatchError, ReproError, ShapeError
from repro.util.rng import make_rng

pytestmark = pytest.mark.service


def with_values(lower, data):
    return CSCMatrix(lower.shape, lower.indptr, lower.indices, data, _skip_check=True)


class FakeClock:
    """Deterministic service clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


class TestFingerprint:
    def test_lower_and_full_symmetric_agree(self):
        lower = grid2d_laplacian(5)
        full = full_symmetric_from_lower(lower)
        assert pattern_fingerprint(lower) == pattern_fingerprint(full)

    def test_distinct_patterns_differ(self):
        fp1 = pattern_fingerprint(grid2d_laplacian(5))
        fp2 = pattern_fingerprint(grid3d_laplacian(3))
        fp3 = pattern_fingerprint(random_spd_sparse(25, seed=3))
        assert len({fp1.digest, fp2.digest, fp3.digest}) == 3

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), scale=st.floats(0.1, 100.0))
    def test_invariant_under_value_changes(self, seed, scale):
        lower = grid2d_laplacian(4)
        rng = make_rng(seed)
        other = with_values(
            lower, lower.data * scale + rng.standard_normal(lower.nnz) ** 2 * 0
        )
        randomized = with_values(lower, rng.random(lower.nnz) + 0.5)
        fp = pattern_fingerprint(lower)
        assert pattern_fingerprint(other) == fp
        assert pattern_fingerprint(randomized) == fp

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_not_invariant_under_permutation(self, seed):
        """Documented contract: P A P^T is a *different* pattern (its
        analysis differs), so permuted copies must miss the cache."""
        from repro.sparse.permute import permute_symmetric_lower

        lower = grid2d_laplacian(4)
        perm = make_rng(seed).permutation(lower.shape[0])
        permuted = permute_symmetric_lower(lower, perm)
        fp, fpp = pattern_fingerprint(lower), pattern_fingerprint(permuted)
        if np.array_equal(permuted.indptr, lower.indptr) and np.array_equal(
            permuted.indices, lower.indices
        ):
            assert fp == fpp  # permutation fixed the structure: same key
        else:
            assert fp.digest != fpp.digest

    def test_values_digest_tracks_values(self):
        lower = grid2d_laplacian(4)
        assert values_digest(lower) == values_digest(lower.copy())
        assert values_digest(lower) != values_digest(
            with_values(lower, lower.data * 2.0)
        )


class TestAnalysisCache:
    def entry(self, size):
        lower = random_spd_sparse(size, seed=size)
        solver = SparseSolver(lower, ordering="amd")
        solver.analyze()
        return AnalysisEntry(
            fingerprint=pattern_fingerprint(lower), solver=solver
        )

    def test_hit_miss_eviction_stats(self):
        cache = AnalysisCache(capacity=2)
        e1, e2, e3 = (self.entry(s) for s in (16, 20, 24))
        assert cache.get(e1.fingerprint) is None
        cache.put(e1)
        cache.put(e2)
        assert cache.get(e1.fingerprint) is e1
        cache.put(e3)  # evicts e2 (e1 was refreshed by the hit)
        assert len(cache) == 2
        assert cache.get(e2.fingerprint) is None
        assert cache.get(e3.fingerprint) is e3
        s = cache.stats
        assert (s.hits, s.misses, s.inserts, s.evictions) == (2, 2, 3, 1)
        assert 0 < s.hit_rate < 1

    def test_capacity_validation(self):
        with pytest.raises(ShapeError):
            AnalysisCache(capacity=0)


class TestJobQueue:
    def submit_n(self, service, lower, k):
        n = lower.shape[0]
        rng = make_rng(k)
        return [
            service.submit(lower, rng.standard_normal(n)) for _ in range(k)
        ]

    def test_priority_order(self):
        svc = SolverService()
        a, b_mat = grid2d_laplacian(4), grid2d_laplacian(5)
        ones_a, ones_b = np.ones(16), np.ones(25)
        svc.submit(a, ones_a, priority=5)
        svc.submit(b_mat, ones_b, priority=0)
        batch = svc.queue.pop_batch()
        assert batch[0].priority == 0

    def test_coalesces_same_pattern_and_values(self):
        svc = SolverService()
        lower = grid2d_laplacian(4)
        self.submit_n(svc, lower, 3)
        svc.submit(with_values(lower, lower.data * 2.0), np.ones(16))
        batch = svc.queue.pop_batch()
        assert len(batch) == 3  # same values coalesce; scaled copy doesn't
        assert len(svc.queue) == 1

    def test_max_rhs_bound(self):
        svc = SolverService()
        lower = grid2d_laplacian(4)
        self.submit_n(svc, lower, 5)
        batch = svc.queue.pop_batch(max_rhs=3)
        assert sum(j.n_rhs for j in batch) == 3

    def test_no_coalesce_mode(self):
        svc = SolverService(ServiceConfig(coalesce=False))
        lower = grid2d_laplacian(4)
        self.submit_n(svc, lower, 3)
        assert len(svc.queue.pop_batch(coalesce=False)) == 1

    def test_max_rhs_keeps_fifo_order(self):
        """Regression: a same-key job that does not fit the max_rhs budget
        closes the key — later-submitted same-key jobs must wait behind it
        instead of jumping the queue into the current batch."""
        svc = SolverService()
        lower = grid2d_laplacian(4)
        j0 = svc.submit(lower, np.ones((16, 2)))
        j1 = svc.submit(lower, np.ones((16, 3)))  # overflows the budget
        j2 = svc.submit(lower, np.ones(16))  # would fit, but is behind j1
        first = svc.queue.pop_batch(max_rhs=4)
        assert [j.job_id for j in first] == [j0]
        # The next batch starts with the job that was bumped, in order.
        second = svc.queue.pop_batch(max_rhs=4)
        assert [j.job_id for j in second] == [j1, j2]


class TestServiceSolve:
    def test_matches_direct_solver(self):
        lower = grid3d_laplacian(3)
        b = make_rng(0).standard_normal(27)
        res = SolverService().solve(lower, b)
        assert res.ok and res.residual < 1e-10
        ref = SparseSolver(lower).solve(b, refine=False).x
        np.testing.assert_array_equal(res.x, ref)

    def test_cached_path_bitwise_identical_to_cold(self):
        lower = grid2d_laplacian(6)
        b = make_rng(1).standard_normal(36)
        drift = with_values(lower, lower.data * 1.7)

        warm = SolverService()
        warm.solve(lower, b)  # populate the cache
        hit = warm.solve(drift, b)
        assert hit.cache_hit

        cold = SolverService(ServiceConfig(cache_enabled=False)).solve(drift, b)
        assert not cold.cache_hit
        np.testing.assert_array_equal(hit.x, cold.x)

    def test_coalesced_batch_matches_individual_solves(self):
        lower = grid2d_laplacian(5)
        n = lower.shape[0]
        rng = make_rng(2)
        bs = [rng.standard_normal(n) for _ in range(3)]
        svc = SolverService()
        ids = [svc.submit(lower, b) for b in bs]
        out = svc.drain()
        assert all(out[i].batched_rhs == 3 for i in ids)
        assert svc.metrics.counter("coalesced_jobs") == 2
        for i, b in zip(ids, bs):
            single = SolverService().solve(lower, b)
            np.testing.assert_array_equal(out[i].x, single.x)

    def test_multi_rhs_job_shape(self):
        lower = grid2d_laplacian(4)
        b = make_rng(3).standard_normal((16, 4))
        res = SolverService().solve(lower, b)
        assert res.ok and res.x.shape == (16, 4)

    def test_full_symmetric_input(self):
        lower = grid2d_laplacian(4)
        res = SolverService().solve(
            full_symmetric_from_lower(lower), np.ones(16)
        )
        assert res.ok and res.residual < 1e-10

    def test_bad_rhs_shape(self):
        with pytest.raises(ShapeError):
            SolverService().submit(grid2d_laplacian(4), np.ones(9))

    def test_deadline_expiry(self):
        clock = FakeClock(step=10.0)
        svc = SolverService(clock=clock, sleep=lambda s: None)
        jid = svc.submit(grid2d_laplacian(4), np.ones(16), deadline=5.0)
        out = svc.drain()
        assert out[jid].status == EXPIRED
        assert svc.metrics.counter("jobs_expired") == 1

    def test_metrics_report_text(self):
        svc = SolverService()
        svc.solve(grid2d_laplacian(4), np.ones(16))
        report = svc.metrics_report()
        for token in ("service counters", "analysis cache", "phase latency",
                      "jobs_completed", "hit rate"):
            assert token in report


def flaky(real, failures, exc):
    """Wrap *real* to raise *exc* for the first *failures* calls."""
    state = {"left": failures}

    def wrapper(*args, **kwargs):
        if state["left"] > 0:
            state["left"] -= 1
            raise exc
        return real(*args, **kwargs)

    return wrapper


class TestResilience:
    def test_transient_failure_retried(self, monkeypatch):
        import repro.core.solver as core_solver

        real = core_solver.multifrontal_factor
        monkeypatch.setattr(
            core_solver,
            "multifrontal_factor",
            flaky(real, 2, ReproError("injected numeric failure")),
        )
        svc = SolverService(
            ServiceConfig(max_retries=2), sleep=lambda s: None
        )
        res = svc.solve(grid2d_laplacian(4), np.ones(16))
        assert res.ok and res.retries == 2
        assert svc.metrics.counter("retries") == 2
        assert "retries" in svc.metrics_report()

    def test_retry_limit_exhausted(self, monkeypatch):
        import repro.core.solver as core_solver

        monkeypatch.setattr(
            core_solver,
            "multifrontal_factor",
            flaky(core_solver.multifrontal_factor, 99, ReproError("down")),
        )
        svc = SolverService(
            ServiceConfig(max_retries=1), sleep=lambda s: None
        )
        res = svc.solve(grid2d_laplacian(4), np.ones(16))
        assert res.status == FAILED
        assert res.retries == 1
        assert "down" in res.error

    def test_parallel_failure_degrades_to_sequential(self, monkeypatch):
        import repro.service.executor as executor_mod

        def boom(*args, **kwargs):
            raise ReproError("injected parallel plan failure")

        monkeypatch.setattr(executor_mod, "simulate_factorization", boom)
        svc = SolverService(
            ServiceConfig(
                parallel=ParallelConfig(
                    n_ranks=4, machine=GENERIC_CLUSTER, nb=8
                )
            ),
            sleep=lambda s: None,
        )
        res = svc.solve(grid3d_laplacian(3), np.ones(27))
        assert res.ok and res.degraded
        assert res.residual < 1e-10
        assert svc.metrics.counter("degradations") == 1
        assert "degradations" in svc.metrics_report()

    def test_timeout_between_retries(self, monkeypatch):
        import repro.core.solver as core_solver

        monkeypatch.setattr(
            core_solver,
            "multifrontal_factor",
            flaky(core_solver.multifrontal_factor, 99, ReproError("slow")),
        )
        svc = SolverService(
            ServiceConfig(max_retries=10),
            clock=FakeClock(step=3.0),
            sleep=lambda s: None,
        )
        res = svc.solve(grid2d_laplacian(4), np.ones(16), timeout=5.0)
        assert res.status == TIMED_OUT
        assert res.retries < 10  # budget cut the retry loop short

    def test_timeout_status_tracks_each_jobs_own_budget(self, monkeypatch):
        """In a coalesced batch, only jobs whose *own* timeout elapsed are
        TIMED_OUT; neighbors fail with the underlying error instead."""
        import repro.core.solver as core_solver

        monkeypatch.setattr(
            core_solver,
            "multifrontal_factor",
            flaky(core_solver.multifrontal_factor, 99, ReproError("bad pivot")),
        )
        svc = SolverService(
            ServiceConfig(max_retries=10),
            clock=FakeClock(step=3.0),
            sleep=lambda s: None,
        )
        lower = grid2d_laplacian(4)
        j_timed = svc.submit(lower, np.ones(16), timeout=5.0)
        j_neighbor = svc.submit(lower, np.ones(16))  # no budget of its own
        out = svc.drain()
        assert out[j_timed].status == TIMED_OUT
        assert out[j_neighbor].status == FAILED
        assert "bad pivot" in out[j_neighbor].error

    def test_over_budget_batch_fails_fast_without_backoff(self, monkeypatch):
        """The budget check runs *before* the backoff sleep: a batch whose
        budget is already spent never burns a sleep."""
        import repro.core.solver as core_solver

        monkeypatch.setattr(
            core_solver,
            "multifrontal_factor",
            flaky(core_solver.multifrontal_factor, 99, ReproError("slow")),
        )
        sleeps = []
        svc = SolverService(
            ServiceConfig(max_retries=10),
            clock=FakeClock(step=10.0),
            sleep=sleeps.append,
        )
        res = svc.solve(grid2d_laplacian(4), np.ones(16), timeout=5.0)
        assert res.status == TIMED_OUT
        assert res.retries == 0
        assert sleeps == []  # budget was gone before the first backoff

    def test_backoff_park_capped_at_remaining_budget(self, monkeypatch):
        """The retry is parked (not slept inline) and the backoff delay is
        clipped so the park never outlives the job's wall budget.

        Clock trace (step=1): the first attempt starts at t=3 and fails at
        elapsed 1 s, so the 100 s backoff clips to the 4 s of budget left
        and the batch parks until t=8 — exactly start + budget. The idle
        drain sleeps only to the wake (3 s, from t=5), and the re-dispatch
        finds the budget exhausted: timed out after one retry.
        """
        import repro.core.solver as core_solver

        monkeypatch.setattr(
            core_solver,
            "multifrontal_factor",
            flaky(core_solver.multifrontal_factor, 99, ReproError("slow")),
        )
        sleeps = []
        svc = SolverService(
            ServiceConfig(max_retries=10, retry_backoff=100.0),
            clock=FakeClock(step=1.0),
            sleep=sleeps.append,
        )
        res = svc.solve(grid2d_laplacian(4), np.ones(16), timeout=5.0)
        assert res.status == TIMED_OUT
        assert res.retries == 1
        assert svc.metrics.counter("retries") == 1
        assert sleeps == [3.0]  # park wake at start+budget, not +100 s


class TestParallelService:
    def test_parallel_path_and_plan_reuse(self):
        cfg = ServiceConfig(
            parallel=ParallelConfig(n_ranks=4, machine=GENERIC_CLUSTER, nb=8)
        )
        svc = SolverService(cfg)
        lower = grid3d_laplacian(4)
        b = make_rng(5).standard_normal((64, 3))
        first = svc.solve(lower, b)
        assert first.ok and first.residual < 1e-9
        assert "plan" in first.timings

        drift = with_values(lower, lower.data * 3.0)
        second = svc.solve(drift, b)
        assert second.ok and second.cache_hit
        # Cached hit skips ordering + symbolic + plan construction.
        assert "analyze" not in second.timings
        assert "plan" not in second.timings
        np.testing.assert_allclose(second.x, first.x / 3.0, rtol=1e-10)


class TestRefactorErgonomics:
    def test_refactor_accepts_full_symmetric(self):
        lower = grid2d_laplacian(5)
        solver = SparseSolver(lower)
        b = make_rng(6).standard_normal(25)
        x1 = solver.solve(b).x
        full2 = full_symmetric_from_lower(with_values(lower, lower.data * 2.0))
        solver.refactor(full2)
        np.testing.assert_allclose(solver.solve(b).x, x1 / 2, rtol=1e-10)

    def test_pattern_mismatch_is_typed(self):
        solver = SparseSolver(grid2d_laplacian(4))
        solver.analyze()
        with pytest.raises(PatternMismatchError):
            solver.refactor(random_spd_sparse(16, seed=1))
        with pytest.raises(PatternMismatchError):
            solver.refactor(grid3d_laplacian(2))

    def test_pattern_mismatch_subclasses_shape_error(self):
        # Backward compatibility: existing callers catching ShapeError keep
        # working; the service distinguishes the mismatch specifically.
        assert issubclass(PatternMismatchError, ShapeError)

    def test_update_values_invalidates_numeric(self):
        lower = grid2d_laplacian(4)
        solver = SparseSolver(lower)
        solver.factor()
        solver.update_values(with_values(lower, lower.data * 2.0))
        assert solver.numeric is None
        assert solver.sym is not None
