"""Bitwise-identity tests for the blocked multi-RHS solve path.

The contract (module docstring of :mod:`repro.mf.solve_phase`): every
column of a blocked solve — and of blocked iterative refinement — is
bitwise identical to running that column through the single-RHS path.
These tests pin the contract for both factorization methods, several
panel widths, the refinement loop, the symmetric matvec, and the
:class:`~repro.core.solver.SparseSolver` entry point.
"""

import numpy as np
import pytest

from repro.core.solver import SparseSolver
from repro.gen import grid2d_laplacian, grid3d_laplacian, random_spd_sparse
from repro.graph import AdjacencyGraph
from repro.mf import (
    iterative_refinement,
    iterative_refinement_many,
    multifrontal_factor,
)
from repro.mf.solve_phase import solve, solve_many
from repro.ordering import amd_order
from repro.sparse.ops import sym_matvec_lower, sym_matvec_lower_many
from repro.symbolic import analyze
from repro.util.errors import ShapeError
from repro.util.rng import make_rng

KS = [1, 3, 16]

MATRICES = {
    "grid2d_6": lambda: grid2d_laplacian(6),
    "grid3d_4": lambda: grid3d_laplacian(4),
    "random_50": lambda: random_spd_sparse(50, avg_degree=6, seed=2),
}


def analyzed(lower):
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, amd_order(g))


@pytest.fixture(scope="module", params=sorted(MATRICES))
def lower(request):
    return MATRICES[request.param]()


class TestSolveManyBitwise:
    @pytest.mark.parametrize("method", ["cholesky", "ldlt"])
    @pytest.mark.parametrize("k", KS)
    def test_matches_per_column_solve(self, lower, method, k):
        factor = multifrontal_factor(analyzed(lower), method=method)
        n = lower.shape[0]
        b = make_rng(100 + k).standard_normal((n, k))
        x = solve_many(factor, b)
        assert x.shape == (n, k)
        for j in range(k):
            np.testing.assert_array_equal(x[:, j], solve(factor, b[:, j]))

    def test_one_dimensional_rhs_passthrough(self, lower):
        factor = multifrontal_factor(analyzed(lower))
        b = make_rng(7).standard_normal(lower.shape[0])
        np.testing.assert_array_equal(solve_many(factor, b), solve(factor, b))

    def test_width_invariance(self, lower):
        """A column's bits do not depend on which panel carries it."""
        factor = multifrontal_factor(analyzed(lower))
        n = lower.shape[0]
        b = make_rng(8).standard_normal((n, 16))
        wide = solve_many(factor, b)
        narrow = solve_many(factor, b[:, :3])
        np.testing.assert_array_equal(wide[:, :3], narrow)

    def test_bad_shapes_rejected(self, lower):
        factor = multifrontal_factor(analyzed(lower))
        n = lower.shape[0]
        with pytest.raises(ShapeError):
            solve_many(factor, np.ones((n + 1, 2)))
        with pytest.raises(ShapeError):
            solve_many(factor, np.ones((n, 2, 2)))


class TestRefinementBitwise:
    @pytest.mark.parametrize("method", ["cholesky", "ldlt"])
    @pytest.mark.parametrize("k", KS)
    def test_matches_per_column_refinement(self, lower, method, k):
        factor = multifrontal_factor(analyzed(lower), method=method)
        n = lower.shape[0]
        b = make_rng(200 + k).standard_normal((n, k))
        res = iterative_refinement_many(factor, lower, b)
        for j in range(k):
            single = iterative_refinement(factor, lower, b[:, j])
            np.testing.assert_array_equal(res.x[:, j], single.x)
            assert res.residual_history[j] == single.residual_history
            assert int(res.iterations[j]) == single.iterations
            assert bool(res.converged[j]) == single.converged

    def test_zero_column_converges_immediately(self, lower):
        factor = multifrontal_factor(analyzed(lower))
        n = lower.shape[0]
        b = make_rng(5).standard_normal((n, 3))
        b[:, 1] = 0.0
        res = iterative_refinement_many(factor, lower, b)
        assert np.all(res.x[:, 1] == 0.0)
        assert res.residual_history[1] == (0.0,)
        assert bool(res.converged[1])
        # The zero column must not perturb its neighbors.
        lone = iterative_refinement_many(factor, lower, b[:, [0, 2]])
        np.testing.assert_array_equal(res.x[:, [0, 2]], lone.x)

    def test_scalar_requires_vector(self, lower):
        factor = multifrontal_factor(analyzed(lower))
        with pytest.raises(ShapeError):
            iterative_refinement(factor, lower, np.ones((lower.shape[0], 2)))


class TestSymMatvecMany:
    @pytest.mark.parametrize("k", KS)
    def test_matches_per_column_matvec(self, lower, k):
        n = lower.shape[0]
        x = make_rng(300 + k).standard_normal((n, k))
        y = sym_matvec_lower_many(lower, x)
        assert y.shape == (n, k)
        for j in range(k):
            np.testing.assert_array_equal(y[:, j], sym_matvec_lower(lower, x[:, j]))

    def test_one_dimensional_passthrough(self, lower):
        x = make_rng(4).standard_normal(lower.shape[0])
        np.testing.assert_array_equal(
            sym_matvec_lower_many(lower, x), sym_matvec_lower(lower, x)
        )


class TestSolverBlocked:
    @pytest.mark.parametrize("refine", [False, True])
    def test_panel_matches_column_solves(self, lower, refine):
        solver = SparseSolver(lower)
        solver.factor()
        n = lower.shape[0]
        b = make_rng(11).standard_normal((n, 5))
        res = solver.solve(b, refine=refine)
        assert res.x.shape == (n, 5)
        for j in range(5):
            single = solver.solve(b[:, j], refine=refine)
            np.testing.assert_array_equal(res.x[:, j], single.x)

    def test_vector_rhs_keeps_shape(self, lower):
        solver = SparseSolver(lower)
        solver.factor()
        b = make_rng(12).standard_normal(lower.shape[0])
        assert solver.solve(b).x.shape == (lower.shape[0],)

    @pytest.mark.parametrize("refine", [False, True])
    def test_panel_diagnostics_are_worst_over_columns(self, lower, refine):
        solver = SparseSolver(lower)
        solver.factor()
        n = lower.shape[0]
        b = make_rng(13).standard_normal((n, 4))
        res = solver.solve(b, refine=refine)
        assert res.residual < 1e-10
        singles = [solver.solve(b[:, j], refine=refine) for j in range(4)]
        assert res.residual == max(s.residual for s in singles)
        assert res.refinement_iterations == max(
            s.refinement_iterations for s in singles
        )
