"""Cross-module integration tests: the full pipeline over the paper suite,
random end-to-end configurations, tree statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ParallelConfig, SparseSolver
from repro.gen import get_paper_matrix, paper_suite, random_spd_sparse
from repro.graph import AdjacencyGraph
from repro.machine import BLUEGENE_P, GENERIC_CLUSTER, POWER5_CLUSTER
from repro.ordering import amd_order, nested_dissection_order
from repro.parallel import PlanOptions, simulate_factorization, simulate_solve
from repro.sparse.ops import sym_matvec_lower
from repro.symbolic import analyze
from repro.symbolic.tree_stats import max_useful_ranks, tree_stats
from repro.util.rng import make_rng


class TestPaperSuiteEndToEnd:
    @pytest.mark.parametrize("name", [m.name for m in paper_suite()])
    def test_every_suite_matrix_solves(self, name):
        lower = get_paper_matrix(name).build()
        solver = SparseSolver(lower, ordering="nd")
        b = make_rng(11).standard_normal(lower.shape[0])
        res = solver.solve(b)
        assert res.residual < 1e-10, f"{name}: residual {res.residual}"

    @pytest.mark.parametrize("name", ["cube-s", "elast-s", "plate-m"])
    def test_suite_parallel_verified(self, name):
        lower = get_paper_matrix(name).build()
        solver = SparseSolver(lower, ordering="nd")
        b = np.ones(lower.shape[0])
        rep = solver.simulate(
            ParallelConfig(n_ranks=4, machine=BLUEGENE_P, nb=16),
            b=b,
            verify=True,
        )
        x = rep.solve_result.x
        r = np.max(np.abs(b - sym_matvec_lower(solver.lower, x)))
        assert r < 1e-9


class TestRandomizedPipeline:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(20, 60),
        st.integers(0, 10_000),
        st.sampled_from([1, 2, 3, 5, 8]),
        st.sampled_from(["2d", "1d", "static"]),
        st.sampled_from([4, 16, 48]),
        st.sampled_from(["cholesky", "ldlt"]),
    )
    def test_property_full_pipeline(self, n, seed, p, policy, nb, method):
        lower = random_spd_sparse(n, avg_degree=4, seed=seed)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        res = simulate_factorization(
            sym, p, GENERIC_CLUSTER, PlanOptions(nb=nb, policy=policy), method=method
        )
        b = np.random.default_rng(seed + 1).standard_normal(n)
        sol = simulate_solve(res, b)
        r = np.max(np.abs(b - sym_matvec_lower(lower, sol.x)))
        assert r <= 1e-8 * max(1.0, np.max(np.abs(b)))
        # Ledger conservation on every run.
        led = res.sim.ledger
        assert sum(led.bytes_sent_by_rank) == sum(led.bytes_recv_by_rank)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 1000), st.sampled_from([2, 4, 6]))
    def test_property_machines_agree_numerically(self, seed, p):
        """Machine models change time, never numbers."""
        lower = random_spd_sparse(40, avg_degree=4, seed=seed)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, amd_order(g))
        a = simulate_factorization(sym, p, BLUEGENE_P, PlanOptions(nb=8))
        b = simulate_factorization(sym, p, POWER5_CLUSTER, PlanOptions(nb=8))
        np.testing.assert_array_equal(a.to_dense_l(), b.to_dense_l())
        assert a.makespan != b.makespan  # but the clocks differ


class TestTreeStats:
    def test_chain_has_no_concurrency(self):
        # Tridiagonal: the etree is a chain -> concurrency 1.
        import numpy as np

        from repro.sparse import CSCMatrix

        n = 12
        d = np.eye(n) * 4 + np.diag(-np.ones(n - 1), -1) + np.diag(-np.ones(n - 1), 1)
        lower = CSCMatrix.from_dense(np.tril(d))
        sym = analyze(lower, np.arange(n))
        stats = tree_stats(sym)
        assert stats.avg_concurrency == pytest.approx(1.0)
        assert stats.n_leaves == 1

    def test_nd_tree_exposes_concurrency(self):
        lower = get_paper_matrix("cube-m").build()
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        stats = tree_stats(sym)
        assert stats.avg_concurrency > 1.5
        assert stats.n_leaves > 4
        assert sum(stats.work_by_depth) == pytest.approx(stats.total_flops)

    def test_critical_path_bounds(self):
        lower = get_paper_matrix("cube-s").build()
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        stats = tree_stats(sym)
        assert 0 < stats.critical_path_flops <= stats.total_flops
        # Root's own work is on the critical path.
        root_work = max(sym.supernode_flops(s) for s in sym.roots())
        assert stats.critical_path_flops >= root_work

    def test_max_useful_ranks(self):
        lower = get_paper_matrix("cube-m").build()
        g = AdjacencyGraph.from_symmetric_lower(lower)
        sym = analyze(lower, nested_dissection_order(g))
        assert max_useful_ranks(sym) >= 2

    def test_nd_beats_natural_on_concurrency(self):
        lower = get_paper_matrix("cube-s").build()
        g = AdjacencyGraph.from_symmetric_lower(lower)
        s_nd = tree_stats(analyze(lower, nested_dissection_order(g)))
        s_nat = tree_stats(analyze(lower, np.arange(lower.shape[0])))
        assert s_nd.avg_concurrency >= s_nat.avg_concurrency
