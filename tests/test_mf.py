"""Tests for the sequential multifrontal engine: factorization correctness
against dense oracles, solves, refinement, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gen import (
    grid2d_laplacian,
    grid3d_laplacian,
    grid2d_9pt,
    elasticity3d,
    random_spd_sparse,
)
from repro.graph import AdjacencyGraph
from repro.mf import (
    multifrontal_factor,
    factor_solve,
    iterative_refinement,
    assemble_front,
    extend_add,
)
from repro.mf.solve_phase import solve_many
from repro.ordering import amd_order, nested_dissection_order, natural_order
from repro.sparse import CSCMatrix
from repro.sparse.ops import full_symmetric_from_lower, sym_matvec_lower
from repro.symbolic import analyze, AnalyzeOptions
from repro.util.errors import NotPositiveDefiniteError, ShapeError
from repro.util.rng import make_rng


def analyzed(lower, ordering=amd_order, **opts):
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, ordering(g), AnalyzeOptions(**opts) if opts else None)


def reconstruct(factor):
    """Dense PAP^T from the computed factor."""
    l = factor.to_dense_l()
    if factor.method == "ldlt":
        return l @ np.diag(factor.diag) @ l.T
    return l @ l.T


def permuted_dense(lower, perm):
    full = full_symmetric_from_lower(lower).to_dense()
    return full[np.ix_(perm, perm)]


MATRICES = {
    "grid2d_5": lambda: grid2d_laplacian(5),
    "grid2d_9pt_6": lambda: grid2d_9pt(6),
    "grid3d_4": lambda: grid3d_laplacian(4),
    "elast_2": lambda: elasticity3d(2, seed=0),
    "random_40": lambda: random_spd_sparse(40, avg_degree=5, seed=9),
}


class TestFactorizationCorrectness:
    @pytest.mark.parametrize("name", sorted(MATRICES))
    @pytest.mark.parametrize("method", ["cholesky", "ldlt"])
    def test_reconstruction(self, name, method):
        lower = MATRICES[name]()
        sym = analyzed(lower)
        factor = multifrontal_factor(sym, method=method)
        np.testing.assert_allclose(
            reconstruct(factor),
            permuted_dense(lower, sym.perm),
            rtol=1e-9,
            atol=1e-9,
        )

    @pytest.mark.parametrize("ordering", [natural_order, amd_order, nested_dissection_order])
    def test_ordering_independent_result(self, ordering):
        lower = grid2d_laplacian(6)
        sym = analyzed(lower, ordering)
        factor = multifrontal_factor(sym)
        np.testing.assert_allclose(
            reconstruct(factor), permuted_dense(lower, sym.perm), rtol=1e-9, atol=1e-9
        )

    def test_matches_scipy_cholesky(self):
        lower = grid3d_laplacian(3)
        sym = analyzed(lower, natural_order)
        # natural ordering + postorder: compare against dense cholesky of
        # the permuted matrix.
        factor = multifrontal_factor(sym)
        dense = permuted_dense(lower, sym.perm)
        np.testing.assert_allclose(
            factor.to_dense_l(), np.linalg.cholesky(dense), rtol=1e-9, atol=1e-9
        )

    def test_amalgamation_does_not_change_values(self):
        lower = grid3d_laplacian(4)
        g = AdjacencyGraph.from_symmetric_lower(lower)
        perm = nested_dissection_order(g)
        f_plain = multifrontal_factor(analyze(lower, perm, AnalyzeOptions(amalgamate=False)))
        f_merged = multifrontal_factor(analyze(lower, perm, AnalyzeOptions(amalgamate=True)))
        np.testing.assert_allclose(
            reconstruct(f_plain), reconstruct(f_merged), rtol=1e-9, atol=1e-9
        )

    def test_not_pd_detected(self):
        d = np.eye(4)
        d[2, 2] = -1.0
        lower = CSCMatrix.from_dense(np.tril(d))
        sym = analyzed(lower, natural_order)
        with pytest.raises(NotPositiveDefiniteError):
            multifrontal_factor(sym, method="cholesky")

    def test_ldlt_handles_negative_pivot(self):
        d = np.diag([2.0, -3.0, 4.0])
        d[1, 0] = d[0, 1] = 0.5
        lower = CSCMatrix.from_dense(np.tril(d))
        sym = analyzed(lower, natural_order)
        factor = multifrontal_factor(sym, method="ldlt")
        assert (factor.diag < 0).any()
        np.testing.assert_allclose(
            reconstruct(factor), permuted_dense(lower, sym.perm), rtol=1e-10, atol=1e-12
        )

    def test_unknown_method(self):
        sym = analyzed(grid2d_laplacian(3))
        with pytest.raises(ShapeError):
            multifrontal_factor(sym, method="lu")

    def test_1x1_matrix(self):
        lower = CSCMatrix.from_dense(np.array([[4.0]]))
        sym = analyzed(lower, natural_order)
        factor = multifrontal_factor(sym)
        np.testing.assert_allclose(factor.to_dense_l(), [[2.0]])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 35), st.integers(0, 5000))
    def test_property_random_spd(self, n, seed):
        lower = random_spd_sparse(n, avg_degree=4, seed=seed)
        sym = analyzed(lower)
        factor = multifrontal_factor(sym)
        np.testing.assert_allclose(
            reconstruct(factor), permuted_dense(lower, sym.perm), rtol=1e-8, atol=1e-8
        )


class TestSolve:
    @pytest.mark.parametrize("name", sorted(MATRICES))
    @pytest.mark.parametrize("method", ["cholesky", "ldlt"])
    def test_solve_residual(self, name, method):
        lower = MATRICES[name]()
        n = lower.shape[0]
        rng = make_rng(4)
        b = rng.standard_normal(n)
        sym = analyzed(lower)
        factor = multifrontal_factor(sym, method=method)
        x = factor_solve(factor, b)
        r = b - sym_matvec_lower(lower, x)
        assert np.max(np.abs(r)) <= 1e-8 * max(1.0, np.max(np.abs(b)))

    def test_solve_matches_dense_oracle(self):
        lower = grid2d_laplacian(5)
        full = full_symmetric_from_lower(lower).to_dense()
        rng = make_rng(1)
        b = rng.standard_normal(25)
        factor = multifrontal_factor(analyzed(lower))
        np.testing.assert_allclose(
            factor_solve(factor, b), np.linalg.solve(full, b), rtol=1e-8, atol=1e-10
        )

    def test_solve_many(self):
        lower = grid2d_laplacian(4)
        full = full_symmetric_from_lower(lower).to_dense()
        rng = make_rng(2)
        b = rng.standard_normal((16, 3))
        factor = multifrontal_factor(analyzed(lower))
        np.testing.assert_allclose(
            solve_many(factor, b), np.linalg.solve(full, b), rtol=1e-8, atol=1e-10
        )

    def test_solve_wrong_shape(self):
        factor = multifrontal_factor(analyzed(grid2d_laplacian(3)))
        with pytest.raises(ShapeError):
            factor_solve(factor, np.ones(5))

    def test_solve_zero_rhs(self):
        factor = multifrontal_factor(analyzed(grid2d_laplacian(3)))
        np.testing.assert_array_equal(factor_solve(factor, np.zeros(9)), np.zeros(9))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 30), st.integers(0, 5000))
    def test_property_solve_random(self, n, seed):
        lower = random_spd_sparse(n, avg_degree=4, seed=seed)
        rng = np.random.default_rng(seed + 1)
        b = rng.standard_normal(n)
        factor = multifrontal_factor(analyzed(lower))
        x = factor_solve(factor, b)
        r = b - sym_matvec_lower(lower, x)
        assert np.max(np.abs(r)) <= 1e-7 * max(1.0, np.max(np.abs(b)))


class TestRefinement:
    def test_refinement_converges(self):
        lower = grid3d_laplacian(3)
        rng = make_rng(3)
        b = rng.standard_normal(27)
        factor = multifrontal_factor(analyzed(lower))
        res = iterative_refinement(factor, lower, b, tol=1e-13)
        assert res.converged
        assert res.residual_history[-1] <= 1e-13

    def test_refinement_improves_residual(self):
        lower = random_spd_sparse(50, avg_degree=6, seed=11)
        rng = make_rng(5)
        b = rng.standard_normal(50)
        factor = multifrontal_factor(analyzed(lower))
        res = iterative_refinement(factor, lower, b, max_iter=3, tol=0.0)
        assert res.residual_history[-1] <= res.residual_history[0] * 10

    def test_zero_rhs_shortcut(self):
        lower = grid2d_laplacian(3)
        factor = multifrontal_factor(analyzed(lower))
        res = iterative_refinement(factor, lower, np.zeros(9))
        assert res.converged
        np.testing.assert_array_equal(res.x, np.zeros(9))


class TestAccounting:
    def test_flops_match_symbolic_prediction(self):
        lower = grid3d_laplacian(4)
        sym = analyzed(lower, nested_dissection_order)
        factor = multifrontal_factor(sym)
        predicted = sum(sym.supernode_flops(s) for s in range(sym.n_supernodes))
        assert factor.stats.flops == predicted

    def test_front_count_equals_supernodes(self):
        lower = grid2d_laplacian(6)
        sym = analyzed(lower)
        factor = multifrontal_factor(sym)
        assert factor.stats.n_fronts == sym.n_supernodes

    def test_peak_stack_positive_for_trees(self):
        lower = grid3d_laplacian(4)
        factor = multifrontal_factor(analyzed(lower, nested_dissection_order))
        assert factor.stats.peak_stack_entries > 0

    def test_factor_entries_match_symbolic(self):
        lower = grid2d_laplacian(5)
        sym = analyzed(lower)
        factor = multifrontal_factor(sym)
        assert factor.stats.factor_entries == sym.nnz_stored


class TestFrontPrimitives:
    def test_assemble_front_scatters_columns(self):
        lower = grid2d_laplacian(3)
        sym = analyzed(lower, natural_order)
        s = 0
        rows = sym.sn_rows[s]
        w = sym.supernode_width(s)
        c0 = int(sym.partition.sn_start[s])
        front = assemble_front(sym.permuted_lower, rows, c0, w)
        dense = permuted_dense(lower, sym.perm)
        for k in range(w):
            np.testing.assert_allclose(front[:, k], dense[rows, c0 + k] * (rows >= c0 + k))

    def test_extend_add_positions(self):
        parent = np.zeros((4, 4))
        parent_rows = np.array([2, 5, 7, 9])
        update = np.array([[1.0, 0.0], [3.0, 4.0]])
        update_rows = np.array([5, 9])
        extend_add(parent, parent_rows, update, update_rows)
        assert parent[1, 1] == 1.0
        assert parent[3, 1] == 3.0
        assert parent[3, 3] == 4.0
        assert parent[1, 3] == 0.0  # upper garbage not propagated

    def test_extend_add_missing_row_raises(self):
        parent = np.zeros((2, 2))
        with pytest.raises(ShapeError):
            extend_add(parent, np.array([1, 3]), np.ones((1, 1)), np.array([2]))

    def test_extend_add_size_mismatch(self):
        with pytest.raises(ValueError):
            extend_add(np.zeros((2, 2)), np.array([0, 1]), np.ones((2, 2)), np.array([0]))
