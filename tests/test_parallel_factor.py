"""End-to-end tests of the simulated distributed factorization and solve:
numerics must match the sequential multifrontal engine across rank counts,
policies, block sizes, and factorization methods."""

import numpy as np
import pytest

from repro.gen import (
    elasticity3d,
    grid2d_laplacian,
    grid3d_laplacian,
    random_spd_sparse,
)
from repro.graph import AdjacencyGraph
from repro.machine import BLUEGENE_P, GENERIC_CLUSTER
from repro.mf import multifrontal_factor, factor_solve
from repro.ordering import amd_order, nested_dissection_order
from repro.parallel import (
    PlanOptions,
    simulate_factorization,
    simulate_solve,
)
from repro.sparse.ops import sym_matvec_lower
from repro.symbolic import analyze
from repro.util.rng import make_rng

MACHINE = GENERIC_CLUSTER


def analyzed(lower, ordering=nested_dissection_order):
    g = AdjacencyGraph.from_symmetric_lower(lower)
    return analyze(lower, ordering(g))


@pytest.fixture(scope="module")
def problem3d():
    lower = grid3d_laplacian(5)
    sym = analyzed(lower)
    seq = multifrontal_factor(sym)
    return lower, sym, seq


class TestFactorNumerics:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 16])
    def test_matches_sequential(self, problem3d, p):
        lower, sym, seq = problem3d
        res = simulate_factorization(sym, p, MACHINE, PlanOptions(nb=8))
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-9, atol=1e-9
        )

    @pytest.mark.parametrize("policy", ["2d", "1d", "static"])
    def test_policies_agree(self, problem3d, policy):
        lower, sym, seq = problem3d
        res = simulate_factorization(
            sym, 4, MACHINE, PlanOptions(nb=8, policy=policy)
        )
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-9, atol=1e-9
        )

    @pytest.mark.parametrize("nb", [4, 16, 64])
    def test_block_size_invariant(self, problem3d, nb):
        lower, sym, seq = problem3d
        res = simulate_factorization(sym, 4, MACHINE, PlanOptions(nb=nb))
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-9, atol=1e-9
        )

    def test_ldlt_matches_sequential(self):
        lower = grid3d_laplacian(4)
        sym = analyzed(lower)
        seq = multifrontal_factor(sym, method="ldlt")
        res = simulate_factorization(
            sym, 4, MACHINE, PlanOptions(nb=8), method="ldlt"
        )
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-8, atol=1e-8
        )
        np.testing.assert_allclose(
            res.assemble_diag(), seq.diag, rtol=1e-9, atol=1e-9
        )

    def test_elasticity_matrix(self):
        lower = elasticity3d(3, seed=2)
        sym = analyzed(lower)
        seq = multifrontal_factor(sym)
        res = simulate_factorization(sym, 6, MACHINE, PlanOptions(nb=8))
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-8, atol=1e-8
        )

    def test_random_matrix_amd(self):
        lower = random_spd_sparse(80, avg_degree=5, seed=4)
        sym = analyzed(lower, amd_order)
        seq = multifrontal_factor(sym)
        res = simulate_factorization(sym, 4, MACHINE, PlanOptions(nb=8))
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-8, atol=1e-8
        )

    def test_2d_mesh(self):
        lower = grid2d_laplacian(9)
        sym = analyzed(lower)
        seq = multifrontal_factor(sym)
        res = simulate_factorization(sym, 8, MACHINE, PlanOptions(nb=8))
        np.testing.assert_allclose(
            res.to_dense_l(), seq.to_dense_l(), rtol=1e-9, atol=1e-9
        )

    def test_deterministic(self, problem3d):
        _, sym, _ = problem3d
        a = simulate_factorization(sym, 4, MACHINE, PlanOptions(nb=8))
        b = simulate_factorization(sym, 4, MACHINE, PlanOptions(nb=8))
        assert a.makespan == b.makespan
        assert a.sim.ledger.n_messages == b.sim.ledger.n_messages
        np.testing.assert_array_equal(a.to_dense_l(), b.to_dense_l())


class TestFactorAccounting:
    def test_flops_close_to_sequential(self, problem3d):
        _, sym, seq = problem3d
        res = simulate_factorization(sym, 4, MACHINE, PlanOptions(nb=8))
        # Blocked distributed kernels count slightly differently from the
        # per-front formula (block-boundary rounding), but totals must stay
        # within ~20%.
        assert res.total_flops == pytest.approx(seq.stats.flops, rel=0.20)

    def test_factor_entries_conserved(self, problem3d):
        _, sym, seq = problem3d
        res = simulate_factorization(sym, 4, MACHINE, PlanOptions(nb=8))
        assert res.factor_entries_by_rank().sum() >= sym.nnz_factor

    def test_p1_no_messages(self, problem3d):
        _, sym, _ = problem3d
        res = simulate_factorization(sym, 1, MACHINE)
        assert res.sim.ledger.n_messages == 0

    def test_message_conservation(self, problem3d):
        _, sym, _ = problem3d
        res = simulate_factorization(sym, 8, MACHINE, PlanOptions(nb=8))
        led = res.sim.ledger
        assert sum(led.sent_by_rank) == led.n_messages
        assert sum(led.recv_by_rank) == led.n_messages
        assert sum(led.bytes_sent_by_rank) == sum(led.bytes_recv_by_rank)

    def test_comm_fraction_bounds(self, problem3d):
        _, sym, _ = problem3d
        res = simulate_factorization(sym, 8, MACHINE, PlanOptions(nb=8))
        assert 0.0 <= res.comm_fraction() <= 1.0

    def test_gflops_positive(self, problem3d):
        _, sym, _ = problem3d
        res = simulate_factorization(sym, 2, MACHINE)
        assert res.gflops > 0
        assert 0 < res.peak_fraction < 1


class TestSolveNumerics:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_residual(self, problem3d, p):
        lower, sym, _ = problem3d
        res = simulate_factorization(sym, p, MACHINE, PlanOptions(nb=8))
        b = make_rng(7).standard_normal(sym.n)
        sol = simulate_solve(res, b)
        r = np.max(np.abs(b - sym_matvec_lower(lower, sol.x)))
        assert r <= 1e-10 * max(1.0, np.max(np.abs(b)))

    @pytest.mark.parametrize("p", [1, 3, 6])
    def test_matches_sequential_solve(self, problem3d, p):
        lower, sym, seq = problem3d
        b = make_rng(8).standard_normal(sym.n)
        x_seq = factor_solve(seq, b)
        res = simulate_factorization(sym, p, MACHINE, PlanOptions(nb=8))
        sol = simulate_solve(res, b)
        np.testing.assert_allclose(sol.x, x_seq, rtol=1e-9, atol=1e-10)

    def test_ldlt_solve(self):
        lower = grid3d_laplacian(4)
        sym = analyzed(lower)
        res = simulate_factorization(
            sym, 4, MACHINE, PlanOptions(nb=8), method="ldlt"
        )
        b = make_rng(9).standard_normal(sym.n)
        sol = simulate_solve(res, b)
        r = np.max(np.abs(b - sym_matvec_lower(lower, sol.x)))
        assert r <= 1e-9

    @pytest.mark.parametrize("policy", ["2d", "1d", "static"])
    def test_solve_across_policies(self, problem3d, policy):
        lower, sym, _ = problem3d
        res = simulate_factorization(
            sym, 4, MACHINE, PlanOptions(nb=8, policy=policy)
        )
        b = make_rng(10).standard_normal(sym.n)
        sol = simulate_solve(res, b)
        r = np.max(np.abs(b - sym_matvec_lower(lower, sol.x)))
        assert r <= 1e-9

    def test_solve_flops_lower_than_factor(self, problem3d):
        _, sym, _ = problem3d
        res = simulate_factorization(sym, 4, MACHINE, PlanOptions(nb=8))
        b = np.ones(sym.n)
        sol = simulate_solve(res, b)
        assert sol.total_flops < res.total_flops


class TestScalingBehaviour:
    """Shape-level assertions: the qualitative claims the paper's plots
    make must hold on the simulated machine."""

    @pytest.fixture(scope="class")
    def big(self):
        lower = grid3d_laplacian(8)
        sym = analyzed(lower)
        return sym

    def test_speedup_with_ranks(self, big):
        t1 = simulate_factorization(big, 1, BLUEGENE_P, PlanOptions(nb=32)).makespan
        t8 = simulate_factorization(big, 8, BLUEGENE_P, PlanOptions(nb=32)).makespan
        assert t8 < t1

    def test_2d_beats_1d_at_scale(self, big):
        opts2 = PlanOptions(nb=32, policy="2d")
        opts1 = PlanOptions(nb=32, policy="1d")
        t2d = simulate_factorization(big, 16, BLUEGENE_P, opts2).makespan
        t1d = simulate_factorization(big, 16, BLUEGENE_P, opts1).makespan
        assert t2d <= t1d * 1.05  # 2D never meaningfully worse; usually better

    def test_subcube_beats_static(self, big):
        t_sub = simulate_factorization(
            big, 16, BLUEGENE_P, PlanOptions(nb=32, policy="2d")
        ).makespan
        t_static = simulate_factorization(
            big, 16, BLUEGENE_P, PlanOptions(nb=32, policy="static")
        ).makespan
        assert t_sub < t_static

    def test_comm_fraction_grows_with_p(self, big):
        f2 = simulate_factorization(big, 2, BLUEGENE_P, PlanOptions(nb=32)).comm_fraction()
        f16 = simulate_factorization(big, 16, BLUEGENE_P, PlanOptions(nb=32)).comm_fraction()
        assert f16 > f2

    def test_solve_scales_worse_than_factor(self, big):
        res1 = simulate_factorization(big, 1, BLUEGENE_P, PlanOptions(nb=32))
        res8 = simulate_factorization(big, 8, BLUEGENE_P, PlanOptions(nb=32))
        b = np.ones(big.n)
        s1 = simulate_solve(res1, b).makespan
        s8 = simulate_solve(res8, b).makespan
        factor_speedup = res1.makespan / res8.makespan
        solve_speedup = s1 / s8
        assert solve_speedup < factor_speedup

    def test_hybrid_reduces_messages(self, big):
        """Fewer ranks at equal cores -> fewer messages (the SMP story)."""
        r16 = simulate_factorization(
            big, 16, BLUEGENE_P, PlanOptions(nb=32), threads_per_rank=1
        )
        r4 = simulate_factorization(
            big, 4, BLUEGENE_P, PlanOptions(nb=32), threads_per_rank=4
        )
        assert r4.sim.ledger.n_messages < r16.sim.ledger.n_messages
